//! Cross-crate integration tests: every workload through every controller
//! mode, checking conservation laws and table invariants the unit tests
//! cannot see.

use hetero_mem::base::config::SimScale;
use hetero_mem::core::{MigrationDesign, Mode};
use hetero_mem::simulator::driver::{run, RunConfig};
use hetero_mem::workloads::WorkloadId;

fn quick(w: WorkloadId, mode: Mode) -> RunConfig {
    RunConfig {
        scale: SimScale { divisor: 256 },
        accesses: 40_000,
        warmup: 8_000,
        page_shift: 14,
        swap_interval: 1_000,
        ..RunConfig::paper(w, mode)
    }
}

#[test]
fn every_workload_completes_under_every_mode() {
    for w in WorkloadId::trace_study() {
        for mode in [
            Mode::AllOffPackage,
            Mode::AllOnPackage,
            Mode::Static,
            Mode::Dynamic(MigrationDesign::N),
            Mode::Dynamic(MigrationDesign::NMinusOne),
            Mode::Dynamic(MigrationDesign::LiveMigration),
        ] {
            let cfg = quick(w, mode);
            let r = run(&cfg);
            assert_eq!(
                r.access.accesses(),
                cfg.accesses - cfg.warmup,
                "{w:?}/{mode:?}: lost or duplicated completions"
            );
            assert!(r.mean_latency() > 0.0, "{w:?}/{mode:?}");
        }
    }
}

#[test]
fn latency_bounds_are_ordered() {
    // For every workload: ideal <= dynamic <= all-off (the baseline can
    // only be worse than the ideal; dynamic sits between).
    for w in [WorkloadId::Pgbench, WorkloadId::SpecJbb] {
        let ideal = run(&quick(w, Mode::AllOnPackage)).mean_latency();
        let dynamic = run(&quick(w, Mode::Dynamic(MigrationDesign::LiveMigration))).mean_latency();
        let worst = run(&quick(w, Mode::AllOffPackage)).mean_latency();
        assert!(ideal < worst, "{w:?}: ideal {ideal:.1} vs worst {worst:.1}");
        assert!(
            dynamic < worst * 1.02,
            "{w:?}: dynamic {dynamic:.1} must not exceed the all-off baseline {worst:.1}"
        );
        assert!(
            dynamic > ideal * 0.98,
            "{w:?}: dynamic {dynamic:.1} cannot beat the ideal {ideal:.1}"
        );
    }
}

#[test]
fn demand_traffic_is_conserved() {
    let cfg = quick(WorkloadId::Indexer, Mode::Dynamic(MigrationDesign::NMinusOne));
    let r = run(&cfg);
    assert_eq!(
        r.controller.demand_on_lines + r.controller.demand_off_lines,
        cfg.accesses,
        "every demand access is exactly one line through exactly one region"
    );
}

#[test]
fn migration_traffic_matches_engine_accounting() {
    let cfg = quick(WorkloadId::Pgbench, Mode::Dynamic(MigrationDesign::LiveMigration));
    let r = run(&cfg);
    let swaps = r.swaps.expect("dynamic run");
    let lines_per_sub = (r.geometry.sub_block_bytes() / 64).max(1);
    assert_eq!(
        r.controller.migration_on_lines + r.controller.migration_off_lines,
        swaps.sub_blocks_copied * lines_per_sub * 2,
        "each sub-block copy is one read leg + one write leg of lines"
    );
}

#[test]
fn static_and_dynamic_agree_with_zero_swaps() {
    // With an absurdly long interval no swap ever triggers, so dynamic
    // mode must behave exactly like static plus the translation cycles.
    // (The N design is used because N-1 sacrifices one slot, whose page
    // legitimately routes off-package even before any swap.)
    let mut dcfg = quick(WorkloadId::SpecJbb, Mode::Dynamic(MigrationDesign::N));
    dcfg.swap_interval = u64::MAX;
    let d = run(&dcfg);
    let s = run(&quick(WorkloadId::SpecJbb, Mode::Static));
    assert_eq!(d.swaps.unwrap().completed, 0);
    assert_eq!(
        d.access.on_package_hits, s.access.on_package_hits,
        "identity mapping must route identically"
    );
    let delta = d.mean_latency() - s.mean_latency();
    assert!(
        (delta - 2.0).abs() < 0.5,
        "dynamic-without-swaps should cost ~2 extra cycles (translation table), got {delta:.2}"
    );
}

#[test]
fn seeds_change_traces_but_not_structure() {
    let a = run(&RunConfig { seed: 1, ..quick(WorkloadId::Pgbench, Mode::Static) });
    let b = run(&RunConfig { seed: 2, ..quick(WorkloadId::Pgbench, Mode::Static) });
    assert_ne!(a.mean_latency(), b.mean_latency());
    // But the structural profile is similar.
    assert!((a.on_fraction() - b.on_fraction()).abs() < 0.1);
}
