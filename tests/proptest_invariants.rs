//! Property-style tests of the core data structures' invariants, driven by
//! the workspace's own deterministic [`SimRng`] over many seeded cases
//! (the offline-friendly stand-in for a property-testing framework).
//!
//! * The translation table preserves the paper's structural invariants
//!   under arbitrary valid swap sequences, and translation stays a
//!   bijection over macro pages.
//! * The DRAM region never loses or duplicates transactions, and
//!   completions never precede arrivals.
//! * The set-associative cache agrees with a reference model on
//!   hit/miss decisions.
//! * Workload generators never escape their declared footprints.

use std::collections::{HashMap, HashSet};

use hetero_mem::base::addr::{LineAddr, MacroPageId, SubBlockId};
use hetero_mem::base::SimRng;
use hetero_mem::cache::{AccessOutcome, CacheConfig, SetAssocCache};
use hetero_mem::core::migrate::{MigrationDesign, MigrationEngine};
use hetero_mem::core::table::TranslationTable;
use hetero_mem::dram::{DeviceProfile, DramRegion, SchedPolicy, Transaction};

const SLOTS: u64 = 8;
const PAGES: u64 = 32;
const CASES: u64 = 64;

const DESIGNS: [MigrationDesign; 3] =
    [MigrationDesign::N, MigrationDesign::NMinusOne, MigrationDesign::LiveMigration];

/// Drive one full swap synchronously; returns false if rejected.
fn run_swap(
    engine: &mut MigrationEngine,
    table: &mut TranslationTable,
    hot: u64,
    cold: u32,
) -> bool {
    if !engine.start_swap(table, hot, cold, 0) {
        return false;
    }
    let mut guard = 0;
    while engine.busy() {
        let mut ts = Vec::new();
        engine.take_transfers(4, &mut ts);
        assert!(!ts.is_empty(), "busy engine must emit transfers");
        for t in ts {
            engine.transfer_done(t.token, table);
        }
        guard += 1;
        assert!(guard < 10_000, "swap did not converge");
    }
    true
}

/// Any sequence of hottest-coldest swaps leaves the table consistent and
/// translation a bijection: every macro page maps to a unique machine
/// page.
#[test]
fn translation_stays_bijective_under_swaps() {
    for case in 0..CASES {
        let mut rng = SimRng::new(1000 + case);
        let design = DESIGNS[rng.below(3) as usize];
        let mut table = TranslationTable::new(SLOTS, PAGES, design.sacrifices_slot());
        let mut engine = MigrationEngine::new(design, 4);
        let ops = 1 + rng.below(39);
        for _ in 0..ops {
            let hot = rng.below(PAGES);
            let cold = rng.below(SLOTS) as u32;
            let _ = run_swap(&mut engine, &mut table, hot, cold);
            table
                .check_invariants(true, design.sacrifices_slot())
                .unwrap_or_else(|e| panic!("case {case} ({design:?}): {e}"));
        }
        // Bijectivity over all program-visible pages (the reserved ghost
        // page is not program-visible).
        let mut seen = HashMap::new();
        for p in 0..PAGES - 1 {
            let mp = table.translate(MacroPageId(p), SubBlockId(0));
            if let Some(prev) = seen.insert(mp, p) {
                panic!("case {case}: pages {prev} and {p} both translate to machine page {}", mp.0);
            }
        }
    }
}

/// Mid-swap, every page must still translate somewhere valid (the paper:
/// "the program execution will not be halted since all the memory
/// accesses are routed to an available physical location").
#[test]
fn translation_total_mid_swap() {
    for case in 0..CASES {
        let mut rng = SimRng::new(2000 + case);
        let hot = SLOTS + rng.below(PAGES - 1 - SLOTS);
        let cold = rng.below(SLOTS) as u32;
        let completed_transfers = rng.below(8) as u32;
        let mut table = TranslationTable::new(SLOTS, PAGES, true);
        let mut engine = MigrationEngine::new(MigrationDesign::LiveMigration, 4);
        if engine.start_swap(&mut table, hot, cold, 1) {
            let mut ts = Vec::new();
            engine.take_transfers(completed_transfers, &mut ts);
            for t in ts {
                engine.transfer_done(t.token, &mut table);
            }
            for p in 0..PAGES - 1 {
                for sub in 0..4u32 {
                    let mp = table.translate(MacroPageId(p), SubBlockId(sub));
                    assert!(mp.0 < PAGES, "case {case}: page {p} translated out of range");
                }
            }
        }
    }
}

/// The DRAM region services every transaction exactly once, and no
/// completion finishes before its arrival.
#[test]
fn dram_region_conserves_transactions() {
    for case in 0..CASES {
        let mut rng = SimRng::new(3000 + case);
        let n = 1 + rng.below(399) as usize;
        let spacing = 1 + rng.below(199);
        let mut region = DramRegion::new(
            DeviceProfile::off_package_ddr3(),
            &Default::default(),
            SchedPolicy::FrFcfs,
        );
        let mut arrivals = HashMap::new();
        for i in 0..n as u64 {
            let arrival = i * spacing;
            let addr = rng.below(1 << 26) & !63;
            let bg = rng.chance(0.2);
            let txn = if bg {
                Transaction::migration(i, arrival, addr, rng.chance(0.5), 4)
            } else {
                Transaction::demand(i, arrival, addr, rng.chance(0.3))
            };
            arrivals.insert(i, arrival);
            region.enqueue(txn);
            region.advance(arrival);
        }
        region.flush();
        let done = region.drain_completions();
        assert_eq!(done.len(), n, "case {case}: every transaction completes exactly once");
        let mut ids = HashSet::new();
        for c in &done {
            assert!(ids.insert(c.id), "case {case}: duplicate completion {}", c.id);
            assert!(
                c.finish > arrivals[&c.id],
                "case {case}: completion at {} precedes arrival {}",
                c.finish,
                arrivals[&c.id]
            );
            assert_eq!(
                c.breakdown.total(),
                c.finish - arrivals[&c.id],
                "case {case}: breakdown must sum to end-to-end time"
            );
        }
    }
}

/// The set-associative cache (LRU) agrees with a naive reference model.
#[test]
fn cache_matches_reference_lru() {
    for case in 0..CASES {
        let mut rng = SimRng::new(4000 + case);
        let len = 1 + rng.below(299);
        // 2 sets x 4 ways.
        let mut cache = SetAssocCache::new(CacheConfig::new(512, 4));
        let mut reference: Vec<Vec<u64>> = vec![Vec::new(); 2]; // MRU at back
        for _ in 0..len {
            let line = rng.below(64);
            let set = (line % 2) as usize;
            let model_hit = reference[set].contains(&line);
            if model_hit {
                reference[set].retain(|&l| l != line);
            } else if reference[set].len() == 4 {
                reference[set].remove(0);
            }
            reference[set].push(line);
            let got = cache.access(LineAddr(line), false);
            assert_eq!(
                got.is_hit(),
                model_hit,
                "case {case}: line {line} disagreed with the reference model"
            );
            if let AccessOutcome::Miss(Some(victim)) = got {
                assert!(
                    !reference[set].contains(&victim.line.0),
                    "case {case}: evicted a line the reference still holds"
                );
            }
        }
    }
}

/// Workload records stay within the declared footprint at every scale.
#[test]
fn workloads_respect_footprints() {
    use hetero_mem::workloads::{workload, WorkloadId};
    for seed in 0..8u64 {
        for divisor_pow in 0..9u32 {
            let scale = hetero_mem::base::config::SimScale { divisor: 1 << divisor_pow };
            for id in [WorkloadId::Ft, WorkloadId::Pgbench, WorkloadId::SpecJbb] {
                let w = workload(id, &scale);
                for rec in w.iter(seed).take(500) {
                    assert!(
                        rec.addr.0 < w.footprint_bytes,
                        "{id:?} escaped: {:#x} >= {:#x}",
                        rec.addr.0,
                        w.footprint_bytes
                    );
                }
            }
        }
    }
}

/// Random fault schedules against all three migration designs: every
/// access completes (no deadlock), the translation table stays valid
/// afterwards, every started swap either completed or rolled back, and
/// the whole faulty pipeline is bit-for-bit deterministic.
#[test]
fn fault_schedules_preserve_invariants() {
    use hetero_mem::base::addr::PhysAddr;
    use hetero_mem::base::config::MachineConfig;
    use hetero_mem::core::{ControllerConfig, HeteroController, Mode};
    use hetero_mem::dram::{DeviceProfile, SchedPolicy};
    use hetero_mem::fault::FaultPlan;

    let run_case = |case: u64| {
        let mut rng = SimRng::new(6000 + case);
        let design = DESIGNS[(case % 3) as usize];
        let plan = FaultPlan {
            seed: 77 + case,
            flip_rate: rng.below(3) as f64 * 1e-4,
            uflip_rate: rng.below(3) as f64 * 3e-5,
            drop_rate: rng.below(4) as f64 * 2e-3,
            timeout_rate: rng.below(3) as f64 * 1e-3,
            row_corrupt_rate: rng.below(2) as f64 * 0.03,
            max_retries: rng.below(4) as u32,
            retry_backoff_cycles: 200 + rng.below(2000),
            quarantine_threshold: 2 + rng.below(6) as u32,
            spare_slots: 1 + rng.below(2) as u32,
            ..FaultPlan::default()
        };
        let geometry = hetero_mem::base::config::MemoryGeometry {
            total_bytes: 36 << 16,
            on_package_bytes: 8 << 16,
            page_shift: 16,
            sub_block_shift: 14,
        };
        let mut ctrl = HeteroController::new(ControllerConfig {
            machine: MachineConfig { geometry, ..MachineConfig::default() },
            mode: Mode::Dynamic(design),
            swap_interval: 300,
            os_assisted: None,
            max_outstanding_copies: 8,
            copy_pace_cycles_per_line: 10,
            policy: SchedPolicy::FrFcfs,
            on_profile: DeviceProfile::on_package(),
            off_profile: DeviceProfile::off_package_ddr3(),
            faults: Some(plan),
        });
        let page = geometry.page_bytes();
        let visible = ctrl.table().first_reserved_page();
        let hot = 8 + rng.below(visible - 8); // an off-package page to attract swaps
        let mut now = 0u64;
        let accesses = 2_000;
        for _ in 0..accesses {
            now += 37;
            let addr = if rng.chance(0.7) {
                hot * page + (rng.below(page) & !63)
            } else {
                rng.below(visible * page) & !63
            };
            ctrl.access(now, PhysAddr(addr), rng.chance(0.25));
            ctrl.advance(now);
        }
        ctrl.flush();
        let done = ctrl.drain();
        assert_eq!(done.len(), accesses, "case {case} ({design:?}): accesses lost under faults");
        ctrl.table()
            .validate(design.sacrifices_slot())
            .unwrap_or_else(|e| panic!("case {case} ({design:?}): {e}"));
        let swaps = ctrl.swap_stats().expect("dynamic mode has swap stats");
        assert_eq!(
            swaps.triggered,
            swaps.completed + swaps.aborted,
            "case {case} ({design:?}): a started swap neither completed nor rolled back"
        );
        (ctrl.stats(), swaps, done)
    };

    for case in 0..24 {
        let a = run_case(case);
        let b = run_case(case);
        assert_eq!(a.0, b.0, "case {case}: controller stats must be deterministic");
        assert_eq!(a.1, b.1, "case {case}: swap stats must be deterministic");
        assert_eq!(a.2, b.2, "case {case}: completions must be deterministic");
    }
}

/// Zipf sampling is deterministic and in-range for arbitrary domains.
#[test]
fn zipf_domain_safety() {
    for case in 0..CASES {
        let mut rng = SimRng::new(5000 + case);
        let n = 1 + rng.below(4999) as usize;
        let theta = rng.below(2000) as f64 / 1000.0;
        let z = hetero_mem::base::rng::Zipf::new(n, theta);
        for _ in 0..100 {
            assert!(z.sample(&mut rng) < n);
        }
    }
}
