//! Property-based tests of the core data structures' invariants.
//!
//! * The translation table preserves the paper's structural invariants
//!   under arbitrary valid swap sequences, and translation stays a
//!   bijection over macro pages.
//! * The DRAM region never loses or duplicates transactions, and
//!   completions never precede arrivals.
//! * The set-associative cache agrees with a reference model on
//!   hit/miss decisions.
//! * Workload generators never escape their declared footprints.

use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

use hetero_mem::base::addr::{LineAddr, MacroPageId, SubBlockId};
use hetero_mem::base::SimRng;
use hetero_mem::cache::{AccessOutcome, CacheConfig, SetAssocCache};
use hetero_mem::core::migrate::{MigrationDesign, MigrationEngine};
use hetero_mem::core::table::TranslationTable;
use hetero_mem::dram::{DeviceProfile, DramRegion, SchedPolicy, Transaction};

const SLOTS: u64 = 8;
const PAGES: u64 = 32;

/// Drive one full swap synchronously; returns false if rejected.
fn run_swap(engine: &mut MigrationEngine, table: &mut TranslationTable, hot: u64, cold: u32) -> bool {
    if !engine.start_swap(table, hot, cold, 0) {
        return false;
    }
    let mut guard = 0;
    while engine.busy() {
        let mut ts = Vec::new();
        engine.take_transfers(4, &mut ts);
        assert!(!ts.is_empty(), "busy engine must emit transfers");
        for t in ts {
            engine.transfer_done(t.token, table);
        }
        guard += 1;
        assert!(guard < 10_000, "swap did not converge");
    }
    true
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any sequence of hottest-coldest swaps leaves the table consistent
    /// and translation a bijection: every macro page maps to a unique
    /// machine page.
    #[test]
    fn translation_stays_bijective_under_swaps(
        ops in prop::collection::vec((0u64..PAGES, 0u32..SLOTS as u32), 1..40),
        design in prop::sample::select(vec![
            MigrationDesign::N,
            MigrationDesign::NMinusOne,
            MigrationDesign::LiveMigration,
        ]),
    ) {
        let mut table = TranslationTable::new(SLOTS, PAGES, design.sacrifices_slot());
        let mut engine = MigrationEngine::new(design, 4);
        for (hot, cold) in ops {
            let _ = run_swap(&mut engine, &mut table, hot, cold);
            table.check_invariants(true, design.sacrifices_slot())
                .map_err(TestCaseError::fail)?;
        }
        // Bijectivity over all program-visible pages (the reserved ghost
        // page is not program-visible).
        let mut seen = HashMap::new();
        for p in 0..PAGES - 1 {
            let mp = table.translate(MacroPageId(p), SubBlockId(0));
            if let Some(prev) = seen.insert(mp, p) {
                return Err(TestCaseError::fail(format!(
                    "pages {prev} and {p} both translate to machine page {}", mp.0
                )));
            }
        }
    }

    /// Mid-swap, every page must still translate somewhere valid (the
    /// paper: "the program execution will not be halted since all the
    /// memory accesses are routed to an available physical location").
    #[test]
    fn translation_total_mid_swap(
        hot in SLOTS..PAGES - 1,
        cold in 0u32..SLOTS as u32,
        completed_transfers in 0usize..8,
    ) {
        let mut table = TranslationTable::new(SLOTS, PAGES, true);
        let mut engine = MigrationEngine::new(MigrationDesign::LiveMigration, 4);
        if engine.start_swap(&mut table, hot, cold, 1) {
            let mut ts = Vec::new();
            engine.take_transfers(completed_transfers as u32, &mut ts);
            for t in ts {
                engine.transfer_done(t.token, &mut table);
            }
            for p in 0..PAGES - 1 {
                for sub in 0..4u32 {
                    let mp = table.translate(MacroPageId(p), SubBlockId(sub));
                    prop_assert!(mp.0 < PAGES, "page {p} translated out of range");
                }
            }
        }
    }

    /// The DRAM region services every transaction exactly once, and no
    /// completion finishes before its arrival.
    #[test]
    fn dram_region_conserves_transactions(
        seed in 0u64..1000,
        n in 1usize..400,
        spacing in 1u64..200,
    ) {
        let mut region = DramRegion::new(
            DeviceProfile::off_package_ddr3(),
            &Default::default(),
            SchedPolicy::FrFcfs,
        );
        let mut rng = SimRng::new(seed);
        let mut arrivals = HashMap::new();
        for i in 0..n as u64 {
            let arrival = i * spacing;
            let addr = rng.below(1 << 26) & !63;
            let bg = rng.chance(0.2);
            let txn = if bg {
                Transaction::migration(i, arrival, addr, rng.chance(0.5), 4)
            } else {
                Transaction::demand(i, arrival, addr, rng.chance(0.3))
            };
            arrivals.insert(i, arrival);
            region.enqueue(txn);
            region.advance(arrival);
        }
        region.flush();
        let done = region.drain_completions();
        prop_assert_eq!(done.len(), n, "every transaction completes exactly once");
        let mut ids = HashSet::new();
        for c in &done {
            prop_assert!(ids.insert(c.id), "duplicate completion {}", c.id);
            prop_assert!(
                c.finish > arrivals[&c.id],
                "completion at {} precedes arrival {}",
                c.finish,
                arrivals[&c.id]
            );
            prop_assert_eq!(
                c.breakdown.total(),
                c.finish - arrivals[&c.id],
                "breakdown must sum to end-to-end time"
            );
        }
    }

    /// The set-associative cache (LRU) agrees with a naive reference model.
    #[test]
    fn cache_matches_reference_lru(
        lines in prop::collection::vec(0u64..64, 1..300),
    ) {
        // 2 sets x 4 ways.
        let mut cache = SetAssocCache::new(CacheConfig::new(512, 4));
        let mut reference: Vec<Vec<u64>> = vec![Vec::new(); 2]; // MRU at back
        for line in lines {
            let set = (line % 2) as usize;
            let model_hit = reference[set].contains(&line);
            if model_hit {
                reference[set].retain(|&l| l != line);
            } else if reference[set].len() == 4 {
                reference[set].remove(0);
            }
            reference[set].push(line);
            let got = cache.access(LineAddr(line), false);
            prop_assert_eq!(
                got.is_hit(),
                model_hit,
                "line {} disagreed with the reference model", line
            );
            if let AccessOutcome::Miss(Some(victim)) = got {
                prop_assert!(
                    !reference[set].contains(&victim.line.0),
                    "evicted a line the reference still holds"
                );
            }
        }
    }

    /// Workload records stay within the declared footprint at every scale.
    #[test]
    fn workloads_respect_footprints(
        seed in 0u64..100,
        divisor_pow in 0u32..9,
    ) {
        use hetero_mem::workloads::{workload, WorkloadId};
        let scale = hetero_mem::base::config::SimScale { divisor: 1 << divisor_pow };
        for id in [WorkloadId::Ft, WorkloadId::Pgbench, WorkloadId::SpecJbb] {
            let w = workload(id, &scale);
            for rec in w.iter(seed).take(500) {
                prop_assert!(
                    rec.addr.0 < w.footprint_bytes,
                    "{:?} escaped: {:#x} >= {:#x}", id, rec.addr.0, w.footprint_bytes
                );
            }
        }
    }

    /// Zipf sampling is deterministic and in-range for arbitrary domains.
    #[test]
    fn zipf_domain_safety(n in 1usize..5000, theta in 0.0f64..2.0, seed in 0u64..50) {
        let z = hetero_mem::base::rng::Zipf::new(n, theta);
        let mut rng = SimRng::new(seed);
        for _ in 0..100 {
            prop_assert!(z.sample(&mut rng) < n);
        }
    }
}
