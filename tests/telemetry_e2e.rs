//! End-to-end telemetry checks: a full-capture run's event stream must
//! reconcile exactly with the controller's own statistics, and the
//! exporters must emit well-formed documents.

use hetero_mem::core::{MigrationDesign, Mode};
use hetero_mem::fault::FaultPlan;
use hetero_mem::simulator::driver::{run, run_with_sink, RunConfig};
use hetero_mem::telemetry::{
    count_kind, epoch_rows, write_chrome_trace, write_epoch_csv, EventKind, Recorder,
    RecorderConfig, TelemetryLevel,
};
use hetero_mem::workloads::WorkloadId;

fn quick_cfg() -> RunConfig {
    RunConfig::quick(WorkloadId::Pgbench, Mode::Dynamic(MigrationDesign::LiveMigration))
}

fn full_recorder() -> Recorder {
    // Generous ring so nothing is dropped: reconciliation below must be
    // exact, not approximate.
    Recorder::new(RecorderConfig { level: TelemetryLevel::Full, capacity: 4 << 20, shards: 4 })
}

#[test]
fn full_capture_reconciles_with_controller_stats() {
    let cfg = quick_cfg();
    let rec = full_recorder();
    let r = run_with_sink(&cfg, rec.clone());
    assert_eq!(rec.dropped(), 0, "ring sized to hold the whole run");

    let counters = rec.counters();
    let swaps = r.swaps.expect("live migration collects swap stats");

    // Swap lifecycle events match the migration engine's counters.
    assert!(swaps.completed > 0, "quick pgbench run must migrate");
    assert_eq!(counters.get(EventKind::SwapStart), swaps.triggered);
    assert_eq!(counters.get(EventKind::SwapComplete), swaps.completed);

    // Every demand access produced exactly one Demand event.
    assert_eq!(counters.get(EventKind::Demand), cfg.accesses);

    // The ring agrees with the counters (nothing dropped).
    let events = rec.events();
    assert_eq!(count_kind(&events, EventKind::SwapStart), swaps.triggered);
    assert_eq!(count_kind(&events, EventKind::SwapComplete), swaps.completed);

    // SwapComplete sub-block totals equal the engine's copy counter.
    let copied: u64 = events
        .iter()
        .filter_map(|e| match *e {
            hetero_mem::telemetry::Event::SwapComplete { sub_blocks, .. } => Some(sub_blocks),
            _ => None,
        })
        .sum();
    assert!(copied <= swaps.sub_blocks_copied);
    assert!(copied > 0);

    // Per-epoch rows sum exactly to the run's flat counters.
    let rows = epoch_rows(&events);
    assert_eq!(rows.len() as u64, r.controller.epochs + 1, "one row per epoch plus the tail");
    let sum = |f: fn(&hetero_mem::telemetry::EpochRow) -> u64| rows.iter().map(f).sum::<u64>();
    assert_eq!(sum(|e| e.demand_on), r.controller.demand_on_lines);
    assert_eq!(sum(|e| e.demand_off), r.controller.demand_off_lines);
    assert_eq!(sum(|e| e.stall_cycles), r.controller.stall_cycles);
    assert_eq!(
        sum(|e| e.migration_lines),
        r.controller.migration_on_lines + r.controller.migration_off_lines
    );
    assert_eq!(sum(|e| e.swaps_completed), swaps.completed);

    // Counter-level latency statistics match the driver's access stats
    // over the full run only in count terms (the driver excludes warm-up),
    // so just check the telemetry mean is sane.
    assert!(counters.demand_latency.mean() > 0.0);
}

#[test]
fn exports_are_well_formed() {
    let cfg = quick_cfg();
    let rec = full_recorder();
    run_with_sink(&cfg, rec.clone());
    let events = rec.events();

    let mut trace = Vec::new();
    write_chrome_trace(&mut trace, &events, 3200).unwrap();
    let text = String::from_utf8(trace).unwrap();
    assert!(text.starts_with('{') && text.ends_with('}'));
    assert_eq!(text.matches('{').count(), text.matches('}').count(), "unbalanced JSON");
    assert_eq!(text.matches('[').count(), text.matches(']').count());
    // Async swap spans pair begin/end.
    assert_eq!(
        text.matches("\"ph\":\"b\"").count(),
        count_kind(&events, EventKind::SwapStart) as usize
    );
    assert_eq!(
        text.matches("\"ph\":\"e\"").count(),
        count_kind(&events, EventKind::SwapComplete) as usize
    );

    let rows = epoch_rows(&events);
    let mut csv = Vec::new();
    write_epoch_csv(&mut csv, &rows).unwrap();
    let text = String::from_utf8(csv).unwrap();
    let mut lines = text.lines();
    assert_eq!(
        lines.next().unwrap(),
        "epoch,cycle,demand_on,demand_off,migration_lines,stall_cycles,swaps_completed,rejected"
    );
    assert_eq!(lines.count(), rows.len());
}

#[test]
fn telemetry_does_not_perturb_the_simulation() {
    let cfg = quick_cfg();
    let plain = run(&cfg);
    let recorded = run_with_sink(&cfg, full_recorder());
    assert_eq!(plain.mean_latency(), recorded.mean_latency());
    assert_eq!(plain.controller, recorded.controller);
    assert_eq!(plain.swaps, recorded.swaps);
}

/// Every fault-pipeline event reconciles exactly against the statistics
/// kept by the DRAM regions and the controller: one FaultInjected per
/// injection site, one TransferRetried/SwapAborted/SlotQuarantined per
/// recovery action.
#[test]
fn fault_events_reconcile_with_stats() {
    let mut cfg = quick_cfg();
    cfg.faults = Some(FaultPlan::parse("stress").expect("stress preset parses"));
    let rec = full_recorder();
    let r = run_with_sink(&cfg, rec.clone());
    assert_eq!(rec.dropped(), 0, "ring sized to hold the whole run");
    assert_eq!(r.access.accesses(), cfg.accesses - cfg.warmup, "faults must not lose accesses");

    let counters = rec.counters();
    let swaps = r.swaps.expect("live migration collects swap stats");
    assert!(swaps.completed > 0, "the stress schedule must still migrate");

    let expected_injections = r.on_region.correctable_errors
        + r.on_region.uncorrectable_errors
        + r.on_region.throttle_events
        + r.off_region.correctable_errors
        + r.off_region.uncorrectable_errors
        + r.off_region.throttle_events
        + r.controller.transfers_dropped
        + r.controller.transfers_timed_out
        + r.controller.row_corruptions;
    assert!(expected_injections > 0, "the stress schedule must inject faults");
    assert_eq!(counters.get(EventKind::FaultInjected), expected_injections);
    assert_eq!(counters.get(EventKind::TransferRetried), r.controller.transfer_retries);
    assert_eq!(counters.get(EventKind::SwapAborted), swaps.aborted);
    assert_eq!(counters.get(EventKind::SlotQuarantined), r.controller.slots_quarantined);

    // Swap lifecycle reconciliation still holds under fire, counting
    // aborted swaps as terminated rather than completed.
    assert_eq!(counters.get(EventKind::SwapStart), swaps.triggered);
    assert_eq!(counters.get(EventKind::SwapComplete), swaps.completed);
    assert_eq!(swaps.triggered, swaps.completed + swaps.aborted);

    // The ring retained every one of them (nothing dropped).
    let events = rec.events();
    assert_eq!(count_kind(&events, EventKind::FaultInjected), expected_injections);
    assert_eq!(count_kind(&events, EventKind::SlotQuarantined), r.controller.slots_quarantined);
}

/// An armed plan whose rates are all zero must be invisible: same
/// statistics, same latency, same region counters as no plan at all.
#[test]
fn zero_rate_fault_plan_is_invisible() {
    let mut cfg = quick_cfg();
    let baseline = run(&cfg);
    // spare_slots: 0 keeps the geometry identical to the unarmed run.
    cfg.faults = Some(FaultPlan { spare_slots: 0, ..FaultPlan::default() });
    let armed = run(&cfg);
    assert_eq!(baseline.controller, armed.controller);
    assert_eq!(baseline.swaps, armed.swaps);
    assert_eq!(baseline.mean_latency(), armed.mean_latency());
    assert_eq!(baseline.on_region, armed.on_region);
    assert_eq!(baseline.off_region, armed.off_region);
    let s = armed.controller;
    assert_eq!(
        (s.transfer_retries, s.transfers_dropped, s.transfers_timed_out, s.slots_quarantined),
        (0, 0, 0, 0)
    );
}

#[test]
fn counters_level_counts_without_storing() {
    let cfg = quick_cfg();
    let rec = Recorder::with_level(TelemetryLevel::Counters);
    run_with_sink(&cfg, rec.clone());
    assert!(rec.counters().total() > 0);
    assert!(rec.events().is_empty(), "counters level must not buffer events");
}
