//! The paper's headline claims, checked end-to-end at reduced scale.

use hetero_mem::base::config::{LatencyConfig, SimScale};
use hetero_mem::core::{hardware_bits, MigrationDesign, Mode};
use hetero_mem::simulator::driver::{run, RunConfig};
use hetero_mem::simulator::ipc::{ipc_for, Fig5Option};
use hetero_mem::simulator::missrate::l3_miss_rates;
use hetero_mem::workloads::WorkloadId;

/// Section I: the reconstructed Table II latencies.
#[test]
fn table2_analytic_latencies() {
    let l = LatencyConfig::default();
    assert_eq!(l.on_package_analytic(), 70);
    assert_eq!(l.off_package_analytic(), 200);
    assert_eq!(l.l4_hit_analytic(), 140);
    assert_eq!(l.l4_miss_analytic(), 70);
}

/// Section III-B: 9,228 bits manage 1 GB at 4 MB granularity.
#[test]
fn hardware_overhead_9228_bits() {
    assert_eq!(hardware_bits(1 << 30, 4 << 20, 4 << 10).total(), 9_228);
}

/// Fig. 4's message: LLC capacity beyond the knee buys almost nothing.
#[test]
fn llc_capacity_flattens() {
    let scale = SimScale { divisor: 256 };
    // Capacities stay below SP.C's 758 MB footprint: within that range the
    // curve must flatten (the drop at capacity ~ footprint is a different,
    // trivial effect).
    let rates =
        l3_miss_rates(WorkloadId::Sp, &[1 << 20, 8 << 20, 64 << 20, 256 << 20], 150_000, &scale, 3);
    let early_gain = rates[0].1 - rates[1].1;
    let late_gain = rates[2].1 - rates[3].1;
    assert!(late_gain <= early_gain.max(0.05) + 1e-9, "{rates:?}");
}

/// Fig. 5's message: for workloads that fit on-package, static mapping
/// equals the ideal and beats the tags-in-DRAM L4.
#[test]
fn static_mapping_equals_ideal_for_small_footprints() {
    let scale = SimScale { divisor: 64 };
    for w in [WorkloadId::Bt, WorkloadId::Ua] {
        let st = ipc_for(w, Fig5Option::StaticMapping, 1 << 30, 50_000, &scale, 3);
        let ideal = ipc_for(w, Fig5Option::AllOnPackage, 1 << 30, 50_000, &scale, 3);
        let l4 = ipc_for(w, Fig5Option::L4Cache, 1 << 30, 50_000, &scale, 3);
        assert!((st.ipc - ideal.ipc).abs() < 1e-9, "{w:?}");
        assert!(st.ipc > l4.ipc, "{w:?}: static must beat the double-access L4");
    }
}

/// Section IV: dynamic migration recovers a large part of the
/// static-vs-ideal gap for an OLTP workload.
#[test]
fn migration_effectiveness_is_substantial() {
    let cfg = RunConfig {
        scale: SimScale { divisor: 64 },
        accesses: 250_000,
        warmup: 50_000,
        page_shift: 16,
        swap_interval: 1_000,
        ..RunConfig::paper(WorkloadId::Pgbench, Mode::Static)
    };
    let st = run(&cfg);
    let dy = run(&RunConfig { mode: Mode::Dynamic(MigrationDesign::LiveMigration), ..cfg });
    let eta = hetero_mem::base::stats::effectiveness(
        st.mean_latency(),
        dy.mean_latency(),
        dy.dram_core_mean(),
    )
    .unwrap();
    assert!(
        eta > 40.0,
        "pgbench effectiveness should be substantial (paper: 92.2%), got {eta:.1}%"
    );
}

/// Section IV-A: at coarse granularity and fast swapping, the halting N
/// design must not beat live migration.
#[test]
fn live_migration_dominates_n_design_at_coarse_grain() {
    let mk = |design| {
        run(&RunConfig {
            scale: SimScale { divisor: 64 },
            accesses: 200_000,
            warmup: 40_000,
            page_shift: 18, // 256 KB pages: big enough for halting to hurt
            swap_interval: 1_000,
            ..RunConfig::paper(WorkloadId::Pgbench, Mode::Dynamic(design))
        })
    };
    let n = mk(MigrationDesign::N);
    let live = mk(MigrationDesign::LiveMigration);
    assert!(
        live.mean_latency() <= n.mean_latency() * 1.02,
        "live {:.1} must not lose to N {:.1}",
        live.mean_latency(),
        n.mean_latency()
    );
    // And the halting design must show stall time.
    assert!(n.controller.stall_cycles > live.controller.stall_cycles);
}

/// Section IV-D: frequent fine-grain migration costs noticeably more
/// memory power than infrequent migration.
#[test]
fn migration_power_scales_with_frequency() {
    let mk = |interval| {
        let r = run(&RunConfig {
            scale: SimScale { divisor: 64 },
            accesses: 200_000,
            warmup: 0,
            page_shift: 14,
            swap_interval: interval,
            ..RunConfig::paper(WorkloadId::Pgbench, Mode::Dynamic(MigrationDesign::LiveMigration))
        });
        hetero_mem::power::normalized_power(&Default::default(), &r.traffic()).unwrap()
    };
    let fast = mk(1_000);
    let slow = mk(50_000);
    assert!(fast >= slow, "fast {fast:.2} vs slow {slow:.2}");
}
