//! Integration tests for the extensions built beyond the paper:
//! adaptive granularity, the stream prefetcher, and trace-file replay.

use hetero_mem::base::addr::PhysAddr;
use hetero_mem::base::config::{MachineConfig, SimScale};
use hetero_mem::cache::{Hierarchy, HierarchyConfig, PrefetchConfig};
use hetero_mem::core::{
    AdaptiveConfig, AdaptiveController, ControllerConfig, HeteroController, MigrationDesign, Mode,
};
use hetero_mem::simulator::driver::RunConfig;
use hetero_mem::workloads::{
    trace_io::{write_binary, BinaryTraceReader},
    workload, WorkloadId,
};

fn controller_base(w: WorkloadId, scale: SimScale) -> ControllerConfig {
    let rc = RunConfig {
        scale,
        page_shift: 16,
        ..RunConfig::paper(w, Mode::Dynamic(MigrationDesign::LiveMigration))
    };
    ControllerConfig {
        machine: MachineConfig { geometry: rc.geometry(), ..Default::default() },
        swap_interval: 1_000,
        os_assisted: Some(false),
        ..ControllerConfig::paper_default(rc.mode)
    }
}

/// The adaptive controller must never end up meaningfully worse than the
/// worst fixed candidate it measured (its trials bound its behaviour).
#[test]
fn adaptive_controller_is_sane_end_to_end() {
    let scale = SimScale { divisor: 64 };
    let w = workload(WorkloadId::SpecJbb, &scale);
    let mut ctrl = AdaptiveController::new(
        AdaptiveConfig {
            candidate_shifts: vec![14, 16, 18],
            trial_accesses: 20_000,
            reexplore_after: None,
        },
        controller_base(WorkloadId::SpecJbb, scale),
    );
    let mut n = 0u64;
    for rec in w.iter(9).take(120_000) {
        ctrl.access(rec.tick, PhysAddr(rec.addr.0), rec.is_write);
        ctrl.advance(rec.tick);
        n += ctrl.drain().len() as u64;
    }
    ctrl.flush();
    n += ctrl.drain().len() as u64;
    assert_eq!(n, 120_000, "all accesses complete across granularity switches");
    assert!(ctrl.committed_shift().is_some());
    assert_eq!(ctrl.trials().len(), 3);
    for t in ctrl.trials() {
        assert!(t.mean_latency.is_finite() && t.mean_latency > 0.0);
        assert!(t.samples > 0);
    }
}

/// Replaying a recorded binary trace through a fresh controller produces
/// the same routing statistics as driving the generator directly (up to
/// the line-granularity address truncation the format applies).
#[test]
fn trace_replay_matches_live_generation() {
    let scale = SimScale { divisor: 256 };
    let w = workload(WorkloadId::Pgbench, &scale);
    let n = 30_000usize;

    let drive = |records: Vec<hetero_mem::workloads::TraceRecord>| {
        let mut ctrl = HeteroController::new(controller_base(WorkloadId::Pgbench, scale));
        for rec in records {
            ctrl.access(rec.tick, rec.addr, rec.is_write);
            ctrl.advance(rec.tick);
        }
        ctrl.flush();
        let done = ctrl.drain();
        let on = done.iter().filter(|c| c.on_package).count();
        (done.len(), on, ctrl.swap_stats().unwrap().completed)
    };

    // Addresses truncated to lines, as the binary format stores them.
    let live: Vec<_> = w
        .iter(3)
        .take(n)
        .map(|mut r| {
            r.addr = PhysAddr(r.addr.0 & !63);
            r
        })
        .collect();

    let mut buf = Vec::new();
    write_binary(&mut buf, live.iter().copied()).unwrap();
    let replayed: Vec<_> =
        BinaryTraceReader::new(&buf[..]).collect::<std::io::Result<_>>().unwrap();
    assert_eq!(live, replayed, "round trip must be lossless at line grain");

    let a = drive(live);
    let b = drive(replayed);
    assert_eq!(a, b, "replay must be bit-identical in behaviour");
}

/// The prefetcher composes with the Fig. 4 experiment: streaming L3 miss
/// rates drop, zipf-dominated ones barely change.
#[test]
fn prefetcher_composes_with_cache_hierarchy() {
    let scale = SimScale { divisor: 256 };
    let run = |id: WorkloadId, pf: Option<PrefetchConfig>| {
        let w = workload(id, &scale);
        let mut h = Hierarchy::new(HierarchyConfig {
            l3: hetero_mem::cache::CacheConfig::new(scale.bytes(8 << 20).max(64 * 16 * 16), 16),
            prefetch: pf,
            ..HierarchyConfig::paper_default()
        });
        for rec in w.iter(5).take(120_000) {
            h.access(rec.cpu as usize % 4, rec.addr, rec.is_write);
        }
        h.l3_stats().miss_rate()
    };
    // FT streams: the prefetcher should absorb a noticeable share.
    let ft_without = run(WorkloadId::Ft, None);
    let ft_with = run(WorkloadId::Ft, Some(PrefetchConfig::default()));
    assert!(
        ft_with < ft_without,
        "prefetching must cut FT's demand miss rate: {ft_with:.3} vs {ft_without:.3}"
    );
}
