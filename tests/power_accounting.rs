//! Power-model accounting, reconciled end-to-end against the
//! controller's own traffic counters.
//!
//! `RunResult::traffic()` maps `ControllerStats` line counters one-to-one
//! onto `hmm_power::Traffic`; these tests pin that mapping and the
//! conservation laws behind Fig. 16: every demand access moves exactly
//! one line, and every migrated sub-block moves each of its lines twice
//! (a read leg and a write leg), however the modes split those legs
//! between the regions.

use hetero_mem::base::config::SimScale;
use hetero_mem::core::Mode;
use hetero_mem::power::{
    baseline_energy, hybrid_energy, normalized_power, EnergyParams, Traffic, LINE_BITS,
};
use hetero_mem::simulator::driver::{run, RunConfig, RunResult};
use hetero_mem::workloads::WorkloadId;

fn quick(mode: &str) -> (RunConfig, RunResult) {
    let cfg = RunConfig {
        accesses: 30_000,
        warmup: 5_000,
        scale: SimScale { divisor: 64 },
        ..RunConfig::quick(WorkloadId::Pgbench, mode.parse::<Mode>().unwrap())
    };
    let result = run(&cfg);
    (cfg, result)
}

#[test]
fn traffic_mirrors_controller_stats_exactly() {
    for mode in ["off", "on", "static", "n", "n-1", "live"] {
        let (_, r) = quick(mode);
        let t = r.traffic();
        assert_eq!(t.demand_on_lines, r.controller.demand_on_lines, "{mode}");
        assert_eq!(t.demand_off_lines, r.controller.demand_off_lines, "{mode}");
        assert_eq!(t.migration_on_lines, r.controller.migration_on_lines, "{mode}");
        assert_eq!(t.migration_off_lines, r.controller.migration_off_lines, "{mode}");
    }
}

/// One line per demand access, warm-up included — no access is counted
/// twice and none disappears, in any mode.
#[test]
fn every_demand_access_moves_exactly_one_line() {
    for mode in ["off", "on", "static", "n", "n-1", "live"] {
        let (cfg, r) = quick(mode);
        assert_eq!(
            r.traffic().demand_lines(),
            cfg.accesses,
            "{mode}: demand lines must equal submitted accesses"
        );
    }
}

/// Migration legs are conserved: each copied sub-block moves its lines
/// twice (one read leg, one write leg). The modes split the legs
/// differently between the regions — a plain swap pairs them one
/// on-package to one off-package, the sacrificial-slot designs route
/// both legs of some copies through one region — but the total is a
/// hard identity.
#[test]
fn migration_legs_match_copied_sub_blocks() {
    let mut saw_migration = false;
    for mode in ["n", "n-1", "live"] {
        let (_, r) = quick(mode);
        let t = r.traffic();
        let swaps = r.swaps.as_ref().unwrap_or_else(|| panic!("{mode} must report swaps"));
        let lines_per_sub_block = (1u64 << r.geometry.sub_block_shift) / 64;
        assert_eq!(
            t.migration_on_lines + t.migration_off_lines,
            2 * swaps.sub_blocks_copied * lines_per_sub_block,
            "{mode}: two legs per copied line"
        );
        saw_migration |= swaps.sub_blocks_copied > 0;
    }
    assert!(saw_migration, "the quick configs must actually migrate something");
}

#[test]
fn non_migrating_modes_report_zero_migration_traffic() {
    for mode in ["off", "on", "static"] {
        let (_, r) = quick(mode);
        let t = r.traffic();
        assert_eq!(t.migration_on_lines, 0, "{mode}");
        assert_eq!(t.migration_off_lines, 0, "{mode}");
        assert!(r.swaps.is_none(), "{mode} must not report swap stats");
    }
}

/// The off-package-only run *is* the normalization baseline, so its
/// normalized power is exactly 1; serving everything on-package beats it
/// by the link-energy ratio.
#[test]
fn normalized_power_endpoints() {
    let params = EnergyParams::default();
    let (_, off) = quick("off");
    let t = off.traffic();
    assert_eq!(t.on_lines(), 0);
    let r = normalized_power(&params, &t).unwrap();
    assert!((r - 1.0).abs() < 1e-12, "off-only run is the baseline: {r}");

    let (_, on) = quick("on");
    let t = on.traffic();
    assert_eq!(t.off_lines(), 0);
    let r = normalized_power(&params, &t).unwrap();
    let expected = (params.core_pj_per_bit + params.on_link_pj_per_bit)
        / (params.core_pj_per_bit + params.off_link_pj_per_bit);
    assert!((r - expected).abs() < 1e-12, "all-on ratio {r} vs {expected}");
}

/// Energy is linear in traffic: doubling every counter doubles every
/// component, and the breakdown reconciles bit-for-bit with the counters.
#[test]
fn energy_is_linear_and_reconciles_with_counters() {
    let params = EnergyParams::default();
    let (_, r) = quick("live");
    let t = r.traffic();
    let e = hybrid_energy(&params, &t);
    assert!(
        (e.on_link_pj - t.on_lines() as f64 * LINE_BITS * params.on_link_pj_per_bit).abs() < 1e-6
    );
    assert!(
        (e.off_link_pj - t.off_lines() as f64 * LINE_BITS * params.off_link_pj_per_bit).abs()
            < 1e-6
    );
    assert!(
        (e.core_pj - (t.on_lines() + t.off_lines()) as f64 * LINE_BITS * params.core_pj_per_bit)
            .abs()
            < 1e-6
    );

    let doubled = Traffic {
        demand_on_lines: 2 * t.demand_on_lines,
        demand_off_lines: 2 * t.demand_off_lines,
        migration_on_lines: 2 * t.migration_on_lines,
        migration_off_lines: 2 * t.migration_off_lines,
    };
    let e2 = hybrid_energy(&params, &doubled);
    assert!((e2.total_pj() - 2.0 * e.total_pj()).abs() < 1e-6);
    // The ratio is scale-invariant, so normalization cancels it out.
    let b = baseline_energy(&params, &doubled);
    assert!((b.total_pj() - 2.0 * baseline_energy(&params, &t).total_pj()).abs() < 1e-6);
    assert!(
        (normalized_power(&params, &t).unwrap() - normalized_power(&params, &doubled).unwrap())
            .abs()
            < 1e-12
    );
}

/// Migration makes the hybrid strictly more expensive than the same
/// demand stream without it, never cheaper — wasted legs cost energy.
#[test]
fn migration_only_adds_energy() {
    let params = EnergyParams::default();
    let (_, r) = quick("live");
    let t = r.traffic();
    assert!(t.migration_on_lines + t.migration_off_lines > 0, "config must migrate");
    let without = Traffic { migration_on_lines: 0, migration_off_lines: 0, ..t };
    assert!(
        hybrid_energy(&params, &t).total_pj() > hybrid_energy(&params, &without).total_pj(),
        "migration legs must cost energy"
    );
    // And the baseline only sees demand, so it is unchanged.
    assert_eq!(
        baseline_energy(&params, &t).total_pj(),
        baseline_energy(&params, &without).total_pj()
    );
}
