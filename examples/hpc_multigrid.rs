//! Scenario: an HPC multigrid solver (NPB MG-like). Sweeps the macro-page
//! granularity to show the paper's point that the best migration
//! granularity is workload-dependent (Section IV-B): MG's contiguous
//! coarse grids favour large pages, which aggregate its streaming fronts
//! and capture whole grids in a few swaps.
//!
//! Run with: `cargo run --release --example hpc_multigrid`

use hetero_mem::base::config::SimScale;
use hetero_mem::core::{MigrationDesign, Mode};
use hetero_mem::simulator::driver::{run, RunConfig};
use hetero_mem::workloads::WorkloadId;

fn main() {
    let scale = SimScale { divisor: 16 };
    println!("MG.C granularity sweep (live migration, 1/16 scale)");
    println!(
        "{:>10} {:>10} {:>14} {:>8} {:>7}",
        "page", "interval", "avg lat (cyc)", "on-pkg", "swaps"
    );
    println!("{}", "-".repeat(55));

    let static_run = run(&RunConfig {
        scale,
        accesses: 500_000,
        warmup: 100_000,
        page_shift: 16,
        ..RunConfig::paper(WorkloadId::Mg, Mode::Static)
    });

    for (shift, interval) in [(14u32, 1_000u64), (16, 1_000), (18, 10_000), (20, 10_000)] {
        let r = run(&RunConfig {
            scale,
            accesses: 500_000,
            warmup: 100_000,
            page_shift: shift,
            swap_interval: interval,
            ..RunConfig::paper(WorkloadId::Mg, Mode::Dynamic(MigrationDesign::LiveMigration))
        });
        println!(
            "{:>9}B {:>10} {:>14.1} {:>7.1}% {:>7}",
            1u64 << shift,
            interval,
            r.mean_latency(),
            r.on_fraction() * 100.0,
            r.swaps.map(|s| s.completed).unwrap_or(0)
        );
    }
    println!(
        "\n(no migration: {:.1} cycles at {:.1}% on-package)",
        static_run.mean_latency(),
        static_run.on_fraction() * 100.0
    );
}
