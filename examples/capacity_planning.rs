//! Scenario: how much on-package memory does a workload actually need?
//! Reproduces the Fig. 15 sensitivity study for one workload: migration
//! keeps the average latency far below the no-migration case even when
//! the on-package capacity shrinks from 512 MB to 128 MB.
//!
//! Run with: `cargo run --release --example capacity_planning`

use hetero_mem::base::config::SimScale;
use hetero_mem::core::{MigrationDesign, Mode};
use hetero_mem::simulator::driver::{run, RunConfig};
use hetero_mem::workloads::WorkloadId;

fn main() {
    let scale = SimScale { divisor: 16 };
    println!("SPECjbb on-package capacity sweep (1/16 scale, 64KB pages)");
    println!("{:>10} {:>18} {:>20}", "capacity", "with migration", "without migration");
    println!("{}", "-".repeat(52));

    for cap in [128u64 << 20, 256 << 20, 512 << 20] {
        let mk = |mode| {
            run(&RunConfig {
                scale,
                accesses: 400_000,
                warmup: 80_000,
                page_shift: 16,
                swap_interval: 1_000,
                on_package_bytes: cap,
                ..RunConfig::paper(WorkloadId::SpecJbb, mode)
            })
        };
        let with = mk(Mode::Dynamic(MigrationDesign::LiveMigration));
        let without = mk(Mode::Static);
        println!(
            "{:>8}MB {:>13.1} cyc {:>15.1} cyc",
            cap >> 20,
            with.mean_latency(),
            without.mean_latency()
        );
    }
    println!(
        "\nAs in the paper's Fig. 15: shrinking the on-package region raises\n\
         latency, but migration keeps it well below the static mapping at\n\
         every capacity."
    );
}
