//! Scenario: the extension the paper calls for in Section IV-B — a memory
//! controller that *adaptively* chooses its migration granularity. The
//! AdaptiveController explores candidate macro-page sizes online, commits
//! to the best-measured one, and charges itself the drain cost of every
//! granularity switch.
//!
//! Run with: `cargo run --release --example adaptive_granularity`

use hetero_mem::base::addr::PhysAddr;
use hetero_mem::base::config::SimScale;
use hetero_mem::core::{
    AdaptiveConfig, AdaptiveController, ControllerConfig, MigrationDesign, Mode,
};
use hetero_mem::simulator::driver::RunConfig;
use hetero_mem::workloads::{workload, WorkloadId};

fn main() {
    let scale = SimScale { divisor: 64 };
    let w = workload(WorkloadId::SpecJbb, &scale);

    // Reuse the simulator's geometry derivation, then hand the controller
    // to the adaptive wrapper.
    let rc = RunConfig {
        scale,
        ..RunConfig::paper(WorkloadId::SpecJbb, Mode::Dynamic(MigrationDesign::LiveMigration))
    };
    let base = ControllerConfig {
        machine: hetero_mem::base::config::MachineConfig {
            geometry: rc.geometry(),
            ..Default::default()
        },
        ..ControllerConfig::paper_default(Mode::Dynamic(MigrationDesign::LiveMigration))
    };

    let mut ctrl = AdaptiveController::new(
        AdaptiveConfig {
            candidate_shifts: vec![14, 16, 18, 20],
            trial_accesses: 40_000,
            reexplore_after: None,
        },
        base,
    );

    println!("adaptive granularity search on SPECjbb (1/64 scale)");
    let mut total = 0u128;
    let mut n = 0u64;
    for rec in w.iter(42).take(300_000) {
        ctrl.access(rec.tick, PhysAddr(rec.addr.0), rec.is_write);
        ctrl.advance(rec.tick);
        for c in ctrl.drain() {
            total += c.breakdown.total() as u128;
            n += 1;
        }
    }
    ctrl.flush();
    for c in ctrl.drain() {
        total += c.breakdown.total() as u128;
        n += 1;
    }

    println!("\ntrials:");
    for t in ctrl.trials() {
        println!(
            "  page {:>6}B -> {:>7.1} cycles avg ({} samples)",
            1u64 << t.page_shift,
            t.mean_latency,
            t.samples
        );
    }
    match ctrl.committed_shift() {
        Some(s) => println!("\ncommitted to {}B macro pages", 1u64 << s),
        None => println!("\nstill exploring"),
    }
    println!(
        "overall: {:.1} cycles avg over {} accesses, {} granularity switches",
        total as f64 / n as f64,
        n,
        ctrl.switches()
    );
}
