//! Five-minute tour of the heterogeneous-main-memory library.
//!
//! Builds the paper's machine (4 GB total, 512 MB on-package, scaled down
//! 64x so this runs in seconds), drives a TPC-B-like workload through the
//! heterogeneity-aware memory controller, and prints what the migration
//! engine achieved.
//!
//! Run with: `cargo run --release --example quickstart`

use hetero_mem::base::config::SimScale;
use hetero_mem::core::{MigrationDesign, Mode};
use hetero_mem::simulator::driver::{run, RunConfig};
use hetero_mem::workloads::WorkloadId;

fn main() {
    let scale = SimScale { divisor: 64 };

    // A run is described by a RunConfig: workload, controller mode, macro
    // page size, monitoring interval, capacities.
    let base = RunConfig {
        scale,
        accesses: 300_000,
        warmup: 60_000,
        page_shift: 16,       // 64 KB macro pages
        swap_interval: 1_000, // consider a swap every 1000 accesses
        ..RunConfig::paper(WorkloadId::Pgbench, Mode::Static)
    };

    println!("heterogeneous main memory quickstart (pgbench, 1/64 scale)");
    println!("----------------------------------------------------------");

    // 1. Static mapping: the lowest addresses live on-package, nothing moves.
    let static_run = run(&base);
    println!(
        "static mapping      : {:>6.1} cycles avg, {:>4.1}% of accesses on-package",
        static_run.mean_latency(),
        static_run.on_fraction() * 100.0
    );

    // 2. The paper's contribution: hottest-coldest migration with live
    //    (sub-block) migration hiding the copy latency.
    let live = run(&RunConfig { mode: Mode::Dynamic(MigrationDesign::LiveMigration), ..base });
    let swaps = live.swaps.expect("dynamic mode tracks swaps");
    println!(
        "live migration      : {:>6.1} cycles avg, {:>4.1}% of accesses on-package",
        live.mean_latency(),
        live.on_fraction() * 100.0
    );
    println!(
        "                      {} swaps completed ({} sub-block copies, cases a/b/c/d = {:?})",
        swaps.completed, swaps.sub_blocks_copied, swaps.case_counts
    );

    // 3. The bounds.
    let ideal = run(&RunConfig { mode: Mode::AllOnPackage, ..base });
    let worst = run(&RunConfig { mode: Mode::AllOffPackage, ..base });
    println!("all on-package ideal: {:>6.1} cycles avg", ideal.mean_latency());
    println!("all off-package     : {:>6.1} cycles avg", worst.mean_latency());

    // The paper's effectiveness metric.
    let eta = hetero_mem::base::stats::effectiveness(
        static_run.mean_latency(),
        live.mean_latency(),
        live.dram_core_mean(),
    )
    .unwrap_or(0.0);
    println!("\nmigration effectiveness (paper's eta): {eta:.1}%");
}
