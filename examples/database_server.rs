//! Scenario: a database server with a working set larger than the
//! on-package memory. Compares the three migration designs the paper
//! proposes — N (halting), N-1 (pending bit), and N-1 with live
//! migration — across swap intervals, reproducing the Fig. 11 story
//! for one workload.
//!
//! Run with: `cargo run --release --example database_server`

use hetero_mem::base::config::SimScale;
use hetero_mem::core::{MigrationDesign, Mode};
use hetero_mem::simulator::driver::{run, RunConfig};
use hetero_mem::workloads::WorkloadId;

fn main() {
    let designs = [
        ("N (halt-and-copy)", MigrationDesign::N),
        ("N-1 (pending bit)", MigrationDesign::NMinusOne),
        ("N-1 + live migration", MigrationDesign::LiveMigration),
    ];
    let intervals = [1_000u64, 10_000];

    println!("pgbench under the three migration designs (1/64 scale, 64KB pages)");
    println!(
        "{:<22} {:>10} {:>14} {:>8} {:>7}",
        "design", "interval", "avg lat (cyc)", "on-pkg", "swaps"
    );
    println!("{}", "-".repeat(66));

    for (name, design) in designs {
        for interval in intervals {
            let r = run(&RunConfig {
                scale: SimScale { divisor: 64 },
                accesses: 250_000,
                warmup: 50_000,
                page_shift: 16,
                swap_interval: interval,
                ..RunConfig::paper(WorkloadId::Pgbench, Mode::Dynamic(design))
            });
            println!(
                "{:<22} {:>10} {:>14.1} {:>7.1}% {:>7}",
                name,
                interval,
                r.mean_latency(),
                r.on_fraction() * 100.0,
                r.swaps.map(|s| s.completed).unwrap_or(0)
            );
        }
    }
    println!(
        "\nThe paper's observations hold: the halting N design pays for its\n\
         stop-the-world copies at fast intervals, while live migration hides\n\
         the copy latency behind execution (Section IV-A)."
    );
}
