//! Scenario: record a synthetic trace to disk and replay it — the exact
//! workflow of the paper's Section IV methodology ("we collected the
//! memory trace from a detailed full-system simulator"), which also lets
//! externally captured traces drive this simulator.
//!
//! Run with: `cargo run --release --example trace_files`

use hetero_mem::base::config::SimScale;
use hetero_mem::core::{MigrationDesign, Mode};
use hetero_mem::simulator::driver::RunConfig;
use hetero_mem::workloads::{
    trace_io::{write_binary, BinaryTraceReader},
    workload, WorkloadId,
};
use std::fs::File;
use std::io::{BufReader, BufWriter};

fn main() -> std::io::Result<()> {
    let scale = SimScale { divisor: 64 };
    let w = workload(WorkloadId::Indexer, &scale);
    let path = std::env::temp_dir().join("indexer.hmt");

    // 1. Record 200k accesses of the indexer workload.
    let n = 200_000usize;
    {
        let mut out = BufWriter::new(File::create(&path)?);
        let written = write_binary(&mut out, w.iter(42).take(n))?;
        println!("recorded {written} accesses to {}", path.display());
    }
    let bytes = std::fs::metadata(&path)?.len();
    println!("file size: {} bytes ({:.1} B/record vs 18 B naive)", bytes, bytes as f64 / n as f64);

    // 2. Replay the trace through the heterogeneity-aware controller.
    let rc = RunConfig {
        scale,
        page_shift: 16,
        swap_interval: 1_000,
        ..RunConfig::paper(WorkloadId::Indexer, Mode::Dynamic(MigrationDesign::LiveMigration))
    };
    let mut ctrl = hetero_mem::core::HeteroController::new(hetero_mem::core::ControllerConfig {
        machine: hetero_mem::base::config::MachineConfig {
            geometry: rc.geometry(),
            ..Default::default()
        },
        swap_interval: rc.swap_interval,
        ..hetero_mem::core::ControllerConfig::paper_default(rc.mode)
    });

    let mut total = 0u128;
    let mut count = 0u64;
    for rec in BinaryTraceReader::new(BufReader::new(File::open(&path)?)) {
        let rec = rec?;
        ctrl.access(rec.tick, rec.addr, rec.is_write);
        ctrl.advance(rec.tick);
        for c in ctrl.drain() {
            total += c.breakdown.total() as u128;
            count += 1;
        }
    }
    ctrl.flush();
    for c in ctrl.drain() {
        total += c.breakdown.total() as u128;
        count += 1;
    }
    println!(
        "replayed {count} accesses: {:.1} cycles average, {} swaps",
        total as f64 / count as f64,
        ctrl.swap_stats().map(|s| s.completed).unwrap_or(0)
    );
    std::fs::remove_file(&path)?;
    Ok(())
}
