//! Cycle-approximate DRAM timing model for the heterogeneous-main-memory
//! study.
//!
//! The paper evaluates its migration designs with a trace-based simulation
//! that "models the detailed DRAM access latency by assuming FR-FCFS
//! scheduling policy and open page access", with an 8-bank structure for the
//! off-package DDR3 DIMMs and a 128-bank structure for the on-package DRAM
//! (Section IV). This crate is that substrate:
//!
//! * [`timing`] — DDR3 timing parameters (tCL/tRCD/tRP/tRAS/tFAW/...) with
//!   Micron DDR3-1333 defaults, converted once into CPU cycles.
//! * [`device`] — device geometry (channels x ranks x banks x rows) and the
//!   machine-address → DRAM-coordinate mapping, with the off-package DIMM
//!   and on-package many-bank profiles used in the paper.
//! * [`bank`] — the per-bank row-buffer state machine (open-page policy).
//! * [`channel`] — one channel: banks, shared command/data buses, the tFAW
//!   rolling window, periodic refresh, and the FR-FCFS transaction queue.
//! * [`region`] — a whole memory region (on-package or off-package): routes
//!   transactions to channels, advances time, collects completions and
//!   region-level statistics.
//! * [`txn`] — transaction and completion types. Demand traffic always wins
//!   arbitration over background (migration) traffic.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bank;
pub mod channel;
pub mod device;
pub mod region;
pub mod timing;
pub mod txn;

pub use device::{DeviceProfile, DramCoord};
pub use region::{DramRegion, RegionStats, WearStats};
pub use timing::{DramTiming, TimingCpu};
pub use txn::{Completion, PagePolicy, SchedPolicy, Transaction};
