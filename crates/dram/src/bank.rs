//! Per-bank row-buffer state machine with an open-page policy.
//!
//! Open-page (the paper's policy): after a column access the row stays open,
//! so a subsequent access to the same row pays only CAS latency, while an
//! access to a different row pays precharge + activate + CAS.

use crate::timing::TimingCpu;
use hmm_sim_base::cycles::Cycle;

/// One DRAM bank.
#[derive(Debug, Clone, Default)]
pub struct Bank {
    /// Currently open row, if any.
    open_row: Option<u64>,
    /// Earliest cycle at which the bank can accept its next command.
    ready_at: Cycle,
    /// When the open row was activated (tRAS: it cannot be precharged
    /// before `activated_at + tRAS`).
    activated_at: Cycle,
    /// Write recovery: the open row cannot be precharged before this
    /// (tWR gates precharge only — same-row accesses after a write are
    /// spaced by the bus, not by tWR).
    write_recovery_until: Cycle,
}

/// Result of servicing one transaction at a bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BankService {
    /// When the first command for this transaction was issued.
    pub cmd_start: Cycle,
    /// When the last data beat finished.
    pub finish: Cycle,
    /// Intrinsic device latency (prep + CAS + data), i.e. what the access
    /// would cost on an idle bank/bus.
    pub core_latency: Cycle,
    /// True when the open row matched.
    pub row_hit: bool,
    /// True when an ACTIVATE was issued (row empty or conflict) — the
    /// channel needs this for its tFAW window accounting.
    pub activated: bool,
    /// True when a *different* row was open and had to be precharged
    /// first (a bank conflict, as opposed to an empty-bank activate).
    pub conflict: bool,
}

impl Bank {
    /// A bank with no open row, ready immediately.
    pub fn new() -> Self {
        Self::default()
    }

    /// Currently open row (for FR-FCFS candidate matching).
    #[inline]
    pub fn open_row(&self) -> Option<u64> {
        self.open_row
    }

    /// Earliest next-command time (exposed for tests and the scheduler's
    /// "first ready" check).
    #[inline]
    pub fn ready_at(&self) -> Cycle {
        self.ready_at
    }

    /// Force-close the open row (refresh does this to a whole rank).
    pub fn close_row(&mut self, at: Cycle) {
        if self.open_row.take().is_some() {
            // A precharge is folded into the refresh cycle; just make sure
            // the bank is not marked ready before the close happens.
            self.ready_at = self.ready_at.max(at);
        }
    }

    /// Service one access of `lines` consecutive cache lines in `row`.
    ///
    /// `earliest` is the lower bound imposed by the caller (transaction
    /// arrival, rank refresh, tFAW); `data_bus_free` is when the channel's
    /// shared data bus becomes available. The bank's state is updated.
    ///
    /// With `auto_precharge` (closed-page policy) the row is closed after
    /// the access: the next access always pays an activate but never a
    /// conflict precharge.
    #[allow(clippy::too_many_arguments)]
    pub fn service_with_policy(
        &mut self,
        earliest: Cycle,
        data_bus_free: Cycle,
        row: u64,
        is_write: bool,
        lines: u32,
        t: &TimingCpu,
        auto_precharge: bool,
    ) -> BankService {
        let svc = self.service(earliest, data_bus_free, row, is_write, lines, t);
        if auto_precharge {
            // The precharge overlaps the data burst; the bank is unusable
            // until tRP after the access, and no row stays open.
            self.open_row = None;
            self.ready_at = self.ready_at.max(svc.finish + t.t_rp);
        }
        svc
    }

    /// Service one access under the open-page policy (see
    /// [`Bank::service_with_policy`]).
    pub fn service(
        &mut self,
        earliest: Cycle,
        data_bus_free: Cycle,
        row: u64,
        is_write: bool,
        lines: u32,
        t: &TimingCpu,
    ) -> BankService {
        let cmd_start = earliest.max(self.ready_at);
        let (prep, row_hit, activated, conflict) = match self.open_row {
            Some(open) if open == row => (0, true, false, false),
            Some(_) => {
                // Conflict: precharge (respecting tRAS and write
                // recovery), then activate.
                let pre_at =
                    cmd_start.max(self.activated_at + t.t_ras).max(self.write_recovery_until);
                let prep = (pre_at - cmd_start) + t.t_rp + t.t_rcd;
                (prep, false, true, true)
            }
            None => (t.t_rcd, false, true, false),
        };
        if activated {
            self.activated_at = cmd_start + prep - t.t_rcd;
        }
        self.open_row = Some(row);

        let cas = if is_write { t.t_cwd } else { t.t_cl };
        let burst = t.t_burst * lines as u64;
        // First data beat cannot start before the shared data bus frees.
        let data_start = (cmd_start + prep + cas).max(data_bus_free);
        let finish = data_start + burst;

        // Next command to this bank: the bank can accept another
        // column command as soon as the data is out (same-row accesses
        // are spaced by the shared bus). Writes additionally arm the
        // write-recovery window that gates the next precharge.
        self.ready_at = finish;
        if is_write {
            self.write_recovery_until = finish + t.t_wr;
        }

        BankService {
            cmd_start,
            finish,
            core_latency: prep + cas + burst,
            row_hit,
            activated,
            conflict,
        }
    }
}

/// Sentinel for "no open row" in [`BankArray`]'s packed row array. Row
/// numbers come from physical-address decode and are bounded by the row
/// count per bank (far below 2^64), so the sentinel can never collide
/// with a real row.
pub const NO_ROW: u64 = u64::MAX;

/// Structure-of-arrays bank state for one channel.
///
/// Semantically identical to a `Vec<Bank>` — the update rules are the
/// same integer arithmetic, verified by the SoA-vs-reference property
/// test — but laid out as four parallel arrays so the FR-FCFS
/// arbitration scan ([`Channel::pick`](crate::channel::Channel)) walks a
/// dense `u64` row array instead of striding over 32-byte structs and
/// unpacking an `Option` per candidate. The open-row array uses
/// [`NO_ROW`] as the empty sentinel, turning the hot-path "is this
/// request a row hit" check into one branchless `u64` compare.
#[derive(Debug, Clone, Default)]
pub struct BankArray {
    /// Open row per bank, [`NO_ROW`] when closed. The only array the
    /// arbitration scan touches.
    open_row: Vec<u64>,
    /// Earliest next-command cycle per bank.
    ready_at: Vec<Cycle>,
    /// Activate time of the open row per bank (tRAS gate).
    activated_at: Vec<Cycle>,
    /// Write-recovery horizon per bank (tWR gates precharge only).
    write_recovery_until: Vec<Cycle>,
}

impl BankArray {
    /// `n` idle banks with no open rows.
    pub fn new(n: usize) -> Self {
        Self {
            open_row: vec![NO_ROW; n],
            ready_at: vec![0; n],
            activated_at: vec![0; n],
            write_recovery_until: vec![0; n],
        }
    }

    /// Number of banks.
    #[inline]
    pub fn len(&self) -> usize {
        self.open_row.len()
    }

    /// True when the array holds no banks.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.open_row.is_empty()
    }

    /// Open row of bank `i` ([`NO_ROW`] when closed) — the raw sentinel
    /// form the arbitration scan compares against.
    #[inline]
    pub fn open_row_raw(&self, i: usize) -> u64 {
        self.open_row[i]
    }

    /// Open row of bank `i` as an `Option` (tests, reporting).
    #[inline]
    pub fn open_row(&self, i: usize) -> Option<u64> {
        match self.open_row[i] {
            NO_ROW => None,
            r => Some(r),
        }
    }

    /// Earliest next-command time of bank `i`.
    #[inline]
    pub fn ready_at(&self, i: usize) -> Cycle {
        self.ready_at[i]
    }

    /// Force-close the open row of bank `i` (same rule as
    /// [`Bank::close_row`]).
    pub fn close_row(&mut self, i: usize, at: Cycle) {
        if self.open_row[i] != NO_ROW {
            self.open_row[i] = NO_ROW;
            self.ready_at[i] = self.ready_at[i].max(at);
        }
    }

    /// Serialize the full bank state (snapshot/resume support).
    pub fn save_state(&self, w: &mut hmm_sim_base::snap::SnapWriter) {
        w.u64s(&self.open_row);
        w.u64s(&self.ready_at);
        w.u64s(&self.activated_at);
        w.u64s(&self.write_recovery_until);
    }

    /// Restore bank state saved by [`BankArray::save_state`]. The bank
    /// count must match the freshly constructed array (it is derived from
    /// the device profile, not the snapshot).
    pub fn load_state(
        &mut self,
        r: &mut hmm_sim_base::snap::SnapReader<'_>,
    ) -> hmm_sim_base::snap::SnapResult<()> {
        let n = self.open_row.len();
        self.open_row = r.u64s()?;
        self.ready_at = r.u64s()?;
        self.activated_at = r.u64s()?;
        self.write_recovery_until = r.u64s()?;
        if self.open_row.len() != n
            || self.ready_at.len() != n
            || self.activated_at.len() != n
            || self.write_recovery_until.len() != n
        {
            return Err(format!("bank count mismatch: expected {n}"));
        }
        Ok(())
    }

    /// Force-close every open row in `lo..hi` (rank refresh). Walks the
    /// dense row array once instead of dispatching per bank.
    pub fn close_rows(&mut self, lo: usize, hi: usize, at: Cycle) {
        for i in lo..hi {
            if self.open_row[i] != NO_ROW {
                self.open_row[i] = NO_ROW;
                self.ready_at[i] = self.ready_at[i].max(at);
            }
        }
    }

    /// Service one access at bank `i` — the exact update rules of
    /// [`Bank::service_with_policy`] on the packed layout.
    #[allow(clippy::too_many_arguments)]
    pub fn service_with_policy(
        &mut self,
        i: usize,
        earliest: Cycle,
        data_bus_free: Cycle,
        row: u64,
        is_write: bool,
        lines: u32,
        t: &TimingCpu,
        auto_precharge: bool,
    ) -> BankService {
        debug_assert_ne!(row, NO_ROW, "row id collides with the empty sentinel");
        let cmd_start = earliest.max(self.ready_at[i]);
        let open = self.open_row[i];
        let (prep, row_hit, activated, conflict) = if open == row {
            (0, true, false, false)
        } else if open != NO_ROW {
            let pre_at =
                cmd_start.max(self.activated_at[i] + t.t_ras).max(self.write_recovery_until[i]);
            ((pre_at - cmd_start) + t.t_rp + t.t_rcd, false, true, true)
        } else {
            (t.t_rcd, false, true, false)
        };
        if activated {
            self.activated_at[i] = cmd_start + prep - t.t_rcd;
        }
        self.open_row[i] = row;

        let cas = if is_write { t.t_cwd } else { t.t_cl };
        let burst = t.t_burst * lines as u64;
        let data_start = (cmd_start + prep + cas).max(data_bus_free);
        let finish = data_start + burst;

        self.ready_at[i] = finish;
        if is_write {
            self.write_recovery_until[i] = finish + t.t_wr;
        }
        if auto_precharge {
            self.open_row[i] = NO_ROW;
            self.ready_at[i] = finish.max(finish + t.t_rp);
        }

        BankService {
            cmd_start,
            finish,
            core_latency: prep + cas + burst,
            row_hit,
            activated,
            conflict,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::DramTiming;
    use hmm_sim_base::cycles::CpuClock;

    fn t() -> TimingCpu {
        DramTiming::ddr3_1333().to_cpu(&CpuClock::default())
    }

    #[test]
    fn empty_bank_pays_activate() {
        let t = t();
        let mut b = Bank::new();
        let s = b.service(100, 0, 7, false, 1, &t);
        assert!(!s.row_hit);
        assert!(s.activated);
        assert_eq!(s.cmd_start, 100);
        assert_eq!(s.core_latency, t.t_rcd + t.t_cl + t.t_burst);
        assert_eq!(s.finish, 100 + s.core_latency);
        assert_eq!(b.open_row(), Some(7));
    }

    #[test]
    fn row_hit_pays_cas_only() {
        let t = t();
        let mut b = Bank::new();
        let first = b.service(0, 0, 7, false, 1, &t);
        let s = b.service(first.finish, 0, 7, false, 1, &t);
        assert!(s.row_hit);
        assert!(!s.activated);
        assert_eq!(s.core_latency, t.t_cl + t.t_burst);
    }

    #[test]
    fn conflict_pays_precharge_and_respects_tras() {
        let t = t();
        let mut b = Bank::new();
        let first = b.service(0, 0, 7, false, 1, &t);
        // Immediately hit a different row: tRAS may delay the precharge.
        let s = b.service(first.finish, 0, 8, false, 1, &t);
        assert!(!s.row_hit);
        assert!(s.activated);
        assert!(s.core_latency >= t.t_rp + t.t_rcd + t.t_cl + t.t_burst);
        assert_eq!(b.open_row(), Some(8));
    }

    #[test]
    fn conflict_long_after_activate_pays_exactly_rp_rcd() {
        let t = t();
        let mut b = Bank::new();
        b.service(0, 0, 7, false, 1, &t);
        // Far past tRAS: no extra wait.
        let s = b.service(10_000, 0, 8, false, 1, &t);
        assert_eq!(s.core_latency, t.t_rp + t.t_rcd + t.t_cl + t.t_burst);
    }

    #[test]
    fn data_bus_contention_delays_finish_not_core() {
        let t = t();
        let mut b = Bank::new();
        let busy_until = 1_000;
        let s = b.service(0, busy_until, 7, false, 1, &t);
        assert_eq!(s.finish, busy_until + t.t_burst);
        // Core latency reflects the intrinsic cost, not the bus wait.
        assert_eq!(s.core_latency, t.t_rcd + t.t_cl + t.t_burst);
    }

    #[test]
    fn write_recovery_gates_precharge_not_same_row_traffic() {
        let t = t();
        let mut b = Bank::new();
        let w = b.service(0, 0, 7, true, 1, &t);
        // Same-row follow-up is bus-limited, not tWR-limited.
        assert_eq!(b.ready_at(), w.finish);
        let hit = b.service(w.finish, 0, 7, true, 1, &t);
        assert!(hit.row_hit);
        assert_eq!(hit.core_latency, t.t_cwd + t.t_burst);
        // A conflicting row must wait out the write recovery before its
        // precharge.
        let last_write_finish = hit.finish;
        let c = b.service(last_write_finish, 0, 9, false, 1, &t);
        assert!(
            c.cmd_start + (c.core_latency - t.t_rcd - t.t_cl - t.t_burst)
                >= last_write_finish + t.t_wr - t.t_rp - t.t_rcd,
            "precharge must respect tWR"
        );
        assert!(c.core_latency >= t.t_rp + t.t_rcd + t.t_cl + t.t_burst);
    }

    #[test]
    fn multi_line_burst_scales_data_time() {
        let t = t();
        let mut b = Bank::new();
        let s1 = {
            let mut b2 = Bank::new();
            b2.service(0, 0, 7, false, 1, &t)
        };
        let s64 = b.service(0, 0, 7, false, 64, &t);
        assert_eq!(s64.finish - s1.finish, t.t_burst * 63);
    }

    #[test]
    fn closed_page_policy_always_pays_activate() {
        let t = t();
        let mut b = Bank::new();
        let first = b.service_with_policy(0, 0, 7, false, 1, &t, true);
        assert!(!first.row_hit);
        assert_eq!(b.open_row(), None, "auto-precharge closes the row");
        // Re-access the same row: no conflict, but an activate again.
        let second = b.service_with_policy(first.finish + t.t_rp, 0, 7, false, 1, &t, true);
        assert!(!second.row_hit);
        assert_eq!(second.core_latency, t.t_rcd + t.t_cl + t.t_burst);
    }

    #[test]
    fn closed_page_beats_open_page_on_conflicts() {
        let t = t();
        // Alternating rows: open-page pays precharge-on-demand (plus tRAS
        // gating), closed-page has the precharge already done.
        let mut open = Bank::new();
        let mut closed = Bank::new();
        let mut open_finish = 0;
        let mut closed_finish = 0;
        for i in 0..10u64 {
            let row = i % 2;
            open_finish = open.service(open_finish, 0, row, false, 1, &t).finish;
            closed_finish =
                closed.service_with_policy(closed_finish, 0, row, false, 1, &t, true).finish;
        }
        assert!(closed_finish <= open_finish, "closed {closed_finish} vs open {open_finish}");
    }

    #[test]
    fn close_row_resets_to_empty() {
        let t = t();
        let mut b = Bank::new();
        b.service(0, 0, 7, false, 1, &t);
        b.close_row(500);
        assert_eq!(b.open_row(), None);
        let s = b.service(1_000, 0, 7, false, 1, &t);
        assert!(!s.row_hit);
    }

    /// Property test: the SoA layout is bit-identical to the per-object
    /// reference under random schedules — every `BankService` field and
    /// every piece of observable state (open row, ready time) matches at
    /// every step, across both page policies, writes, multi-line bursts,
    /// point closes, and ranged (refresh-style) closes.
    #[test]
    fn soa_matches_reference_bank_on_random_schedules() {
        use hmm_sim_base::rng::SimRng;
        let t = t();
        let mut rng = SimRng::new(0xBA50_A501);
        for case in 0..64u64 {
            let n = 1 + rng.below(16) as usize;
            let mut reference: Vec<Bank> = (0..n).map(|_| Bank::new()).collect();
            let mut soa = BankArray::new(n);
            let mut clock: Cycle = 0;
            let mut bus: Cycle = 0;
            for step in 0..200u64 {
                let i = rng.below(n as u64) as usize;
                clock += rng.below(400);
                match rng.below(10) {
                    0 => {
                        reference[i].close_row(clock);
                        soa.close_row(i, clock);
                    }
                    1 => {
                        let lo = rng.below(n as u64) as usize;
                        let hi = lo + rng.below((n - lo) as u64 + 1) as usize;
                        for b in &mut reference[lo..hi] {
                            b.close_row(clock);
                        }
                        soa.close_rows(lo, hi, clock);
                    }
                    _ => {
                        let row = rng.below(8);
                        let is_write = rng.chance(0.3);
                        let lines = 1 + rng.below(4) as u32;
                        let auto = rng.chance(0.25);
                        let a = reference[i]
                            .service_with_policy(clock, bus, row, is_write, lines, &t, auto);
                        let b =
                            soa.service_with_policy(i, clock, bus, row, is_write, lines, &t, auto);
                        assert_eq!(a, b, "case {case} step {step} bank {i}");
                        bus = a.finish;
                    }
                }
                assert_eq!(reference[i].open_row(), soa.open_row(i), "case {case} step {step}");
                assert_eq!(reference[i].ready_at(), soa.ready_at(i), "case {case} step {step}");
            }
        }
    }
}
