//! Device geometry and address mapping.
//!
//! A region is `channels x ranks x banks x rows x columns`. The machine
//! address is decomposed with the open-page-friendly ordering
//!
//! ```text
//!   [ row | rank | bank | column | channel | line offset (6 bits) ]
//! ```
//!
//! i.e. consecutive cache lines interleave across channels, the next bits
//! walk through a row (so a streaming access pattern stays in the open row
//! of every channel), and only then do bank/rank/row change. This is the
//! standard mapping for open-page FR-FCFS controllers.

use crate::timing::DramTiming;
use hmm_sim_base::addr::LINE_SHIFT;

/// Geometry of one memory region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceProfile {
    /// Independent channels (each with its own command/data buses).
    pub channels: u32,
    /// Ranks per channel.
    pub ranks_per_channel: u32,
    /// Banks per rank.
    pub banks_per_rank: u32,
    /// Row-buffer size in bytes (per rank; the unit an ACTIVATE opens).
    pub row_bytes: u64,
    /// Timing parameter set for this device.
    pub timing: DramTiming,
}

impl DeviceProfile {
    /// The paper's off-package memory: four DDR3-1333 channels of
    /// conventional DIMMs, 8 banks per rank ("8-bank structure for the
    /// off-package DRAM").
    pub fn off_package_ddr3() -> Self {
        Self {
            channels: 4,
            ranks_per_channel: 2,
            banks_per_rank: 8,
            row_bytes: 8 * 1024,
            timing: DramTiming::ddr3_1333(),
        }
    }

    /// The paper's on-package memory: 8 DRAM dies on the silicon interposer
    /// (plus one for ECC), with a many-bank structure — "128-bank structure
    /// for the on-package DRAM" — and fast on-package I/O. We model each die
    /// as a channel with 16 banks: 8 x 16 = 128 banks total.
    pub fn on_package() -> Self {
        Self {
            channels: 8,
            ranks_per_channel: 1,
            banks_per_rank: 16,
            row_bytes: 8 * 1024,
            timing: DramTiming::on_package(),
        }
    }

    /// Off-package PCM: same DIMM-style geometry as the DDR3 channels
    /// (the scheme swaps media, not topology) but with the asymmetric
    /// [`DramTiming::pcm`] parameter set and no refresh.
    pub fn pcm() -> Self {
        Self {
            channels: 4,
            ranks_per_channel: 2,
            banks_per_rank: 8,
            row_bytes: 8 * 1024,
            timing: DramTiming::pcm(),
        }
    }

    /// Total banks across the region (the paper quotes this number).
    pub fn total_banks(&self) -> u32 {
        self.channels * self.ranks_per_channel * self.banks_per_rank
    }

    /// Cache lines per row buffer.
    pub fn lines_per_row(&self) -> u64 {
        self.row_bytes >> LINE_SHIFT
    }

    /// Validate the profile.
    pub fn validate(&self) -> Result<(), String> {
        if self.channels == 0 || self.ranks_per_channel == 0 || self.banks_per_rank == 0 {
            return Err("geometry dimensions must be non-zero".into());
        }
        if !self.channels.is_power_of_two()
            || !self.ranks_per_channel.is_power_of_two()
            || !self.banks_per_rank.is_power_of_two()
        {
            return Err("geometry dimensions must be powers of two (address decode)".into());
        }
        if self.row_bytes < 64 || !self.row_bytes.is_power_of_two() {
            return Err("row size must be a power of two >= one cache line".into());
        }
        self.timing.validate()
    }

    /// Decompose a machine address (byte address within this region) into
    /// DRAM coordinates.
    #[inline]
    pub fn decode(&self, addr: u64) -> DramCoord {
        let line = addr >> LINE_SHIFT;
        let ch_bits = self.channels.trailing_zeros();
        let col_bits = (self.lines_per_row()).trailing_zeros();
        let bank_bits = self.banks_per_rank.trailing_zeros();
        let rank_bits = self.ranks_per_channel.trailing_zeros();

        let mut rest = line;
        let channel = (rest & (self.channels as u64 - 1)) as u32;
        rest >>= ch_bits;
        let column = (rest & (self.lines_per_row() - 1)) as u32;
        rest >>= col_bits;
        let bank = (rest & (self.banks_per_rank as u64 - 1)) as u32;
        rest >>= bank_bits;
        let rank = (rest & (self.ranks_per_channel as u64 - 1)) as u32;
        rest >>= rank_bits;
        let row = rest;
        // Permutation-based bank interleaving (row bits XORed into the
        // bank index): consecutive rows of one region spread over all
        // banks, so a hot block cannot concentrate on a single bank.
        // Standard in real controllers (Zhang et al., MICRO'00).
        let bank = bank ^ (row as u32 & (self.banks_per_rank - 1));
        DramCoord { channel, rank, bank, row, column }
    }
}

/// Coordinates of one cache line inside a region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DramCoord {
    /// Channel index.
    pub channel: u32,
    /// Rank within the channel.
    pub rank: u32,
    /// Bank within the rank.
    pub bank: u32,
    /// Row within the bank.
    pub row: u64,
    /// Column (cache-line index within the row).
    pub column: u32,
}

impl DramCoord {
    /// Flat bank index within the channel (rank-major).
    #[inline]
    pub fn bank_in_channel(&self, profile: &DeviceProfile) -> usize {
        (self.rank * profile.banks_per_rank + self.bank) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_bank_counts() {
        assert_eq!(DeviceProfile::off_package_ddr3().total_banks(), 4 * 2 * 8);
        assert_eq!(DeviceProfile::on_package().total_banks(), 128);
    }

    #[test]
    fn profiles_validate() {
        DeviceProfile::off_package_ddr3().validate().unwrap();
        DeviceProfile::on_package().validate().unwrap();
        DeviceProfile::pcm().validate().unwrap();
    }

    #[test]
    fn consecutive_lines_interleave_channels() {
        let p = DeviceProfile::off_package_ddr3();
        let a = p.decode(0);
        let b = p.decode(64);
        let c = p.decode(64 * 4);
        assert_eq!(a.channel, 0);
        assert_eq!(b.channel, 1);
        assert_eq!(c.channel, 0); // wrapped around 4 channels
                                  // Same row once the channel wraps.
        assert_eq!(a.row, c.row);
        assert_eq!(a.bank, c.bank);
        assert_eq!(c.column, a.column + 1);
    }

    #[test]
    fn rows_change_only_beyond_bank_spread() {
        let p = DeviceProfile::off_package_ddr3();
        // One row holds lines_per_row lines per channel; with 4 channels,
        // 8 banks, 2 ranks the row bit starts at
        // 6 + 2(ch) + 7(col) + 3(bank) + 1(rank) = bit 19.
        let stride = 1u64 << 19;
        let a = p.decode(0);
        let b = p.decode(stride);
        assert_eq!(a.channel, b.channel);
        assert_eq!(a.rank, b.rank);
        assert_eq!(b.row, a.row + 1);
        // The XOR interleave moves consecutive rows to different banks.
        assert_eq!(b.bank, a.bank ^ 1);
    }

    #[test]
    fn xor_interleave_spreads_a_hot_block_over_banks() {
        let p = DeviceProfile::off_package_ddr3();
        // 16 consecutive rows on one channel land in many distinct banks.
        let mut banks = std::collections::HashSet::new();
        for r in 0..16u64 {
            let c = p.decode(r << 19);
            banks.insert((c.rank, c.bank));
        }
        assert!(banks.len() >= 8, "row-XOR must spread rows: {}", banks.len());
    }

    #[test]
    fn decode_is_injective_over_a_window() {
        let p = DeviceProfile::on_package();
        let mut seen = std::collections::HashSet::new();
        for line in 0..4096u64 {
            let c = p.decode(line << LINE_SHIFT);
            assert!(seen.insert((c.channel, c.rank, c.bank, c.row, c.column)));
        }
    }

    #[test]
    fn bank_in_channel_flattening() {
        let p = DeviceProfile::off_package_ddr3();
        let c = DramCoord { channel: 0, rank: 1, bank: 3, row: 0, column: 0 };
        assert_eq!(c.bank_in_channel(&p), 8 + 3);
    }

    #[test]
    fn validation_rejects_non_power_of_two() {
        let mut p = DeviceProfile::off_package_ddr3();
        p.channels = 3;
        assert!(p.validate().is_err());
        let mut p = DeviceProfile::off_package_ddr3();
        p.row_bytes = 100;
        assert!(p.validate().is_err());
    }
}
