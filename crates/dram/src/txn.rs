//! Transactions and completions exchanged with a [`crate::region::DramRegion`].

use hmm_fault::MemFault;
use hmm_sim_base::cycles::Cycle;
use hmm_sim_base::stats::LatencyBreakdown;

/// One memory transaction presented to a region.
///
/// Demand accesses move a single cache line (`lines == 1`). Migration
/// traffic moves whole sub-blocks (e.g. 64 lines for a 4 KB sub-block) as a
/// single background transaction; modelling the copy at sub-block rather than
/// line granularity keeps event counts tractable while charging the buses the
/// same number of data cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transaction {
    /// Caller-assigned token, echoed back in the [`Completion`].
    pub id: u64,
    /// Arrival time at the controller's region queue.
    pub arrival: Cycle,
    /// Byte address within the region.
    pub addr: u64,
    /// Write (true) or read (false).
    pub is_write: bool,
    /// Number of consecutive cache lines transferred.
    pub lines: u32,
    /// Background (migration) traffic loses arbitration to demand traffic.
    pub background: bool,
}

impl Transaction {
    /// A single-line demand access.
    pub fn demand(id: u64, arrival: Cycle, addr: u64, is_write: bool) -> Self {
        Self { id, arrival, addr, is_write, lines: 1, background: false }
    }

    /// A multi-line background (migration) transfer.
    pub fn migration(id: u64, arrival: Cycle, addr: u64, is_write: bool, lines: u32) -> Self {
        debug_assert!(lines >= 1);
        Self { id, arrival, addr, is_write, lines, background: true }
    }
}

/// The serviced result of a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// The token from the originating [`Transaction`].
    pub id: u64,
    /// Cycle at which the last data beat left the device.
    pub finish: Cycle,
    /// Where the cycles went (DRAM core vs. queuing; the controller and
    /// interconnect components are added by the memory-controller layer).
    pub breakdown: LatencyBreakdown,
    /// Whether the access hit the open row.
    pub row_hit: bool,
    /// ECC outcome of the serviced data, if the channel's fault plan
    /// injected anything (always `None` on fault-free runs and writes).
    pub fault: Option<MemFault>,
}

/// Transaction-scheduling policy of a region's channel queues.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedPolicy {
    /// First-Ready FCFS (Rixner et al.): oldest row-hit first, then oldest.
    /// The paper's policy.
    #[default]
    FrFcfs,
    /// Strict arrival order; the ablation baseline.
    Fcfs,
}

/// Row-buffer management policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PagePolicy {
    /// Rows stay open after an access (the paper's assumption: "open page
    /// access"). Best for streams with row locality.
    #[default]
    Open,
    /// Auto-precharge after every access; best for random traffic, used
    /// here as an ablation.
    Closed,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_class() {
        let d = Transaction::demand(1, 10, 0x40, false);
        assert!(!d.background);
        assert_eq!(d.lines, 1);
        let m = Transaction::migration(2, 10, 0x80, true, 64);
        assert!(m.background);
        assert_eq!(m.lines, 64);
    }

    #[test]
    fn default_policy_is_the_papers() {
        assert_eq!(SchedPolicy::default(), SchedPolicy::FrFcfs);
    }
}
