//! A whole memory region — the on-package DRAM or the off-package DIMMs —
//! composed of independent channels.
//!
//! The region is the unit the heterogeneity-aware memory controller talks
//! to: Fig. 3 of the paper shows separate transaction scheduling for the
//! on-package and off-package regions, "since the transaction-layer
//! optimization for each region is independent of that for the other
//! region". Each [`DramRegion`] therefore owns its own queues and schedules
//! independently.

use crate::channel::{Channel, ChannelStats};
use crate::device::DeviceProfile;
use crate::txn::{Completion, PagePolicy, SchedPolicy, Transaction};
use hmm_sim_base::cycles::{CpuClock, Cycle};
use hmm_sim_base::{par_map, worker_threads};
use hmm_telemetry::{NullSink, RegionKind, TelemetrySink};

/// Queued-transaction floor before [`DramRegion::advance_par`] /
/// [`DramRegion::flush_par`] fan the busy channels out across `par_map`
/// workers. Below this the scoped-thread spawn costs more than the
/// servicing; at or above it each busy channel has enough work to fill a
/// worker. (On a single-core host the gate short-circuits on
/// [`worker_threads`] and the fan-out path is never taken at all.)
const PAR_SERVICE_MIN_QUEUED: usize = 512;

/// Aggregated region statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegionStats {
    /// Transactions serviced.
    pub serviced: u64,
    /// Open-row hits.
    pub row_hits: u64,
    /// Row misses (activate needed).
    pub row_misses: u64,
    /// Sum of data-bus busy cycles over all channels.
    pub data_bus_busy: Cycle,
    /// Reads whose single-bit ECC error was corrected in-line.
    pub correctable_errors: u64,
    /// Reads that returned detected-but-uncorrectable data.
    pub uncorrectable_errors: u64,
    /// Transactions delayed by throttle windows.
    pub throttle_events: u64,
    /// Total issue delay charged by throttle windows, in cycles.
    pub throttle_delay_cycles: u64,
}

impl RegionStats {
    /// Row-hit rate in `[0, 1]`; 0 when idle.
    pub fn row_hit_rate(&self) -> f64 {
        if self.serviced == 0 {
            0.0
        } else {
            self.row_hits as f64 / self.serviced as f64
        }
    }
}

/// Endurance summary for a write-limited region (PCM), aggregated from
/// the per-bank write counters every [`Channel`] maintains.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WearStats {
    /// Total cache lines written across the region.
    pub write_lines: u64,
    /// Lines written to the most-written bank (the wear-leveling hot spot).
    pub max_bank_writes: u64,
    /// Number of banks in the region.
    pub banks: u64,
}

impl WearStats {
    /// Wear imbalance: hottest bank's writes over the perfectly-leveled
    /// share (`write_lines / banks`). 1.0 is ideal leveling; 0 when idle.
    pub fn imbalance(&self) -> f64 {
        if self.write_lines == 0 || self.banks == 0 {
            0.0
        } else {
            self.max_bank_writes as f64 / (self.write_lines as f64 / self.banks as f64)
        }
    }
}

/// One memory region with its channels and scheduler.
#[derive(Debug)]
pub struct DramRegion<S: TelemetrySink = NullSink> {
    profile: DeviceProfile,
    channels: Vec<Channel<S>>,
    policy: SchedPolicy,
    completions: Vec<Completion>,
    /// Transactions enqueued but not yet completed, across all channels.
    /// Lets `advance` skip the whole channel sweep when the region is idle
    /// (the common case for the quiet region of a mostly-one-sided phase).
    queued: usize,
    /// Per-channel share of `queued`, kept as a dense array so the
    /// `advance` sweep skips idle channels off one cache line instead of
    /// dereferencing every `Channel` to discover it has no work. Skipped
    /// channels produce no completions, so the completion order (channel
    /// index order) is unchanged.
    chan_queued: Vec<u32>,
}

impl DramRegion {
    /// Build a region with the paper's open-page policy. Panics on an
    /// invalid profile (configuration error, not a runtime condition).
    pub fn new(profile: DeviceProfile, clock: &CpuClock, policy: SchedPolicy) -> Self {
        Self::with_page_policy(profile, clock, policy, PagePolicy::Open)
    }

    /// Build a region with an explicit row-buffer policy (the closed-page
    /// variant exists for the ablation benches).
    pub fn with_page_policy(
        profile: DeviceProfile,
        clock: &CpuClock,
        policy: SchedPolicy,
        page_policy: PagePolicy,
    ) -> Self {
        Self::with_sink(profile, clock, policy, page_policy, NullSink, RegionKind::OffPackage)
    }
}

impl<S: TelemetrySink + Clone> DramRegion<S> {
    /// Build a region whose channels report DRAM events into `sink`,
    /// labelled with `kind` so exporters can tell the regions apart.
    pub fn with_sink(
        profile: DeviceProfile,
        clock: &CpuClock,
        policy: SchedPolicy,
        page_policy: PagePolicy,
        sink: S,
        kind: RegionKind,
    ) -> Self {
        profile.validate().expect("invalid device profile");
        let timing = profile.timing.to_cpu(clock);
        let channels = (0..profile.channels)
            .map(|i| Channel::with_sink(profile, timing, page_policy, sink.clone(), kind, i))
            .collect();
        let chan_queued = vec![0; profile.channels as usize];
        Self { profile, channels, policy, completions: Vec::new(), queued: 0, chan_queued }
    }
}

impl<S: TelemetrySink> DramRegion<S> {
    /// The device profile this region models.
    pub fn profile(&self) -> &DeviceProfile {
        &self.profile
    }

    /// Scheduling policy in use.
    pub fn policy(&self) -> SchedPolicy {
        self.policy
    }

    /// Submit a transaction. `txn.addr` is a byte address local to this
    /// region (the memory controller subtracts the region base).
    pub fn enqueue(&mut self, txn: Transaction) {
        let coord = self.profile.decode(txn.addr);
        self.queued += 1;
        self.chan_queued[coord.channel as usize] += 1;
        self.channels[coord.channel as usize].enqueue(txn, coord);
    }

    /// Advance simulated time: service everything that has arrived by
    /// `now` on every channel that has work queued.
    pub fn advance(&mut self, now: Cycle) {
        if self.queued == 0 {
            return;
        }
        for (i, ch) in self.channels.iter_mut().enumerate() {
            if self.chan_queued[i] == 0 {
                continue;
            }
            let before = self.completions.len();
            ch.advance(now, self.policy, &mut self.completions);
            let done = self.completions.len() - before;
            self.chan_queued[i] -= done as u32;
            self.queued -= done;
        }
    }

    /// Service all remaining transactions (end of trace).
    pub fn flush(&mut self) {
        for (i, ch) in self.channels.iter_mut().enumerate() {
            if self.chan_queued[i] == 0 {
                continue;
            }
            let before = self.completions.len();
            ch.flush(self.policy, &mut self.completions);
            let done = self.completions.len() - before;
            self.chan_queued[i] -= done as u32;
            self.queued -= done;
        }
    }

    /// Channels with at least one queued transaction.
    fn busy_channels(&self) -> usize {
        self.chan_queued.iter().filter(|&&q| q != 0).count()
    }

    /// Take all completions accumulated since the last call.
    pub fn drain_completions(&mut self) -> Vec<Completion> {
        std::mem::take(&mut self.completions)
    }

    /// Append all accumulated completions to `out`, keeping this region's
    /// internal buffer (and its capacity) for reuse — the allocation-free
    /// variant of [`DramRegion::drain_completions`] for per-access polling.
    pub fn drain_completions_into(&mut self, out: &mut Vec<Completion>) {
        out.append(&mut self.completions);
    }

    /// Transactions still waiting across all channels.
    pub fn pending(&self) -> usize {
        self.channels.iter().map(|c| c.pending()).sum()
    }

    /// Aggregate statistics over all channels.
    pub fn stats(&self) -> RegionStats {
        let mut s = RegionStats::default();
        for ch in &self.channels {
            let cs: ChannelStats = ch.stats();
            s.serviced += cs.serviced;
            s.row_hits += cs.row_hits;
            s.row_misses += cs.row_misses;
            s.data_bus_busy += cs.data_bus_busy;
            s.correctable_errors += cs.correctable_errors;
            s.uncorrectable_errors += cs.uncorrectable_errors;
            s.throttle_events += cs.throttle_events;
            s.throttle_delay_cycles += cs.throttle_delay_cycles;
        }
        s
    }

    /// Aggregate the per-bank endurance counters over all channels.
    pub fn wear(&self) -> WearStats {
        let mut s = WearStats::default();
        for ch in &self.channels {
            for &w in ch.writes_per_bank() {
                s.write_lines += w;
                s.max_bank_writes = s.max_bank_writes.max(w);
                s.banks += 1;
            }
        }
        s
    }

    /// Arm a fault plan on every channel of this region.
    pub fn set_faults(&mut self, plan: hmm_fault::FaultPlan) {
        for ch in &mut self.channels {
            ch.set_faults(plan);
        }
    }

    /// Serialize the region's dynamic state (snapshot/resume support):
    /// every channel plus any completions accumulated but not yet drained.
    /// The `queued`/`chan_queued` accelerators are recomputed on load.
    pub fn save_state(&self, w: &mut hmm_sim_base::snap::SnapWriter) {
        w.usize(self.channels.len());
        for ch in &self.channels {
            ch.save_state(w);
        }
        w.usize(self.completions.len());
        for c in &self.completions {
            w.u64(c.id);
            w.u64(c.finish);
            w.u64(c.breakdown.dram_core);
            w.u64(c.breakdown.queuing);
            w.u64(c.breakdown.controller);
            w.u64(c.breakdown.interconnect);
            w.bool(c.row_hit);
            match c.fault {
                None => w.u8(0),
                Some(hmm_fault::MemFault::Corrected) => w.u8(1),
                Some(hmm_fault::MemFault::Uncorrectable(
                    hmm_fault::UncorrectableCause::DoubleBit,
                )) => w.u8(2),
                Some(hmm_fault::MemFault::Uncorrectable(
                    hmm_fault::UncorrectableCause::StuckBank,
                )) => w.u8(3),
            }
        }
    }

    /// Restore region state saved by [`DramRegion::save_state`] onto a
    /// freshly constructed region for the same profile.
    pub fn load_state(
        &mut self,
        r: &mut hmm_sim_base::snap::SnapReader<'_>,
    ) -> hmm_sim_base::snap::SnapResult<()> {
        let n = r.usize()?;
        if n != self.channels.len() {
            return Err(format!("channel count mismatch: expected {}", self.channels.len()));
        }
        for ch in &mut self.channels {
            ch.load_state(r)?;
        }
        let n = r.seq_len(1)?;
        self.completions.clear();
        for _ in 0..n {
            let id = r.u64()?;
            let finish = r.u64()?;
            let breakdown = hmm_sim_base::stats::LatencyBreakdown {
                dram_core: r.u64()?,
                queuing: r.u64()?,
                controller: r.u64()?,
                interconnect: r.u64()?,
            };
            let row_hit = r.bool()?;
            let fault = match r.u8()? {
                0 => None,
                1 => Some(hmm_fault::MemFault::Corrected),
                2 => Some(hmm_fault::MemFault::Uncorrectable(
                    hmm_fault::UncorrectableCause::DoubleBit,
                )),
                3 => Some(hmm_fault::MemFault::Uncorrectable(
                    hmm_fault::UncorrectableCause::StuckBank,
                )),
                t => return Err(format!("invalid fault tag {t}")),
            };
            self.completions.push(Completion { id, finish, breakdown, row_hit, fault });
        }
        for (i, ch) in self.channels.iter().enumerate() {
            self.chan_queued[i] = ch.pending() as u32;
        }
        self.queued = self.chan_queued.iter().map(|&q| q as usize).sum();
        Ok(())
    }
}

impl<S: TelemetrySink + Send> DramRegion<S> {
    /// [`DramRegion::advance`], fanning busy channels out across `par_map`
    /// workers when the backlog is deep enough to pay for them.
    ///
    /// Bit-identical to the sequential sweep by construction: channels
    /// share no state (each owns its banks, ranks, data bus, queue, and
    /// fault plan), and per-channel completions are appended in channel
    /// index order — exactly the order the sequential sweep produces.
    pub fn advance_par(&mut self, now: Cycle) {
        if worker_threads() <= 1 || self.queued < PAR_SERVICE_MIN_QUEUED || self.busy_channels() < 2
        {
            self.advance(now);
        } else {
            self.service_par(Some(now));
        }
    }

    /// [`DramRegion::flush`] with the same channel fan-out as
    /// [`DramRegion::advance_par`].
    pub fn flush_par(&mut self) {
        if worker_threads() <= 1 || self.queued < PAR_SERVICE_MIN_QUEUED || self.busy_channels() < 2
        {
            self.flush();
        } else {
            self.service_par(None);
        }
    }

    /// Service every busy channel on `par_map` workers; `now` selects
    /// between an advance-to-`now` and a full flush.
    fn service_par(&mut self, now: Option<Cycle>) {
        let policy = self.policy;
        let chan_queued = &self.chan_queued;
        let busy: Vec<(usize, &mut Channel<S>)> =
            self.channels.iter_mut().enumerate().filter(|(i, _)| chan_queued[*i] != 0).collect();
        let done: Vec<(usize, Vec<Completion>)> = par_map(busy, |(i, ch)| {
            let mut out = Vec::new();
            match now {
                Some(t) => ch.advance(t, policy, &mut out),
                None => ch.flush(policy, &mut out),
            }
            (i, out)
        });
        for (i, mut out) in done {
            self.chan_queued[i] -= out.len() as u32;
            self.queued -= out.len();
            self.completions.append(&mut out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(profile: DeviceProfile) -> DramRegion {
        DramRegion::new(profile, &CpuClock::default(), SchedPolicy::FrFcfs)
    }

    #[test]
    fn routes_by_address_decode() {
        let mut r = mk(DeviceProfile::off_package_ddr3());
        // Lines 0..8 hit channels 0..3 twice (line interleave).
        for i in 0..8u64 {
            r.enqueue(Transaction::demand(i, 0, i * 64, false));
        }
        r.advance(1_000_000);
        let done = r.drain_completions();
        assert_eq!(done.len(), 8);
        assert_eq!(r.pending(), 0);
    }

    #[test]
    fn streaming_pattern_gets_high_row_hit_rate() {
        let mut r = mk(DeviceProfile::off_package_ddr3());
        // Sequential sweep over 512 lines arriving slowly: open-page policy
        // should turn almost all of it into row hits.
        for i in 0..512u64 {
            r.enqueue(Transaction::demand(i, i * 100, i * 64, false));
        }
        r.advance(u64::MAX / 2);
        r.flush();
        let s = r.stats();
        assert_eq!(s.serviced, 512);
        assert!(s.row_hit_rate() > 0.9, "hit rate {}", s.row_hit_rate());
    }

    #[test]
    fn random_pattern_gets_low_row_hit_rate() {
        let mut r = mk(DeviceProfile::off_package_ddr3());
        let mut rng = hmm_sim_base::SimRng::new(1);
        for i in 0..512u64 {
            let addr = rng.below(1 << 30) & !63;
            r.enqueue(Transaction::demand(i, i * 100, addr, false));
        }
        r.flush();
        let s = r.stats();
        assert!(s.row_hit_rate() < 0.3, "hit rate {}", s.row_hit_rate());
    }

    /// The claim the paper hangs the whole design on: under the same load,
    /// the many-bank on-package device has far lower queuing delay than the
    /// 8-bank DIMMs ("17x cycles vs. under 3x cycles" in Section II).
    #[test]
    fn many_banks_collapse_queuing_delay() {
        let mut rng = hmm_sim_base::SimRng::new(7);
        let addrs: Vec<u64> = (0..2_000).map(|_| rng.below(256 << 20) & !63).collect();

        let run = |profile: DeviceProfile| -> f64 {
            let mut r = mk(profile);
            for (i, &a) in addrs.iter().enumerate() {
                // A demanding arrival rate: one access every 20 cycles.
                r.enqueue(Transaction::demand(i as u64, i as u64 * 20, a, false));
            }
            r.flush();
            let done = r.drain_completions();
            let total: u64 = done.iter().map(|c| c.breakdown.queuing).sum();
            total as f64 / done.len() as f64
        };

        let off = run(DeviceProfile::off_package_ddr3());
        let on = run(DeviceProfile::on_package());
        assert!(
            on < off / 3.0,
            "on-package queuing ({on:.1}) should be far below off-package ({off:.1})"
        );
    }

    #[test]
    fn migration_traffic_does_not_starve_demand() {
        let mut r = mk(DeviceProfile::off_package_ddr3());
        // A page worth of background copy traffic...
        for i in 0..64u64 {
            r.enqueue(Transaction::migration(1000 + i, 0, i * 4096, false, 64));
        }
        // ...and one demand access arriving a little later.
        r.enqueue(Transaction::demand(1, 50, 64, false));
        r.flush();
        let done = r.drain_completions();
        let demand = done.iter().find(|c| c.id == 1).unwrap();
        // The demand access may wait for an in-flight burst but not for the
        // whole copy stream.
        let worst = done.iter().map(|c| c.finish).max().unwrap();
        assert!(demand.finish < worst / 2, "demand {} vs worst {}", demand.finish, worst);
    }

    #[test]
    fn closed_page_policy_kills_streaming_hit_rate() {
        let mut open = mk(DeviceProfile::off_package_ddr3());
        let mut closed = DramRegion::with_page_policy(
            DeviceProfile::off_package_ddr3(),
            &CpuClock::default(),
            SchedPolicy::FrFcfs,
            crate::txn::PagePolicy::Closed,
        );
        for r in [&mut open, &mut closed] {
            for i in 0..256u64 {
                r.enqueue(Transaction::demand(i, i * 100, i * 64, false));
            }
            r.flush();
        }
        assert!(open.stats().row_hit_rate() > 0.9);
        assert_eq!(closed.stats().row_hits, 0, "closed-page never leaves a row open");
    }

    /// The tentpole guarantee behind `advance_par`/`flush_par`: fanning
    /// channels across workers changes nothing observable — completions
    /// (ids, finish cycles, latency breakdowns, fault annotations) and
    /// aggregate stats are bit-identical to the sequential sweep.
    #[test]
    fn parallel_service_matches_sequential_exactly() {
        let mut rng = hmm_sim_base::SimRng::new(99);
        let txns: Vec<Transaction> = (0..2_000)
            .map(|i| Transaction::demand(i, i * 17, rng.below(1 << 30) & !63, rng.chance(0.3)))
            .collect();

        // End-of-trace flush with a deep backlog (the path that engages
        // the fan-out when worker threads exist).
        let mut seq = mk(DeviceProfile::off_package_ddr3());
        let mut par = mk(DeviceProfile::off_package_ddr3());
        for t in &txns {
            seq.enqueue(*t);
            par.enqueue(*t);
        }
        seq.flush();
        par.flush_par();
        assert_eq!(seq.drain_completions(), par.drain_completions());
        assert_eq!(seq.stats(), par.stats());

        // Interleaved timed advances, mirroring the controller's
        // per-access cadence.
        let mut seq = mk(DeviceProfile::off_package_ddr3());
        let mut par = mk(DeviceProfile::off_package_ddr3());
        for (k, t) in txns.iter().enumerate() {
            seq.enqueue(*t);
            par.enqueue(*t);
            if k % 64 == 63 {
                let now = t.arrival + 500;
                seq.advance(now);
                par.advance_par(now);
            }
        }
        seq.flush();
        par.flush_par();
        assert_eq!(seq.drain_completions(), par.drain_completions());
        assert_eq!(seq.stats(), par.stats());
    }

    #[test]
    fn wear_counts_only_write_lines() {
        let mut r = mk(DeviceProfile::pcm());
        for i in 0..64u64 {
            r.enqueue(Transaction::demand(i, 0, i * 64, i % 2 == 0));
        }
        r.flush();
        let w = r.wear();
        assert_eq!(w.write_lines, 32);
        assert_eq!(w.banks, DeviceProfile::pcm().total_banks() as u64);
        assert!(w.max_bank_writes >= 1);
        assert!(w.imbalance() >= 1.0);
    }

    #[test]
    fn drain_completions_resets() {
        let mut r = mk(DeviceProfile::off_package_ddr3());
        r.enqueue(Transaction::demand(1, 0, 0, false));
        r.flush();
        assert_eq!(r.drain_completions().len(), 1);
        assert!(r.drain_completions().is_empty());
    }
}
