//! One DRAM channel: banks behind a shared command/data bus, a per-rank
//! refresh schedule and tFAW window, and the FR-FCFS transaction queue.

use crate::bank::BankArray;
use crate::device::{DeviceProfile, DramCoord};
use crate::timing::TimingCpu;
use crate::txn::{Completion, PagePolicy, SchedPolicy, Transaction};
use hmm_fault::{FaultPlan, MemFault, UncorrectableCause};
use hmm_sim_base::cycles::Cycle;
use hmm_sim_base::stats::LatencyBreakdown;
use hmm_telemetry::{DramOutcome, Event, FaultClass, NullSink, RegionKind, TelemetrySink};
use std::collections::VecDeque;

/// Per-channel counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelStats {
    /// Accesses that hit the open row.
    pub row_hits: u64,
    /// Accesses that required an activate (empty or conflict).
    pub row_misses: u64,
    /// Data-bus busy cycles (for bandwidth-utilisation reporting).
    pub data_bus_busy: Cycle,
    /// Transactions serviced.
    pub serviced: u64,
    /// Reads whose single-bit ECC error was corrected in-line.
    pub correctable_errors: u64,
    /// Reads that returned detected-but-uncorrectable data (double-bit
    /// flips and stuck-bank hits).
    pub uncorrectable_errors: u64,
    /// Transactions whose issue was delayed by a throttle window.
    pub throttle_events: u64,
    /// Total cycles of issue delay charged by throttle windows.
    pub throttle_delay_cycles: u64,
}

#[derive(Debug, Clone)]
struct Queued {
    txn: Transaction,
    coord: DramCoord,
}

#[derive(Debug, Clone, Default)]
struct RankState {
    /// Next scheduled refresh boundary.
    next_refresh: Cycle,
    /// Issue times of up to the last four ACTIVATEs (tFAW window).
    recent_activates: VecDeque<Cycle>,
}

/// How many times the oldest request may be bypassed by younger row hits
/// before the scheduler forces it out (FR-FCFS starvation cap, standard in
/// real controllers). A count-based cap preserves row-hit batching under
/// backlog — a time-based cap would degenerate to FCFS exactly when
/// batching matters most.
const STARVATION_BYPASS_CAP: u32 = 16;

/// The scheduler's associative window: only this many eligible requests
/// are considered per arbitration round. Real FR-FCFS arbiters search a
/// 32-64 entry transaction queue, not an unbounded one; the cap also keeps
/// arbitration O(window) when a stall (e.g. the halting N design) dumps
/// thousands of same-cycle arrivals into the queue.
const SCHED_WINDOW: usize = 64;

/// A single DRAM channel.
#[derive(Debug)]
pub struct Channel<S: TelemetrySink = NullSink> {
    profile: DeviceProfile,
    timing: TimingCpu,
    /// Telemetry sink; [`NullSink`] by default, which folds every
    /// instrumentation branch away.
    sink: S,
    /// Which region this channel belongs to (telemetry labelling only).
    region: RegionKind,
    /// Channel index within the region (telemetry labelling only).
    index: u32,
    /// Bank state in structure-of-arrays layout: the arbitration scan in
    /// [`Channel::pick`] touches only the dense open-row array.
    banks: BankArray,
    /// Lines written per bank over the channel's lifetime — the endurance
    /// (wear) counter write-limited backends such as PCM care about.
    /// Always maintained (one add on the write path), aggregated by
    /// [`crate::DramRegion::wear`].
    writes_per_bank: Vec<u64>,
    ranks: Vec<RankState>,
    data_bus_free: Cycle,
    /// Demand transactions awaiting FR-FCFS arbitration, kept in
    /// non-decreasing arrival order (the command path delivers requests
    /// in order, enforced by a monotone clamp at enqueue). Sortedness
    /// makes the oldest-arrival lookup O(1) and keeps arbitration
    /// O(window) even when a stall dumps thousands of arrivals at once.
    queue: VecDeque<Queued>,
    /// Background (migration) transactions, serviced FIFO with whatever
    /// bus capacity demand leaves over. FIFO preserves the copy engine's
    /// critical-data-first ordering.
    bg_queue: VecDeque<Queued>,
    stats: ChannelStats,
    /// The scheduler's decision clock: requests are only visible to
    /// arbitration once their arrival is <= this. It tracks the start of
    /// the most recent data transfer, so a long `advance` (or a flush)
    /// cannot let far-future requests jump the queue.
    clock: Cycle,
    /// Times the oldest queued request has been bypassed by a row hit.
    bypasses: u32,
    /// Row-buffer management policy.
    page_policy: PagePolicy,
    /// Monotone clamp for demand arrivals (command-path FIFO ordering).
    last_demand_arrival: Cycle,
    /// Active fault plan, if any. `None` keeps every fault branch cold so
    /// fault-free runs stay bit-identical to builds without a plan.
    faults: Option<FaultPlan>,
}

impl Channel {
    /// Build an idle channel for `profile` with the given row-buffer
    /// policy and no telemetry.
    pub fn new(profile: DeviceProfile, timing: TimingCpu, page_policy: PagePolicy) -> Self {
        Self::with_sink(profile, timing, page_policy, NullSink, RegionKind::OffPackage, 0)
    }
}

impl<S: TelemetrySink> Channel<S> {
    /// Build an idle channel reporting DRAM events into `sink`, labelled
    /// with the region and channel index it serves.
    pub fn with_sink(
        profile: DeviceProfile,
        timing: TimingCpu,
        page_policy: PagePolicy,
        sink: S,
        region: RegionKind,
        index: u32,
    ) -> Self {
        let total_banks = (profile.ranks_per_channel * profile.banks_per_rank) as usize;
        let mut ranks = Vec::with_capacity(profile.ranks_per_channel as usize);
        for i in 0..profile.ranks_per_channel {
            ranks.push(RankState {
                // Stagger refresh across ranks so they don't align.
                next_refresh: if timing.t_refi > 0 {
                    timing.t_refi + (i as u64 * timing.t_refi / profile.ranks_per_channel as u64)
                } else {
                    Cycle::MAX
                },
                recent_activates: VecDeque::with_capacity(4),
            });
        }
        Self {
            profile,
            timing,
            sink,
            region,
            index,
            banks: BankArray::new(total_banks),
            writes_per_bank: vec![0; total_banks],
            ranks,
            data_bus_free: 0,
            queue: VecDeque::new(),
            bg_queue: VecDeque::new(),
            stats: ChannelStats::default(),
            clock: 0,
            bypasses: 0,
            page_policy,
            last_demand_arrival: 0,
            faults: None,
        }
    }

    /// Arm a fault plan: subsequent reads roll for ECC outcomes and issue
    /// respects the plan's throttle windows.
    pub fn set_faults(&mut self, plan: FaultPlan) {
        self.faults = Some(plan);
    }

    /// Current statistics snapshot.
    pub fn stats(&self) -> ChannelStats {
        self.stats
    }

    /// Lines written per bank so far (endurance/wear counters), indexed by
    /// the channel-local bank index.
    pub fn writes_per_bank(&self) -> &[u64] {
        &self.writes_per_bank
    }

    /// Number of transactions waiting.
    pub fn pending(&self) -> usize {
        self.queue.len() + self.bg_queue.len()
    }

    /// Serialize the channel's dynamic state (snapshot/resume support).
    /// Configuration (profile, timing, policy, fault plan) is rebuilt from
    /// the run configuration on load; queued transactions store only the
    /// transaction itself — the DRAM coordinate is re-decoded from the
    /// address, which is exactly how it was derived at enqueue.
    pub fn save_state(&self, w: &mut hmm_sim_base::snap::SnapWriter) {
        let txn = |w: &mut hmm_sim_base::snap::SnapWriter, q: &Queued| {
            w.u64(q.txn.id);
            w.u64(q.txn.arrival);
            w.u64(q.txn.addr);
            w.bool(q.txn.is_write);
            w.u32(q.txn.lines);
            w.bool(q.txn.background);
        };
        self.banks.save_state(w);
        w.usize(self.ranks.len());
        for rank in &self.ranks {
            w.u64(rank.next_refresh);
            w.usize(rank.recent_activates.len());
            for &t in &rank.recent_activates {
                w.u64(t);
            }
        }
        w.usize(self.queue.len());
        for q in &self.queue {
            txn(w, q);
        }
        w.usize(self.bg_queue.len());
        for q in &self.bg_queue {
            txn(w, q);
        }
        w.u64(self.data_bus_free);
        w.u64(self.clock);
        w.u32(self.bypasses);
        w.u64(self.last_demand_arrival);
        w.u64(self.stats.row_hits);
        w.u64(self.stats.row_misses);
        w.u64(self.stats.data_bus_busy);
        w.u64(self.stats.serviced);
        w.u64(self.stats.correctable_errors);
        w.u64(self.stats.uncorrectable_errors);
        w.u64(self.stats.throttle_events);
        w.u64(self.stats.throttle_delay_cycles);
        w.usize(self.writes_per_bank.len());
        for &v in &self.writes_per_bank {
            w.u64(v);
        }
    }

    /// Restore channel state saved by [`Channel::save_state`] onto a
    /// freshly constructed channel for the same profile.
    pub fn load_state(
        &mut self,
        r: &mut hmm_sim_base::snap::SnapReader<'_>,
    ) -> hmm_sim_base::snap::SnapResult<()> {
        let profile = self.profile;
        let txn =
            |r: &mut hmm_sim_base::snap::SnapReader<'_>| -> hmm_sim_base::snap::SnapResult<Queued> {
                let txn = Transaction {
                    id: r.u64()?,
                    arrival: r.u64()?,
                    addr: r.u64()?,
                    is_write: r.bool()?,
                    lines: r.u32()?,
                    background: r.bool()?,
                };
                let coord = profile.decode(txn.addr);
                Ok(Queued { txn, coord })
            };
        self.banks.load_state(r)?;
        let ranks = r.usize()?;
        if ranks != self.ranks.len() {
            return Err(format!("rank count mismatch: expected {}", self.ranks.len()));
        }
        for rank in &mut self.ranks {
            rank.next_refresh = r.u64()?;
            let n = r.seq_len(8)?;
            rank.recent_activates.clear();
            for _ in 0..n {
                rank.recent_activates.push_back(r.u64()?);
            }
        }
        let n = r.seq_len(1)?;
        self.queue.clear();
        for _ in 0..n {
            let q = txn(r)?;
            self.queue.push_back(q);
        }
        let n = r.seq_len(1)?;
        self.bg_queue.clear();
        for _ in 0..n {
            let q = txn(r)?;
            self.bg_queue.push_back(q);
        }
        self.data_bus_free = r.u64()?;
        self.clock = r.u64()?;
        self.bypasses = r.u32()?;
        self.last_demand_arrival = r.u64()?;
        self.stats.row_hits = r.u64()?;
        self.stats.row_misses = r.u64()?;
        self.stats.data_bus_busy = r.u64()?;
        self.stats.serviced = r.u64()?;
        self.stats.correctable_errors = r.u64()?;
        self.stats.uncorrectable_errors = r.u64()?;
        self.stats.throttle_events = r.u64()?;
        self.stats.throttle_delay_cycles = r.u64()?;
        let n = r.usize()?;
        if n != self.writes_per_bank.len() {
            return Err(format!("bank count mismatch: expected {}", self.writes_per_bank.len()));
        }
        for v in &mut self.writes_per_bank {
            *v = r.u64()?;
        }
        Ok(())
    }

    /// Add a transaction (already decoded to this channel).
    pub fn enqueue(&mut self, txn: Transaction, coord: DramCoord) {
        debug_assert!(txn.lines >= 1);
        if txn.background {
            self.bg_queue.push_back(Queued { txn, coord });
        } else {
            // The arrival-sorted queue relies on the command path
            // delivering requests in order; the memory controller's
            // monotone effective clock guarantees it.
            debug_assert!(
                txn.arrival >= self.last_demand_arrival,
                "demand arrivals must be non-decreasing per channel"
            );
            self.last_demand_arrival = txn.arrival;
            self.queue.push_back(Queued { txn, coord });
        }
    }

    /// Service every queued transaction that has arrived by `now`,
    /// appending completions to `out`.
    ///
    /// The channel maintains its own decision clock: each arbitration round
    /// only sees requests that had arrived by the time the previous data
    /// transfer started, exactly as a real queue-resident FR-FCFS
    /// arbiter would. The clock also lets `flush` (a call with
    /// `now = Cycle::MAX`) behave identically to fine-grained stepping.
    pub fn advance(&mut self, now: Cycle, policy: SchedPolicy, out: &mut Vec<Completion>) {
        loop {
            // Demand first, always. The queue is arrival-sorted, so the
            // oldest eligible arrival is simply the front.
            let min_arrival = self.queue.front().map(|q| q.txn.arrival).filter(|&a| a <= now);
            if let Some(min_arrival) = min_arrival {
                let decision = self.clock.max(min_arrival);
                let idx = self
                    .pick(decision, min_arrival, policy)
                    .expect("min_arrival guarantees at least one candidate");
                let q = self.queue.remove(idx).expect("pick returns a valid index");
                let (completion, data_start) = self.issue(q);
                self.clock = self.clock.max(data_start);
                out.push(completion);
                continue;
            }
            // Background gets the capacity demand leaves over. The gate
            // bounds how far beyond wall-clock the bus may be committed
            // when a background line issues: the bus-free horizon always
            // carries the activate+CAS pipeline lead of the last demand
            // access (~one access pipeline) plus queueing jitter, so the
            // allowance is a few pipelines. Because background legs are
            // single lines, each issue moves the horizon by only one
            // burst, so the lead cannot snowball; demand sees a bounded
            // worst-case inflation, and background throughput converges to
            // the capacity demand leaves idle — which is how demand-first
            // arbitration behaves in hardware.
            let Some(front) = self.bg_queue.front() else { break };
            if front.txn.arrival > now {
                break;
            }
            let lead = self.timing.t_rcd + self.timing.t_cl + 2 * self.timing.t_burst;
            if self.data_bus_free > now.saturating_add(lead) {
                break;
            }
            let q = self.bg_queue.pop_front().expect("front exists");
            let (completion, data_start) = self.issue(q);
            self.clock = self.clock.max(data_start);
            out.push(completion);
        }
    }

    /// Service everything left in the queue regardless of arrival time
    /// (end-of-trace drain).
    pub fn flush(&mut self, policy: SchedPolicy, out: &mut Vec<Completion>) {
        self.advance(Cycle::MAX, policy, out);
        debug_assert!(self.queue.is_empty());
        debug_assert!(self.bg_queue.is_empty());
    }

    /// FR-FCFS (or FCFS) winner among demand transactions visible at
    /// `decision` time:
    /// 1. if the oldest request has been bypassed by row hits more than
    ///    the starvation cap allows, it wins unconditionally;
    /// 2. (FR-FCFS only) open-row hits before misses;
    /// 3. oldest arrival.
    fn pick(&mut self, decision: Cycle, min_arrival: Cycle, policy: SchedPolicy) -> Option<usize> {
        // Fast path: the queue is arrival-sorted, so when the second entry
        // has not arrived yet the front is the only candidate — no
        // arbitration scan, and the oldest request trivially wins (same
        // outcome the full scan would produce, including the bypass
        // counter reset).
        if self.queue.get(1).is_none_or(|q| q.txn.arrival > decision) {
            self.bypasses = 0;
            return Some(0);
        }
        let mut best: Option<(usize, (bool, Cycle))> = None;
        let mut oldest: Option<usize> = None;
        for (i, q) in self.queue.iter().enumerate().take(SCHED_WINDOW) {
            if q.txn.arrival > decision {
                // Arrival-sorted: nothing further back is eligible either.
                break;
            }
            if q.txn.arrival == min_arrival && oldest.is_none() {
                oldest = Some(i);
            }
            let row_hit = match policy {
                SchedPolicy::FrFcfs => {
                    // One u64 load + compare against the dense SoA row
                    // array; `NO_ROW` never equals a decoded row, so the
                    // closed-bank case needs no separate branch.
                    self.banks.open_row_raw(q.coord.bank_in_channel(&self.profile)) == q.coord.row
                }
                SchedPolicy::Fcfs => false,
            };
            // Sort key: (!row_hit asc, arrival asc).
            let key = (!row_hit, q.txn.arrival);
            match &best {
                Some((_, bk)) if *bk <= key => {}
                _ => best = Some((i, key)),
            }
        }
        let best_idx = best.map(|(i, _)| i)?;
        if let Some(old_idx) = oldest {
            if old_idx != best_idx {
                self.bypasses += 1;
                if self.bypasses > STARVATION_BYPASS_CAP {
                    self.bypasses = 0;
                    return Some(old_idx);
                }
            } else {
                self.bypasses = 0;
            }
        }
        Some(best_idx)
    }

    /// Issue one transaction; returns its completion and the cycle its data
    /// transfer started (which advances the decision clock).
    fn issue(&mut self, q: Queued) -> (Completion, Cycle) {
        let t = self.timing;
        let rank = q.coord.rank as usize;
        let mut earliest = q.txn.arrival;

        // Throttle gate: a refresh-storm/thermal window from the fault
        // plan holds issue until the window ends, for every transaction
        // in the matching region.
        if let Some(plan) = &self.faults {
            let on = self.region == RegionKind::OnPackage;
            if let Some(release) = plan.throttle_release(on, earliest) {
                self.stats.throttle_events += 1;
                self.stats.throttle_delay_cycles += release - earliest;
                if self.sink.enabled(hmm_telemetry::EventKind::FaultInjected) {
                    self.sink.emit(Event::FaultInjected {
                        cycle: earliest,
                        class: FaultClass::Throttle,
                        detail: release,
                    });
                }
                earliest = release;
            }
        }

        // Refresh gate: if the command would start past the rank's next
        // refresh boundary, the refresh happens first and closes every row
        // in the rank.
        earliest = self.refresh_gate(rank, earliest);

        // tFAW gate, applied only when this access will activate.
        let bank_idx = q.coord.bank_in_channel(&self.profile);
        let needs_activate = self.banks.open_row_raw(bank_idx) != q.coord.row;
        if needs_activate {
            let window = &self.ranks[rank].recent_activates;
            if window.len() == 4 {
                earliest = earliest.max(window[0] + t.t_faw);
            }
            if let Some(&last) = window.back() {
                earliest = earliest.max(last + t.t_rrd);
            }
        }

        let svc = self.banks.service_with_policy(
            bank_idx,
            earliest,
            self.data_bus_free,
            q.coord.row,
            q.txn.is_write,
            q.txn.lines,
            &t,
            self.page_policy == PagePolicy::Closed,
        );

        if svc.activated {
            let window = &mut self.ranks[rank].recent_activates;
            if window.len() == 4 {
                window.pop_front();
            }
            window.push_back(svc.cmd_start);
        }

        self.data_bus_free = svc.finish;
        let burst = t.t_burst * q.txn.lines as u64;
        self.stats.data_bus_busy += burst;
        self.stats.serviced += 1;
        if q.txn.is_write {
            self.writes_per_bank[bank_idx] += q.txn.lines as u64;
        }
        if svc.row_hit {
            self.stats.row_hits += 1;
        } else {
            self.stats.row_misses += 1;
        }

        let outcome = if svc.row_hit {
            DramOutcome::RowHit
        } else if svc.conflict {
            DramOutcome::BankConflict
        } else {
            DramOutcome::RowMiss
        };
        let kind = match outcome {
            DramOutcome::RowHit => hmm_telemetry::EventKind::RowHit,
            DramOutcome::RowMiss => hmm_telemetry::EventKind::RowMiss,
            DramOutcome::BankConflict => hmm_telemetry::EventKind::BankConflict,
        };
        if self.sink.enabled(kind) {
            self.sink.emit(Event::DramAccess {
                cycle: svc.cmd_start,
                region: self.region,
                channel: self.index,
                bank: bank_idx as u32,
                outcome,
                background: q.txn.background,
                is_write: q.txn.is_write,
            });
        }

        // ECC check on the returned data: stuck banks always fail, other
        // reads roll the plan's SECDED rates. Writes carry no data back.
        let fault = match &self.faults {
            Some(plan) if !q.txn.is_write => {
                if plan.is_stuck(self.region == RegionKind::OnPackage, self.index, bank_idx as u32)
                {
                    Some(MemFault::Uncorrectable(UncorrectableCause::StuckBank))
                } else {
                    plan.classify_read(q.txn.addr, q.txn.id)
                }
            }
            _ => None,
        };
        if let Some(f) = fault {
            let class = match f {
                MemFault::Corrected => {
                    self.stats.correctable_errors += 1;
                    FaultClass::CorrectedEcc
                }
                MemFault::Uncorrectable(UncorrectableCause::DoubleBit) => {
                    self.stats.uncorrectable_errors += 1;
                    FaultClass::UncorrectableEcc
                }
                MemFault::Uncorrectable(UncorrectableCause::StuckBank) => {
                    self.stats.uncorrectable_errors += 1;
                    FaultClass::StuckBank
                }
            };
            if self.sink.enabled(hmm_telemetry::EventKind::FaultInjected) {
                self.sink.emit(Event::FaultInjected {
                    cycle: svc.finish,
                    class,
                    detail: (self.index as u64) << 32 | bank_idx as u64,
                });
            }
        }

        let total = svc.finish - q.txn.arrival;
        let queuing = total - svc.core_latency;
        let completion = Completion {
            id: q.txn.id,
            finish: svc.finish,
            breakdown: LatencyBreakdown {
                dram_core: svc.core_latency,
                queuing,
                controller: 0,
                interconnect: 0,
            },
            row_hit: svc.row_hit,
            fault,
        };
        (completion, svc.finish - burst)
    }

    /// Apply pending refreshes for `rank`, returning the adjusted earliest
    /// command time. Long idle gaps fast-forward arithmetically instead of
    /// looping per interval.
    fn refresh_gate(&mut self, rank: usize, earliest: Cycle) -> Cycle {
        let t = self.timing;
        if t.t_refi == 0 {
            return earliest;
        }
        let next = self.ranks[rank].next_refresh;
        if earliest < next {
            return earliest;
        }
        // One or more refresh boundaries passed. All but the last completed
        // during idle time; only the most recent one can delay us.
        let missed = (earliest - next) / t.t_refi;
        let last_boundary = next + missed * t.t_refi;
        self.ranks[rank].next_refresh = last_boundary + t.t_refi;
        // Refresh closes every row in the rank.
        let lo = rank * self.profile.banks_per_rank as usize;
        let hi = lo + self.profile.banks_per_rank as usize;
        self.banks.close_rows(lo, hi, last_boundary);
        earliest.max(last_boundary + t.t_rfc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::DramTiming;
    use hmm_sim_base::cycles::CpuClock;

    fn mk() -> Channel {
        let p = DeviceProfile::off_package_ddr3();
        let t = p.timing.to_cpu(&CpuClock::default());
        Channel::new(p, t, PagePolicy::Open)
    }

    fn coord(bank: u32, row: u64) -> DramCoord {
        DramCoord { channel: 0, rank: 0, bank, row, column: 0 }
    }

    #[test]
    fn single_transaction_completes() {
        let mut ch = mk();
        ch.enqueue(Transaction::demand(1, 100, 0, false), coord(0, 0));
        let mut out = Vec::new();
        ch.advance(100, SchedPolicy::FrFcfs, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].id, 1);
        assert!(out[0].finish > 100);
        assert_eq!(ch.pending(), 0);
    }

    #[test]
    fn future_arrivals_wait() {
        let mut ch = mk();
        ch.enqueue(Transaction::demand(1, 500, 0, false), coord(0, 0));
        let mut out = Vec::new();
        ch.advance(100, SchedPolicy::FrFcfs, &mut out);
        assert!(out.is_empty());
        ch.advance(500, SchedPolicy::FrFcfs, &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn frfcfs_prefers_row_hit_over_older_miss() {
        let mut ch = mk();
        let mut out = Vec::new();
        // Open row 5 in bank 0.
        ch.enqueue(Transaction::demand(0, 0, 0, false), coord(0, 5));
        ch.advance(0, SchedPolicy::FrFcfs, &mut out);
        out.clear();
        // Older miss (row 9) vs. younger hit (row 5), same bank.
        ch.enqueue(Transaction::demand(1, 10, 0, false), coord(0, 9));
        ch.enqueue(Transaction::demand(2, 20, 0, false), coord(0, 5));
        ch.advance(1_000, SchedPolicy::FrFcfs, &mut out);
        assert_eq!(out[0].id, 2, "row hit should be serviced first");
        assert!(out[0].row_hit);
        assert_eq!(out[1].id, 1);
    }

    #[test]
    fn fcfs_services_in_arrival_order() {
        let mut ch = mk();
        let mut out = Vec::new();
        ch.enqueue(Transaction::demand(0, 0, 0, false), coord(0, 5));
        ch.advance(0, SchedPolicy::Fcfs, &mut out);
        out.clear();
        ch.enqueue(Transaction::demand(1, 10, 0, false), coord(0, 9));
        ch.enqueue(Transaction::demand(2, 20, 0, false), coord(0, 5));
        ch.advance(1_000, SchedPolicy::Fcfs, &mut out);
        assert_eq!(out[0].id, 1);
        assert_eq!(out[1].id, 2);
    }

    #[test]
    fn demand_beats_background() {
        let mut ch = mk();
        let mut out = Vec::new();
        ch.enqueue(Transaction::migration(1, 0, 0, false, 64), coord(0, 1));
        ch.enqueue(Transaction::demand(2, 5, 0, false), coord(1, 1));
        ch.advance(1_000_000, SchedPolicy::FrFcfs, &mut out);
        // One migration burst is already in flight when the demand arrives;
        // the demand must be serviced right after it, ahead of the
        // remaining 63 background transfers.
        let demand_pos = out.iter().position(|c| c.id == 2).unwrap();
        assert!(demand_pos <= 1, "demand serviced at position {demand_pos}");
    }

    #[test]
    fn queuing_delay_accumulates_under_bank_conflict() {
        let mut ch = mk();
        let mut out = Vec::new();
        // Three conflicting accesses to the same bank, different rows,
        // arriving together.
        for (i, row) in [1u64, 2, 3].iter().enumerate() {
            ch.enqueue(Transaction::demand(i as u64, 0, 0, false), coord(0, *row));
        }
        ch.advance(10_000, SchedPolicy::FrFcfs, &mut out);
        assert_eq!(out.len(), 3);
        let mut queuing: Vec<_> = out.iter().map(|c| c.breakdown.queuing).collect();
        queuing.sort_unstable();
        assert_eq!(queuing[0], 0, "first access should not queue");
        assert!(queuing[2] > queuing[1], "later conflicting accesses queue longer");
    }

    #[test]
    fn bank_parallelism_avoids_queuing() {
        let mut ch = mk();
        let mut out = Vec::new();
        // Same-cycle accesses to different banks overlap except on the
        // shared data bus.
        for b in 0..4u32 {
            ch.enqueue(Transaction::demand(b as u64, 0, 0, false), coord(b, 1));
        }
        ch.advance(10_000, SchedPolicy::FrFcfs, &mut out);
        let max_q = out.iter().map(|c| c.breakdown.queuing).max().unwrap();
        let t = DramTiming::ddr3_1333().to_cpu(&CpuClock::default());
        // Queuing is bounded by data-bus serialisation (3 bursts), not by
        // full access serialisation.
        assert!(max_q <= 3 * t.t_burst + t.t_rrd * 3 + t.t_faw, "max queuing {max_q}");
    }

    #[test]
    fn flush_drains_everything() {
        let mut ch = mk();
        let mut out = Vec::new();
        for i in 0..10 {
            ch.enqueue(
                Transaction::demand(i, i * 1_000_000, (i * 64) % 4096, false),
                coord((i % 8) as u32, i),
            );
        }
        ch.flush(SchedPolicy::FrFcfs, &mut out);
        assert_eq!(out.len(), 10);
        assert_eq!(ch.pending(), 0);
    }

    #[test]
    fn refresh_closes_rows_and_delays() {
        let p = DeviceProfile::off_package_ddr3();
        let t = p.timing.to_cpu(&CpuClock::default());
        let mut ch = Channel::new(p, t, PagePolicy::Open);
        let mut out = Vec::new();
        // Open a row well before the first refresh boundary.
        ch.enqueue(Transaction::demand(0, 0, 0, false), coord(0, 5));
        ch.advance(0, SchedPolicy::FrFcfs, &mut out);
        // Arrive just past the refresh boundary: the previously open row
        // must have been closed, so this same-row access is a miss.
        let after_refresh = t.t_refi + 1;
        ch.enqueue(Transaction::demand(1, after_refresh, 0, false), coord(0, 5));
        out.clear();
        ch.advance(after_refresh, SchedPolicy::FrFcfs, &mut out);
        assert!(!out[0].row_hit, "refresh should close the open row");
        assert!(out[0].finish >= t.t_refi + t.t_rfc);
    }

    #[test]
    fn tfaw_limits_activate_rate() {
        let p = DeviceProfile::off_package_ddr3();
        let t = p.timing.to_cpu(&CpuClock::default());
        let mut ch = Channel::new(p, t, PagePolicy::Open);
        let mut out = Vec::new();
        // Five activates to five different banks, same rank, same cycle.
        for b in 0..5u32 {
            ch.enqueue(Transaction::demand(b as u64, 0, 0, false), coord(b, 1));
        }
        ch.advance(100_000, SchedPolicy::FrFcfs, &mut out);
        // The fifth activate cannot start before the first + tFAW.
        let mut finishes: Vec<_> = out.iter().map(|c| c.finish).collect();
        finishes.sort_unstable();
        let first_cmd_finish = finishes[0];
        let intrinsic = t.t_rcd + t.t_cl + t.t_burst;
        assert!(
            finishes[4] >= (first_cmd_finish - intrinsic) + t.t_faw,
            "fifth activate must respect tFAW"
        );
    }

    #[test]
    fn stats_count_hits_and_misses() {
        let mut ch = mk();
        let mut out = Vec::new();
        ch.enqueue(Transaction::demand(0, 0, 0, false), coord(0, 1));
        ch.enqueue(Transaction::demand(1, 0, 64 * 4, false), coord(0, 1));
        ch.advance(10_000, SchedPolicy::FrFcfs, &mut out);
        let s = ch.stats();
        assert_eq!(s.serviced, 2);
        assert_eq!(s.row_misses, 1);
        assert_eq!(s.row_hits, 1);
        assert!(s.data_bus_busy > 0);
    }
}
