//! DDR3 timing parameters.
//!
//! Values are given in DRAM command-clock cycles (the native unit of the
//! Micron DDR3 datasheet the paper cites) and converted to CPU cycles once,
//! at region construction, via [`DramTiming::to_cpu`]. The defaults are
//! DDR3-1333 9-9-9 (666 MHz command clock, 1.5 ns cycle).

use hmm_sim_base::cycles::{CpuClock, Cycle};

/// DRAM timing parameters in DRAM command-clock cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramTiming {
    /// CAS latency: READ command to first data beat.
    pub t_cl: u64,
    /// RAS-to-CAS delay: ACTIVATE to READ/WRITE.
    pub t_rcd: u64,
    /// Row precharge time: PRECHARGE to ACTIVATE.
    pub t_rp: u64,
    /// Minimum row-open time: ACTIVATE to PRECHARGE.
    pub t_ras: u64,
    /// Write recovery: end of write data to PRECHARGE.
    pub t_wr: u64,
    /// Write-to-read turnaround on the same rank.
    pub t_wtr: u64,
    /// READ to PRECHARGE.
    pub t_rtp: u64,
    /// Column-to-column command spacing (burst-to-burst).
    pub t_ccd: u64,
    /// ACTIVATE-to-ACTIVATE spacing, different banks, same rank.
    pub t_rrd: u64,
    /// Four-activate window, per rank.
    pub t_faw: u64,
    /// Data burst length for one 64 B cache line (BL8 on a 64-bit channel:
    /// 4 command clocks).
    pub t_burst: u64,
    /// CAS write latency: WRITE command to first data beat.
    pub t_cwd: u64,
    /// Average refresh interval (one REFRESH per rank every tREFI).
    pub t_refi: u64,
    /// Refresh cycle time (rank unavailable for tRFC after REFRESH).
    pub t_rfc: u64,
}

impl DramTiming {
    /// Micron DDR3-1333 9-9-9 (2 Gb parts), the paper's off-package DIMM.
    pub fn ddr3_1333() -> Self {
        Self {
            t_cl: 9,
            t_rcd: 9,
            t_rp: 9,
            t_ras: 24,
            t_wr: 10,
            t_wtr: 5,
            t_rtp: 5,
            t_ccd: 4,
            t_rrd: 4,
            t_faw: 20,
            t_burst: 4,
            t_cwd: 7,
            t_refi: 5200, // 7.8 us / 1.5 ns
            t_rfc: 107,   // 160 ns / 1.5 ns
        }
    }

    /// The paper's on-package part: "modified from existing commodity
    /// products to increase the number of banks and further increase the
    /// signal I/O speed" (Section II). Core array timings stay commodity;
    /// the burst occupies half the time thanks to the wide, fast
    /// on-package interconnect (>= 2 Tbps flip-chip SiP).
    pub fn on_package() -> Self {
        Self { t_burst: 2, t_ccd: 2, ..Self::ddr3_1333() }
    }

    /// Phase-change memory modelled through the DDR3 command interface
    /// (LPDDR2-N style). Reads pay a long array sense (tRCD ~4x DRAM),
    /// writes pay an even longer program time (tWR ~8x DRAM), and the cell
    /// array is non-volatile so refresh is disabled entirely (tREFI = 0).
    pub fn pcm() -> Self {
        Self {
            t_cl: 9,
            t_rcd: 36,
            t_rp: 9,
            t_ras: 60,
            t_wr: 80,
            t_wtr: 5,
            t_rtp: 5,
            t_ccd: 4,
            t_rrd: 4,
            t_faw: 20,
            t_burst: 4,
            t_cwd: 7,
            t_refi: 0, // non-volatile: no refresh
            t_rfc: 0,
        }
    }

    /// Convert all parameters to CPU cycles for use in the hot timing loop.
    pub fn to_cpu(&self, clock: &CpuClock) -> TimingCpu {
        let c = |d| clock.dram_to_cpu(d);
        TimingCpu {
            t_cl: c(self.t_cl),
            t_rcd: c(self.t_rcd),
            t_rp: c(self.t_rp),
            t_ras: c(self.t_ras),
            t_wr: c(self.t_wr),
            t_wtr: c(self.t_wtr),
            t_rtp: c(self.t_rtp),
            t_ccd: c(self.t_ccd),
            t_rrd: c(self.t_rrd),
            t_faw: c(self.t_faw),
            t_burst: c(self.t_burst),
            t_cwd: c(self.t_cwd),
            t_refi: c(self.t_refi),
            t_rfc: c(self.t_rfc),
        }
    }

    /// Sanity-check parameter relationships that the bank state machine
    /// relies on.
    pub fn validate(&self) -> Result<(), String> {
        if self.t_ras < self.t_rcd {
            return Err("tRAS must cover at least tRCD".into());
        }
        if self.t_burst == 0 || self.t_cl == 0 {
            return Err("tBURST and tCL must be non-zero".into());
        }
        if self.t_refi > 0 && self.t_rfc >= self.t_refi {
            return Err("tRFC must be shorter than tREFI".into());
        }
        Ok(())
    }
}

/// [`DramTiming`] pre-converted to CPU cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // field meanings mirror DramTiming
pub struct TimingCpu {
    pub t_cl: Cycle,
    pub t_rcd: Cycle,
    pub t_rp: Cycle,
    pub t_ras: Cycle,
    pub t_wr: Cycle,
    pub t_wtr: Cycle,
    pub t_rtp: Cycle,
    pub t_ccd: Cycle,
    pub t_rrd: Cycle,
    pub t_faw: Cycle,
    pub t_burst: Cycle,
    pub t_cwd: Cycle,
    pub t_refi: Cycle,
    pub t_rfc: Cycle,
}

impl TimingCpu {
    /// Latency of a row-hit read: CAS + one burst.
    #[inline]
    pub fn row_hit_read(&self) -> Cycle {
        self.t_cl + self.t_burst
    }

    /// Latency of a row-empty read: activate + CAS + one burst.
    #[inline]
    pub fn row_empty_read(&self) -> Cycle {
        self.t_rcd + self.t_cl + self.t_burst
    }

    /// Latency of a row-conflict read: precharge + activate + CAS + burst.
    #[inline]
    pub fn row_conflict_read(&self) -> Cycle {
        self.t_rp + self.t_rcd + self.t_cl + self.t_burst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ddr3_defaults_validate() {
        DramTiming::ddr3_1333().validate().unwrap();
        DramTiming::on_package().validate().unwrap();
        DramTiming::pcm().validate().unwrap();
    }

    #[test]
    fn pcm_is_read_write_asymmetric_and_refresh_free() {
        let pcm = DramTiming::pcm();
        let ddr = DramTiming::ddr3_1333();
        assert!(pcm.t_rcd > ddr.t_rcd);
        assert!(pcm.t_wr > pcm.t_rcd); // writes slower than reads
        assert_eq!(pcm.t_refi, 0);
    }

    #[test]
    fn cpu_conversion_scales_by_clock_ratio() {
        let clk = CpuClock::default(); // 3200 / 666
        let t = DramTiming::ddr3_1333().to_cpu(&clk);
        // tCL = 9 DRAM cycles = 43.2 -> 44 CPU cycles.
        assert_eq!(t.t_cl, 44);
        // BL8 burst = 4 DRAM cycles -> 20 CPU cycles.
        assert_eq!(t.t_burst, 20);
    }

    #[test]
    fn row_hit_vs_conflict_ordering() {
        let t = DramTiming::ddr3_1333().to_cpu(&CpuClock::default());
        assert!(t.row_hit_read() < t.row_empty_read());
        assert!(t.row_empty_read() < t.row_conflict_read());
    }

    #[test]
    fn reconstructed_core_latency_matches_table2_scale() {
        // The paper's analytic model uses a ~50-cycle DRAM core latency.
        // A row-empty read under our detailed timings is:
        // tRCD + tCL + tBURST = 44 + 44 + 20 = 108 CPU cycles; a row hit is
        // 64. The 50-cycle figure sits between a hit and an empty access,
        // which is what an "average" fixed number should do.
        let t = DramTiming::ddr3_1333().to_cpu(&CpuClock::default());
        assert!(t.row_hit_read() <= 70);
        assert!(t.row_empty_read() >= 70);
    }

    #[test]
    fn on_package_part_has_faster_io_same_core() {
        let off = DramTiming::ddr3_1333();
        let on = DramTiming::on_package();
        assert_eq!(on.t_cl, off.t_cl);
        assert_eq!(on.t_rcd, off.t_rcd);
        assert!(on.t_burst < off.t_burst);
    }

    #[test]
    fn validation_rejects_broken_params() {
        let mut t = DramTiming::ddr3_1333();
        t.t_ras = 1;
        assert!(t.validate().is_err());
        let mut t = DramTiming::ddr3_1333();
        t.t_burst = 0;
        assert!(t.validate().is_err());
        let mut t = DramTiming::ddr3_1333();
        t.t_rfc = t.t_refi;
        assert!(t.validate().is_err());
    }
}
