//! Energy model for heterogeneous on-/off-package DRAM traffic
//! (Section IV-D, Fig. 16).
//!
//! The paper assumes, for a 65 nm-class interface:
//!
//! * **5 pJ/bit** for the DRAM core access (both regions);
//! * **1.66 pJ/bit** for the on-package interconnect;
//! * **13 pJ/bit** for the off-package interconnect.
//!
//! "The memory power overhead caused by crossing-package migration depends
//! on the migration interval" — migration moves every line twice (a read
//! and a write leg), and each leg pays core + link energy of its region.
//! The figure reports power *normalized to an off-package-DRAM-only
//! solution* serving the same demand traffic.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

/// Bits per cache line (64 B).
pub const LINE_BITS: f64 = 512.0;

/// Energy coefficients in pJ/bit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyParams {
    /// DRAM core access energy (either region).
    pub core_pj_per_bit: f64,
    /// On-package interconnect energy.
    pub on_link_pj_per_bit: f64,
    /// Off-package interconnect energy.
    pub off_link_pj_per_bit: f64,
}

impl Default for EnergyParams {
    fn default() -> Self {
        Self { core_pj_per_bit: 5.0, on_link_pj_per_bit: 1.66, off_link_pj_per_bit: 13.0 }
    }
}

/// Line counts through each region (demand and migration separately).
/// These map one-to-one onto the controller's traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Traffic {
    /// Demand lines served by the on-package region.
    pub demand_on_lines: u64,
    /// Demand lines served by the off-package region.
    pub demand_off_lines: u64,
    /// Migration lines through the on-package region (read + write legs).
    pub migration_on_lines: u64,
    /// Migration lines through the off-package region.
    pub migration_off_lines: u64,
}

impl Traffic {
    /// All lines through the on-package region.
    pub fn on_lines(&self) -> u64 {
        self.demand_on_lines + self.migration_on_lines
    }

    /// All lines through the off-package region.
    pub fn off_lines(&self) -> u64 {
        self.demand_off_lines + self.migration_off_lines
    }

    /// Total demand lines (the work the baseline must also do).
    pub fn demand_lines(&self) -> u64 {
        self.demand_on_lines + self.demand_off_lines
    }
}

/// Energy breakdown in picojoules.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// DRAM core energy.
    pub core_pj: f64,
    /// On-package link energy.
    pub on_link_pj: f64,
    /// Off-package link energy.
    pub off_link_pj: f64,
}

impl EnergyBreakdown {
    /// Total energy.
    pub fn total_pj(&self) -> f64 {
        self.core_pj + self.on_link_pj + self.off_link_pj
    }
}

/// Energy of the given traffic under the hybrid memory system.
pub fn hybrid_energy(params: &EnergyParams, t: &Traffic) -> EnergyBreakdown {
    let on_bits = t.on_lines() as f64 * LINE_BITS;
    let off_bits = t.off_lines() as f64 * LINE_BITS;
    EnergyBreakdown {
        core_pj: (on_bits + off_bits) * params.core_pj_per_bit,
        on_link_pj: on_bits * params.on_link_pj_per_bit,
        off_link_pj: off_bits * params.off_link_pj_per_bit,
    }
}

/// Energy of the same *demand* traffic if every access went to off-package
/// DRAM (the paper's normalization baseline: "only using off-package
/// DRAM").
pub fn baseline_energy(params: &EnergyParams, t: &Traffic) -> EnergyBreakdown {
    let bits = t.demand_lines() as f64 * LINE_BITS;
    EnergyBreakdown {
        core_pj: bits * params.core_pj_per_bit,
        on_link_pj: 0.0,
        off_link_pj: bits * params.off_link_pj_per_bit,
    }
}

/// The Fig. 16 metric: hybrid energy over off-package-only energy for the
/// same demand stream (both run for the same interval, so the energy ratio
/// equals the power ratio). Returns `None` when there is no demand.
pub fn normalized_power(params: &EnergyParams, t: &Traffic) -> Option<f64> {
    if t.demand_lines() == 0 {
        return None;
    }
    Some(hybrid_energy(params, t).total_pj() / baseline_energy(params, t).total_pj())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> EnergyParams {
        EnergyParams::default()
    }

    #[test]
    fn paper_coefficients_are_default() {
        let d = EnergyParams::default();
        assert_eq!(d.core_pj_per_bit, 5.0);
        assert_eq!(d.on_link_pj_per_bit, 1.66);
        assert_eq!(d.off_link_pj_per_bit, 13.0);
    }

    #[test]
    fn all_off_demand_matches_baseline_exactly() {
        let t = Traffic { demand_off_lines: 1000, ..Default::default() };
        assert_eq!(normalized_power(&p(), &t), Some(1.0));
    }

    #[test]
    fn on_package_demand_saves_link_energy() {
        let t = Traffic { demand_on_lines: 1000, ..Default::default() };
        let r = normalized_power(&p(), &t).unwrap();
        // (5 + 1.66) / (5 + 13)
        assert!((r - 6.66 / 18.0).abs() < 1e-9, "ratio {r}");
        assert!(r < 1.0, "serving demand on-package must be cheaper");
    }

    #[test]
    fn migration_traffic_adds_overhead() {
        let demand_only = Traffic { demand_off_lines: 1000, ..Default::default() };
        let with_migration = Traffic {
            demand_off_lines: 1000,
            migration_on_lines: 2000,
            migration_off_lines: 2000,
            ..Default::default()
        };
        let a = normalized_power(&p(), &demand_only).unwrap();
        let b = normalized_power(&p(), &with_migration).unwrap();
        assert!(b > 2.0 * a, "heavy migration should at least double power: {b}");
    }

    #[test]
    fn fig16_minimum_two_x_shape() {
        // The paper's observation: at 4 KB granularity and a 1K-access
        // interval, migration roughly doubles memory power. One swap per
        // 1000 accesses at 4 KB = 64 lines x ~3 page moves x 2 legs per
        // 1000 demand lines.
        let t = Traffic {
            demand_on_lines: 800,
            demand_off_lines: 200,
            migration_on_lines: 3 * 64,
            migration_off_lines: 3 * 64,
        };
        let r = normalized_power(&p(), &t).unwrap();
        assert!((0.5..4.0).contains(&r), "same order as the paper's ~2x: {r}");
    }

    #[test]
    fn breakdown_components_sum() {
        let t = Traffic {
            demand_on_lines: 10,
            demand_off_lines: 20,
            migration_on_lines: 30,
            migration_off_lines: 40,
        };
        let e = hybrid_energy(&p(), &t);
        assert!(e.core_pj > 0.0 && e.on_link_pj > 0.0 && e.off_link_pj > 0.0);
        assert!((e.total_pj() - (e.core_pj + e.on_link_pj + e.off_link_pj)).abs() < 1e-9);
    }

    #[test]
    fn empty_traffic_has_no_ratio() {
        assert_eq!(normalized_power(&p(), &Traffic::default()), None);
    }

    #[test]
    fn traffic_accessor_identities() {
        let t = Traffic {
            demand_on_lines: 3,
            demand_off_lines: 5,
            migration_on_lines: 7,
            migration_off_lines: 11,
        };
        assert_eq!(t.on_lines(), 10);
        assert_eq!(t.off_lines(), 16);
        assert_eq!(t.demand_lines(), 8);
        // Every line is either demand or migration, on one region or the
        // other — no counter is double-counted by the accessors.
        assert_eq!(
            t.on_lines() + t.off_lines(),
            t.demand_lines() + t.migration_on_lines + t.migration_off_lines
        );
    }

    #[test]
    fn migration_never_reduces_hybrid_energy() {
        // Energy is monotone in every counter: adding migration legs to
        // any demand mix strictly raises hybrid energy and leaves the
        // demand-only baseline untouched.
        let demand = Traffic { demand_on_lines: 500, demand_off_lines: 500, ..Default::default() };
        for (on, off) in [(1, 0), (0, 1), (64, 64), (0, 4096)] {
            let with = Traffic { migration_on_lines: on, migration_off_lines: off, ..demand };
            assert!(
                hybrid_energy(&p(), &with).total_pj() > hybrid_energy(&p(), &demand).total_pj()
            );
            assert_eq!(
                baseline_energy(&p(), &with).total_pj(),
                baseline_energy(&p(), &demand).total_pj()
            );
        }
    }
}
