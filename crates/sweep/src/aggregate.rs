//! Exact aggregation of per-cell results into the sweep figures
//! document.
//!
//! The serving layer renders every completed run as an
//! `hmm-serve-sim-v1` body — a pure, byte-deterministic function of the
//! canonical config. Aggregation therefore works on *bodies*, not live
//! `RunResult`s: fold the counters parsed back out of each body and
//! embed the bodies themselves verbatim. Any path that produces the
//! same bodies in the same cell order — the coordinator collecting from
//! peers over HTTP, a single server's worker pool, or `hmm-bench sweep`
//! simulating in-process — produces a byte-identical figures document,
//! which is the property the sweep e2e suite and the CI smoke job pin.
//!
//! Counter parse-back is exact: every `ControllerStats`/`SwapStats`
//! field is a `u64` far below 2^53, so the `f64`-typed JSON reader
//! loses nothing, and the merged totals reconcile field-for-field with
//! `hmm_simulator::experiments::SweepTotals` over the same cells. The
//! renderers these parsers invert ([`controller_json`], [`swaps_json`])
//! live here so the contract has one home; `hmm-serve` re-exports them.

use hmm_core::{ControllerStats, SwapStats};
use hmm_telemetry::jsonin::{self, Json};
use hmm_telemetry::{JsonArray, JsonObject};

/// Schema tag of the figures document.
pub const FIGURES_SCHEMA: &str = "hmm-sweep-figures-v1";

/// Render merged `ControllerStats` with stable field names.
pub fn controller_json(s: &ControllerStats) -> String {
    JsonObject::new()
        .u64("demand_on_lines", s.demand_on_lines)
        .u64("demand_off_lines", s.demand_off_lines)
        .u64("migration_on_lines", s.migration_on_lines)
        .u64("migration_off_lines", s.migration_off_lines)
        .u64("stall_cycles", s.stall_cycles)
        .u64("epochs", s.epochs)
        .u64("rejected_triggers", s.rejected_triggers)
        .u64("transfer_retries", s.transfer_retries)
        .u64("transfers_dropped", s.transfers_dropped)
        .u64("transfers_timed_out", s.transfers_timed_out)
        .u64("transfers_ecc_failed", s.transfers_ecc_failed)
        .u64("abandoned_sub_blocks", s.abandoned_sub_blocks)
        .u64("row_corruptions", s.row_corruptions)
        .u64("slots_quarantined", s.slots_quarantined)
        .finish()
}

/// Render merged `SwapStats` with stable field names.
pub fn swaps_json(s: &SwapStats) -> String {
    JsonObject::new()
        .u64("triggered", s.triggered)
        .u64("completed", s.completed)
        .u64("case_a", s.case_counts[0])
        .u64("case_b", s.case_counts[1])
        .u64("case_c", s.case_counts[2])
        .u64("case_d", s.case_counts[3])
        .u64("sub_blocks_copied", s.sub_blocks_copied)
        .u64("aborted", s.aborted)
        .u64("rolled_back_sub_blocks", s.rolled_back_sub_blocks)
        .u64("quarantine_drains", s.quarantine_drains)
        .finish()
}

fn counter(v: &Json, name: &str) -> Result<u64, String> {
    let f =
        v.get(name).and_then(Json::as_f64).ok_or_else(|| format!("missing counter '{name}'"))?;
    if f.fract() != 0.0 || !(0.0..=9.007_199_254_740_992e15).contains(&f) {
        return Err(format!("counter '{name}' is not an exact integer: {f}"));
    }
    Ok(f as u64)
}

/// Parse a [`controller_json`] rendering back; exact for all counters.
pub fn controller_from_json(v: &Json) -> Result<ControllerStats, String> {
    Ok(ControllerStats {
        demand_on_lines: counter(v, "demand_on_lines")?,
        demand_off_lines: counter(v, "demand_off_lines")?,
        migration_on_lines: counter(v, "migration_on_lines")?,
        migration_off_lines: counter(v, "migration_off_lines")?,
        stall_cycles: counter(v, "stall_cycles")?,
        epochs: counter(v, "epochs")?,
        rejected_triggers: counter(v, "rejected_triggers")?,
        transfer_retries: counter(v, "transfer_retries")?,
        transfers_dropped: counter(v, "transfers_dropped")?,
        transfers_timed_out: counter(v, "transfers_timed_out")?,
        transfers_ecc_failed: counter(v, "transfers_ecc_failed")?,
        abandoned_sub_blocks: counter(v, "abandoned_sub_blocks")?,
        row_corruptions: counter(v, "row_corruptions")?,
        slots_quarantined: counter(v, "slots_quarantined")?,
    })
}

/// Parse a [`swaps_json`] rendering back; exact for all counters.
pub fn swaps_from_json(v: &Json) -> Result<SwapStats, String> {
    Ok(SwapStats {
        triggered: counter(v, "triggered")?,
        completed: counter(v, "completed")?,
        case_counts: [
            counter(v, "case_a")?,
            counter(v, "case_b")?,
            counter(v, "case_c")?,
            counter(v, "case_d")?,
        ],
        sub_blocks_copied: counter(v, "sub_blocks_copied")?,
        aborted: counter(v, "aborted")?,
        rolled_back_sub_blocks: counter(v, "rolled_back_sub_blocks")?,
        quarantine_drains: counter(v, "quarantine_drains")?,
    })
}

/// Counters accumulated across a sweep's cells — the wire-side twin of
/// `hmm_simulator::experiments::SweepTotals`, built from result bodies
/// instead of live `RunResult`s. The two reconcile exactly over the
/// same cells.
#[derive(Debug, Clone, Default)]
pub struct Totals {
    /// Result bodies folded in.
    pub cells: u64,
    /// Summed controller counters over all cells.
    pub controller: ControllerStats,
    /// Summed migration counters over all migrating cells.
    pub swaps: SwapStats,
}

impl Totals {
    /// Fold one `hmm-serve-sim-v1` body's counters into the totals.
    pub fn absorb_body(&mut self, body: &str) -> Result<(), String> {
        let doc = jsonin::parse(body).map_err(|e| format!("invalid result body: {e}"))?;
        let ctrl = doc.get("controller").ok_or("result body lacks 'controller'")?;
        self.controller.merge(&controller_from_json(ctrl)?);
        match doc.get("swaps") {
            Some(Json::Null) | None => {}
            Some(s) => self.swaps.merge(&swaps_from_json(s)?),
        }
        self.cells += 1;
        Ok(())
    }

    /// Render the totals with stable field names.
    pub fn to_json(&self) -> String {
        JsonObject::new()
            .u64("cells", self.cells)
            .raw("controller", &controller_json(&self.controller))
            .raw("swaps", &swaps_json(&self.swaps))
            .finish()
    }
}

/// One condensed figure row, extracted from a result body: the axes the
/// paper plots against plus the headline metrics. Everything is
/// re-rendered through the workspace's shortest-round-trip formatting,
/// so extraction is deterministic given the body.
fn figure_row(body: &Json) -> Result<String, String> {
    let config = body.get("config").ok_or("result body lacks 'config'")?;
    let access = body.get("access").ok_or("result body lacks 'access'")?;
    let need_str = |v: &Json, n: &str| {
        v.get(n).and_then(Json::as_str).map(str::to_string).ok_or(format!("missing '{n}'"))
    };
    let need_f64 =
        |v: &Json, n: &str| v.get(n).and_then(Json::as_f64).ok_or(format!("missing '{n}'"));
    let page_shift = counter(config, "page_shift")?;
    // The canonical config omits the default scheme, so the row spells
    // it out: scheme is a sweep axis, and rows from different schemes
    // must stay distinguishable once condensed.
    let scheme = match config.get("scheme") {
        Some(v) => v.as_str().ok_or("'scheme' is not a string")?.to_string(),
        None => "hetero".to_string(),
    };
    let mut row = JsonObject::new()
        .str("workload", &need_str(body, "workload")?)
        .str("mode", &need_str(config, "mode")?)
        .str("scheme", &scheme)
        .u64("page_bytes", 1u64 << page_shift.min(63))
        .u64("interval", counter(config, "interval")?)
        .u64("seed", counter(config, "seed")?)
        .f64("mean_latency_cycles", need_f64(access, "mean_latency_cycles")?)
        .u64("p99_latency_cycles", counter(access, "p99_latency_cycles")?)
        .f64("on_package_fraction", need_f64(access, "on_package_fraction")?);
    row = match body.get("normalized_power") {
        Some(Json::Num(p)) => row.f64("normalized_power", *p),
        _ => row.raw("normalized_power", "null"),
    };
    Ok(row.finish())
}

/// Render the `hmm-sweep-figures-v1` document from the sweep's result
/// bodies, in cell order. The bodies are embedded verbatim under
/// `results`, so the document inherits their byte determinism; `totals`
/// and the condensed `figure_rows` are derived from the same bytes.
pub fn figures_doc(bodies: &[impl AsRef<str>]) -> Result<String, String> {
    let mut totals = Totals::default();
    let mut rows = JsonArray::new();
    let mut results = JsonArray::new();
    for (i, body) in bodies.iter().enumerate() {
        let body = body.as_ref();
        totals.absorb_body(body).map_err(|e| format!("cell {i}: {e}"))?;
        let doc = jsonin::parse(body).map_err(|e| format!("cell {i}: {e}"))?;
        rows = rows.raw(&figure_row(&doc).map_err(|e| format!("cell {i}: {e}"))?);
        results = results.raw(body);
    }
    Ok(JsonObject::new()
        .str("schema", FIGURES_SCHEMA)
        .u64("cells", totals.cells)
        .raw("totals", &totals.to_json())
        .raw("figure_rows", &rows.finish())
        .raw("results", &results.finish())
        .finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_controller() -> ControllerStats {
        ControllerStats {
            demand_on_lines: 10,
            demand_off_lines: 20,
            migration_on_lines: 5,
            migration_off_lines: 5,
            stall_cycles: 100,
            epochs: 3,
            rejected_triggers: 1,
            transfer_retries: 2,
            ..ControllerStats::default()
        }
    }

    fn sample_swaps() -> SwapStats {
        SwapStats {
            triggered: 4,
            completed: 3,
            case_counts: [1, 1, 1, 1],
            sub_blocks_copied: 64,
            aborted: 1,
            ..SwapStats::default()
        }
    }

    fn sample_body(seed: u64, with_swaps: bool) -> String {
        let swaps = if with_swaps { swaps_json(&sample_swaps()) } else { "null".into() };
        let config = JsonObject::new()
            .str("mode", "live")
            .u64("page_shift", 16)
            .u64("interval", 1000)
            .u64("seed", seed)
            .finish();
        let access = JsonObject::new()
            .f64("mean_latency_cycles", 123.5)
            .u64("p99_latency_cycles", 900)
            .f64("on_package_fraction", 0.75)
            .finish();
        JsonObject::new()
            .str("schema", "hmm-serve-sim-v1")
            .str("workload", "pgbench")
            .raw("config", &config)
            .raw("access", &access)
            .raw("controller", &controller_json(&sample_controller()))
            .raw("swaps", &swaps)
            .f64("normalized_power", 0.5)
            .u64("digest", u64::MAX)
            .finish()
    }

    #[test]
    fn stats_round_trip_exactly() {
        let c = sample_controller();
        let parsed = controller_from_json(&jsonin::parse(&controller_json(&c)).unwrap()).unwrap();
        assert_eq!(parsed, c);
        let s = sample_swaps();
        let parsed = swaps_from_json(&jsonin::parse(&swaps_json(&s)).unwrap()).unwrap();
        assert_eq!(parsed, s);
    }

    #[test]
    fn totals_fold_bodies_with_and_without_swaps() {
        let mut t = Totals::default();
        t.absorb_body(&sample_body(1, true)).unwrap();
        t.absorb_body(&sample_body(2, false)).unwrap();
        assert_eq!(t.cells, 2);
        assert_eq!(t.controller.demand_on_lines, 20, "two bodies merged");
        assert_eq!(t.swaps.triggered, 4, "swap-free body adds nothing");
    }

    #[test]
    fn figures_doc_is_deterministic_and_embeds_bodies_verbatim() {
        let bodies = vec![sample_body(1, true), sample_body(2, false)];
        let a = figures_doc(&bodies).unwrap();
        let b = figures_doc(&bodies).unwrap();
        assert_eq!(a, b);
        // The full-range u64 digest survives because bodies are embedded
        // textually, never re-rendered through f64.
        assert!(a.contains(&u64::MAX.to_string()));
        let doc = jsonin::parse(&a).unwrap();
        assert_eq!(doc.get("schema").unwrap().as_str(), Some(FIGURES_SCHEMA));
        assert_eq!(doc.get("cells").unwrap().as_f64(), Some(2.0));
        let rows = doc.get("figure_rows").unwrap().as_arr().unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].get("page_bytes").unwrap().as_f64(), Some(65536.0));
        assert_eq!(rows[0].get("mean_latency_cycles").unwrap().as_f64(), Some(123.5));
        assert_eq!(rows[1].get("seed").unwrap().as_f64(), Some(2.0));
        assert_eq!(doc.get("results").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn malformed_bodies_are_rejected_with_cell_context() {
        let err = figures_doc(&["{}".to_string()]).unwrap_err();
        assert!(err.contains("cell 0"), "{err}");
    }
}
