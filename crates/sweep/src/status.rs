//! Sweep accounting: per-cell states and the identities that must hold
//! over them.
//!
//! The single-node serving layer already lives by counter identities
//! (`accepted == cache_hits + cache_misses`); a sweep extends the same
//! discipline across cells and, in coordinator mode, across peers. The
//! ISSUE's informal identity — *cells == done + failed + stolen_retries
//! − dupes* — is formalised here as three exact equations:
//!
//! * `expanded == unique + deduped` — every cross-product cell is
//!   either tracked once or folded into an identical earlier cell;
//! * `unique == pending + running + done + failed` — a tracked cell is
//!   always in exactly one state;
//! * at quiescence, `dispatched == done + failed + retries` — every
//!   dispatch attempt concludes, and an attempt cut short by peer death
//!   or work stealing is re-dispatched (counted in `retries`, with the
//!   stolen subset broken out).
//!
//! `hmm-loadgen --check` re-verifies all three from the wire document.

use hmm_telemetry::jsonin::Json;
use hmm_telemetry::JsonObject;

/// Lifecycle of one deduplicated sweep cell. Transitions only move
/// forward (pending → running → done/failed), which is what makes the
/// progress report monotonic; a retried cell re-enters `pending`
/// without leaving the terminal states' counts (it was never in them).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellState {
    /// Not yet dispatched (or re-queued after a failed dispatch).
    Pending,
    /// Dispatched to a worker or a peer.
    Running,
    /// Result body available.
    Done,
    /// Permanently failed (simulator panic, or retry budget exhausted).
    Failed,
}

impl CellState {
    /// Wire label of the state.
    pub fn label(&self) -> &'static str {
        match self {
            CellState::Pending => "pending",
            CellState::Running => "running",
            CellState::Done => "done",
            CellState::Failed => "failed",
        }
    }
}

/// Counter snapshot of one sweep.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepCounts {
    /// Cells in the raw cross product of the spec.
    pub expanded: u64,
    /// Expanded cells folded into an identical earlier cell (same
    /// canonical hash).
    pub deduped: u64,
    /// Distinct cells tracked (`expanded - deduped`).
    pub unique: u64,
    /// Unique cells not yet dispatched.
    pub pending: u64,
    /// Unique cells currently dispatched.
    pub running: u64,
    /// Unique cells with a result body.
    pub done: u64,
    /// Unique cells permanently failed.
    pub failed: u64,
    /// Dispatch attempts started (local enqueue or peer RPC).
    pub dispatched: u64,
    /// Dispatch attempts that ended without concluding their cell and
    /// were re-queued (peer death, transport error, steal).
    pub retries: u64,
    /// The subset of `retries` due to work stealing from a straggler.
    pub stolen: u64,
}

impl SweepCounts {
    /// Verify the sweep identities. `quiescent` additionally asserts
    /// the dispatch ledger balances, which only holds once nothing is
    /// pending or running.
    pub fn check(&self, quiescent: bool) -> Result<(), String> {
        if self.expanded != self.unique + self.deduped {
            return Err(format!(
                "expanded ({}) != unique ({}) + deduped ({})",
                self.expanded, self.unique, self.deduped
            ));
        }
        let states = self.pending + self.running + self.done + self.failed;
        if self.unique != states {
            return Err(format!(
                "unique ({}) != pending+running+done+failed ({states})",
                self.unique
            ));
        }
        if self.stolen > self.retries {
            return Err(format!("stolen ({}) exceeds retries ({})", self.stolen, self.retries));
        }
        if quiescent {
            if self.pending + self.running != 0 {
                return Err(format!(
                    "quiescent sweep still has {} pending / {} running",
                    self.pending, self.running
                ));
            }
            if self.dispatched != self.done + self.failed + self.retries {
                return Err(format!(
                    "dispatched ({}) != done ({}) + failed ({}) + retries ({})",
                    self.dispatched, self.done, self.failed, self.retries
                ));
            }
        }
        Ok(())
    }

    /// Render the counts with stable field names.
    pub fn to_json(&self) -> String {
        JsonObject::new()
            .u64("expanded", self.expanded)
            .u64("deduped", self.deduped)
            .u64("unique", self.unique)
            .u64("pending", self.pending)
            .u64("running", self.running)
            .u64("done", self.done)
            .u64("failed", self.failed)
            .u64("dispatched", self.dispatched)
            .u64("retries", self.retries)
            .u64("stolen", self.stolen)
            .finish()
    }

    /// Parse counts back from a status document's `counts` object.
    pub fn from_json(v: &Json) -> Result<Self, String> {
        let get = |name: &str| -> Result<u64, String> {
            let f = v
                .get(name)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("missing sweep count '{name}'"))?;
            if f.fract() != 0.0 || f < 0.0 {
                return Err(format!("sweep count '{name}' is not a counter: {f}"));
            }
            Ok(f as u64)
        };
        Ok(SweepCounts {
            expanded: get("expanded")?,
            deduped: get("deduped")?,
            unique: get("unique")?,
            pending: get("pending")?,
            running: get("running")?,
            done: get("done")?,
            failed: get("failed")?,
            dispatched: get("dispatched")?,
            retries: get("retries")?,
            stolen: get("stolen")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmm_telemetry::jsonin;

    fn finished() -> SweepCounts {
        SweepCounts {
            expanded: 12,
            deduped: 2,
            unique: 10,
            pending: 0,
            running: 0,
            done: 9,
            failed: 1,
            dispatched: 13,
            retries: 3,
            stolen: 1,
        }
    }

    #[test]
    fn identities_hold_for_a_finished_sweep() {
        finished().check(true).unwrap();
    }

    #[test]
    fn mid_flight_counts_skip_the_dispatch_ledger() {
        let mid =
            SweepCounts { pending: 4, running: 2, done: 4, failed: 0, dispatched: 7, ..finished() };
        mid.check(false).unwrap();
        assert!(mid.check(true).is_err(), "not quiescent yet");
    }

    #[test]
    fn violations_are_reported() {
        let mut broken = finished();
        broken.deduped += 1;
        assert!(broken.check(false).unwrap_err().contains("expanded"));

        let mut broken = finished();
        broken.done -= 1;
        assert!(broken.check(false).unwrap_err().contains("unique"));

        let mut broken = finished();
        broken.retries = 0;
        assert!(broken.check(false).unwrap_err().contains("stolen"));

        let mut broken = finished();
        broken.dispatched += 1;
        assert!(broken.check(true).unwrap_err().contains("dispatched"));
    }

    #[test]
    fn counts_round_trip_the_wire() {
        let c = finished();
        let doc = jsonin::parse(&c.to_json()).unwrap();
        assert_eq!(SweepCounts::from_json(&doc).unwrap(), c);
    }

    #[test]
    fn state_labels_are_stable() {
        assert_eq!(CellState::Pending.label(), "pending");
        assert_eq!(CellState::Running.label(), "running");
        assert_eq!(CellState::Done.label(), "done");
        assert_eq!(CellState::Failed.label(), "failed");
    }
}
