//! Grid-spec expansion: one compact JSON object in, one deterministic
//! list of per-cell request bodies out.
//!
//! A sweep spec looks like a `POST /v1/simulate` body in which any
//! field may be a *list* of values instead of a single value:
//!
//! ```json
//! {"workload": ["pgbench", "mg"], "mode": "live",
//!  "page": ["4K", "16K", "64K"], "interval": [1000, 10000],
//!  "accesses": 60000, "scale": 64}
//! ```
//!
//! Expansion takes the cross product of every list-valued field, in a
//! fixed field order with the last-listed axis cycling fastest, so the
//! cell order is a pure function of the spec. Each cell is rendered as
//! a self-contained request body; resolving, validating and
//! deduplicating cells (two spellings of one configuration share a
//! canonical hash) is the caller's job, via the same request parser
//! that guards `POST /v1/simulate`.
//!
//! The expander does not interpret values at all — it only arranges
//! them — so it can never disagree with the request parser about what a
//! size or a fault spec means.

use hmm_telemetry::json::{f64_to_json, push_str_escaped};
use hmm_telemetry::jsonin::{self, Json};
use hmm_telemetry::{JsonArray, JsonObject};

/// The request fields a sweep may set, in expansion order (the last
/// field cycles fastest). `timeout_ms` is deliberately absent: a sweep
/// is always asynchronous, so a per-cell wait deadline is meaningless.
pub const FIELDS: [&str; 19] = [
    "workload",
    "mode",
    "page",
    "page_shift",
    "sub_block",
    "sub_block_shift",
    "interval",
    "accesses",
    "warmup",
    "scale",
    "seed",
    "on_package",
    "total",
    "os_assisted",
    "policy",
    "scheme",
    "migration",
    "faults",
    "fault_seed",
];

/// Render a parsed [`Json`] value back to text using the workspace's
/// canonical spellings (shortest-round-trip floats, RFC 8259 string
/// escapes). Objects keep their field order.
pub fn render_json(v: &Json) -> String {
    match v {
        Json::Null => "null".into(),
        Json::Bool(b) => if *b { "true" } else { "false" }.into(),
        Json::Num(n) => f64_to_json(*n),
        Json::Str(s) => {
            let mut out = String::new();
            push_str_escaped(&mut out, s);
            out
        }
        Json::Arr(items) => {
            let mut arr = JsonArray::new();
            for item in items {
                arr = arr.raw(&render_json(item));
            }
            arr.finish()
        }
        Json::Obj(fields) => {
            let mut obj = JsonObject::new();
            for (k, val) in fields {
                obj = obj.raw(k, &render_json(val));
            }
            obj.finish()
        }
    }
}

/// Expand a grid spec into per-cell request bodies.
///
/// Errors on malformed JSON, unknown or repeated fields, empty axes and
/// grids larger than `max_cells` (the size is computed before any cell
/// is materialised, so a hostile spec cannot balloon memory).
pub fn expand(spec_text: &str, max_cells: usize) -> Result<Vec<String>, String> {
    let doc = jsonin::parse(spec_text).map_err(|e| format!("invalid JSON: {e}"))?;
    let Json::Obj(fields) = &doc else {
        return Err("sweep spec must be a JSON object".into());
    };

    // Reorder the spec's fields into expansion order, validating names.
    let mut axes: Vec<(&str, Vec<&Json>)> = Vec::new();
    for &name in &FIELDS {
        let mut hits = fields.iter().filter(|(k, _)| k == name);
        let Some((_, value)) = hits.next() else { continue };
        if hits.next().is_some() {
            return Err(format!("field '{name}' appears more than once"));
        }
        let values: Vec<&Json> = match value {
            Json::Arr(items) => items.iter().collect(),
            single => vec![single],
        };
        if values.is_empty() {
            return Err(format!("field '{name}' is an empty list"));
        }
        axes.push((name, values));
    }
    for (name, _) in fields {
        if !FIELDS.contains(&name.as_str()) {
            return Err(format!("unknown sweep field '{name}'"));
        }
    }

    let cells = axes
        .iter()
        .map(|(_, v)| v.len())
        .try_fold(1usize, |acc, n| acc.checked_mul(n).filter(|&c| c <= max_cells));
    let Some(cells) = cells else {
        return Err(format!("grid exceeds the {max_cells}-cell limit"));
    };

    // Odometer over the axes, rightmost digit fastest.
    let mut out = Vec::with_capacity(cells);
    let mut digits = vec![0usize; axes.len()];
    loop {
        let mut body = JsonObject::new();
        for ((name, values), &d) in axes.iter().zip(&digits) {
            body = body.raw(name, &render_json(values[d]));
        }
        out.push(body.finish());
        let mut pos = axes.len();
        loop {
            if pos == 0 {
                return Ok(out);
            }
            pos -= 1;
            digits[pos] += 1;
            if digits[pos] < axes[pos].1.len() {
                break;
            }
            digits[pos] = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_spec_expands_to_one_cell() {
        let cells = expand(r#"{"workload":"pgbench","mode":"live"}"#, 10).unwrap();
        assert_eq!(cells, vec![r#"{"workload":"pgbench","mode":"live"}"#.to_string()]);
    }

    #[test]
    fn cross_product_order_is_deterministic() {
        let cells =
            expand(r#"{"mode":["live","n-1"],"workload":["pgbench"],"interval":[1000,2000]}"#, 10)
                .unwrap();
        // Fixed field order (workload before mode before interval), last
        // axis fastest.
        assert_eq!(
            cells,
            vec![
                r#"{"workload":"pgbench","mode":"live","interval":1000}"#,
                r#"{"workload":"pgbench","mode":"live","interval":2000}"#,
                r#"{"workload":"pgbench","mode":"n-1","interval":1000}"#,
                r#"{"workload":"pgbench","mode":"n-1","interval":2000}"#,
            ]
        );
    }

    #[test]
    fn values_pass_through_untouched() {
        let cells = expand(
            r#"{"workload":"pgbench","mode":"live","page":["64K",65536],
                "os_assisted":true,"faults":{"seed":1},"scale":6.5}"#,
            10,
        )
        .unwrap();
        assert_eq!(cells.len(), 2);
        assert!(cells[0].contains(r#""page":"64K""#), "{}", cells[0]);
        assert!(cells[1].contains(r#""page":65536"#), "{}", cells[1]);
        for c in &cells {
            assert!(c.contains(r#""os_assisted":true"#));
            assert!(c.contains(r#""faults":{"seed":1}"#));
            assert!(c.contains(r#""scale":6.5"#));
        }
    }

    #[test]
    fn scheme_and_migration_axes_expand_like_any_other() {
        let cells = expand(
            r#"{"workload":"pgbench","mode":"live","scheme":["hetero","pcm"],"migration":"mlq"}"#,
            10,
        )
        .unwrap();
        assert_eq!(
            cells,
            vec![
                r#"{"workload":"pgbench","mode":"live","scheme":"hetero","migration":"mlq"}"#,
                r#"{"workload":"pgbench","mode":"live","scheme":"pcm","migration":"mlq"}"#,
            ]
        );
    }

    #[test]
    fn enforces_the_cell_limit_before_materialising() {
        let spec = r#"{"workload":["a","b","c","d"],"seed":[1,2,3,4],"interval":[1,2,3,4]}"#;
        assert!(expand(spec, 64).is_ok());
        let err = expand(spec, 63).unwrap_err();
        assert!(err.contains("63-cell limit"), "{err}");
    }

    #[test]
    fn rejects_malformed_specs() {
        for (spec, why) in [
            ("[", "invalid JSON"),
            ("[1]", "must be a JSON object"),
            (r#"{"workload":[]}"#, "empty list"),
            (r#"{"workload":"a","intreval":1}"#, "unknown sweep field"),
            (r#"{"workload":"a","timeout_ms":5}"#, "unknown sweep field"),
            (r#"{"workload":"a","workload":"b"}"#, "more than once"),
        ] {
            let err = expand(spec, 10).unwrap_err();
            assert!(err.contains(why), "{spec}: got '{err}', wanted '{why}'");
        }
    }

    #[test]
    fn render_json_round_trips() {
        let text = r#"{"a":[1,2.5,"x\n",null,true],"b":{"c":false}}"#;
        let v = jsonin::parse(text).unwrap();
        assert_eq!(render_json(&v), text);
    }
}
