//! Sweep orchestration for the paper's parameter grids (Figs. 11–16).
//!
//! The headline results of the SC'10 paper are *sweeps*: cross products
//! over migration granularity, swap interval, workload and mode. This
//! crate turns a compact grid spec into concrete work and turns the
//! work's results back into one exact figures document:
//!
//! * [`spec`] — expand a JSON grid spec (lists per request field) into a
//!   deterministic list of per-cell request bodies,
//! * [`ring`] — consistent hashing of cells onto peer servers for the
//!   coordinator topology,
//! * [`status`] — per-cell state and the sweep accounting identities,
//! * [`aggregate`] — fold `hmm-serve-sim-v1` result bodies into merged
//!   `ControllerStats`/`SwapStats` and render the
//!   `hmm-sweep-figures-v1` document.
//!
//! Everything here is pure data-in/data-out: no sockets, no threads, no
//! clocks. The serving layer (`hmm-serve`) wires these pieces to its
//! job queue, result cache and peer RPC client; `hmm-bench sweep` wires
//! the very same pieces to in-process simulation, which is why the two
//! paths can be compared byte for byte.

#![warn(missing_docs)]

pub mod aggregate;
pub mod ring;
pub mod spec;
pub mod status;

pub use aggregate::{controller_json, swaps_json, Totals};
pub use ring::Ring;
pub use spec::expand;
pub use status::{CellState, SweepCounts};
