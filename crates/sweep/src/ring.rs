//! Consistent hashing of sweep cells onto peer servers.
//!
//! The coordinator shards cells by their canonical config hash — the
//! same 64-bit identity the result cache keys on — so one cell always
//! lands on the same peer for a given peer set, and identical cells
//! from different sweeps (or resubmissions) hit that peer's warm cache.
//! Consistent hashing keeps the mapping stable under churn: when a peer
//! dies, only the cells it owned move (to their next point on the
//! ring); every other assignment is untouched, preserving cache
//! locality across the failure.
//!
//! Each peer contributes a fixed number of virtual points, hashed from
//! its address, so the mapping is a pure function of (peer set, key) —
//! any process that knows the peer list computes the same shard, with
//! no coordination traffic.

use hmm_sim_base::FxHasher;
use std::hash::Hasher;

/// Virtual points per peer. 64 keeps the expected imbalance across a
/// handful of peers within a few percent while the ring stays tiny.
const VNODES: u32 = 64;

/// splitmix64 finaliser. FxHash alone is too weak here: peer addresses
/// differ in a digit or two, and its multiplicative mixing leaves their
/// points clustered, which skews shard sizes badly. A full-avalanche
/// finaliser spreads the points uniformly.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn hash_point(addr: &str, vnode: u32) -> u64 {
    let mut h = FxHasher::default();
    h.write(addr.as_bytes());
    h.write_u32(vnode);
    mix(h.finish())
}

/// A consistent-hash ring over a fixed peer list.
#[derive(Debug, Clone)]
pub struct Ring {
    peers: Vec<String>,
    /// `(point, peer index)`, sorted by point.
    points: Vec<(u64, usize)>,
}

impl Ring {
    /// Build the ring. The peer list order is irrelevant to the mapping
    /// (points are hashed from addresses), but indices returned by
    /// [`Ring::assign`] refer to this list.
    pub fn new(peers: &[String]) -> Self {
        let mut points: Vec<(u64, usize)> = peers
            .iter()
            .enumerate()
            .flat_map(|(i, p)| (0..VNODES).map(move |v| (hash_point(p, v), i)))
            .collect();
        points.sort_unstable();
        Ring { peers: peers.to_vec(), points }
    }

    /// The peer list the ring was built over.
    pub fn peers(&self) -> &[String] {
        &self.peers
    }

    /// The peer owning `key` when every peer is alive.
    pub fn assign(&self, key: u64) -> usize {
        self.assign_among(key, &vec![true; self.peers.len()])
            .expect("ring must have at least one peer")
    }

    /// The peer owning `key` among the currently-alive subset: the
    /// first alive peer at or after the key's point on the ring. Dead
    /// peers' cells fall through to their successors; everyone else's
    /// assignment is unchanged. Returns `None` if nothing is alive.
    pub fn assign_among(&self, key: u64, alive: &[bool]) -> Option<usize> {
        if self.points.is_empty() || !alive.iter().any(|&a| a) {
            return None;
        }
        let start = self.points.partition_point(|&(p, _)| p < key);
        (0..self.points.len())
            .map(|off| self.points[(start + off) % self.points.len()].1)
            .find(|&peer| alive.get(peer).copied().unwrap_or(false))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn peers(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("127.0.0.1:{}", 9000 + i)).collect()
    }

    #[test]
    fn mapping_is_deterministic_and_order_independent() {
        let a = Ring::new(&peers(3));
        let mut shuffled = peers(3);
        shuffled.rotate_left(1);
        let b = Ring::new(&shuffled);
        for key in (0..1000u64).map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15)) {
            let pa = &a.peers()[a.assign(key)];
            let pb = &b.peers()[b.assign(key)];
            assert_eq!(pa, pb, "assignment must depend on addresses, not list order");
        }
    }

    #[test]
    fn death_moves_only_the_dead_peers_cells() {
        let ring = Ring::new(&peers(3));
        let alive_all = [true, true, true];
        let alive_no1 = [true, false, true];
        for key in (0..2000u64).map(|i| i.wrapping_mul(0xD134_2543_DE82_EF95)) {
            let before = ring.assign_among(key, &alive_all).unwrap();
            let after = ring.assign_among(key, &alive_no1).unwrap();
            if before != 1 {
                assert_eq!(before, after, "surviving peers' cells must not move");
            } else {
                assert_ne!(after, 1);
            }
        }
    }

    #[test]
    fn load_is_roughly_balanced() {
        let ring = Ring::new(&peers(3));
        let mut counts = [0u64; 3];
        let n = 30_000u64;
        for key in (0..n).map(|i| i.wrapping_mul(0x2545_F491_4F6C_DD1D)) {
            counts[ring.assign(key)] += 1;
        }
        for &c in &counts {
            let share = c as f64 / n as f64;
            assert!((0.15..=0.55).contains(&share), "imbalanced shares {counts:?}");
        }
    }

    #[test]
    fn all_dead_yields_none() {
        let ring = Ring::new(&peers(2));
        assert_eq!(ring.assign_among(7, &[false, false]), None);
    }
}
