//! Minimal data parallelism for the experiment grids.
//!
//! The sweeps in `hmm-simulator` are embarrassingly parallel over
//! independent cells, so a scoped thread pool pulling chunks of indices
//! off an atomic counter covers everything the workspace needs without an
//! external runtime. Results come back in input order.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Chunks per worker thread: enough slack for dynamic balancing when cell
/// costs are uneven (a paper-scale cell next to a quick one), few enough
/// that per-chunk overhead stays negligible.
const CHUNKS_PER_THREAD: usize = 4;

/// Worker count [`par_map`] will use, probed once per process.
/// `available_parallelism` is not a cheap query on Linux — it re-reads
/// the cgroup cpu quota files every call — and `par_map` now sits on the
/// simulator's per-advance hot path, so probing inline would turn every
/// advance into filesystem traffic. Callers with a cheaper sequential
/// code path (one that avoids even building the `Vec` of items) can
/// check this and skip `par_map` entirely when it returns 1.
pub fn worker_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1))
}

/// Map `f` over `items` on up to `available_parallelism` threads,
/// returning results in input order.
///
/// Work is split into contiguous index chunks (≈ 4 per thread) handed out
/// by one atomic counter, so uneven cell costs still balance while the
/// synchronisation cost is per *chunk*, not per item: each worker locks an
/// input chunk once, maps it locally, and publishes the whole result chunk
/// with a second lock. Panics in `f` propagate after all threads join.
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let threads = worker_threads().min(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }

    let chunk_len = n.div_ceil(threads * CHUNKS_PER_THREAD).max(1);
    let n_chunks = n.div_ceil(chunk_len);

    // Input chunks wait behind one Mutex each; every chunk's result slot
    // is published exactly once, so the collect below never blocks.
    let mut items = items;
    let in_chunks: Vec<Mutex<Vec<T>>> = (0..n_chunks)
        .map(|c| {
            let take = chunk_len.min(items.len());
            let rest = items.split_off(take);
            debug_assert!(c + 1 < n_chunks || rest.is_empty());
            Mutex::new(std::mem::replace(&mut items, rest))
        })
        .collect();
    let out_chunks: Vec<Mutex<Vec<R>>> = (0..n_chunks).map(|_| Mutex::new(Vec::new())).collect();
    let next = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let c = next.fetch_add(1, Ordering::Relaxed);
                if c >= n_chunks {
                    break;
                }
                let chunk = std::mem::take(&mut *in_chunks[c].lock().unwrap());
                let mapped: Vec<R> = chunk.into_iter().map(&f).collect();
                *out_chunks[c].lock().unwrap() = mapped;
            });
        }
    });

    let mut out = Vec::with_capacity(n);
    for m in out_chunks {
        out.append(&mut m.into_inner().unwrap());
    }
    assert_eq!(out.len(), n, "worker skipped a chunk");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = par_map(items, |x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn preserves_order_across_chunk_boundaries() {
        // Sizes straddling every chunking edge case: empty, one, exactly
        // one chunk, one more than a chunk, many chunks, prime sizes.
        for n in [0usize, 1, 2, 3, 7, 31, 32, 33, 63, 64, 65, 128, 1009] {
            let items: Vec<usize> = (0..n).collect();
            let out = par_map(items, |x| x + 1);
            assert_eq!(out, (1..=n).collect::<Vec<_>>(), "n = {n}");
        }
    }

    #[test]
    fn handles_empty_and_single() {
        assert_eq!(par_map(Vec::<u32>::new(), |x| x), Vec::<u32>::new());
        assert_eq!(par_map(vec![7u32], |x| x + 1), vec![8]);
    }

    #[test]
    fn runs_non_copy_items() {
        let items: Vec<String> = (0..20).map(|i| format!("item-{i}")).collect();
        let out = par_map(items, |s| s.len());
        assert!(out.iter().all(|&l| l >= 6));
    }

    #[test]
    fn uneven_costs_balance() {
        // A few very slow items early should not serialise the rest.
        let items: Vec<u64> = (0..64).collect();
        let out = par_map(items, |x| {
            if x < 4 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            x * x
        });
        assert_eq!(out, (0..64).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn panic_in_mapper_propagates() {
        let result = std::panic::catch_unwind(|| {
            par_map((0..32).collect::<Vec<u64>>(), |x| {
                if x == 17 {
                    panic!("boom");
                }
                x
            })
        });
        assert!(result.is_err(), "a worker panic must propagate to the caller");
    }
}
