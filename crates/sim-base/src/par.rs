//! Minimal data parallelism for the experiment grids.
//!
//! The sweeps in `hmm-simulator` are embarrassingly parallel over
//! independent cells, so a scoped thread pool pulling indices off an
//! atomic counter covers everything the workspace needs without an
//! external runtime. Results come back in input order.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Map `f` over `items` on up to `available_parallelism` threads,
/// returning results in input order.
///
/// Work is distributed dynamically (one atomic fetch per item), so uneven
/// cell costs — a paper-scale cell next to a quick one — still balance.
/// Panics in `f` propagate after all threads join.
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let threads = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1).min(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }

    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let out: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i].lock().unwrap().take().expect("slot taken twice");
                let result = f(item);
                *out[i].lock().unwrap() = Some(result);
            });
        }
    });

    out.into_iter().map(|m| m.into_inner().unwrap().expect("worker skipped a slot")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = par_map(items, |x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn handles_empty_and_single() {
        assert_eq!(par_map(Vec::<u32>::new(), |x| x), Vec::<u32>::new());
        assert_eq!(par_map(vec![7u32], |x| x + 1), vec![8]);
    }

    #[test]
    fn runs_non_copy_items() {
        let items: Vec<String> = (0..20).map(|i| format!("item-{i}")).collect();
        let out = par_map(items, |s| s.len());
        assert!(out.iter().all(|&l| l >= 6));
    }
}
