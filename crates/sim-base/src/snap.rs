//! Byte-level primitives for deterministic state snapshots.
//!
//! A snapshot serializes the *dynamic* state of a component; immutable
//! configuration (device profiles, timing tables, workload structure) is
//! rebuilt from the run configuration on load. Each component writes one
//! tagged, length-prefixed section, so a reader can verify it consumed
//! exactly the bytes the writer produced — a mismatch is detected at the
//! section boundary instead of corrupting every field after it.
//!
//! Encoding is fixed-width little-endian throughout: the same state
//! always produces the same bytes, which is what makes a snapshot's
//! checksum a canonical content hash.

/// Snapshot (de)serialization error: a human-readable description of the
/// first inconsistency found. Snapshots are validated data, not trusted
/// data — every length is bounds-checked before use so a torn or
/// corrupted file fails cleanly instead of panicking or allocating wildly.
pub type SnapResult<T> = Result<T, String>;

/// FNV-style mixing used for snapshot checksums: the workspace `FxHasher`
/// folded through a SplitMix64 finalizer so single-bit corruption
/// avalanches through the digest.
pub fn snap_hash(bytes: &[u8]) -> u64 {
    use crate::fxhash::FxHasher;
    use std::hash::Hasher;
    let mut h = FxHasher::default();
    h.write(bytes);
    let mut z = h.finish().wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Append-only snapshot encoder.
#[derive(Debug, Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
    /// Patch positions of open sections (length placeholders).
    open: Vec<usize>,
}

impl SnapWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Finish, returning the encoded bytes. Panics if a section is still
    /// open (a serializer bug, not a runtime condition).
    pub fn into_bytes(self) -> Vec<u8> {
        assert!(self.open.is_empty(), "unclosed snapshot section");
        self.buf
    }

    /// Write a raw byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Write a bool as one byte.
    pub fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Write a little-endian u32.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a little-endian u64.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a little-endian u128.
    pub fn u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a usize as u64 (platform-independent encoding).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Write an f64 by bit pattern (exact round trip).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Write a length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) {
        self.u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Write a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    /// Write a length-prefixed sequence via `f` per element.
    pub fn seq<T>(&mut self, items: &[T], mut f: impl FnMut(&mut Self, &T)) {
        self.u64(items.len() as u64);
        for it in items {
            f(self, it);
        }
    }

    /// Write a slice of u64s.
    pub fn u64s(&mut self, items: &[u64]) {
        self.seq(items, |w, &v| w.u64(v));
    }

    /// Open a tagged, length-prefixed section. Must be balanced by
    /// [`SnapWriter::end_section`].
    pub fn section(&mut self, tag: &[u8; 4]) {
        self.buf.extend_from_slice(tag);
        self.open.push(self.buf.len());
        self.u32(0); // length placeholder
    }

    /// Close the innermost open section, patching its length.
    pub fn end_section(&mut self) {
        let mark = self.open.pop().expect("end_section without section");
        let len = (self.buf.len() - mark - 4) as u32;
        self.buf[mark..mark + 4].copy_from_slice(&len.to_le_bytes());
    }
}

/// Bounds-checked snapshot decoder over a byte slice.
#[derive(Debug)]
pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
    /// End offsets of open sections (innermost last).
    open: Vec<usize>,
}

impl<'a> SnapReader<'a> {
    /// A reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0, open: Vec::new() }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Verify every byte was consumed.
    pub fn finish(self) -> SnapResult<()> {
        if self.pos != self.buf.len() {
            return Err(format!("{} trailing bytes after snapshot payload", self.remaining()));
        }
        Ok(())
    }

    fn take(&mut self, n: usize) -> SnapResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(format!("snapshot truncated: need {n} bytes, have {}", self.remaining()));
        }
        if let Some(&end) = self.open.last() {
            if self.pos + n > end {
                return Err("snapshot section overrun".into());
            }
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> SnapResult<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read a bool (must be 0 or 1).
    pub fn bool(&mut self) -> SnapResult<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(format!("invalid bool byte {v:#x}")),
        }
    }

    /// Read a little-endian u32.
    pub fn u32(&mut self) -> SnapResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a little-endian u64.
    pub fn u64(&mut self) -> SnapResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a little-endian u128.
    pub fn u128(&mut self) -> SnapResult<u128> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().unwrap()))
    }

    /// Read a usize (encoded as u64; must fit).
    pub fn usize(&mut self) -> SnapResult<usize> {
        usize::try_from(self.u64()?).map_err(|_| "usize overflow in snapshot".to_string())
    }

    /// Read an f64 by bit pattern.
    pub fn f64(&mut self) -> SnapResult<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read a length-prefixed byte string.
    pub fn bytes(&mut self) -> SnapResult<&'a [u8]> {
        let n = self.usize()?;
        self.take(n)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> SnapResult<String> {
        String::from_utf8(self.bytes()?.to_vec()).map_err(|_| "invalid UTF-8 string".to_string())
    }

    /// Read a sequence length, bounds-checked against the remaining bytes
    /// (each element costs at least `min_elem_bytes`), so a corrupted
    /// length cannot trigger a huge allocation.
    pub fn seq_len(&mut self, min_elem_bytes: usize) -> SnapResult<usize> {
        let n = self.usize()?;
        if n.saturating_mul(min_elem_bytes.max(1)) > self.remaining() {
            return Err(format!("sequence length {n} exceeds remaining snapshot bytes"));
        }
        Ok(n)
    }

    /// Read a length-prefixed sequence via `f` per element.
    pub fn seq<T>(&mut self, mut f: impl FnMut(&mut Self) -> SnapResult<T>) -> SnapResult<Vec<T>> {
        let n = self.seq_len(1)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(f(self)?);
        }
        Ok(out)
    }

    /// Read a sequence of u64s.
    pub fn u64s(&mut self) -> SnapResult<Vec<u64>> {
        let n = self.seq_len(8)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.u64()?);
        }
        Ok(out)
    }

    /// Enter a tagged section, verifying the tag. Must be balanced by
    /// [`SnapReader::end_section`].
    pub fn section(&mut self, tag: &[u8; 4]) -> SnapResult<()> {
        let got = self.take(4)?;
        if got != tag {
            return Err(format!(
                "snapshot section mismatch: expected {:?}, found {:?}",
                String::from_utf8_lossy(tag),
                String::from_utf8_lossy(got)
            ));
        }
        let len = self.u32()? as usize;
        if len > self.remaining() {
            return Err(format!("section {:?} overruns snapshot", String::from_utf8_lossy(tag)));
        }
        self.open.push(self.pos + len);
        Ok(())
    }

    /// Leave the innermost section, verifying it was consumed exactly.
    pub fn end_section(&mut self) -> SnapResult<()> {
        let end = self.open.pop().ok_or("end_section without section")?;
        if self.pos != end {
            return Err(format!("section under-read: {} bytes left", end - self.pos));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars_and_sections() {
        let mut w = SnapWriter::new();
        w.section(b"test");
        w.u8(7);
        w.bool(true);
        w.u32(0xdead_beef);
        w.u64(u64::MAX - 3);
        w.u128(u128::MAX - 9);
        w.f64(0.125);
        w.str("hello");
        w.u64s(&[1, 2, 3]);
        w.end_section();
        let bytes = w.into_bytes();

        let mut r = SnapReader::new(&bytes);
        r.section(b"test").unwrap();
        assert_eq!(r.u8().unwrap(), 7);
        assert!(r.bool().unwrap());
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.u128().unwrap(), u128::MAX - 9);
        assert_eq!(r.f64().unwrap(), 0.125);
        assert_eq!(r.str().unwrap(), "hello");
        assert_eq!(r.u64s().unwrap(), vec![1, 2, 3]);
        r.end_section().unwrap();
        r.finish().unwrap();
    }

    #[test]
    fn wrong_tag_rejected() {
        let mut w = SnapWriter::new();
        w.section(b"aaaa");
        w.u64(1);
        w.end_section();
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert!(r.section(b"bbbb").is_err());
    }

    #[test]
    fn under_read_section_rejected() {
        let mut w = SnapWriter::new();
        w.section(b"aaaa");
        w.u64(1);
        w.u64(2);
        w.end_section();
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        r.section(b"aaaa").unwrap();
        r.u64().unwrap();
        assert!(r.end_section().is_err(), "8 unread bytes must be detected");
    }

    #[test]
    fn truncation_rejected_without_panic() {
        let mut w = SnapWriter::new();
        w.section(b"aaaa");
        w.u64s(&[1, 2, 3, 4]);
        w.end_section();
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = SnapReader::new(&bytes[..cut]);
            let res = r.section(b"aaaa").and_then(|()| r.u64s().map(|_| ()));
            assert!(res.is_err(), "prefix of {cut} bytes must fail cleanly");
        }
    }

    #[test]
    fn corrupt_length_cannot_allocate_wildly() {
        let mut w = SnapWriter::new();
        w.u64(u64::MAX / 2); // absurd sequence length
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert!(r.u64s().is_err());
    }

    #[test]
    fn snap_hash_avalanches() {
        let a = snap_hash(b"snapshot payload");
        let b = snap_hash(b"snapshot payloae");
        assert_ne!(a, b);
        assert_ne!(a & 0xffff_ffff, b & 0xffff_ffff, "low bits must differ too");
    }
}
