//! Foundations shared by every crate in the heterogeneous-main-memory
//! reproduction of Dong et al., *"Simple but Effective Heterogeneous Main
//! Memory with On-Chip Memory Controller Support"* (SC 2010).
//!
//! This crate deliberately contains no simulation logic. It provides the
//! vocabulary the rest of the workspace is written in:
//!
//! * [`cycles`] — the CPU-cycle time base (3.2 GHz in the paper) and
//!   conversions from wall-clock/DRAM-clock units.
//! * [`addr`] — strongly-typed physical and machine addresses, macro-page
//!   and sub-block arithmetic. The extra *physical → machine* indirection is
//!   the paper's core idea, so the type system enforces which address space a
//!   value lives in.
//! * [`config`] — the Table II/Table III machine description (latencies,
//!   capacities, macro-page geometry) with validation.
//! * [`rng`] — a small, deterministic xoshiro256** PRNG so traces are
//!   reproducible across platforms and toolchain bumps.
//! * [`fxhash`] — a deterministic integer-key hasher for the simulator's
//!   hot-path bookkeeping maps (ids, tokens, slot indices).
//! * [`arena`] — an index-handle [`arena::Slab`] arena replacing
//!   hash maps for hot-path object lifetimes (in-flight migration legs),
//!   with an epoch-reset that keeps the warm allocation.
//! * [`par`] — a scoped-thread `par_map` for the embarrassingly parallel
//!   experiment grids.
//! * [`stats`] — running means, log-scaled histograms and latency-breakdown
//!   accumulators used by the simulator and the figure harness.
//! * [`snap`] — byte-level [`snap::SnapWriter`]/[`snap::SnapReader`]
//!   primitives for the deterministic snapshot/resume format (tagged,
//!   length-prefixed, bounds-checked sections).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod addr;
pub mod arena;
pub mod config;
pub mod cycles;
pub mod fxhash;
pub mod par;
pub mod rng;
pub mod snap;
pub mod stats;

pub use addr::{LineAddr, MachineAddr, MacroPageId, PhysAddr, SlotId, SubBlockId};
pub use arena::Slab;
pub use config::{LatencyConfig, MemoryGeometry, SimScale};
pub use cycles::Cycle;
pub use fxhash::{FxHashMap, FxHashSet, FxHasher};
pub use par::{par_map, worker_threads};
pub use rng::SimRng;
pub use snap::{SnapReader, SnapResult, SnapWriter};
pub use stats::{Histogram, LatencyBreakdown, RunningMean};
