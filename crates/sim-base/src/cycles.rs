//! The simulation time base.
//!
//! Everything in this workspace is measured in **CPU cycles** of the paper's
//! 3.2 GHz quad-core target (Table II). DRAM devices run on their own clock
//! (667 MHz for DDR3-1333), so DRAM timing parameters are converted to CPU
//! cycles once, at configuration time, via [`CpuClock::dram_to_cpu`].

/// A point in time or a duration, in CPU cycles.
///
/// `Cycle` is a plain `u64` alias rather than a newtype: the simulator does
/// heavy arithmetic on times in hot loops, and the paper's model never mixes
/// time units after configuration (all DRAM parameters are pre-converted), so
/// the newtype would cost ergonomics without catching real bugs.
pub type Cycle = u64;

/// CPU clock description used to convert between time domains.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuClock {
    /// Core frequency in MHz. The paper's target is 3200 MHz.
    pub cpu_mhz: u64,
    /// DRAM command-clock frequency in MHz. DDR3-1333 runs the command bus
    /// at 666 MHz (the "1333" is the DDR data rate).
    pub dram_mhz: u64,
}

impl Default for CpuClock {
    fn default() -> Self {
        Self { cpu_mhz: 3200, dram_mhz: 666 }
    }
}

impl CpuClock {
    /// Create a clock pair, validating that both frequencies are non-zero
    /// and that the CPU is not slower than the DRAM command clock (the
    /// simulator's conversions assume cpu >= dram, which holds for every
    /// configuration in the paper).
    pub fn new(cpu_mhz: u64, dram_mhz: u64) -> Result<Self, String> {
        if cpu_mhz == 0 || dram_mhz == 0 {
            return Err("clock frequencies must be non-zero".into());
        }
        if cpu_mhz < dram_mhz {
            return Err(format!(
                "cpu clock ({cpu_mhz} MHz) must be >= dram clock ({dram_mhz} MHz)"
            ));
        }
        Ok(Self { cpu_mhz, dram_mhz })
    }

    /// Convert a duration expressed in DRAM command-clock cycles to CPU
    /// cycles, rounding up (a command that takes *n* DRAM cycles occupies at
    /// least `ceil(n * cpu/dram)` CPU cycles).
    #[inline]
    pub fn dram_to_cpu(&self, dram_cycles: u64) -> Cycle {
        // ceil(dram_cycles * cpu_mhz / dram_mhz)
        (dram_cycles * self.cpu_mhz).div_ceil(self.dram_mhz)
    }

    /// Convert a duration in nanoseconds to CPU cycles, rounding up.
    #[inline]
    pub fn ns_to_cpu(&self, ns: u64) -> Cycle {
        (ns * self.cpu_mhz).div_ceil(1000)
    }

    /// Convert CPU cycles to nanoseconds (rounded down). Used only for
    /// reporting, never inside the timing model.
    #[inline]
    pub fn cpu_to_ns(&self, cycles: Cycle) -> u64 {
        cycles * 1000 / self.cpu_mhz
    }

    /// CPU cycles per DRAM command cycle, rounded up. DDR3-1333 under a
    /// 3.2 GHz core gives 5 CPU cycles per DRAM cycle (4.8 exact).
    #[inline]
    pub fn cpu_per_dram(&self) -> u64 {
        self.cpu_mhz.div_ceil(self.dram_mhz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = CpuClock::default();
        assert_eq!(c.cpu_mhz, 3200);
        assert_eq!(c.dram_mhz, 666);
    }

    #[test]
    fn dram_to_cpu_rounds_up() {
        let c = CpuClock::default();
        // 1 DRAM cycle = 4.80 CPU cycles -> 5.
        assert_eq!(c.dram_to_cpu(1), 5);
        // 9 DRAM cycles (tCL of DDR3-1333) = 43.2 -> 44 CPU cycles.
        assert_eq!(c.dram_to_cpu(9), 44);
        assert_eq!(c.dram_to_cpu(0), 0);
    }

    #[test]
    fn ns_conversion_round_trips_within_rounding() {
        let c = CpuClock::default();
        let cycles = c.ns_to_cpu(100);
        assert_eq!(cycles, 320);
        assert_eq!(c.cpu_to_ns(cycles), 100);
    }

    #[test]
    fn rejects_zero_and_inverted_clocks() {
        assert!(CpuClock::new(0, 666).is_err());
        assert!(CpuClock::new(3200, 0).is_err());
        assert!(CpuClock::new(500, 666).is_err());
        assert!(CpuClock::new(3200, 666).is_ok());
    }

    #[test]
    fn cpu_per_dram_is_five_for_paper_config() {
        assert_eq!(CpuClock::default().cpu_per_dram(), 5);
    }
}
