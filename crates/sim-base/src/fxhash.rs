//! A fast, deterministic hasher for the simulator's hot-path maps.
//!
//! The per-access and per-copy-line bookkeeping maps are keyed by small
//! integers (transaction ids, engine tokens, slot indices). The standard
//! library's default hasher is SipHash behind a per-process random seed —
//! robust against adversarial keys, but an order of magnitude slower than
//! needed for trusted integer keys, and it makes map iteration order vary
//! between processes. This is the Fx multiply-rotate hash used by rustc's
//! own interning tables (FxHasher), written out here because the container
//! image is offline and the workspace takes no external dependencies.
//!
//! Determinism note: the seed is a compile-time constant, so hashes — and
//! therefore map bucket layouts — are identical across runs and platforms
//! with the same word size. (No simulation result may depend on map
//! iteration order regardless; the determinism tests enforce that.)

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed through [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` keyed through [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-rotate hasher over machine words (rustc's `FxHasher`).
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_u128(&mut self, n: u128) {
        self.add(n as u64);
        self.add((n >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(0xdead_beef);
        b.write_u64(0xdead_beef);
        assert_eq!(a.finish(), b.finish());
        assert_ne!(a.finish(), 0, "hash must mix the input");
    }

    #[test]
    fn distinct_keys_usually_differ() {
        let hashes: FxHashSet<u64> = (0..10_000u64)
            .map(|k| {
                let mut h = FxHasher::default();
                h.write_u64(k);
                h.finish()
            })
            .collect();
        assert_eq!(hashes.len(), 10_000, "no collisions over a small integer range");
    }

    #[test]
    fn map_behaves_like_std() {
        let mut m: FxHashMap<(u64, u64), u32> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert((i, i * 7), i as u32);
        }
        for i in 0..1000u64 {
            assert_eq!(m.remove(&(i, i * 7)), Some(i as u32));
        }
        assert!(m.is_empty());
    }

    #[test]
    fn byte_slices_hash_consistently() {
        let mut a = FxHasher::default();
        a.write(b"hello world, this is a tail");
        let mut b = FxHasher::default();
        b.write(b"hello world, this is a tail");
        assert_eq!(a.finish(), b.finish());
    }
}
