//! Deterministic pseudo-random number generation for trace synthesis.
//!
//! Reproducibility of every figure matters more than statistical strength
//! here, so we ship a self-contained xoshiro256** implementation seeded via
//! SplitMix64. Its output is stable across platforms and Rust releases, and
//! it is the only randomness source in the workspace — property-style tests
//! fork it per case instead of pulling in an external RNG.

/// A deterministic xoshiro256** PRNG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SimRng {
    /// Seed the generator. Any seed (including 0) produces a full-period
    /// state thanks to the SplitMix64 expansion.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s =
            [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
        Self { s }
    }

    /// Next 64 uniformly random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform integer in `[0, bound)`. Uses the widening-multiply method
    /// (Lemire); bias is negligible for the bounds used in trace synthesis.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "below(0) is meaningless");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform integer in `[lo, hi)`.
    #[inline]
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo < hi);
        lo + self.below(hi - lo)
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }

    /// Serialize the generator state (snapshot/resume support).
    pub fn save_state(&self, w: &mut crate::snap::SnapWriter) {
        for &s in &self.s {
            w.u64(s);
        }
    }

    /// Restore a previously saved generator state.
    pub fn load_state(
        &mut self,
        r: &mut crate::snap::SnapReader<'_>,
    ) -> crate::snap::SnapResult<()> {
        for s in &mut self.s {
            *s = r.u64()?;
        }
        Ok(())
    }

    /// Fork a child generator that is decorrelated from `self` but fully
    /// determined by (parent seed, label). Used to give each workload stream
    /// its own independent sequence.
    pub fn fork(&self, label: u64) -> SimRng {
        let mut sm = self.s[0] ^ self.s[3] ^ label.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let s =
            [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
        SimRng { s }
    }
}

/// A Zipf(θ) sampler over `[0, n)` using the standard inverse-CDF table
/// construction. Zipfian popularity is how OLTP-style workloads (pgbench,
/// SPECjbb warehouses) concentrate heat on a few macro pages.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
    /// Guide table over the unit interval: `guide[j]` is the first index
    /// whose CDF value exceeds `j / G`, where `G = guide.len() - 1` is a
    /// power of two. A draw lands in `[j/G, (j+1)/G)`, so its inverse-CDF
    /// answer lies in `guide[j]..=guide[j+1]` — the binary search runs
    /// over that handful of entries instead of the whole table, returning
    /// exactly the same rank.
    guide: Vec<u32>,
}

impl Zipf {
    /// Build a sampler over `n` items with skew `theta` (theta = 0 is
    /// uniform; ~0.99 is the classic YCSB-zipfian skew). `n` must be > 0.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "Zipf over empty domain");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        // Power-of-two guide size makes the `u -> j` bucketing exact in
        // floating point (scaling by 2^k and the `j / G` boundaries are
        // both exact), so the narrowed search provably brackets the
        // full-table answer.
        let g = n.next_power_of_two().clamp(64, 1 << 16);
        let guide = (0..=g).map(|j| cdf.partition_point(|&c| c <= j as f64 / g as f64) as u32);
        Self { guide: guide.collect(), cdf }
    }

    /// Number of items in the domain.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True if the domain is a single item.
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draw one item. Rank 0 is the most popular.
    #[inline]
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let u = rng.unit_f64();
        let g = self.guide.len() - 1;
        // u < 1.0, and scaling by the power-of-two G is exact, so
        // j < G and u lies in [j/G, (j+1)/G).
        let j = (u * g as f64) as usize;
        let lo = self.guide[j] as usize;
        let hi = self.guide[j + 1] as usize;
        // partition_point returns the first index with cdf > u; entries
        // below `lo` are all <= j/G <= u and entries from `hi` on are all
        // > (j+1)/G > u, so the narrowed search equals the full search.
        let i = lo + self.cdf[lo..hi].partition_point(|&c| c <= u);
        i.min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SimRng::new(7);
        for _ in 0..10_000 {
            assert!(r.below(13) < 13);
        }
        for _ in 0..10_000 {
            let v = r.range(100, 200);
            assert!((100..200).contains(&v));
        }
    }

    #[test]
    fn unit_f64_in_half_open_interval() {
        let mut r = SimRng::new(3);
        for _ in 0..10_000 {
            let u = r.unit_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut r = SimRng::new(11);
        let mut counts = [0u32; 8];
        let n = 80_000;
        for _ in 0..n {
            counts[r.below(8) as usize] += 1;
        }
        for &c in &counts {
            // each bucket expects 10_000; allow 5% deviation
            assert!((9_500..10_500).contains(&c), "bucket count {c} out of range");
        }
    }

    #[test]
    fn fork_decorrelates() {
        let parent = SimRng::new(99);
        let mut c1 = parent.fork(1);
        let mut c2 = parent.fork(2);
        let same = (0..100).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert_eq!(same, 0);
        // Forks are themselves deterministic.
        let mut c1b = parent.fork(1);
        let mut c1a = parent.fork(1);
        for _ in 0..100 {
            assert_eq!(c1a.next_u64(), c1b.next_u64());
        }
    }

    #[test]
    fn zipf_theta_zero_is_uniformish() {
        let z = Zipf::new(10, 0.0);
        let mut r = SimRng::new(5);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[z.sample(&mut r)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c));
        }
    }

    #[test]
    fn zipf_high_theta_concentrates_on_rank_zero() {
        let z = Zipf::new(1000, 1.2);
        let mut r = SimRng::new(5);
        let mut rank0 = 0;
        let n = 50_000;
        for _ in 0..n {
            if z.sample(&mut r) == 0 {
                rank0 += 1;
            }
        }
        // With theta=1.2 over 1000 items, rank 0 should take well over 10%.
        assert!(rank0 > n / 10, "rank0 draws: {rank0}");
    }

    #[test]
    fn zipf_samples_within_domain() {
        let z = Zipf::new(17, 0.9);
        let mut r = SimRng::new(8);
        for _ in 0..10_000 {
            assert!(z.sample(&mut r) < 17);
        }
    }
}
