//! Machine description: the paper's Table II and Table III as validated
//! configuration structs.
//!
//! Latency path model (all values CPU cycles at 3.2 GHz):
//!
//! ```text
//! off-package access = DRAM core + queuing + MC processing
//!                    + 2 x controller-to-core + 2 x package pin + PCB wire RT
//!                  -> 50 + 116 + 5 + 8 + 10 + 11 = 200 cycles   (Table II)
//! on-package access  = DRAM core + MC processing
//!                    + 2 x controller-to-core + 2 x interposer pin + intra-pkg RT
//!                  -> 50 + 5 + 8 + 6 + 1 = 70 cycles            (Table II)
//! ```
//!
//! The OCR of the paper dropped trailing digits of these constants; the
//! reconstruction above is the unique one consistent with every statement in
//! the text (L4 hit = 2x on-package access = 140, L4 miss = 70, off-package
//! quoted as the sum of its parts). See DESIGN.md section 2.

use crate::addr::LINE_BYTES;
use crate::cycles::{CpuClock, Cycle};

/// Fixed latency components of the memory path (paper Table II),
/// in CPU cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyConfig {
    /// Memory-controller transaction processing time.
    pub mc_processing: Cycle,
    /// Core-to-memory-controller propagation, each way.
    pub ctl_to_core_each_way: Cycle,
    /// Package pin delay, each way (off-package path only).
    pub package_pin_each_way: Cycle,
    /// PCB wire delay, round trip (off-package path only).
    pub pcb_wire_round_trip: Cycle,
    /// Silicon-interposer pin delay, each way (on-package path only).
    pub interposer_pin_each_way: Cycle,
    /// Intra-package wiring delay, round trip (on-package path only).
    pub intra_package_round_trip: Cycle,
    /// Fixed DRAM core access latency used by the *analytic* model of
    /// Section II (the trace simulator instead computes this from the DDR3
    /// state machine).
    pub dram_core: Cycle,
    /// Fixed queuing delay used by the analytic model for off-package
    /// accesses (eliminated on-package by the 128-bank structure).
    pub queuing: Cycle,
    /// Extra cycles for one lookup of the RAM+CAM translation table
    /// (Section III-B: "we conservatively assume 2 additional clock cycles").
    pub translation_table: Cycle,
    /// Kernel entry/exit cost charged per OS-assisted table update
    /// (Section III-B cites ~127 cycles, the cost of a TLB-update-like
    /// user/kernel mode switch).
    pub os_update: Cycle,
}

impl Default for LatencyConfig {
    fn default() -> Self {
        Self {
            mc_processing: 5,
            ctl_to_core_each_way: 4,
            package_pin_each_way: 5,
            pcb_wire_round_trip: 11,
            interposer_pin_each_way: 3,
            intra_package_round_trip: 1,
            dram_core: 50,
            queuing: 116,
            translation_table: 2,
            os_update: 127,
        }
    }
}

impl LatencyConfig {
    /// Fixed (non-DRAM-core, non-queuing) portion of an off-package access.
    #[inline]
    pub fn off_package_overhead(&self) -> Cycle {
        self.mc_processing
            + 2 * self.ctl_to_core_each_way
            + 2 * self.package_pin_each_way
            + self.pcb_wire_round_trip
    }

    /// Fixed portion of an on-package access.
    #[inline]
    pub fn on_package_overhead(&self) -> Cycle {
        self.mc_processing
            + 2 * self.ctl_to_core_each_way
            + 2 * self.interposer_pin_each_way
            + self.intra_package_round_trip
    }

    /// Analytic off-package access latency (Table II: 200 cycles).
    #[inline]
    pub fn off_package_analytic(&self) -> Cycle {
        self.dram_core + self.queuing + self.off_package_overhead()
    }

    /// Analytic on-package access latency (Table II: 70 cycles).
    #[inline]
    pub fn on_package_analytic(&self) -> Cycle {
        self.dram_core + self.on_package_overhead()
    }

    /// Analytic L4 (DRAM cache) hit latency: tags then data, sequentially,
    /// each a full on-package DRAM access (Section I / Table II: 140).
    #[inline]
    pub fn l4_hit_analytic(&self) -> Cycle {
        2 * self.on_package_analytic()
    }

    /// Analytic L4 miss determination latency: the tag access alone
    /// (Table II: 70), after which the off-package access begins.
    #[inline]
    pub fn l4_miss_analytic(&self) -> Cycle {
        self.on_package_analytic()
    }
}

/// Memory-space geometry: capacities and migration granularity
/// (paper Table III).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryGeometry {
    /// Total main-memory capacity in bytes (paper: 4 GB).
    pub total_bytes: u64,
    /// On-package region capacity in bytes (paper: 512 MB for the trace
    /// study, 1 GB for the Section II comparison).
    pub on_package_bytes: u64,
    /// log2 of the macro-page size (migration granularity; 12..=22 in the
    /// paper's 4 KB..4 MB sweep).
    pub page_shift: u32,
    /// log2 of the live-migration sub-block size (paper: 4 KB -> 12).
    pub sub_block_shift: u32,
}

impl MemoryGeometry {
    /// Paper Table III defaults: 4 GB total, 512 MB on-package, 4 MB macro
    /// pages, 4 KB sub-blocks.
    pub fn paper_default() -> Self {
        Self {
            total_bytes: 4 << 30,
            on_package_bytes: 512 << 20,
            page_shift: 22,
            sub_block_shift: 12,
        }
    }

    /// Validate internal consistency. Returns a human-readable error for
    /// the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        let page = self.page_bytes();
        if self.total_bytes == 0 || self.on_package_bytes == 0 {
            return Err("capacities must be non-zero".into());
        }
        if self.on_package_bytes >= self.total_bytes {
            return Err(format!(
                "on-package capacity ({}) must be smaller than total ({}); otherwise \
                 there is no heterogeneity to manage",
                self.on_package_bytes, self.total_bytes
            ));
        }
        if self.sub_block_shift > self.page_shift {
            return Err("sub-block cannot be larger than the macro page".into());
        }
        if self.sub_block_shift < crate::addr::LINE_SHIFT {
            return Err("sub-block cannot be smaller than a cache line".into());
        }
        if !self.total_bytes.is_multiple_of(page) || !self.on_package_bytes.is_multiple_of(page) {
            return Err(format!("capacities must be multiples of the macro-page size ({page} B)"));
        }
        // The N-1 design reserves one *off-package* ghost page, so at least
        // one page must live off-package beyond the on-package slots.
        if self.off_package_pages() < 1 {
            return Err("need at least one off-package macro page for the ghost slot".into());
        }
        Ok(())
    }

    /// Macro-page size in bytes.
    #[inline]
    pub fn page_bytes(&self) -> u64 {
        1u64 << self.page_shift
    }

    /// Sub-block size in bytes.
    #[inline]
    pub fn sub_block_bytes(&self) -> u64 {
        1u64 << self.sub_block_shift
    }

    /// Number of on-package slots N (translation-table rows).
    #[inline]
    pub fn on_package_slots(&self) -> u64 {
        self.on_package_bytes / self.page_bytes()
    }

    /// Total number of macro pages in the memory space.
    #[inline]
    pub fn total_pages(&self) -> u64 {
        self.total_bytes / self.page_bytes()
    }

    /// Number of macro pages resident off-package when the mapping is the
    /// identity.
    #[inline]
    pub fn off_package_pages(&self) -> u64 {
        self.total_pages() - self.on_package_slots()
    }

    /// Sub-blocks per macro page (the width of the live-migration bitmap).
    #[inline]
    pub fn sub_blocks_per_page(&self) -> u32 {
        1u32 << (self.page_shift - self.sub_block_shift)
    }

    /// Cache lines per macro page (the number of data transfers a full page
    /// copy generates).
    #[inline]
    pub fn lines_per_page(&self) -> u64 {
        self.page_bytes() / LINE_BYTES
    }

    /// The reserved ghost page Ω of the N-1 design: the highest macro page
    /// of the memory space (the paper reserves "the highest 4 MB macro page",
    /// e.g. id 0x800 in an 8 GB space).
    #[inline]
    pub fn ghost_page(&self) -> u64 {
        self.total_pages() - 1
    }

    /// Return a copy scaled down by `scale` (both capacities divided), used
    /// to keep unit-test traces short while preserving the on/off-package
    /// ratio. Page geometry is unchanged.
    pub fn scaled(&self, scale: &SimScale) -> Self {
        let mut g = *self;
        g.total_bytes = (g.total_bytes / scale.divisor).max(g.page_bytes() * 2);
        g.on_package_bytes = (g.on_package_bytes / scale.divisor).max(g.page_bytes());
        // Keep the invariants: on-package strictly smaller, one spare page.
        if g.on_package_bytes >= g.total_bytes {
            g.total_bytes = g.on_package_bytes + g.page_bytes();
        }
        g
    }
}

impl Default for MemoryGeometry {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// A divisor applied to footprints and capacities so that CI-sized runs
/// complete quickly. `SimScale::full()` reproduces the paper's sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimScale {
    /// Every capacity and footprint is divided by this.
    pub divisor: u64,
}

impl SimScale {
    /// No scaling: the paper's exact sizes.
    pub fn full() -> Self {
        Self { divisor: 1 }
    }

    /// Default scaling for tests: 1/64 of the paper's sizes.
    pub fn test_default() -> Self {
        Self { divisor: 64 }
    }

    /// Scale a byte count, never rounding below one cache line.
    #[inline]
    pub fn bytes(&self, b: u64) -> u64 {
        (b / self.divisor).max(LINE_BYTES)
    }
}

impl Default for SimScale {
    fn default() -> Self {
        Self::full()
    }
}

/// Parse a byte size like `64K`, `4M`, `1G`, `512M`, or plain bytes
/// (suffixes are powers of two, case-insensitive). Shared by the CLI flags
/// (`hmm-sim --page`) and the `hmm-serve` wire format so every entry point
/// accepts the same spellings.
pub fn parse_size(s: &str) -> Option<u64> {
    let s = s.trim();
    let (num, mult) = match s.chars().last()? {
        'k' | 'K' => (&s[..s.len() - 1], 1u64 << 10),
        'm' | 'M' => (&s[..s.len() - 1], 1 << 20),
        'g' | 'G' => (&s[..s.len() - 1], 1 << 30),
        _ => (s, 1),
    };
    num.parse::<u64>().ok().map(|v| v.saturating_mul(mult))
}

/// Bundle of clock + latency + geometry: everything a simulator needs to
/// know about the machine that is not workload-specific.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MachineConfig {
    /// Clock domains.
    pub clock: CpuClock,
    /// Fixed path latencies.
    pub latency: LatencyConfig,
    /// Memory-space geometry.
    pub geometry: MemoryGeometry,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_reconstruction_sums() {
        let l = LatencyConfig::default();
        assert_eq!(l.off_package_analytic(), 200);
        assert_eq!(l.on_package_analytic(), 70);
        assert_eq!(l.l4_hit_analytic(), 140);
        assert_eq!(l.l4_miss_analytic(), 70);
    }

    #[test]
    fn paper_geometry_has_128_slots_at_4mb() {
        // 512 MB on-package / 4 MB pages = 128 slots (Table III study);
        // the Fig. 6 example (1 GB / 4 MB) gives N = 256.
        let g = MemoryGeometry::paper_default();
        assert_eq!(g.on_package_slots(), 128);
        assert_eq!(g.total_pages(), 1024);
        assert_eq!(g.sub_blocks_per_page(), 1024);
        g.validate().unwrap();

        let fig6 = MemoryGeometry { on_package_bytes: 1 << 30, ..g };
        assert_eq!(fig6.on_package_slots(), 256);
    }

    #[test]
    fn validation_catches_degenerate_geometries() {
        let g = MemoryGeometry::paper_default();
        assert!(MemoryGeometry { on_package_bytes: g.total_bytes, ..g }.validate().is_err());
        assert!(MemoryGeometry { sub_block_shift: 23, ..g }.validate().is_err());
        assert!(MemoryGeometry { sub_block_shift: 4, ..g }.validate().is_err());
        assert!(MemoryGeometry { total_bytes: (4 << 30) + 123, ..g }.validate().is_err());
        assert!(MemoryGeometry { total_bytes: 0, ..g }.validate().is_err());
    }

    #[test]
    fn ghost_page_is_the_highest_page() {
        let g = MemoryGeometry::paper_default();
        assert_eq!(g.ghost_page(), 1023);
    }

    #[test]
    fn scaling_preserves_ratio_and_invariants() {
        let g = MemoryGeometry::paper_default();
        let s = g.scaled(&SimScale::test_default());
        assert_eq!(s.total_bytes, (4 << 30) / 64);
        assert_eq!(s.on_package_bytes, (512 << 20) / 64);
        assert_eq!(s.on_package_bytes * 8, s.total_bytes);
        s.validate().unwrap();
    }

    #[test]
    fn extreme_scaling_still_validates() {
        let g = MemoryGeometry {
            page_shift: 12,
            sub_block_shift: 12,
            ..MemoryGeometry::paper_default()
        };
        let s = g.scaled(&SimScale { divisor: 1 << 40 });
        s.validate().unwrap();
        assert!(s.on_package_bytes < s.total_bytes);
    }

    #[test]
    fn lines_per_page() {
        let g = MemoryGeometry::paper_default();
        assert_eq!(g.lines_per_page(), (4 << 20) / 64);
    }

    #[test]
    fn parse_size_suffixes() {
        assert_eq!(parse_size("64K"), Some(64 << 10));
        assert_eq!(parse_size("4m"), Some(4 << 20));
        assert_eq!(parse_size("1G"), Some(1 << 30));
        assert_eq!(parse_size("512"), Some(512));
        assert_eq!(parse_size(" 2K "), Some(2048));
        for bad in ["", "K", "4KB", "-1M", "1.5G"] {
            assert_eq!(parse_size(bad), None, "{bad:?}");
        }
    }
}
