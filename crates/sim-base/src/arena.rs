//! Index-handle slab arena for hot-path object lifetimes.
//!
//! The simulator's per-epoch bookkeeping (in-flight migration legs,
//! transaction metadata) used to live in hash maps keyed by ids — one
//! hash per insert and one per lookup on the hot path. A [`Slab`] replaces
//! the map with a flat vector and a free list: `insert` returns a dense
//! `u32` handle, `get`/`remove` are direct indexing, and freed slots are
//! recycled in LIFO order so steady-state churn touches the same few cache
//! lines. [`Slab::reset`] drops every entry but keeps the allocation,
//! which is what an epoch boundary wants: the next epoch's inserts reuse
//! the warm storage instead of reallocating.

/// Sentinel marking the end of the free list.
const NIL: u32 = u32::MAX;

#[derive(Debug, Clone)]
enum Entry<T> {
    Occupied(T),
    /// Vacant slot; payload is the next free index ([`NIL`] at the end).
    Free(u32),
}

/// A slab arena: a `Vec` of entries plus an intrusive free list.
///
/// Handles are plain `u32` indexes. A removed handle's slot may be reused
/// by a later `insert`; holders must not retain handles across `remove`
/// (the simulator's users are strict insert-once/remove-once, enforced in
/// debug builds by the `Occupied` match).
#[derive(Debug, Clone)]
pub struct Slab<T> {
    entries: Vec<Entry<T>>,
    free_head: u32,
    len: usize,
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Slab<T> {
    /// An empty slab with no backing storage yet.
    pub fn new() -> Self {
        Self { entries: Vec::new(), free_head: NIL, len: 0 }
    }

    /// An empty slab pre-sized for `cap` live entries.
    pub fn with_capacity(cap: usize) -> Self {
        Self { entries: Vec::with_capacity(cap), free_head: NIL, len: 0 }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Slots currently backing the slab (live + free), i.e. the high-water
    /// mark of concurrent liveness since the last [`Slab::reset`].
    pub fn capacity_in_use(&self) -> usize {
        self.entries.len()
    }

    /// Store `value`, returning its handle. Reuses the most recently freed
    /// slot when one exists.
    pub fn insert(&mut self, value: T) -> u32 {
        self.len += 1;
        if self.free_head != NIL {
            let idx = self.free_head;
            let slot = &mut self.entries[idx as usize];
            let Entry::Free(next) = *slot else {
                unreachable!("free list points at an occupied slot");
            };
            self.free_head = next;
            *slot = Entry::Occupied(value);
            idx
        } else {
            let idx = u32::try_from(self.entries.len()).expect("slab capacity exceeds u32");
            self.entries.push(Entry::Occupied(value));
            idx
        }
    }

    /// Shared access to a live entry; `None` if the handle is stale.
    pub fn get(&self, handle: u32) -> Option<&T> {
        match self.entries.get(handle as usize) {
            Some(Entry::Occupied(v)) => Some(v),
            _ => None,
        }
    }

    /// Mutable access to a live entry; `None` if the handle is stale.
    pub fn get_mut(&mut self, handle: u32) -> Option<&mut T> {
        match self.entries.get_mut(handle as usize) {
            Some(Entry::Occupied(v)) => Some(v),
            _ => None,
        }
    }

    /// Remove and return the entry behind `handle`, freeing its slot for
    /// reuse. Panics on a stale or out-of-range handle — double-removal
    /// is a logic error, not a runtime condition.
    pub fn remove(&mut self, handle: u32) -> T {
        let slot = &mut self.entries[handle as usize];
        match std::mem::replace(slot, Entry::Free(self.free_head)) {
            Entry::Occupied(v) => {
                self.free_head = handle;
                self.len -= 1;
                v
            }
            Entry::Free(prev) => {
                *slot = Entry::Free(prev);
                panic!("slab handle {handle} removed twice");
            }
        }
    }

    /// Drop every entry but keep the backing allocation — the epoch-reset
    /// operation: after `reset`, inserts refill the existing storage.
    pub fn reset(&mut self) {
        self.entries.clear();
        self.free_head = NIL;
        self.len = 0;
    }

    /// Serialize the slab, preserving the exact slot layout and free list:
    /// handles held elsewhere stay valid across a save/load round trip.
    /// `f` encodes one live entry.
    pub fn save_state(
        &self,
        w: &mut crate::snap::SnapWriter,
        mut f: impl FnMut(&mut crate::snap::SnapWriter, &T),
    ) {
        w.u32(self.free_head);
        w.usize(self.len);
        w.seq(&self.entries, |w, e| match e {
            Entry::Occupied(v) => {
                w.u8(1);
                f(w, v);
            }
            Entry::Free(next) => {
                w.u8(0);
                w.u32(*next);
            }
        });
    }

    /// Restore a slab saved by [`Slab::save_state`]; `f` decodes one live
    /// entry.
    pub fn load_state(
        &mut self,
        r: &mut crate::snap::SnapReader<'_>,
        mut f: impl FnMut(&mut crate::snap::SnapReader<'_>) -> crate::snap::SnapResult<T>,
    ) -> crate::snap::SnapResult<()> {
        self.free_head = r.u32()?;
        self.len = r.usize()?;
        let n = r.seq_len(1)?;
        self.entries.clear();
        self.entries.reserve(n);
        for _ in 0..n {
            let e = match r.u8()? {
                1 => Entry::Occupied(f(r)?),
                0 => Entry::Free(r.u32()?),
                t => return Err(format!("invalid slab entry tag {t}")),
            };
            self.entries.push(e);
        }
        let live = self.entries.iter().filter(|e| matches!(e, Entry::Occupied(_))).count();
        if live != self.len {
            return Err(format!("slab len {} disagrees with {live} live entries", self.len));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut s = Slab::new();
        let a = s.insert("a");
        let b = s.insert("b");
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(a), Some(&"a"));
        assert_eq!(s.get(b), Some(&"b"));
        assert_eq!(s.remove(a), "a");
        assert_eq!(s.get(a), None, "removed handle must read as stale");
        assert_eq!(s.len(), 1);
        assert_eq!(s.remove(b), "b");
        assert!(s.is_empty());
    }

    #[test]
    fn freed_slots_are_reused_lifo() {
        let mut s = Slab::new();
        let h: Vec<u32> = (0..4).map(|i| s.insert(i)).collect();
        assert_eq!(s.capacity_in_use(), 4);
        s.remove(h[1]);
        s.remove(h[3]);
        // LIFO: the most recently freed slot comes back first.
        assert_eq!(s.insert(10), h[3]);
        assert_eq!(s.insert(11), h[1]);
        assert_eq!(s.capacity_in_use(), 4, "churn must not grow the slab");
        assert_eq!(s.insert(12), 4, "full slab grows by appending");
    }

    #[test]
    fn get_mut_updates_in_place() {
        let mut s = Slab::new();
        let h = s.insert(1u64);
        *s.get_mut(h).unwrap() += 41;
        assert_eq!(s.remove(h), 42);
    }

    #[test]
    fn reset_keeps_allocation_and_restarts_handles() {
        let mut s = Slab::with_capacity(8);
        for i in 0..8 {
            s.insert(i);
        }
        s.reset();
        assert!(s.is_empty());
        assert_eq!(s.capacity_in_use(), 0);
        // Fresh inserts restart from handle 0 in the retained storage.
        assert_eq!(s.insert(100), 0);
        assert_eq!(s.insert(101), 1);
        assert_eq!(s.get(0), Some(&100));
    }

    #[test]
    #[should_panic(expected = "removed twice")]
    fn double_remove_panics() {
        let mut s = Slab::new();
        let h = s.insert(());
        s.remove(h);
        s.remove(h);
    }

    #[test]
    fn interleaved_churn_stays_consistent() {
        // A schedule shaped like the migration engine's: bursts of inserts
        // drained in arbitrary order, repeated across "epochs".
        let mut s = Slab::new();
        for epoch in 0..10u64 {
            let hs: Vec<u32> = (0..16).map(|i| s.insert(epoch * 100 + i)).collect();
            for (i, h) in hs.iter().enumerate() {
                assert_eq!(s.get(*h), Some(&(epoch * 100 + i as u64)));
            }
            // Remove evens, insert replacements, then drain everything.
            for h in hs.iter().step_by(2) {
                s.remove(*h);
            }
            let more: Vec<u32> = (0..8).map(|i| s.insert(epoch * 100 + 50 + i)).collect();
            for h in hs.iter().skip(1).step_by(2).chain(more.iter()) {
                s.remove(*h);
            }
            assert!(s.is_empty(), "epoch {epoch} should drain");
            assert!(s.capacity_in_use() <= 24, "bounded by peak liveness");
        }
    }
}
