//! Strongly-typed addresses for the two address spaces of the paper.
//!
//! The paper's central mechanism is an extra level of indirection maintained
//! by the on-chip memory controller:
//!
//! ```text
//!   virtual --(OS page tables)--> physical --(translation table)--> machine
//! ```
//!
//! The OS keeps managing *physical* addresses exactly as before; the
//! *machine* address names the actual DRAM location (on-package slot or
//! off-package DIMM). We model the last two spaces. Mixing them up is the
//! easiest bug to write in this system, so they are distinct newtypes: a
//! [`PhysAddr`] can only become a [`MachineAddr`] by going through the
//! translation table in `hmm-core`.

/// The cache-line size used throughout the paper (and this workspace).
pub const LINE_BYTES: u64 = 64;

/// log2 of [`LINE_BYTES`].
pub const LINE_SHIFT: u32 = 6;

/// A physical address: what the caches and the OS see. 48-bit in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PhysAddr(pub u64);

/// A machine address: the actual DRAM location after the controller's
/// physical-to-machine translation. Same 48-bit format; the MSBs select the
/// on-package vs. off-package region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MachineAddr(pub u64);

/// A macro-page number in the *physical* space: `PhysAddr >> page_shift`.
///
/// Macro pages are the migration granularity — 4 KB to 4 MB in the paper's
/// sweep, so much larger than the OS's 4 KB pages at the top of the range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MacroPageId(pub u64);

/// An on-package slot index — a row of the translation table. The paper's
/// 1 GB / 4 MB configuration has N = 256 slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SlotId(pub u32);

/// A sub-block index within a macro page (4 KB sub-blocks in the paper's
/// live-migration design; a 4 MB page has 1024 sub-blocks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SubBlockId(pub u32);

/// A 64-byte cache-line address (`addr >> 6`), used by the cache models and
/// as the unit of DRAM data transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LineAddr(pub u64);

impl PhysAddr {
    /// The macro page this address belongs to, for a given page shift.
    #[inline]
    pub fn macro_page(self, page_shift: u32) -> MacroPageId {
        MacroPageId(self.0 >> page_shift)
    }

    /// Offset of this address within its macro page.
    #[inline]
    pub fn page_offset(self, page_shift: u32) -> u64 {
        self.0 & ((1u64 << page_shift) - 1)
    }

    /// Sub-block index of this address within its macro page.
    #[inline]
    pub fn sub_block(self, page_shift: u32, sub_shift: u32) -> SubBlockId {
        debug_assert!(sub_shift <= page_shift);
        SubBlockId((self.page_offset(page_shift) >> sub_shift) as u32)
    }

    /// The cache line containing this address.
    #[inline]
    pub fn line(self) -> LineAddr {
        LineAddr(self.0 >> LINE_SHIFT)
    }
}

impl MachineAddr {
    /// The cache line containing this address.
    #[inline]
    pub fn line(self) -> LineAddr {
        LineAddr(self.0 >> LINE_SHIFT)
    }

    /// Offset within a macro page (machine space uses the same page grid).
    #[inline]
    pub fn page_offset(self, page_shift: u32) -> u64 {
        self.0 & ((1u64 << page_shift) - 1)
    }
}

impl MacroPageId {
    /// First byte address of the page.
    #[inline]
    pub fn base(self, page_shift: u32) -> u64 {
        self.0 << page_shift
    }

    /// Rebuild a physical address from page id + in-page offset.
    #[inline]
    pub fn with_offset(self, page_shift: u32, offset: u64) -> PhysAddr {
        debug_assert!(offset < (1u64 << page_shift));
        PhysAddr(self.base(page_shift) | offset)
    }
}

impl LineAddr {
    /// First byte address of the line.
    #[inline]
    pub fn base(self) -> u64 {
        self.0 << LINE_SHIFT
    }
}

impl std::fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "P:{:#x}", self.0)
    }
}

impl std::fmt::Display for MachineAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "M:{:#x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB4_SHIFT: u32 = 22; // 4 MB macro pages
    const KB4_SHIFT: u32 = 12; // 4 KB sub-blocks

    #[test]
    fn macro_page_extraction_matches_paper_example() {
        // Paper Fig. 6: 48-bit address, 4 MB pages -> low 22 bits are the
        // offset, high 26 bits the page id.
        let a = PhysAddr(0x0000_1234_5678_9abc & ((1 << 48) - 1));
        let page = a.macro_page(MB4_SHIFT);
        assert_eq!(page.0, a.0 >> 22);
        assert_eq!(page.with_offset(MB4_SHIFT, a.page_offset(MB4_SHIFT)), a);
    }

    #[test]
    fn sub_block_indices_cover_page() {
        // 4 MB page / 4 KB sub-blocks = 1024 sub-blocks (paper Fig. 9).
        let page = MacroPageId(7);
        let first = page.with_offset(MB4_SHIFT, 0);
        let last = page.with_offset(MB4_SHIFT, (1 << MB4_SHIFT) - 1);
        assert_eq!(first.sub_block(MB4_SHIFT, KB4_SHIFT).0, 0);
        assert_eq!(last.sub_block(MB4_SHIFT, KB4_SHIFT).0, 1023);
    }

    #[test]
    fn line_math() {
        let a = PhysAddr(0x1000 + 65);
        assert_eq!(a.line().0, (0x1000 + 65) >> 6);
        assert_eq!(LineAddr(3).base(), 192);
    }

    #[test]
    fn page_offset_masks_low_bits_only() {
        let a = PhysAddr((5 << MB4_SHIFT) | 0xabc);
        assert_eq!(a.page_offset(MB4_SHIFT), 0xabc);
        assert_eq!(a.macro_page(MB4_SHIFT).0, 5);
    }

    #[test]
    fn display_forms_distinguish_spaces() {
        assert_eq!(PhysAddr(0x10).to_string(), "P:0x10");
        assert_eq!(MachineAddr(0x10).to_string(), "M:0x10");
    }
}
