//! Statistics plumbing shared by the simulator and the figure harness.

use crate::cycles::Cycle;

/// Numerically robust running mean (Welford without the variance term plus a
/// u128 total so means of billions of cycle samples stay exact).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunningMean {
    count: u64,
    total: u128,
}

impl RunningMean {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample.
    #[inline]
    pub fn push(&mut self, sample: u64) {
        self.count += 1;
        self.total += sample as u128;
    }

    /// Number of samples recorded.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    #[inline]
    pub fn total(&self) -> u128 {
        self.total
    }

    /// Mean of the samples; 0.0 when empty.
    #[inline]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total as f64 / self.count as f64
        }
    }

    /// Merge another accumulator into this one (used when joining parallel
    /// sweep shards).
    pub fn merge(&mut self, other: &RunningMean) {
        self.count += other.count;
        self.total += other.total;
    }

    /// Serialize the accumulator (snapshot/resume support).
    pub fn save_state(&self, w: &mut crate::snap::SnapWriter) {
        w.u64(self.count);
        w.u128(self.total);
    }

    /// Restore a previously saved accumulator.
    pub fn load_state(
        &mut self,
        r: &mut crate::snap::SnapReader<'_>,
    ) -> crate::snap::SnapResult<()> {
        self.count = r.u64()?;
        self.total = r.u128()?;
        Ok(())
    }
}

/// Power-of-two bucketed histogram for latency distributions. Bucket `i`
/// covers `[2^i, 2^(i+1))`; bucket 0 covers `[0, 2)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    max_seen: u64,
}

impl Histogram {
    /// Histogram with 48 log2 buckets — enough for any cycle count the
    /// simulator can produce.
    pub fn new() -> Self {
        Self { buckets: vec![0; 48], count: 0, max_seen: 0 }
    }

    /// Record one sample.
    #[inline]
    pub fn push(&mut self, sample: u64) {
        let idx = (64 - sample.leading_zeros()).saturating_sub(1) as usize;
        let idx = idx.min(self.buckets.len() - 1);
        self.buckets[idx] += 1;
        self.count += 1;
        self.max_seen = self.max_seen.max(sample);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest sample seen.
    pub fn max(&self) -> u64 {
        self.max_seen
    }

    /// Approximate quantile (upper edge of the bucket containing it).
    /// `q` in `[0, 1]`. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target.max(1) {
                return 1u64 << (i + 1);
            }
        }
        self.max_seen
    }

    /// Merge another histogram (bucket-wise).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.max_seen = self.max_seen.max(other.max_seen);
    }

    /// Serialize the histogram (snapshot/resume support).
    pub fn save_state(&self, w: &mut crate::snap::SnapWriter) {
        w.u64s(&self.buckets);
        w.u64(self.count);
        w.u64(self.max_seen);
    }

    /// Restore a previously saved histogram.
    pub fn load_state(
        &mut self,
        r: &mut crate::snap::SnapReader<'_>,
    ) -> crate::snap::SnapResult<()> {
        self.buckets = r.u64s()?;
        self.count = r.u64()?;
        self.max_seen = r.u64()?;
        Ok(())
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Where the cycles of one memory access went. The trace simulator fills
/// this per access; Table IV and Figs. 11-15 aggregate them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencyBreakdown {
    /// DRAM core (activate/CAS/precharge critical path).
    pub dram_core: Cycle,
    /// Time spent queued behind other transactions.
    pub queuing: Cycle,
    /// Memory-controller processing + translation-table lookup.
    pub controller: Cycle,
    /// Pin and wire delays (package pins + PCB, or interposer + intra-pkg).
    pub interconnect: Cycle,
}

impl LatencyBreakdown {
    /// Total access latency.
    #[inline]
    pub fn total(&self) -> Cycle {
        self.dram_core + self.queuing + self.controller + self.interconnect
    }
}

/// Aggregated statistics for one simulated region or run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AccessStats {
    /// Latency of every access (total cycles).
    pub latency: RunningMean,
    /// Distribution of total latency.
    pub histogram: Histogram,
    /// Component sums, for breakdown reporting.
    pub dram_core: RunningMean,
    /// Queuing component.
    pub queuing: RunningMean,
    /// Controller component.
    pub controller: RunningMean,
    /// Interconnect component.
    pub interconnect: RunningMean,
    /// Reads observed.
    pub reads: u64,
    /// Writes observed.
    pub writes: u64,
    /// Accesses served by the on-package region.
    pub on_package_hits: u64,
}

impl AccessStats {
    /// Empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one access.
    pub fn record(&mut self, b: &LatencyBreakdown, is_write: bool, on_package: bool) {
        let total = b.total();
        self.latency.push(total);
        self.histogram.push(total);
        self.dram_core.push(b.dram_core);
        self.queuing.push(b.queuing);
        self.controller.push(b.controller);
        self.interconnect.push(b.interconnect);
        if is_write {
            self.writes += 1;
        } else {
            self.reads += 1;
        }
        if on_package {
            self.on_package_hits += 1;
        }
    }

    /// Serialize the accumulated statistics (snapshot/resume support).
    pub fn save_state(&self, w: &mut crate::snap::SnapWriter) {
        self.latency.save_state(w);
        self.histogram.save_state(w);
        self.dram_core.save_state(w);
        self.queuing.save_state(w);
        self.controller.save_state(w);
        self.interconnect.save_state(w);
        w.u64(self.reads);
        w.u64(self.writes);
        w.u64(self.on_package_hits);
    }

    /// Restore previously saved statistics.
    pub fn load_state(
        &mut self,
        r: &mut crate::snap::SnapReader<'_>,
    ) -> crate::snap::SnapResult<()> {
        self.latency.load_state(r)?;
        self.histogram.load_state(r)?;
        self.dram_core.load_state(r)?;
        self.queuing.load_state(r)?;
        self.controller.load_state(r)?;
        self.interconnect.load_state(r)?;
        self.reads = r.u64()?;
        self.writes = r.u64()?;
        self.on_package_hits = r.u64()?;
        Ok(())
    }

    /// Total accesses recorded.
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// Fraction of accesses served on-package.
    pub fn on_package_fraction(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.on_package_hits as f64 / self.accesses() as f64
        }
    }

    /// Mean total latency in cycles.
    pub fn mean_latency(&self) -> f64 {
        self.latency.mean()
    }

    /// Merge a shard (parallel sweeps).
    pub fn merge(&mut self, other: &AccessStats) {
        self.latency.merge(&other.latency);
        self.histogram.merge(&other.histogram);
        self.dram_core.merge(&other.dram_core);
        self.queuing.merge(&other.queuing);
        self.controller.merge(&other.controller);
        self.interconnect.merge(&other.interconnect);
        self.reads += other.reads;
        self.writes += other.writes;
        self.on_package_hits += other.on_package_hits;
    }
}

/// The paper's effectiveness metric (Section IV-B):
///
/// ```text
/// eta = (Lat_no_mig - Lat_mig) / (Lat_no_mig - Lat_dram_core) * 100%
/// ```
///
/// It "approximately reflects how many memory accesses are routed to the
/// on-package memory region". Returns `None` when the denominator is not
/// positive (no headroom to improve).
pub fn effectiveness(
    latency_without_migration: f64,
    latency_with_migration: f64,
    dram_core_latency: f64,
) -> Option<f64> {
    let denom = latency_without_migration - dram_core_latency;
    if denom <= 0.0 {
        return None;
    }
    Some((latency_without_migration - latency_with_migration) / denom * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_mean_basics() {
        let mut m = RunningMean::new();
        assert_eq!(m.mean(), 0.0);
        m.push(10);
        m.push(20);
        m.push(30);
        assert_eq!(m.count(), 3);
        assert!((m.mean() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn running_mean_merge_equals_combined() {
        let mut a = RunningMean::new();
        let mut b = RunningMean::new();
        let mut whole = RunningMean::new();
        for i in 0..100 {
            if i % 2 == 0 {
                a.push(i);
            } else {
                b.push(i);
            }
            whole.push(i);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.total(), whole.total());
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = Histogram::new();
        for _ in 0..90 {
            h.push(100); // bucket [64,128)
        }
        for _ in 0..10 {
            h.push(1000); // bucket [512,1024)
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.max(), 1000);
        assert!(h.quantile(0.5) <= 128);
        assert!(h.quantile(0.99) >= 512);
    }

    #[test]
    fn histogram_handles_zero_and_huge() {
        let mut h = Histogram::new();
        h.push(0);
        h.push(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), u64::MAX);
    }

    #[test]
    fn breakdown_total() {
        let b = LatencyBreakdown { dram_core: 50, queuing: 116, controller: 7, interconnect: 27 };
        assert_eq!(b.total(), 200);
    }

    #[test]
    fn access_stats_record_and_fraction() {
        let mut s = AccessStats::new();
        let fast = LatencyBreakdown { dram_core: 50, queuing: 0, controller: 7, interconnect: 13 };
        let slow =
            LatencyBreakdown { dram_core: 50, queuing: 116, controller: 7, interconnect: 27 };
        s.record(&fast, false, true);
        s.record(&slow, true, false);
        assert_eq!(s.accesses(), 2);
        assert_eq!(s.reads, 1);
        assert_eq!(s.writes, 1);
        assert!((s.on_package_fraction() - 0.5).abs() < 1e-12);
        assert!((s.mean_latency() - 135.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_merge_equals_combined() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for i in 1..200u64 {
            let v = i * 13 % 1000;
            if i % 2 == 0 {
                a.push(v);
            } else {
                b.push(v);
            }
            whole.push(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.max(), whole.max());
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(a.quantile(q), whole.quantile(q));
        }
    }

    #[test]
    fn quantile_edges() {
        let mut h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0, "empty histogram");
        h.push(100);
        assert!(h.quantile(0.0) >= 1);
        assert!(h.quantile(1.0) >= 100 || h.quantile(1.0) >= 64);
        // Out-of-range q is clamped.
        assert_eq!(h.quantile(2.0), h.quantile(1.0));
    }

    #[test]
    fn access_stats_merge_preserves_totals() {
        let b1 = LatencyBreakdown { dram_core: 50, queuing: 10, controller: 7, interconnect: 13 };
        let b2 = LatencyBreakdown { dram_core: 60, queuing: 0, controller: 7, interconnect: 27 };
        let mut a = AccessStats::new();
        let mut b = AccessStats::new();
        a.record(&b1, false, true);
        b.record(&b2, true, false);
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.accesses(), 2);
        assert_eq!(merged.reads, 1);
        assert_eq!(merged.writes, 1);
        assert_eq!(merged.on_package_hits, 1);
        assert!((merged.mean_latency() - (b1.total() + b2.total()) as f64 / 2.0).abs() < 1e-12);
    }

    #[test]
    fn effectiveness_matches_paper_formula() {
        // If migration recovers the full gap, eta = 100%.
        assert_eq!(effectiveness(200.0, 50.0, 50.0), Some(100.0));
        // No improvement -> 0%.
        assert_eq!(effectiveness(200.0, 200.0, 50.0), Some(0.0));
        // Half the gap -> 50%.
        assert_eq!(effectiveness(200.0, 125.0, 50.0), Some(50.0));
        // Degenerate denominator.
        assert_eq!(effectiveness(50.0, 40.0, 50.0), None);
    }
}
