//! The sink trait instrumented code emits into, and the no-op sink.

use crate::event::{Event, EventKind};

/// Where instrumented code sends events.
///
/// The contract is deliberately tiny so the whole subsystem monomorphises
/// away when disabled: instrumentation sites are written as
///
/// ```ignore
/// if self.sink.enabled(EventKind::Demand) {
///     self.sink.emit(Event::Demand { .. });
/// }
/// ```
///
/// With [`NullSink`] both calls are `#[inline(always)]` constants, so the
/// branch folds to nothing and the event payload is never constructed.
/// `emit` takes `&self` because sinks are shared across the controller and
/// both DRAM regions; implementations handle their own interior mutability.
pub trait TelemetrySink {
    /// Whether events of this kind should be constructed and emitted.
    /// Instrumentation must check this before building an [`Event`].
    fn enabled(&self, kind: EventKind) -> bool;

    /// Record one event. Only called when `enabled(event.kind())` is true.
    fn emit(&self, event: Event);

    /// Record a batch of events in one call, draining `events`. Only
    /// called when every event's kind is enabled. Hot paths that produce
    /// many events per epoch (demand completions) buffer locally and hand
    /// the batch over here, so a locking sink can amortise one lock
    /// acquisition over the whole batch instead of paying it per event.
    /// The default forwards to [`TelemetrySink::emit`] event by event.
    fn emit_batch(&self, events: &mut Vec<Event>) {
        for event in events.drain(..) {
            self.emit(event);
        }
    }
}

/// The disabled sink: every query is a compile-time `false`, so
/// instrumented code compiles to exactly what it was before telemetry
/// existed. This is the default sink everywhere.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl TelemetrySink for NullSink {
    #[inline(always)]
    fn enabled(&self, _kind: EventKind) -> bool {
        false
    }

    #[inline(always)]
    fn emit(&self, _event: Event) {}

    #[inline(always)]
    fn emit_batch(&self, _events: &mut Vec<Event>) {}
}

impl<T: TelemetrySink + ?Sized> TelemetrySink for &T {
    #[inline]
    fn enabled(&self, kind: EventKind) -> bool {
        (**self).enabled(kind)
    }

    #[inline]
    fn emit(&self, event: Event) {
        (**self).emit(event);
    }

    #[inline]
    fn emit_batch(&self, events: &mut Vec<Event>) {
        (**self).emit_batch(events);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_is_disabled_for_every_kind() {
        for kind in EventKind::ALL {
            assert!(!NullSink.enabled(kind));
        }
    }
}
