//! A bounded overwrite-oldest ring buffer for events.

use crate::event::Event;

/// Fixed-capacity event buffer that overwrites the oldest entry when full
/// and counts what it dropped. Recording must never grow without bound (a
/// paper-scale run emits tens of millions of DRAM events), and for tracing
/// the *most recent* window is the useful one.
#[derive(Debug, Clone)]
pub struct EventRing {
    buf: Vec<Event>,
    cap: usize,
    /// Index of the logically first (oldest) element.
    head: usize,
    len: usize,
    dropped: u64,
}

impl EventRing {
    /// Create a ring holding at most `cap` events (`cap >= 1`).
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        Self { buf: Vec::with_capacity(cap.min(1024)), cap, head: 0, len: 0, dropped: 0 }
    }

    /// Append an event, evicting the oldest if full.
    pub fn push(&mut self, event: Event) {
        if self.buf.len() < self.cap {
            self.buf.push(event);
            self.len += 1;
        } else {
            self.buf[self.head] = event;
            self.head = (self.head + 1) % self.cap;
            self.dropped += 1;
        }
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Events evicted to make room since creation.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterate oldest-to-newest.
    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        let (tail, head) = self.buf.split_at(self.head.min(self.buf.len()));
        head.iter().chain(tail.iter())
    }

    /// Drain into a vector, oldest first, leaving the ring empty (drop
    /// count is preserved).
    pub fn take(&mut self) -> Vec<Event> {
        let out: Vec<Event> = self.iter().copied().collect();
        self.buf.clear();
        self.head = 0;
        self.len = 0;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycle: u64) -> Event {
        Event::SwapStep { cycle, step: 0 }
    }

    #[test]
    fn fills_up_to_capacity_without_dropping() {
        let mut r = EventRing::new(4);
        for c in 0..4 {
            r.push(ev(c));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 0);
        let cycles: Vec<u64> = r.iter().map(|e| e.cycle()).collect();
        assert_eq!(cycles, vec![0, 1, 2, 3]);
    }

    #[test]
    fn overwrites_oldest_and_counts_drops() {
        let mut r = EventRing::new(3);
        for c in 0..7 {
            r.push(ev(c));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 4);
        let cycles: Vec<u64> = r.iter().map(|e| e.cycle()).collect();
        assert_eq!(cycles, vec![4, 5, 6], "keeps the newest window in order");
    }

    #[test]
    fn take_empties_but_keeps_drop_count() {
        let mut r = EventRing::new(2);
        for c in 0..5 {
            r.push(ev(c));
        }
        let taken = r.take();
        assert_eq!(taken.len(), 2);
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 3);
        r.push(ev(9));
        assert_eq!(r.iter().map(|e| e.cycle()).collect::<Vec<_>>(), vec![9]);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut r = EventRing::new(0);
        r.push(ev(1));
        r.push(ev(2));
        assert_eq!(r.len(), 1);
        assert_eq!(r.dropped(), 1);
    }
}
