//! A minimal JSON writer.
//!
//! The exporters need to *produce* well-formed JSON (Chrome traces, JSONL
//! dumps); nothing in the workspace ever parses it back. A small push-style
//! builder covers that without an external serialisation framework, which
//! also keeps the build self-contained for offline toolchains.

/// Escape a string per RFC 8259 and append it, quoted, to `out`.
pub fn push_str_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Format an `f64` as a JSON number (finite values only; non-finite values
/// are emitted as `null`, which is what most tooling expects).
pub fn f64_to_json(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `{}` on an integral f64 prints without a dot; that is still a
        // valid JSON number, so leave it.
        s
    } else {
        "null".to_string()
    }
}

/// Incremental builder for one JSON object. Fields are appended in call
/// order; `finish()` closes the brace.
#[derive(Debug, Default)]
pub struct JsonObject {
    buf: String,
    any: bool,
}

impl JsonObject {
    /// Start a new object (`{`).
    pub fn new() -> Self {
        Self { buf: String::from("{"), any: false }
    }

    fn key(&mut self, k: &str) {
        if self.any {
            self.buf.push(',');
        }
        self.any = true;
        push_str_escaped(&mut self.buf, k);
        self.buf.push(':');
    }

    /// Add a string field.
    pub fn str(mut self, k: &str, v: &str) -> Self {
        self.key(k);
        push_str_escaped(&mut self.buf, v);
        self
    }

    /// Add an unsigned integer field.
    pub fn u64(mut self, k: &str, v: u64) -> Self {
        self.key(k);
        self.buf.push_str(&v.to_string());
        self
    }

    /// Add a signed integer field.
    pub fn i64(mut self, k: &str, v: i64) -> Self {
        self.key(k);
        self.buf.push_str(&v.to_string());
        self
    }

    /// Add a float field.
    pub fn f64(mut self, k: &str, v: f64) -> Self {
        self.key(k);
        self.buf.push_str(&f64_to_json(v));
        self
    }

    /// Add a boolean field.
    pub fn bool(mut self, k: &str, v: bool) -> Self {
        self.key(k);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Add a field whose value is already serialised JSON (nested object,
    /// array, ...). The caller guarantees `raw` is well-formed.
    pub fn raw(mut self, k: &str, raw: &str) -> Self {
        self.key(k);
        self.buf.push_str(raw);
        self
    }

    /// Close the object and return the JSON text.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// Incremental builder for one JSON array — the sibling of
/// [`JsonObject`] for list-shaped payloads (sweep cell lists, stuck-bank
/// arrays, figure rows). Elements are appended in call order.
#[derive(Debug, Default)]
pub struct JsonArray {
    buf: String,
    any: bool,
}

impl JsonArray {
    /// Start a new array (`[`).
    pub fn new() -> Self {
        Self { buf: String::from("["), any: false }
    }

    fn sep(&mut self) {
        if self.any {
            self.buf.push(',');
        }
        self.any = true;
    }

    /// Append a string element.
    pub fn str(mut self, v: &str) -> Self {
        self.sep();
        push_str_escaped(&mut self.buf, v);
        self
    }

    /// Append an unsigned integer element.
    pub fn u64(mut self, v: u64) -> Self {
        self.sep();
        self.buf.push_str(&v.to_string());
        self
    }

    /// Append a float element.
    pub fn f64(mut self, v: f64) -> Self {
        self.sep();
        self.buf.push_str(&f64_to_json(v));
        self
    }

    /// Append an element that is already serialised JSON (nested object,
    /// array, ...). The caller guarantees `raw` is well-formed.
    pub fn raw(mut self, raw: &str) -> Self {
        self.sep();
        self.buf.push_str(raw);
        self
    }

    /// True if nothing has been appended yet.
    pub fn is_empty(&self) -> bool {
        !self.any
    }

    /// Close the array and return the JSON text.
    pub fn finish(mut self) -> String {
        self.buf.push(']');
        self.buf
    }
}

/// Types that can render themselves as one JSON object. Implemented by the
/// experiment row structs so the figure harness can dump machine-readable
/// results next to the pretty tables.
pub trait ToJson {
    /// Render as a self-contained JSON value.
    fn to_json(&self) -> String;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_and_nests() {
        let inner = JsonObject::new().u64("n", 3).finish();
        let s = JsonObject::new()
            .str("name", "a\"b\\c\n")
            .bool("ok", true)
            .f64("x", 1.5)
            .i64("neg", -2)
            .raw("inner", &inner)
            .finish();
        assert_eq!(s, r#"{"name":"a\"b\\c\n","ok":true,"x":1.5,"neg":-2,"inner":{"n":3}}"#);
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(f64_to_json(f64::NAN), "null");
        assert_eq!(f64_to_json(f64::INFINITY), "null");
        assert_eq!(f64_to_json(2.0), "2");
    }
}
