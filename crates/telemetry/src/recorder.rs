//! The concrete recording sink: sharded counters + bounded event rings.

use std::str::FromStr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use hmm_sim_base::{Histogram, RunningMean};

use crate::event::{Event, EventKind};
use crate::ring::EventRing;
use crate::sink::TelemetrySink;

/// How much the recorder captures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TelemetryLevel {
    /// Record nothing; `enabled()` is false for every kind, so instrumented
    /// code pays only a branch on a cached boolean.
    #[default]
    Off,
    /// Count events and feed the latency histogram, but store no event
    /// records — constant memory, suitable for full-length runs.
    Counters,
    /// Counters plus the event timeline in bounded ring buffers.
    Full,
}

impl TelemetryLevel {
    /// Stable CLI label.
    pub fn label(self) -> &'static str {
        match self {
            TelemetryLevel::Off => "off",
            TelemetryLevel::Counters => "counters",
            TelemetryLevel::Full => "full",
        }
    }
}

impl FromStr for TelemetryLevel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "off" => Ok(TelemetryLevel::Off),
            "counters" => Ok(TelemetryLevel::Counters),
            "full" => Ok(TelemetryLevel::Full),
            other => Err(format!("unknown telemetry level '{other}' (off|counters|full)")),
        }
    }
}

/// Aggregated per-kind counts plus the demand-latency distribution.
#[derive(Debug, Clone, Default)]
pub struct Counters {
    counts: [u64; EventKind::COUNT],
    /// Mean end-to-end demand latency.
    pub demand_latency: RunningMean,
    /// Log2-bucketed end-to-end demand latency distribution.
    pub latency_hist: Histogram,
    /// Log2-bucketed demand queuing-delay distribution.
    pub queuing_hist: Histogram,
}

impl Counters {
    /// Count of events of `kind` seen so far.
    pub fn get(&self, kind: EventKind) -> u64 {
        self.counts[kind as usize]
    }

    /// Total events of any kind.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    fn record(&mut self, event: &Event) {
        self.counts[event.kind() as usize] += 1;
        if let Event::Demand { latency, queuing, .. } = *event {
            self.demand_latency.push(latency);
            self.latency_hist.push(latency);
            self.queuing_hist.push(queuing);
        }
    }

    /// Fold another counter set into this one (same convention as
    /// `RunningMean::merge`).
    pub fn merge(&mut self, other: &Counters) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.demand_latency.merge(&other.demand_latency);
        self.latency_hist.merge(&other.latency_hist);
        self.queuing_hist.merge(&other.queuing_hist);
    }
}

/// Recorder construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct RecorderConfig {
    /// Capture level.
    pub level: TelemetryLevel,
    /// Total event capacity across all shards (only used at `Full`).
    pub capacity: usize,
    /// Number of independent shards. Threads are assigned round-robin on
    /// first emit, so a rayon-style worker pool spreads across shards and
    /// never serialises on one lock.
    pub shards: usize,
}

impl Default for RecorderConfig {
    fn default() -> Self {
        Self { level: TelemetryLevel::Counters, capacity: 1 << 20, shards: 8 }
    }
}

impl RecorderConfig {
    /// Convenience constructor for a level with default sizing.
    pub fn with_level(level: TelemetryLevel) -> Self {
        Self { level, ..Self::default() }
    }
}

struct Shard {
    ring: EventRing,
    counters: Counters,
}

struct Inner {
    level: TelemetryLevel,
    shards: Box<[Mutex<Shard>]>,
    next_shard: AtomicUsize,
}

thread_local! {
    /// Cached shard index for this thread, keyed by recorder identity so
    /// two recorders in one process don't alias each other's assignment.
    static SHARD_CACHE: std::cell::Cell<(usize, usize)> =
        const { std::cell::Cell::new((0, usize::MAX)) };
}

/// The concrete [`TelemetrySink`]: cheap-to-clone handle over sharded,
/// mutex-protected counter/ring state.
///
/// Each emitting thread is pinned to one shard (round-robin at first emit),
/// so under a parallel experiment grid every worker takes an uncontended
/// lock. Clones share the same underlying state; pass clones to the
/// controller and both DRAM regions.
#[derive(Clone)]
pub struct Recorder {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("level", &self.inner.level)
            .field("shards", &self.inner.shards.len())
            .finish()
    }
}

impl Recorder {
    /// Build a recorder from a config.
    pub fn new(cfg: RecorderConfig) -> Self {
        let shards = cfg.shards.max(1);
        let per_shard = cfg.capacity.div_ceil(shards).max(1);
        let shards: Box<[Mutex<Shard>]> = (0..shards)
            .map(|_| {
                Mutex::new(Shard { ring: EventRing::new(per_shard), counters: Counters::default() })
            })
            .collect();
        Self {
            inner: Arc::new(Inner { level: cfg.level, shards, next_shard: AtomicUsize::new(0) }),
        }
    }

    /// Recorder at a level with default capacity/sharding.
    pub fn with_level(level: TelemetryLevel) -> Self {
        Self::new(RecorderConfig::with_level(level))
    }

    /// The capture level this recorder was built with.
    pub fn level(&self) -> TelemetryLevel {
        self.inner.level
    }

    fn shard_index(&self) -> usize {
        let key = Arc::as_ptr(&self.inner) as usize;
        SHARD_CACHE.with(|c| {
            let (cached_key, cached_idx) = c.get();
            if cached_key == key && cached_idx != usize::MAX {
                cached_idx
            } else {
                let idx =
                    self.inner.next_shard.fetch_add(1, Ordering::Relaxed) % self.inner.shards.len();
                c.set((key, idx));
                idx
            }
        })
    }

    /// Merged per-kind counters across all shards.
    pub fn counters(&self) -> Counters {
        let mut out = Counters::default();
        for shard in self.inner.shards.iter() {
            out.merge(&shard.lock().unwrap().counters);
        }
        out
    }

    /// All recorded events, merged across shards and sorted by cycle
    /// (stable, so same-cycle events keep shard-local order).
    pub fn events(&self) -> Vec<Event> {
        let mut out = Vec::new();
        for shard in self.inner.shards.iter() {
            let guard = shard.lock().unwrap();
            out.extend(guard.ring.iter().copied());
        }
        out.sort_by_key(|e| e.cycle());
        out
    }

    /// Events evicted from rings because capacity was exceeded.
    pub fn dropped(&self) -> u64 {
        self.inner.shards.iter().map(|s| s.lock().unwrap().ring.dropped()).sum()
    }
}

impl TelemetrySink for Recorder {
    #[inline]
    fn enabled(&self, _kind: EventKind) -> bool {
        self.inner.level != TelemetryLevel::Off
    }

    fn emit(&self, event: Event) {
        let store = self.inner.level == TelemetryLevel::Full;
        let idx = self.shard_index();
        let mut shard = self.inner.shards[idx].lock().unwrap();
        shard.counters.record(&event);
        if store {
            shard.ring.push(event);
        }
    }

    /// One shard lock for the whole batch instead of one per event.
    fn emit_batch(&self, events: &mut Vec<Event>) {
        if events.is_empty() {
            return;
        }
        let store = self.inner.level == TelemetryLevel::Full;
        let idx = self.shard_index();
        let mut shard = self.inner.shards[idx].lock().unwrap();
        for event in events.drain(..) {
            shard.counters.record(&event);
            if store {
                shard.ring.push(event);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demand(cycle: u64, latency: u64) -> Event {
        Event::Demand { cycle, page: 0, on_package: true, is_write: false, latency, queuing: 1 }
    }

    #[test]
    fn counters_level_counts_without_storing() {
        let rec = Recorder::with_level(TelemetryLevel::Counters);
        assert!(rec.enabled(EventKind::Demand));
        for c in 0..10 {
            rec.emit(demand(c, 100 + c));
        }
        let counters = rec.counters();
        assert_eq!(counters.get(EventKind::Demand), 10);
        assert_eq!(counters.demand_latency.count(), 10);
        assert!(rec.events().is_empty(), "Counters level stores no events");
    }

    #[test]
    fn full_level_stores_events_sorted_by_cycle() {
        let rec = Recorder::with_level(TelemetryLevel::Full);
        rec.emit(demand(50, 10));
        rec.emit(demand(20, 10));
        rec.emit(demand(90, 10));
        let cycles: Vec<u64> = rec.events().iter().map(|e| e.cycle()).collect();
        assert_eq!(cycles, vec![20, 50, 90]);
    }

    #[test]
    fn off_level_disables_everything() {
        let rec = Recorder::with_level(TelemetryLevel::Off);
        for kind in EventKind::ALL {
            assert!(!rec.enabled(kind));
        }
    }

    #[test]
    fn capacity_bounds_storage_and_counts_drops() {
        let rec =
            Recorder::new(RecorderConfig { level: TelemetryLevel::Full, capacity: 8, shards: 1 });
        for c in 0..20 {
            rec.emit(demand(c, 5));
        }
        assert_eq!(rec.events().len(), 8);
        assert_eq!(rec.dropped(), 12);
        // Counters are not subject to ring capacity.
        assert_eq!(rec.counters().get(EventKind::Demand), 20);
    }

    #[test]
    fn emit_batch_matches_per_event_emit() {
        let one = Recorder::with_level(TelemetryLevel::Full);
        let batched = Recorder::with_level(TelemetryLevel::Full);
        let mut buf = Vec::new();
        for c in 0..100 {
            one.emit(demand(c, 10 + c));
            buf.push(demand(c, 10 + c));
        }
        batched.emit_batch(&mut buf);
        assert!(buf.is_empty(), "emit_batch must drain the buffer");
        assert_eq!(
            one.counters().get(EventKind::Demand),
            batched.counters().get(EventKind::Demand)
        );
        assert_eq!(one.counters().demand_latency.mean(), batched.counters().demand_latency.mean());
        assert_eq!(one.events().len(), batched.events().len());
    }

    #[test]
    fn parallel_emitters_do_not_lose_counts() {
        let rec = Recorder::new(RecorderConfig {
            level: TelemetryLevel::Full,
            capacity: 1 << 16,
            shards: 4,
        });
        std::thread::scope(|s| {
            for t in 0..8 {
                let rec = rec.clone();
                s.spawn(move || {
                    for i in 0..1000 {
                        rec.emit(demand(t * 1000 + i, 7));
                    }
                });
            }
        });
        assert_eq!(rec.counters().get(EventKind::Demand), 8000);
        assert_eq!(rec.events().len(), 8000);
        assert_eq!(rec.dropped(), 0);
    }
}
