//! The concrete recording sink: sharded counters + bounded event rings.

use std::str::FromStr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use hmm_sim_base::{FxHashMap, Histogram, RunningMean};

use crate::event::{Event, EventKind, RegionKind};
use crate::ring::EventRing;
use crate::sink::TelemetrySink;

/// How much the recorder captures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TelemetryLevel {
    /// Record nothing; `enabled()` is false for every kind, so instrumented
    /// code pays only a branch on a cached boolean.
    #[default]
    Off,
    /// Count events and feed the latency histogram, but store no event
    /// records — constant memory, suitable for full-length runs.
    Counters,
    /// Counters plus the event timeline in bounded ring buffers.
    Full,
}

impl TelemetryLevel {
    /// Stable CLI label.
    pub fn label(self) -> &'static str {
        match self {
            TelemetryLevel::Off => "off",
            TelemetryLevel::Counters => "counters",
            TelemetryLevel::Full => "full",
        }
    }
}

impl FromStr for TelemetryLevel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "off" => Ok(TelemetryLevel::Off),
            "counters" => Ok(TelemetryLevel::Counters),
            "full" => Ok(TelemetryLevel::Full),
            other => Err(format!("unknown telemetry level '{other}' (off|counters|full)")),
        }
    }
}

/// One family of labelled counters keyed by *pre-interned integer keys*.
///
/// The hot path never formats a label: callers pack whatever identifies a
/// series (region bit, channel, bank, read/write class) into a `u64` with
/// the `*_key` functions below, and [`KeyedCounters::add`] is an integer
/// hash probe plus a dense-slot increment. Labels are materialised only on
/// the read side ([`demand_class_label`] / [`bank_label`]), where exporters
/// can afford string work.
#[derive(Debug, Clone, Default)]
pub struct KeyedCounters {
    /// Packed key → dense slot index.
    index: FxHashMap<u64, u32>,
    /// `(packed key, count)` in first-seen order; the key rides along so
    /// reads and merges never consult the map.
    slots: Vec<(u64, u64)>,
}

impl KeyedCounters {
    /// Add `n` to the series identified by `key`, creating it on first use.
    #[inline]
    pub fn add(&mut self, key: u64, n: u64) {
        match self.index.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => {
                self.slots[*e.get() as usize].1 += n;
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(self.slots.len() as u32);
                self.slots.push((key, n));
            }
        }
    }

    /// Count for `key`; 0 for a series never touched.
    pub fn get(&self, key: u64) -> u64 {
        self.index.get(&key).map_or(0, |&i| self.slots[i as usize].1)
    }

    /// Number of distinct series seen.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether no series was ever touched.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Sum over every series.
    pub fn total(&self) -> u64 {
        self.slots.iter().map(|&(_, c)| c).sum()
    }

    /// `(key, count)` pairs sorted by key — the deterministic order
    /// exporters and tests want, independent of first-seen order (which
    /// differs between sharded and single-threaded runs).
    pub fn sorted(&self) -> Vec<(u64, u64)> {
        let mut out = self.slots.clone();
        out.sort_unstable_by_key(|&(k, _)| k);
        out
    }

    /// Fold another family into this one.
    pub fn merge(&mut self, other: &KeyedCounters) {
        for &(key, count) in &other.slots {
            self.add(key, count);
        }
    }
}

/// Pre-interned key for a demand service class: region bit 0, write bit 1.
#[inline]
pub fn demand_class_key(on_package: bool, is_write: bool) -> u64 {
    (on_package as u64) | ((is_write as u64) << 1)
}

/// Read-side label for a [`demand_class_key`], e.g. `on/read`.
pub fn demand_class_label(key: u64) -> String {
    let region = if key & 1 != 0 { "on" } else { "off" };
    let rw = if key & 2 != 0 { "write" } else { "read" };
    format!("{region}/{rw}")
}

/// Pre-interned key for one bank's traffic: bank in bits 0..32, channel in
/// 32..48, demand/background in 48, region in 49. The ordering makes
/// [`KeyedCounters::sorted`] group by region, then traffic class, then
/// channel, then bank.
#[inline]
pub fn bank_key(region: RegionKind, channel: u32, bank: u32, background: bool) -> u64 {
    (((region == RegionKind::OnPackage) as u64) << 49)
        | ((background as u64) << 48)
        | ((channel as u64) << 32)
        | bank as u64
}

/// Read-side label for a [`bank_key`], e.g. `on/ch0/b3/demand`.
pub fn bank_label(key: u64) -> String {
    let region = if key >> 49 & 1 != 0 { "on" } else { "off" };
    let class = if key >> 48 & 1 != 0 { "background" } else { "demand" };
    let channel = (key >> 32) as u16;
    let bank = key as u32;
    format!("{region}/ch{channel}/b{bank}/{class}")
}

/// Aggregated per-kind counts plus the demand-latency distribution.
#[derive(Debug, Clone, Default)]
pub struct Counters {
    counts: [u64; EventKind::COUNT],
    /// Mean end-to-end demand latency.
    pub demand_latency: RunningMean,
    /// Log2-bucketed end-to-end demand latency distribution.
    pub latency_hist: Histogram,
    /// Log2-bucketed demand queuing-delay distribution.
    pub queuing_hist: Histogram,
    /// Demand completions keyed by [`demand_class_key`] (region × r/w).
    pub demand_classes: KeyedCounters,
    /// DRAM column accesses keyed by [`bank_key`] (region × class ×
    /// channel × bank).
    pub bank_accesses: KeyedCounters,
    /// DRAM *write* accesses keyed by [`bank_key`] — the per-bank
    /// endurance (wear) view write-limited backends such as PCM expose.
    pub bank_writes: KeyedCounters,
}

impl Counters {
    /// Count of events of `kind` seen so far.
    pub fn get(&self, kind: EventKind) -> u64 {
        self.counts[kind as usize]
    }

    /// Total events of any kind.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    fn record(&mut self, event: &Event) {
        self.counts[event.kind() as usize] += 1;
        match *event {
            Event::Demand { latency, queuing, on_package, is_write, .. } => {
                self.demand_latency.push(latency);
                self.latency_hist.push(latency);
                self.queuing_hist.push(queuing);
                self.demand_classes.add(demand_class_key(on_package, is_write), 1);
            }
            Event::DramAccess { region, channel, bank, background, is_write, .. } => {
                self.bank_accesses.add(bank_key(region, channel, bank, background), 1);
                if is_write {
                    self.bank_writes.add(bank_key(region, channel, bank, background), 1);
                }
            }
            _ => {}
        }
    }

    /// Fold another counter set into this one (same convention as
    /// `RunningMean::merge`).
    pub fn merge(&mut self, other: &Counters) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.demand_latency.merge(&other.demand_latency);
        self.latency_hist.merge(&other.latency_hist);
        self.queuing_hist.merge(&other.queuing_hist);
        self.demand_classes.merge(&other.demand_classes);
        self.bank_accesses.merge(&other.bank_accesses);
        self.bank_writes.merge(&other.bank_writes);
    }
}

/// Recorder construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct RecorderConfig {
    /// Capture level.
    pub level: TelemetryLevel,
    /// Total event capacity across all shards (only used at `Full`).
    pub capacity: usize,
    /// Number of independent shards. Threads are assigned round-robin on
    /// first emit, so a rayon-style worker pool spreads across shards and
    /// never serialises on one lock.
    pub shards: usize,
}

impl Default for RecorderConfig {
    fn default() -> Self {
        Self { level: TelemetryLevel::Counters, capacity: 1 << 20, shards: 8 }
    }
}

impl RecorderConfig {
    /// Convenience constructor for a level with default sizing.
    pub fn with_level(level: TelemetryLevel) -> Self {
        Self { level, ..Self::default() }
    }
}

struct Shard {
    ring: EventRing,
    counters: Counters,
}

struct Inner {
    level: TelemetryLevel,
    shards: Box<[Mutex<Shard>]>,
    next_shard: AtomicUsize,
}

thread_local! {
    /// Cached shard index for this thread, keyed by recorder identity so
    /// two recorders in one process don't alias each other's assignment.
    static SHARD_CACHE: std::cell::Cell<(usize, usize)> =
        const { std::cell::Cell::new((0, usize::MAX)) };
}

/// The concrete [`TelemetrySink`]: cheap-to-clone handle over sharded,
/// mutex-protected counter/ring state.
///
/// Each emitting thread is pinned to one shard (round-robin at first emit),
/// so under a parallel experiment grid every worker takes an uncontended
/// lock. Clones share the same underlying state; pass clones to the
/// controller and both DRAM regions.
#[derive(Clone)]
pub struct Recorder {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("level", &self.inner.level)
            .field("shards", &self.inner.shards.len())
            .finish()
    }
}

impl Recorder {
    /// Build a recorder from a config.
    pub fn new(cfg: RecorderConfig) -> Self {
        let shards = cfg.shards.max(1);
        let per_shard = cfg.capacity.div_ceil(shards).max(1);
        let shards: Box<[Mutex<Shard>]> = (0..shards)
            .map(|_| {
                Mutex::new(Shard { ring: EventRing::new(per_shard), counters: Counters::default() })
            })
            .collect();
        Self {
            inner: Arc::new(Inner { level: cfg.level, shards, next_shard: AtomicUsize::new(0) }),
        }
    }

    /// Recorder at a level with default capacity/sharding.
    pub fn with_level(level: TelemetryLevel) -> Self {
        Self::new(RecorderConfig::with_level(level))
    }

    /// The capture level this recorder was built with.
    pub fn level(&self) -> TelemetryLevel {
        self.inner.level
    }

    fn shard_index(&self) -> usize {
        let key = Arc::as_ptr(&self.inner) as usize;
        SHARD_CACHE.with(|c| {
            let (cached_key, cached_idx) = c.get();
            if cached_key == key && cached_idx != usize::MAX {
                cached_idx
            } else {
                let idx =
                    self.inner.next_shard.fetch_add(1, Ordering::Relaxed) % self.inner.shards.len();
                c.set((key, idx));
                idx
            }
        })
    }

    /// Merged per-kind counters across all shards.
    pub fn counters(&self) -> Counters {
        let mut out = Counters::default();
        for shard in self.inner.shards.iter() {
            out.merge(&shard.lock().unwrap().counters);
        }
        out
    }

    /// All recorded events, merged across shards and sorted by cycle
    /// (stable, so same-cycle events keep shard-local order).
    pub fn events(&self) -> Vec<Event> {
        let mut out = Vec::new();
        for shard in self.inner.shards.iter() {
            let guard = shard.lock().unwrap();
            out.extend(guard.ring.iter().copied());
        }
        out.sort_by_key(|e| e.cycle());
        out
    }

    /// Events evicted from rings because capacity was exceeded.
    pub fn dropped(&self) -> u64 {
        self.inner.shards.iter().map(|s| s.lock().unwrap().ring.dropped()).sum()
    }
}

impl TelemetrySink for Recorder {
    #[inline]
    fn enabled(&self, _kind: EventKind) -> bool {
        self.inner.level != TelemetryLevel::Off
    }

    fn emit(&self, event: Event) {
        let store = self.inner.level == TelemetryLevel::Full;
        let idx = self.shard_index();
        let mut shard = self.inner.shards[idx].lock().unwrap();
        shard.counters.record(&event);
        if store {
            shard.ring.push(event);
        }
    }

    /// One shard lock for the whole batch instead of one per event.
    fn emit_batch(&self, events: &mut Vec<Event>) {
        if events.is_empty() {
            return;
        }
        let store = self.inner.level == TelemetryLevel::Full;
        let idx = self.shard_index();
        let mut shard = self.inner.shards[idx].lock().unwrap();
        for event in events.drain(..) {
            shard.counters.record(&event);
            if store {
                shard.ring.push(event);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demand(cycle: u64, latency: u64) -> Event {
        Event::Demand { cycle, page: 0, on_package: true, is_write: false, latency, queuing: 1 }
    }

    #[test]
    fn counters_level_counts_without_storing() {
        let rec = Recorder::with_level(TelemetryLevel::Counters);
        assert!(rec.enabled(EventKind::Demand));
        for c in 0..10 {
            rec.emit(demand(c, 100 + c));
        }
        let counters = rec.counters();
        assert_eq!(counters.get(EventKind::Demand), 10);
        assert_eq!(counters.demand_latency.count(), 10);
        assert!(rec.events().is_empty(), "Counters level stores no events");
    }

    #[test]
    fn full_level_stores_events_sorted_by_cycle() {
        let rec = Recorder::with_level(TelemetryLevel::Full);
        rec.emit(demand(50, 10));
        rec.emit(demand(20, 10));
        rec.emit(demand(90, 10));
        let cycles: Vec<u64> = rec.events().iter().map(|e| e.cycle()).collect();
        assert_eq!(cycles, vec![20, 50, 90]);
    }

    #[test]
    fn off_level_disables_everything() {
        let rec = Recorder::with_level(TelemetryLevel::Off);
        for kind in EventKind::ALL {
            assert!(!rec.enabled(kind));
        }
    }

    #[test]
    fn capacity_bounds_storage_and_counts_drops() {
        let rec =
            Recorder::new(RecorderConfig { level: TelemetryLevel::Full, capacity: 8, shards: 1 });
        for c in 0..20 {
            rec.emit(demand(c, 5));
        }
        assert_eq!(rec.events().len(), 8);
        assert_eq!(rec.dropped(), 12);
        // Counters are not subject to ring capacity.
        assert_eq!(rec.counters().get(EventKind::Demand), 20);
    }

    #[test]
    fn emit_batch_matches_per_event_emit() {
        let one = Recorder::with_level(TelemetryLevel::Full);
        let batched = Recorder::with_level(TelemetryLevel::Full);
        let mut buf = Vec::new();
        for c in 0..100 {
            one.emit(demand(c, 10 + c));
            buf.push(demand(c, 10 + c));
        }
        batched.emit_batch(&mut buf);
        assert!(buf.is_empty(), "emit_batch must drain the buffer");
        assert_eq!(
            one.counters().get(EventKind::Demand),
            batched.counters().get(EventKind::Demand)
        );
        assert_eq!(one.counters().demand_latency.mean(), batched.counters().demand_latency.mean());
        assert_eq!(one.events().len(), batched.events().len());
    }

    #[test]
    fn keyed_families_count_without_hot_path_strings() {
        let rec = Recorder::with_level(TelemetryLevel::Counters);
        rec.emit(Event::Demand {
            cycle: 1,
            page: 0,
            on_package: true,
            is_write: false,
            latency: 10,
            queuing: 1,
        });
        rec.emit(Event::Demand {
            cycle: 2,
            page: 0,
            on_package: true,
            is_write: true,
            latency: 10,
            queuing: 1,
        });
        rec.emit(Event::Demand {
            cycle: 3,
            page: 0,
            on_package: false,
            is_write: false,
            latency: 10,
            queuing: 1,
        });
        for bank in [3u32, 3, 7] {
            rec.emit(Event::DramAccess {
                cycle: 4,
                region: RegionKind::OnPackage,
                channel: 0,
                bank,
                outcome: crate::event::DramOutcome::RowHit,
                background: bank == 7,
                is_write: bank == 3,
            });
        }
        let c = rec.counters();
        assert_eq!(c.demand_classes.get(demand_class_key(true, false)), 1);
        assert_eq!(c.demand_classes.get(demand_class_key(true, true)), 1);
        assert_eq!(c.demand_classes.get(demand_class_key(false, false)), 1);
        assert_eq!(c.demand_classes.get(demand_class_key(false, true)), 0);
        assert_eq!(c.demand_classes.total(), c.get(EventKind::Demand));
        assert_eq!(c.bank_accesses.get(bank_key(RegionKind::OnPackage, 0, 3, false)), 2);
        assert_eq!(c.bank_accesses.get(bank_key(RegionKind::OnPackage, 0, 7, true)), 1);
        assert_eq!(c.bank_accesses.len(), 2);
        assert_eq!(c.bank_writes.get(bank_key(RegionKind::OnPackage, 0, 3, false)), 2);
        assert_eq!(c.bank_writes.len(), 1);
        assert_eq!(demand_class_label(demand_class_key(true, false)), "on/read");
        assert_eq!(demand_class_label(demand_class_key(false, true)), "off/write");
        assert_eq!(bank_label(bank_key(RegionKind::OnPackage, 0, 7, true)), "on/ch0/b7/background");
        assert_eq!(bank_label(bank_key(RegionKind::OffPackage, 2, 1, false)), "off/ch2/b1/demand");
    }

    #[test]
    fn keyed_families_merge_and_sort_deterministically() {
        let mut a = KeyedCounters::default();
        let mut b = KeyedCounters::default();
        a.add(5, 2);
        a.add(1, 1);
        b.add(1, 10);
        b.add(9, 4);
        a.merge(&b);
        assert_eq!(a.sorted(), vec![(1, 11), (5, 2), (9, 4)]);
        assert_eq!(a.total(), 17);
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
        assert_eq!(a.get(42), 0);
    }

    #[test]
    fn parallel_emitters_do_not_lose_counts() {
        let rec = Recorder::new(RecorderConfig {
            level: TelemetryLevel::Full,
            capacity: 1 << 16,
            shards: 4,
        });
        std::thread::scope(|s| {
            for t in 0..8 {
                let rec = rec.clone();
                s.spawn(move || {
                    for i in 0..1000 {
                        rec.emit(demand(t * 1000 + i, 7));
                    }
                });
            }
        });
        assert_eq!(rec.counters().get(EventKind::Demand), 8000);
        assert_eq!(rec.events().len(), 8000);
        assert_eq!(rec.dropped(), 0);
    }
}
