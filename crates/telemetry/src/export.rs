//! Exporters: JSONL event dumps, Chrome `trace_event` (Perfetto) traces
//! keyed on the simulated clock, and the per-epoch CSV summary.
//!
//! All writers produce to any `io::Write`, so tests render into `Vec<u8>`
//! and the CLI streams straight to files.

use std::io::{self, Write};

use crate::event::{DramOutcome, Event, EventKind};
use crate::json::JsonObject;

/// Render one event as a single JSON object (one JSONL line, no newline).
pub fn event_to_json(event: &Event) -> String {
    let obj = JsonObject::new().str("kind", event.kind().name()).u64("cycle", event.cycle());
    match *event {
        Event::Demand { page, on_package, is_write, latency, queuing, .. } => obj
            .u64("page", page)
            .bool("on_package", on_package)
            .bool("write", is_write)
            .u64("latency", latency)
            .u64("queuing", queuing)
            .finish(),
        Event::SwapStart { hot_page, cold_slot, case, .. } => obj
            .u64("hot_page", hot_page)
            .u64("cold_slot", cold_slot as u64)
            .u64("case", case as u64)
            .finish(),
        Event::SwapStep { step, .. } => obj.u64("step", step as u64).finish(),
        Event::SwapComplete { sub_blocks, .. } => obj.u64("sub_blocks", sub_blocks).finish(),
        Event::EpochRollover {
            epoch,
            demand_on,
            demand_off,
            migration_lines,
            stall_cycles,
            swaps_completed,
            rejected,
            ..
        } => obj
            .u64("epoch", epoch)
            .u64("demand_on", demand_on)
            .u64("demand_off", demand_off)
            .u64("migration_lines", migration_lines)
            .u64("stall_cycles", stall_cycles)
            .u64("swaps_completed", swaps_completed)
            .bool("rejected", rejected)
            .finish(),
        Event::PfTransition { slot, bit, set, .. } => {
            obj.u64("slot", slot as u64).str("bit", bit.label()).bool("set", set).finish()
        }
        Event::DramAccess { region, channel, bank, outcome, background, is_write, .. } => obj
            .str("region", region.label())
            .u64("channel", channel as u64)
            .u64("bank", bank as u64)
            .str(
                "outcome",
                match outcome {
                    DramOutcome::RowHit => "hit",
                    DramOutcome::RowMiss => "miss",
                    DramOutcome::BankConflict => "conflict",
                },
            )
            .bool("background", background)
            .bool("is_write", is_write)
            .finish(),
        Event::GranularitySwitch { from_shift, to_shift, .. } => {
            obj.u64("from_shift", from_shift as u64).u64("to_shift", to_shift as u64).finish()
        }
        Event::FaultInjected { class, detail, .. } => {
            obj.str("class", class.label()).u64("detail", detail).finish()
        }
        Event::TransferRetried { sub, attempt, .. } => {
            obj.u64("sub", sub as u64).u64("attempt", attempt as u64).finish()
        }
        Event::SwapAborted { step, rollback, .. } => {
            obj.u64("step", step as u64).bool("rollback", rollback).finish()
        }
        Event::SlotQuarantined { slot, parked_page, .. } => {
            obj.u64("slot", slot as u64).u64("parked_page", parked_page).finish()
        }
    }
}

/// Write every event as one JSON object per line.
pub fn write_jsonl<W: Write>(mut w: W, events: &[Event]) -> io::Result<()> {
    for event in events {
        writeln!(w, "{}", event_to_json(event))?;
    }
    Ok(())
}

/// Write a Chrome `trace_event` JSON document.
///
/// Timestamps are the simulated clock mapped to microseconds: `cpu_mhz`
/// cycles make one microsecond, so a 3.2 GHz run maps cycle 3200 to
/// `ts = 1.0`. Open the result at `ui.perfetto.dev` (or
/// `chrome://tracing`). Lanes: tid 0 carries demand accesses as complete
/// (`X`) spans, tid 1 carries swaps as async (`b`/`e`) spans with step and
/// P/F instants, tid 2 carries epoch counter tracks.
pub fn write_chrome_trace<W: Write>(mut w: W, events: &[Event], cpu_mhz: u64) -> io::Result<()> {
    let scale = 1.0 / cpu_mhz.max(1) as f64;
    let ts = |cycle: u64| (cycle as f64) * scale;

    write!(w, "{{\"displayTimeUnit\":\"ns\",\"traceEvents\":[")?;
    write!(
        w,
        "{}",
        JsonObject::new()
            .str("name", "process_name")
            .str("ph", "M")
            .u64("pid", 0)
            .raw("args", &JsonObject::new().str("name", "hmm-sim").finish())
            .finish()
    )?;
    for (tid, name) in [(0u64, "demand"), (1, "migration"), (2, "epochs")] {
        write!(
            w,
            ",{}",
            JsonObject::new()
                .str("name", "thread_name")
                .str("ph", "M")
                .u64("pid", 0)
                .u64("tid", tid)
                .raw("args", &JsonObject::new().str("name", name).finish())
                .finish()
        )?;
    }

    let mut swap_id: u64 = 0;
    for event in events {
        let record = match *event {
            Event::Demand { cycle, page, on_package, is_write, latency, queuing } => {
                let start = cycle.saturating_sub(latency);
                Some(
                    JsonObject::new()
                        .str("name", if on_package { "demand(on)" } else { "demand(off)" })
                        .str("cat", "demand")
                        .str("ph", "X")
                        .u64("pid", 0)
                        .u64("tid", 0)
                        .f64("ts", ts(start))
                        .f64("dur", ts(latency).max(ts(1)))
                        .raw(
                            "args",
                            &JsonObject::new()
                                .u64("page", page)
                                .bool("write", is_write)
                                .u64("queuing_cycles", queuing)
                                .finish(),
                        )
                        .finish(),
                )
            }
            Event::SwapStart { cycle, hot_page, cold_slot, case } => {
                swap_id += 1;
                Some(
                    JsonObject::new()
                        .str("name", "swap")
                        .str("cat", "migration")
                        .str("ph", "b")
                        .u64("id", swap_id)
                        .u64("pid", 0)
                        .u64("tid", 1)
                        .f64("ts", ts(cycle))
                        .raw(
                            "args",
                            &JsonObject::new()
                                .u64("hot_page", hot_page)
                                .u64("cold_slot", cold_slot as u64)
                                .u64("case", case as u64)
                                .finish(),
                        )
                        .finish(),
                )
            }
            Event::SwapComplete { cycle, sub_blocks } => Some(
                JsonObject::new()
                    .str("name", "swap")
                    .str("cat", "migration")
                    .str("ph", "e")
                    .u64("id", swap_id.max(1))
                    .u64("pid", 0)
                    .u64("tid", 1)
                    .f64("ts", ts(cycle))
                    .raw("args", &JsonObject::new().u64("sub_blocks", sub_blocks).finish())
                    .finish(),
            ),
            Event::SwapStep { cycle, step } => Some(
                JsonObject::new()
                    .str("name", "swap_step")
                    .str("cat", "migration")
                    .str("ph", "i")
                    .str("s", "t")
                    .u64("pid", 0)
                    .u64("tid", 1)
                    .f64("ts", ts(cycle))
                    .raw("args", &JsonObject::new().u64("step", step as u64).finish())
                    .finish(),
            ),
            Event::PfTransition { cycle, slot, bit, set } => Some(
                JsonObject::new()
                    .str("name", if set { "bit_set" } else { "bit_clear" })
                    .str("cat", "table")
                    .str("ph", "i")
                    .str("s", "t")
                    .u64("pid", 0)
                    .u64("tid", 1)
                    .f64("ts", ts(cycle))
                    .raw(
                        "args",
                        &JsonObject::new()
                            .u64("slot", slot as u64)
                            .str("bit", bit.label())
                            .finish(),
                    )
                    .finish(),
            ),
            Event::EpochRollover { cycle, demand_on, demand_off, migration_lines, .. } => Some(
                JsonObject::new()
                    .str("name", "epoch traffic (lines)")
                    .str("cat", "epochs")
                    .str("ph", "C")
                    .u64("pid", 0)
                    .u64("tid", 2)
                    .f64("ts", ts(cycle))
                    .raw(
                        "args",
                        &JsonObject::new()
                            .u64("demand_on", demand_on)
                            .u64("demand_off", demand_off)
                            .u64("migration", migration_lines)
                            .finish(),
                    )
                    .finish(),
            ),
            Event::GranularitySwitch { cycle, from_shift, to_shift } => Some(
                JsonObject::new()
                    .str("name", "granularity_switch")
                    .str("cat", "adaptive")
                    .str("ph", "i")
                    .str("s", "g")
                    .u64("pid", 0)
                    .u64("tid", 2)
                    .f64("ts", ts(cycle))
                    .raw(
                        "args",
                        &JsonObject::new()
                            .u64("from_shift", from_shift as u64)
                            .u64("to_shift", to_shift as u64)
                            .finish(),
                    )
                    .finish(),
            ),
            Event::TransferRetried { cycle, sub, attempt } => Some(
                JsonObject::new()
                    .str("name", "transfer_retry")
                    .str("cat", "migration")
                    .str("ph", "i")
                    .str("s", "t")
                    .u64("pid", 0)
                    .u64("tid", 1)
                    .f64("ts", ts(cycle))
                    .raw(
                        "args",
                        &JsonObject::new()
                            .u64("sub", sub as u64)
                            .u64("attempt", attempt as u64)
                            .finish(),
                    )
                    .finish(),
            ),
            Event::SwapAborted { cycle, step, rollback } => Some(
                JsonObject::new()
                    .str("name", "swap_abort")
                    .str("cat", "migration")
                    .str("ph", "i")
                    .str("s", "t")
                    .u64("pid", 0)
                    .u64("tid", 1)
                    .f64("ts", ts(cycle))
                    .raw(
                        "args",
                        &JsonObject::new()
                            .u64("step", step as u64)
                            .bool("rollback", rollback)
                            .finish(),
                    )
                    .finish(),
            ),
            Event::SlotQuarantined { cycle, slot, parked_page } => Some(
                JsonObject::new()
                    .str("name", "slot_quarantine")
                    .str("cat", "migration")
                    .str("ph", "i")
                    .str("s", "p")
                    .u64("pid", 0)
                    .u64("tid", 1)
                    .f64("ts", ts(cycle))
                    .raw(
                        "args",
                        &JsonObject::new()
                            .u64("slot", slot as u64)
                            .u64("parked_page", parked_page)
                            .finish(),
                    )
                    .finish(),
            ),
            // Per-access DRAM events are too dense for a useful timeline;
            // they are summarised by counters and the JSONL dump instead.
            // Individual fault injections likewise: the retry/abort/
            // quarantine instants above carry the recovery story.
            Event::DramAccess { .. } | Event::FaultInjected { .. } => None,
        };
        if let Some(record) = record {
            write!(w, ",{record}")?;
        }
    }
    write!(w, "]}}")?;
    Ok(())
}

/// One row of the per-epoch CSV, reconstructed from
/// [`Event::EpochRollover`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochRow {
    /// Cycle the epoch ended.
    pub cycle: u64,
    /// Zero-based epoch index (the final partial epoch reuses the next
    /// index).
    pub epoch: u64,
    /// Demand lines serviced on-package during the epoch.
    pub demand_on: u64,
    /// Demand lines serviced off-package during the epoch.
    pub demand_off: u64,
    /// Migration (copy) lines moved during the epoch.
    pub migration_lines: u64,
    /// Demand-stall cycles charged during the epoch.
    pub stall_cycles: u64,
    /// Swaps completed during the epoch.
    pub swaps_completed: u64,
    /// Whether the trigger at this boundary was rejected.
    pub rejected: bool,
}

/// Extract the epoch rows from an event stream, in cycle order.
pub fn epoch_rows(events: &[Event]) -> Vec<EpochRow> {
    events
        .iter()
        .filter_map(|e| match *e {
            Event::EpochRollover {
                cycle,
                epoch,
                demand_on,
                demand_off,
                migration_lines,
                stall_cycles,
                swaps_completed,
                rejected,
            } => Some(EpochRow {
                cycle,
                epoch,
                demand_on,
                demand_off,
                migration_lines,
                stall_cycles,
                swaps_completed,
                rejected,
            }),
            _ => None,
        })
        .collect()
}

/// Write the per-epoch CSV summary. Columns sum to the run's flat
/// counters: `demand_on + demand_off` over all rows equals the
/// controller's total demand lines, `swaps_completed` sums to
/// `SwapStats::completed`, and so on.
pub fn write_epoch_csv<W: Write>(mut w: W, rows: &[EpochRow]) -> io::Result<()> {
    writeln!(
        w,
        "epoch,cycle,demand_on,demand_off,migration_lines,stall_cycles,swaps_completed,rejected"
    )?;
    for r in rows {
        writeln!(
            w,
            "{},{},{},{},{},{},{},{}",
            r.epoch,
            r.cycle,
            r.demand_on,
            r.demand_off,
            r.migration_lines,
            r.stall_cycles,
            r.swaps_completed,
            u8::from(r.rejected)
        )?;
    }
    Ok(())
}

/// Count of events of a given kind in a slice — convenience for
/// reconciliation checks and tests.
pub fn count_kind(events: &[Event], kind: EventKind) -> u64 {
    events.iter().filter(|e| e.kind() == kind).count() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::PfBit;

    fn sample_events() -> Vec<Event> {
        vec![
            Event::SwapStart { cycle: 100, hot_page: 7, cold_slot: 2, case: 1 },
            Event::PfTransition { cycle: 100, slot: 2, bit: PfBit::P, set: true },
            Event::Demand {
                cycle: 150,
                page: 7,
                on_package: false,
                is_write: true,
                latency: 40,
                queuing: 5,
            },
            Event::SwapStep { cycle: 180, step: 0 },
            Event::SwapComplete { cycle: 220, sub_blocks: 32 },
            Event::EpochRollover {
                cycle: 300,
                epoch: 0,
                demand_on: 10,
                demand_off: 5,
                migration_lines: 64,
                stall_cycles: 12,
                swaps_completed: 1,
                rejected: false,
            },
        ]
    }

    #[test]
    fn jsonl_is_one_object_per_line() {
        let mut buf = Vec::new();
        write_jsonl(&mut buf, &sample_events()).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 6);
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "bad line: {line}");
            assert!(line.contains("\"kind\""));
        }
    }

    #[test]
    fn chrome_trace_is_balanced_json_with_swap_pairs() {
        let mut buf = Vec::new();
        write_chrome_trace(&mut buf, &sample_events(), 3200).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with('{') && text.ends_with('}'));
        let opens = text.matches('{').count();
        let closes = text.matches('}').count();
        assert_eq!(opens, closes, "unbalanced braces");
        assert_eq!(text.matches("\"ph\":\"b\"").count(), 1);
        assert_eq!(text.matches("\"ph\":\"e\"").count(), 1);
        assert!(text.contains("\"traceEvents\""));
    }

    #[test]
    fn epoch_csv_round_trips_rollover_events() {
        let rows = epoch_rows(&sample_events());
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].demand_on, 10);
        let mut buf = Vec::new();
        write_epoch_csv(&mut buf, &rows).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let mut lines = text.lines();
        assert!(lines.next().unwrap().starts_with("epoch,"));
        assert_eq!(lines.next().unwrap(), "0,300,10,5,64,12,1,0");
    }
}
