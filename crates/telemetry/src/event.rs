//! Typed telemetry events.
//!
//! Every layer of the simulator reports what it does through one flat
//! [`Event`] enum rather than per-layer callback traits: a single type keeps
//! the sink trait object-safe-free and monomorphisable, lets the recorder
//! store everything in one ring, and gives exporters a closed world to
//! pattern-match. All times are CPU [`Cycle`]s of the simulated clock —
//! telemetry never looks at wall time.

use hmm_sim_base::Cycle;

/// Which memory region a DRAM event happened in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegionKind {
    /// The fast on-package DRAM (the paper's 3D-stacked / MCM region).
    OnPackage,
    /// Conventional off-package DIMMs.
    OffPackage,
}

impl RegionKind {
    /// Short label used by exporters.
    pub fn label(self) -> &'static str {
        match self {
            RegionKind::OnPackage => "on",
            RegionKind::OffPackage => "off",
        }
    }
}

/// Which translation-table bit a [`Event::PfTransition`] refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PfBit {
    /// The **P** (pending) bit: the slot is part of an in-flight swap.
    P,
    /// The **F** (filling) bit: the slot is being filled sub-block by
    /// sub-block (live migration, Fig. 9).
    F,
}

impl PfBit {
    /// Short label used by exporters.
    pub fn label(self) -> &'static str {
        match self {
            PfBit::P => "P",
            PfBit::F => "F",
        }
    }
}

/// A P/F-bit transition as logged by the migration engine, before the
/// controller attaches the current cycle. The engine is clock-free (it is
/// driven by the controller), so it records *what* changed and the
/// controller records *when*.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PfChange {
    /// On-package slot index whose table row changed.
    pub slot: u32,
    /// Which bit changed.
    pub bit: PfBit,
    /// New value of the bit.
    pub set: bool,
}

/// Outcome of a DRAM column access at the bank, as seen by the scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DramOutcome {
    /// The addressed row was already open: CAS only.
    RowHit,
    /// The bank was idle (no open row): ACT + CAS.
    RowMiss,
    /// Another row was open: PRE + ACT + CAS (a bank conflict).
    BankConflict,
}

/// Classification of an injected fault, as reported by whichever layer
/// detected it (the DRAM channel for ECC/stuck/throttle events, the
/// controller for transfer and translation-row faults).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultClass {
    /// Single-bit ECC error, corrected in-line by the SECDED code.
    CorrectedEcc,
    /// Double-bit ECC error: detected but uncorrectable.
    UncorrectableEcc,
    /// A read serviced by a stuck-at (permanently failed) bank.
    StuckBank,
    /// A refresh/thermal throttle window delayed issue.
    Throttle,
    /// A migration sub-block transfer was dropped in flight.
    TransferDrop,
    /// A migration sub-block transfer timed out.
    TransferTimeout,
    /// A translation-table row took a soft error (detected and repaired).
    RowCorruption,
}

impl FaultClass {
    /// Short label used by exporters.
    pub fn label(self) -> &'static str {
        match self {
            FaultClass::CorrectedEcc => "corrected_ecc",
            FaultClass::UncorrectableEcc => "uncorrectable_ecc",
            FaultClass::StuckBank => "stuck_bank",
            FaultClass::Throttle => "throttle",
            FaultClass::TransferDrop => "transfer_drop",
            FaultClass::TransferTimeout => "transfer_timeout",
            FaultClass::RowCorruption => "row_corruption",
        }
    }
}

/// Discriminant of [`Event`], used for cheap `enabled()` checks and for the
/// recorder's per-kind counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum EventKind {
    /// A demand (CPU-issued) memory access completed.
    Demand,
    /// A hot/cold macro-page swap was triggered.
    SwapStart,
    /// One copy step of an in-flight swap finished.
    SwapStep,
    /// A swap fully completed (all legs copied, table settled).
    SwapComplete,
    /// A monitoring epoch ended and the swap decision ran.
    EpochRollover,
    /// A translation-table P or F bit flipped.
    PfTransition,
    /// A DRAM access hit the open row.
    RowHit,
    /// A DRAM access found the bank idle.
    RowMiss,
    /// A DRAM access conflicted with a different open row.
    BankConflict,
    /// The adaptive controller switched migration granularity.
    GranularitySwitch,
    /// A fault from the active fault plan fired.
    FaultInjected,
    /// A failed migration transfer was re-issued with backoff.
    TransferRetried,
    /// A swap exhausted its retry budget and was aborted (rolled back
    /// under the N-1 designs).
    SwapAborted,
    /// An on-package slot was retired from the migration pool.
    SlotQuarantined,
}

impl EventKind {
    /// Number of kinds; sizes the recorder's counter array.
    pub const COUNT: usize = 14;

    /// All kinds, in counter order.
    pub const ALL: [EventKind; Self::COUNT] = [
        EventKind::Demand,
        EventKind::SwapStart,
        EventKind::SwapStep,
        EventKind::SwapComplete,
        EventKind::EpochRollover,
        EventKind::PfTransition,
        EventKind::RowHit,
        EventKind::RowMiss,
        EventKind::BankConflict,
        EventKind::GranularitySwitch,
        EventKind::FaultInjected,
        EventKind::TransferRetried,
        EventKind::SwapAborted,
        EventKind::SlotQuarantined,
    ];

    /// Stable name used in JSONL output and counter summaries.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Demand => "demand",
            EventKind::SwapStart => "swap_start",
            EventKind::SwapStep => "swap_step",
            EventKind::SwapComplete => "swap_complete",
            EventKind::EpochRollover => "epoch_rollover",
            EventKind::PfTransition => "pf_transition",
            EventKind::RowHit => "row_hit",
            EventKind::RowMiss => "row_miss",
            EventKind::BankConflict => "bank_conflict",
            EventKind::GranularitySwitch => "granularity_switch",
            EventKind::FaultInjected => "fault_injected",
            EventKind::TransferRetried => "transfer_retried",
            EventKind::SwapAborted => "swap_aborted",
            EventKind::SlotQuarantined => "slot_quarantined",
        }
    }
}

/// One telemetry event. See [`EventKind`] for the taxonomy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// A demand access completed service.
    Demand {
        /// Completion cycle.
        cycle: Cycle,
        /// Physical macro-page the access belonged to.
        page: u64,
        /// Whether it was serviced from the on-package region.
        on_package: bool,
        /// Whether it was a write.
        is_write: bool,
        /// End-to-end latency in cycles (issue to completion).
        latency: Cycle,
        /// Cycles spent queued before DRAM service.
        queuing: Cycle,
    },
    /// A swap was triggered at an epoch boundary.
    SwapStart {
        /// Trigger cycle.
        cycle: Cycle,
        /// Hot off-package physical macro-page being promoted.
        hot_page: u64,
        /// Cold on-package slot being evicted into.
        cold_slot: u32,
        /// Which Fig. 8 case (0-3) the engine classified this swap as.
        case: u8,
    },
    /// One copy leg of the in-flight swap completed.
    SwapStep {
        /// Completion cycle of the leg.
        cycle: Cycle,
        /// Zero-based step index within the swap.
        step: u32,
    },
    /// The in-flight swap fully completed.
    SwapComplete {
        /// Completion cycle.
        cycle: Cycle,
        /// Sub-blocks copied by this swap (both directions).
        sub_blocks: u64,
    },
    /// A monitoring epoch rolled over. Carries the *deltas* accumulated
    /// since the previous rollover so the per-epoch CSV is a pure function
    /// of the event stream and sums exactly to the final flat counters.
    EpochRollover {
        /// Rollover cycle.
        cycle: Cycle,
        /// Zero-based epoch index.
        epoch: u64,
        /// Demand lines serviced on-package this epoch.
        demand_on: u64,
        /// Demand lines serviced off-package this epoch.
        demand_off: u64,
        /// Migration (copy) lines moved this epoch, both regions.
        migration_lines: u64,
        /// Demand-stall cycles charged this epoch.
        stall_cycles: u64,
        /// Swaps completed during this epoch.
        swaps_completed: u64,
        /// Whether the swap trigger at this boundary was rejected.
        rejected: bool,
    },
    /// A translation-table P or F bit flipped.
    PfTransition {
        /// Cycle the controller applied the table operation.
        cycle: Cycle,
        /// On-package slot index.
        slot: u32,
        /// Which bit.
        bit: PfBit,
        /// New value.
        set: bool,
    },
    /// A DRAM column access was scheduled.
    DramAccess {
        /// Cycle the command stream started at the bank.
        cycle: Cycle,
        /// Which region the channel belongs to.
        region: RegionKind,
        /// Channel index within the region.
        channel: u32,
        /// Bank index within the channel's decode space.
        bank: u32,
        /// Row-buffer outcome.
        outcome: DramOutcome,
        /// Whether this was background (migration) traffic.
        background: bool,
        /// Whether data moved toward the device (a write burst) — the
        /// endurance-relevant direction for write-limited media like PCM.
        is_write: bool,
    },
    /// The adaptive controller committed a new migration granularity.
    GranularitySwitch {
        /// Cycle of the rebuild.
        cycle: Cycle,
        /// Previous macro-page shift (log2 bytes).
        from_shift: u32,
        /// New macro-page shift (log2 bytes).
        to_shift: u32,
    },
    /// A fault from the active fault plan fired.
    FaultInjected {
        /// Cycle the fault was detected.
        cycle: Cycle,
        /// What kind of fault.
        class: FaultClass,
        /// Class-specific location: `channel << 32 | bank` for ECC and
        /// stuck-bank events, the release cycle for throttle windows,
        /// the transfer token for drops/timeouts, the slot for row
        /// corruption.
        detail: u64,
    },
    /// A failed migration transfer was re-issued with backoff.
    TransferRetried {
        /// Cycle the failure was detected and the retry scheduled.
        cycle: Cycle,
        /// Sub-block index within the current copy step.
        sub: u32,
        /// Retry attempt number (1 = first retry).
        attempt: u32,
    },
    /// A swap exhausted its retry budget and was aborted.
    SwapAborted {
        /// Cycle of the abort decision.
        cycle: Cycle,
        /// Copy step the swap had reached when it aborted.
        step: u32,
        /// Whether a rollback (reverse copies restoring the pre-swap
        /// placement) was started; `false` means the table needed no
        /// repair (N design, or abort before any step completed).
        rollback: bool,
    },
    /// An on-package slot was retired from the migration pool.
    SlotQuarantined {
        /// Cycle the quarantine drain completed.
        cycle: Cycle,
        /// The retired on-package slot.
        slot: u32,
        /// Machine page its occupant was parked to.
        parked_page: u64,
    },
}

impl Event {
    /// The discriminant used for `enabled()` gating and counting.
    pub fn kind(&self) -> EventKind {
        match self {
            Event::Demand { .. } => EventKind::Demand,
            Event::SwapStart { .. } => EventKind::SwapStart,
            Event::SwapStep { .. } => EventKind::SwapStep,
            Event::SwapComplete { .. } => EventKind::SwapComplete,
            Event::EpochRollover { .. } => EventKind::EpochRollover,
            Event::PfTransition { .. } => EventKind::PfTransition,
            Event::DramAccess { outcome, .. } => match outcome {
                DramOutcome::RowHit => EventKind::RowHit,
                DramOutcome::RowMiss => EventKind::RowMiss,
                DramOutcome::BankConflict => EventKind::BankConflict,
            },
            Event::GranularitySwitch { .. } => EventKind::GranularitySwitch,
            Event::FaultInjected { .. } => EventKind::FaultInjected,
            Event::TransferRetried { .. } => EventKind::TransferRetried,
            Event::SwapAborted { .. } => EventKind::SwapAborted,
            Event::SlotQuarantined { .. } => EventKind::SlotQuarantined,
        }
    }

    /// The simulated cycle the event is keyed on.
    pub fn cycle(&self) -> Cycle {
        match *self {
            Event::Demand { cycle, .. }
            | Event::SwapStart { cycle, .. }
            | Event::SwapStep { cycle, .. }
            | Event::SwapComplete { cycle, .. }
            | Event::EpochRollover { cycle, .. }
            | Event::PfTransition { cycle, .. }
            | Event::DramAccess { cycle, .. }
            | Event::GranularitySwitch { cycle, .. }
            | Event::FaultInjected { cycle, .. }
            | Event::TransferRetried { cycle, .. }
            | Event::SwapAborted { cycle, .. }
            | Event::SlotQuarantined { cycle, .. } => cycle,
        }
    }
}
