//! Live frame streaming: a bounded, multi-subscriber frame hub.
//!
//! The serving layer wants to let clients *watch* a running simulation —
//! per-epoch progress frames over a chunked HTTP response — without ever
//! letting a slow (or absent) reader stall the simulation or grow memory
//! without bound. [`FrameHub`] is the piece that makes that safe:
//!
//! * The producer side ([`EpochFrameSink`], or `push` directly) renders
//!   each frame to one JSONL line and appends it to a bounded deque,
//!   evicting the oldest frame when full. Producing never blocks.
//! * Each subscriber holds only a `u64` cursor — the sequence number of
//!   the next frame it wants. Frames carry monotone sequence numbers, so
//!   a reader that fell behind the eviction horizon is told exactly how
//!   many frames it lost (an explicit `{"dropped":N}` frame) instead of
//!   silently skipping — same honesty rule as [`crate::ring::EventRing`].
//! * `close` marks the stream finished; drained subscribers then see
//!   [`Frame::Eof`] exactly once, which the HTTP layer turns into a clean
//!   end of the chunked body.
//!
//! The hub stores *rendered strings*, not [`Event`]s: rendering happens
//! once on the simulation thread (cheap — epoch rollovers are rare), and
//! N subscribers just clone the line under the lock.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

use crate::event::{Event, EventKind};
use crate::json::JsonObject;
use crate::sink::TelemetrySink;

/// What a subscriber gets for one `next` call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// One rendered JSONL line (no trailing newline).
    Data(String),
    /// The subscriber lagged past the retention horizon; this many frames
    /// were evicted before it caught up. Delivered at most once per lag
    /// episode, then delivery resumes with live frames.
    Dropped(u64),
    /// The stream is closed and fully drained.
    Eof,
    /// Nothing available within the wait budget; poll again.
    Pending,
}

#[derive(Debug)]
struct HubState {
    /// Rendered frames; `frames[i]` has sequence number `start_seq + i`.
    frames: VecDeque<String>,
    /// Sequence number of `frames[0]`.
    start_seq: u64,
    /// Sequence number the *next* pushed frame will get.
    next_seq: u64,
    /// Total frames evicted over the hub's lifetime.
    evicted: u64,
    closed: bool,
}

/// Bounded multi-subscriber stream of rendered JSONL frames. See the
/// module docs for the contract.
#[derive(Debug)]
pub struct FrameHub {
    state: Mutex<HubState>,
    wake: Condvar,
    capacity: usize,
}

impl FrameHub {
    /// A hub retaining at most `capacity` undelivered frames.
    pub fn new(capacity: usize) -> Self {
        Self {
            state: Mutex::new(HubState {
                frames: VecDeque::new(),
                start_seq: 0,
                next_seq: 0,
                evicted: 0,
                closed: false,
            }),
            wake: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Append one rendered frame, evicting the oldest if at capacity.
    /// Pushes after `close` are ignored (the stream has already promised
    /// EOF to its subscribers).
    pub fn push(&self, line: String) {
        let mut s = self.state.lock().unwrap();
        if s.closed {
            return;
        }
        if s.frames.len() == self.capacity {
            s.frames.pop_front();
            s.start_seq += 1;
            s.evicted += 1;
        }
        s.frames.push_back(line);
        s.next_seq += 1;
        drop(s);
        self.wake.notify_all();
    }

    /// Mark the stream finished. Idempotent.
    pub fn close(&self) {
        let mut s = self.state.lock().unwrap();
        s.closed = true;
        drop(s);
        self.wake.notify_all();
    }

    /// Whether `close` has been called.
    pub fn is_closed(&self) -> bool {
        self.state.lock().unwrap().closed
    }

    /// Frames evicted before any subscriber read them, over the hub's
    /// lifetime (an upper bound on what any one subscriber lost).
    pub fn evicted(&self) -> u64 {
        self.state.lock().unwrap().evicted
    }

    /// Total frames ever pushed.
    pub fn pushed(&self) -> u64 {
        self.state.lock().unwrap().next_seq
    }

    /// Fetch the next frame for a subscriber at `*cursor`, waiting up to
    /// `wait` for one to arrive. Advances the cursor on `Data`/`Dropped`.
    /// A fresh subscriber starts at cursor 0 and (if the hub has not
    /// evicted anything yet) replays from the first frame.
    pub fn next(&self, cursor: &mut u64, wait: Duration) -> Frame {
        let mut s = self.state.lock().unwrap();
        loop {
            if *cursor < s.start_seq {
                let lost = s.start_seq - *cursor;
                *cursor = s.start_seq;
                return Frame::Dropped(lost);
            }
            if *cursor < s.next_seq {
                let line = s.frames[(*cursor - s.start_seq) as usize].clone();
                *cursor += 1;
                return Frame::Data(line);
            }
            if s.closed {
                return Frame::Eof;
            }
            let (guard, timed_out) = self.wake.wait_timeout(s, wait).unwrap();
            s = guard;
            if timed_out.timed_out() {
                // Re-check once under the lock, then hand control back to
                // the caller (which owns the socket-liveness decision).
                if *cursor < s.next_seq || *cursor < s.start_seq {
                    continue;
                }
                return if s.closed { Frame::Eof } else { Frame::Pending };
            }
        }
    }
}

/// Render one epoch-rollover event as the stream's JSONL frame. Field
/// order is part of the wire format (tests golden it).
pub fn epoch_frame(event: &Event) -> Option<String> {
    match *event {
        Event::EpochRollover {
            cycle,
            epoch,
            demand_on,
            demand_off,
            migration_lines,
            stall_cycles,
            swaps_completed,
            rejected,
        } => Some(
            JsonObject::new()
                .u64("epoch", epoch)
                .u64("cycle", cycle)
                .u64("demand_on", demand_on)
                .u64("demand_off", demand_off)
                .u64("migration_lines", migration_lines)
                .u64("stall_cycles", stall_cycles)
                .u64("swaps_completed", swaps_completed)
                .bool("rejected", rejected)
                .finish(),
        ),
        _ => None,
    }
}

/// A [`TelemetrySink`] that forwards epoch rollovers — and only those —
/// to a [`FrameHub`] as rendered frames. It is a pure observer: results,
/// counters and snapshots of a run are identical with or without it.
/// Cheap to clone; clones share the hub.
#[derive(Debug, Clone)]
pub struct EpochFrameSink {
    hub: std::sync::Arc<FrameHub>,
}

impl EpochFrameSink {
    /// A sink feeding `hub`.
    pub fn new(hub: std::sync::Arc<FrameHub>) -> Self {
        Self { hub }
    }
}

impl TelemetrySink for EpochFrameSink {
    #[inline]
    fn enabled(&self, kind: EventKind) -> bool {
        kind == EventKind::EpochRollover
    }

    fn emit(&self, event: Event) {
        if let Some(line) = epoch_frame(&event) {
            self.hub.push(line);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    const NOW: Duration = Duration::from_millis(0);

    fn rollover(epoch: u64) -> Event {
        Event::EpochRollover {
            cycle: 1000 * (epoch + 1),
            epoch,
            demand_on: 10,
            demand_off: 4,
            migration_lines: 2,
            stall_cycles: 7,
            swaps_completed: 1,
            rejected: false,
        }
    }

    #[test]
    fn frames_replay_in_order_then_eof() {
        let hub = FrameHub::new(16);
        hub.push("a".into());
        hub.push("b".into());
        hub.close();
        let mut cur = 0;
        assert_eq!(hub.next(&mut cur, NOW), Frame::Data("a".into()));
        assert_eq!(hub.next(&mut cur, NOW), Frame::Data("b".into()));
        assert_eq!(hub.next(&mut cur, NOW), Frame::Eof);
        assert_eq!(hub.next(&mut cur, NOW), Frame::Eof, "EOF is sticky");
    }

    #[test]
    fn independent_cursors_see_the_same_stream() {
        let hub = FrameHub::new(16);
        hub.push("x".into());
        let (mut a, mut b) = (0, 0);
        assert_eq!(hub.next(&mut a, NOW), Frame::Data("x".into()));
        hub.push("y".into());
        assert_eq!(hub.next(&mut a, NOW), Frame::Data("y".into()));
        assert_eq!(hub.next(&mut b, NOW), Frame::Data("x".into()));
        assert_eq!(hub.next(&mut b, NOW), Frame::Data("y".into()));
    }

    #[test]
    fn lagging_cursor_gets_an_explicit_dropped_count() {
        let hub = FrameHub::new(2);
        for i in 0..5 {
            hub.push(format!("f{i}"));
        }
        // Capacity 2 → frames 0..3 evicted.
        let mut cur = 0;
        assert_eq!(hub.next(&mut cur, NOW), Frame::Dropped(3));
        assert_eq!(hub.next(&mut cur, NOW), Frame::Data("f3".into()));
        assert_eq!(hub.next(&mut cur, NOW), Frame::Data("f4".into()));
        assert_eq!(hub.next(&mut cur, NOW), Frame::Pending);
        assert_eq!(hub.evicted(), 3);
        assert_eq!(hub.pushed(), 5);
    }

    #[test]
    fn open_hub_reports_pending_not_eof() {
        let hub = FrameHub::new(4);
        let mut cur = 0;
        assert_eq!(hub.next(&mut cur, NOW), Frame::Pending);
        hub.close();
        assert_eq!(hub.next(&mut cur, NOW), Frame::Eof);
    }

    #[test]
    fn push_after_close_is_ignored() {
        let hub = FrameHub::new(4);
        hub.close();
        hub.push("late".into());
        let mut cur = 0;
        assert_eq!(hub.next(&mut cur, NOW), Frame::Eof);
        assert_eq!(hub.pushed(), 0);
    }

    #[test]
    fn waiting_subscriber_wakes_on_push() {
        let hub = Arc::new(FrameHub::new(4));
        let h2 = Arc::clone(&hub);
        let reader = std::thread::spawn(move || {
            let mut cur = 0;
            h2.next(&mut cur, Duration::from_secs(5))
        });
        std::thread::sleep(Duration::from_millis(20));
        hub.push("live".into());
        assert_eq!(reader.join().unwrap(), Frame::Data("live".into()));
    }

    #[test]
    fn epoch_frame_golden_shape() {
        let line = epoch_frame(&rollover(3)).unwrap();
        assert_eq!(
            line,
            "{\"epoch\":3,\"cycle\":4000,\"demand_on\":10,\"demand_off\":4,\
             \"migration_lines\":2,\"stall_cycles\":7,\"swaps_completed\":1,\
             \"rejected\":false}"
        );
        assert!(epoch_frame(&Event::SwapStep { cycle: 1, step: 0 }).is_none());
    }

    #[test]
    fn sink_forwards_only_rollovers() {
        let hub = Arc::new(FrameHub::new(8));
        let sink = EpochFrameSink::new(Arc::clone(&hub));
        assert!(sink.enabled(EventKind::EpochRollover));
        assert!(!sink.enabled(EventKind::Demand));
        sink.emit(rollover(0));
        sink.emit(Event::SwapStep { cycle: 9, step: 1 });
        sink.emit(rollover(1));
        assert_eq!(hub.pushed(), 2);
        let mut cur = 0;
        let Frame::Data(first) = hub.next(&mut cur, NOW) else { panic!("want data") };
        assert!(first.starts_with("{\"epoch\":0,"));
    }
}
