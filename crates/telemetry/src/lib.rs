//! `hmm-telemetry` — cross-layer event tracing and metrics for the
//! heterogeneous-memory simulator.
//!
//! The paper's evaluation lives or dies on attribution: demand vs.
//! migration traffic, stall epochs, sub-block fill progress. This crate
//! gives every layer a common way to report those, with three design
//! rules:
//!
//! 1. **Zero cost when disabled.** Instrumented code is generic over
//!    [`TelemetrySink`]; the default [`NullSink`] folds every check to a
//!    constant `false`, so a controller built without telemetry compiles
//!    to the same demand path as before the subsystem existed.
//! 2. **Bounded memory.** The concrete [`Recorder`] counts everything but
//!    stores the event timeline in fixed-capacity, overwrite-oldest ring
//!    buffers ([`EventRing`]), sharded so parallel experiment grids record
//!    without lock contention.
//! 3. **Machine-readable export.** Event streams render to JSONL
//!    ([`export::write_jsonl`]), Chrome `trace_event` documents viewable
//!    in Perfetto ([`export::write_chrome_trace`]) and a per-epoch CSV
//!    ([`export::write_epoch_csv`]) whose columns sum exactly to the flat
//!    `ControllerStats`/`SwapStats` counters.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod event;
pub mod export;
pub mod json;
pub mod jsonin;
pub mod recorder;
pub mod ring;
pub mod sink;
pub mod stream;

pub use event::{DramOutcome, Event, EventKind, FaultClass, PfBit, PfChange, RegionKind};
pub use export::{
    count_kind, epoch_rows, event_to_json, write_chrome_trace, write_epoch_csv, write_jsonl,
    EpochRow,
};
pub use json::{JsonArray, JsonObject, ToJson};
pub use jsonin::Json;
pub use recorder::{
    bank_key, bank_label, demand_class_key, demand_class_label, Counters, KeyedCounters, Recorder,
    RecorderConfig, TelemetryLevel,
};
pub use ring::EventRing;
pub use sink::{NullSink, TelemetrySink};
pub use stream::{epoch_frame, EpochFrameSink, Frame, FrameHub};
