//! A minimal JSON reader — the read half of the workspace's JSON story.
//!
//! The writer lives next door in [`crate::json`]; nothing needed to *parse*
//! JSON until `hmm-bench perf --baseline` had to read a committed
//! `BENCH_*.json` back, and now `hmm-serve` parses request bodies and
//! `hmm-loadgen` parses `/metrics` responses through the same parser. It is
//! a small recursive-descent parser — strict enough to reject malformed
//! documents with a useful message, with no external dependencies for
//! offline toolchains.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as `f64`; the perf schema stays within exact
    /// `f64` integer range for all counters it compares).
    Num(f64),
    /// String with escapes resolved.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object, preserving insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Number as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// String slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array elements.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parse one JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!("unexpected '{}' at byte {}", c as char, self.pos)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        s.parse::<f64>().map(Json::Num).map_err(|_| format!("bad number '{s}' at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err("truncated \\u escape".into());
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| "bad \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape '{hex}'"))?;
                            self.pos += 4;
                            // Surrogate pairs are outside what the perf
                            // schema ever emits; map them to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape '\\{}'", other as char)),
                    }
                }
                Some(_) => {
                    // Copy one UTF-8 scalar, not one byte.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8 in string")?;
                    let ch = rest.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(
            r#"{"schema":"perf-v1","quick":false,"scenarios":[
                {"id":"live/pgbench","wall_ns_p50":123456,"aps":1.5e6,"neg":-2}
            ],"none":null}"#,
        )
        .unwrap();
        assert_eq!(v.get("schema").unwrap().as_str(), Some("perf-v1"));
        assert_eq!(v.get("quick").unwrap().as_bool(), Some(false));
        let sc = v.get("scenarios").unwrap().as_arr().unwrap();
        assert_eq!(sc.len(), 1);
        assert_eq!(sc[0].get("wall_ns_p50").unwrap().as_f64(), Some(123456.0));
        assert_eq!(sc[0].get("aps").unwrap().as_f64(), Some(1.5e6));
        assert_eq!(sc[0].get("neg").unwrap().as_f64(), Some(-2.0));
        assert_eq!(v.get("none"), Some(&Json::Null));
    }

    #[test]
    fn round_trips_writer_output() {
        use crate::json::JsonObject;
        let text = JsonObject::new()
            .str("name", "a\"b\\c\nd\t")
            .f64("x", 0.25)
            .u64("n", u64::from(u32::MAX))
            .bool("ok", true)
            .finish();
        let v = parse(&text).unwrap();
        assert_eq!(v.get("name").unwrap().as_str(), Some("a\"b\\c\nd\t"));
        assert_eq!(v.get("x").unwrap().as_f64(), Some(0.25));
        assert_eq!(v.get("n").unwrap().as_f64(), Some(f64::from(u32::MAX)));
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "{\"a\":1} x", "tru", "\"\\q\"", "01a"] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn unicode_and_escapes() {
        let v = parse(r#""caf\u00e9 — ok""#).unwrap();
        assert_eq!(v.as_str(), Some("café — ok"));
    }
}
