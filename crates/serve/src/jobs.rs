//! Job lifecycle and the bounded-retention registry behind the async
//! API.
//!
//! A [`Job`] is one admitted simulation request. Synchronous requests
//! (`POST /v1/simulate`) block a connection handler on
//! [`Job::wait_done`]; asynchronous ones (`POST /v1/jobs`) return the id
//! immediately and poll `GET /v1/jobs/<id>`. Both kinds live in the
//! [`JobRegistry`] — a synchronous request that outlives its client's
//! patience (`504`) can still be polled to completion by id.
//!
//! Cancellation is cooperative and only certain while a job is queued:
//! a worker claims a job with [`Job::claim`], which fails if the job was
//! cancelled first. A running simulation is never interrupted — the run
//! is short, deterministic, and its result still populates the cache —
//! so cancelling a `running` job reports `false`.

use hmm_sim_base::FxHashMap;
use hmm_simulator::driver::RunConfig;
use hmm_telemetry::FrameHub;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Epoch frames retained per job for late event-stream subscribers. A
/// subscriber further behind than this receives an explicit `dropped`
/// frame instead of silently missing data.
pub const EVENT_FRAME_CAPACITY: usize = 512;

/// Monotonically increasing job identifier.
pub type JobId = u64;

/// Where a job is in its life.
#[derive(Debug, Clone)]
pub enum JobState {
    /// Admitted, waiting for a worker.
    Queued,
    /// A worker is simulating it.
    Running,
    /// Finished; the rendered response body is ready.
    Done(Arc<String>),
    /// The worker failed (simulator panic); the message explains.
    Failed(String),
    /// Cancelled while still queued.
    Cancelled,
}

impl JobState {
    /// Wire-format status token.
    pub fn label(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done(_) => "done",
            JobState::Failed(_) => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    /// True once no further transitions can happen.
    pub fn is_terminal(&self) -> bool {
        matches!(self, JobState::Done(_) | JobState::Failed(_) | JobState::Cancelled)
    }
}

/// One admitted simulation request.
#[derive(Debug)]
pub struct Job {
    /// Registry identifier.
    pub id: JobId,
    /// Canonical-request hash (the cache key).
    pub key: u64,
    /// Canonical JSON of the resolved configuration.
    pub canonical: String,
    /// The configuration a worker will run.
    pub cfg: RunConfig,
    /// Live per-epoch progress frames for `GET /v1/jobs/<id>/events`.
    /// The worker feeds it while running; any terminal transition closes
    /// it, so subscribers always reach a clean EOF.
    pub hub: Arc<FrameHub>,
    state: Mutex<JobState>,
    done: Condvar,
}

impl Job {
    /// A freshly admitted job in the `Queued` state.
    pub fn new(id: JobId, key: u64, canonical: String, cfg: RunConfig) -> Arc<Job> {
        Arc::new(Job {
            id,
            key,
            canonical,
            cfg,
            hub: Arc::new(FrameHub::new(EVENT_FRAME_CAPACITY)),
            state: Mutex::new(JobState::Queued),
            done: Condvar::new(),
        })
    }

    /// Snapshot of the current state.
    pub fn state(&self) -> JobState {
        self.state.lock().unwrap().clone()
    }

    /// Worker-side: move `Queued` → `Running`. Returns `false` when the
    /// job was cancelled before a worker reached it.
    pub fn claim(&self) -> bool {
        let mut state = self.state.lock().unwrap();
        match *state {
            JobState::Queued => {
                *state = JobState::Running;
                true
            }
            _ => false,
        }
    }

    fn finish(&self, next: JobState) {
        let mut state = self.state.lock().unwrap();
        debug_assert!(!state.is_terminal(), "job {} finished twice", self.id);
        *state = next;
        drop(state);
        // Close the event stream exactly when the job turns terminal:
        // subscribers drain whatever frames remain, then see EOF.
        self.hub.close();
        self.done.notify_all();
    }

    /// Worker-side: publish the rendered response body.
    pub fn complete(&self, body: Arc<String>) {
        self.finish(JobState::Done(body));
    }

    /// Worker-side: record a failure.
    pub fn fail(&self, message: String) {
        self.finish(JobState::Failed(message));
    }

    /// Client-side: cancel if still queued. Returns whether the job is
    /// now (or already was) cancelled.
    pub fn cancel(&self) -> bool {
        let mut state = self.state.lock().unwrap();
        match *state {
            JobState::Queued => {
                *state = JobState::Cancelled;
                drop(state);
                self.hub.close();
                self.done.notify_all();
                true
            }
            JobState::Cancelled => true,
            _ => false,
        }
    }

    /// Block until the job reaches a terminal state or `timeout`
    /// elapses; `None` on timeout.
    pub fn wait_done(&self, timeout: Duration) -> Option<JobState> {
        let deadline = Instant::now() + timeout;
        let mut state = self.state.lock().unwrap();
        while !state.is_terminal() {
            let left = deadline.checked_duration_since(Instant::now())?;
            let (next, result) = self.done.wait_timeout(state, left).unwrap();
            state = next;
            if result.timed_out() && !state.is_terminal() {
                return None;
            }
        }
        Some(state.clone())
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    jobs: FxHashMap<JobId, Arc<Job>>,
    /// Terminal jobs in retirement order; the oldest fall off first.
    retired: VecDeque<JobId>,
}

/// Id-to-job map with bounded retention of finished jobs.
///
/// Live (queued/running) jobs are always resolvable. Terminal jobs stay
/// queryable until `retention` newer jobs have also finished — enough
/// for a client to collect an async result without the registry growing
/// forever.
#[derive(Debug)]
pub struct JobRegistry {
    inner: Mutex<RegistryInner>,
    retention: usize,
}

impl JobRegistry {
    /// A registry retaining up to `retention` finished jobs.
    pub fn new(retention: usize) -> Self {
        JobRegistry { inner: Mutex::new(RegistryInner::default()), retention }
    }

    /// Register a newly admitted job.
    pub fn insert(&self, job: Arc<Job>) {
        self.inner.lock().unwrap().jobs.insert(job.id, job);
    }

    /// Remove a job that was admitted but then refused by the queue
    /// (it never existed as far as clients are concerned).
    pub fn forget(&self, id: JobId) {
        self.inner.lock().unwrap().jobs.remove(&id);
    }

    /// Resolve an id.
    pub fn get(&self, id: JobId) -> Option<Arc<Job>> {
        self.inner.lock().unwrap().jobs.get(&id).cloned()
    }

    /// Mark a job terminal for retention accounting, evicting the oldest
    /// retired jobs beyond the retention bound.
    pub fn retire(&self, id: JobId) {
        let mut inner = self.inner.lock().unwrap();
        inner.retired.push_back(id);
        while inner.retired.len() > self.retention {
            let old = inner.retired.pop_front().unwrap();
            inner.jobs.remove(&old);
        }
    }

    /// Jobs currently resolvable (live + retained).
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().jobs.len()
    }

    /// True when no jobs are resolvable.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmm_core::Mode;
    use hmm_workloads::WorkloadId;
    use std::thread;

    fn job(id: JobId) -> Arc<Job> {
        let cfg = RunConfig::quick(WorkloadId::Pgbench, Mode::Static);
        Job::new(id, id ^ 0xfeed, String::from("{}"), cfg)
    }

    #[test]
    fn lifecycle_queued_running_done() {
        let j = job(1);
        assert_eq!(j.state().label(), "queued");
        assert!(j.claim());
        assert_eq!(j.state().label(), "running");
        j.complete(Arc::new("body".into()));
        match j.state() {
            JobState::Done(b) => assert_eq!(&*b, "body"),
            s => panic!("expected done, got {s:?}"),
        }
        assert!(!j.cancel(), "terminal jobs cannot be cancelled");
    }

    #[test]
    fn cancel_beats_claim() {
        let j = job(2);
        assert!(j.cancel());
        assert!(!j.claim(), "worker must skip a cancelled job");
        assert!(j.cancel(), "cancel is idempotent");
    }

    #[test]
    fn wait_done_times_out_then_succeeds() {
        let j = job(3);
        assert!(j.wait_done(Duration::from_millis(10)).is_none());
        let waiter = {
            let j = Arc::clone(&j);
            thread::spawn(move || j.wait_done(Duration::from_secs(5)))
        };
        j.claim();
        j.complete(Arc::new("late".into()));
        match waiter.join().unwrap() {
            Some(JobState::Done(b)) => assert_eq!(&*b, "late"),
            other => panic!("expected done, got {other:?}"),
        }
    }

    #[test]
    fn registry_retention_evicts_oldest_terminal() {
        let reg = JobRegistry::new(2);
        for id in 1..=4 {
            let j = job(id);
            reg.insert(Arc::clone(&j));
            j.claim();
            j.complete(Arc::new(String::new()));
            reg.retire(id);
        }
        assert!(reg.get(1).is_none(), "oldest retired job evicted");
        assert!(reg.get(2).is_none());
        assert!(reg.get(3).is_some());
        assert!(reg.get(4).is_some());
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn registry_forget_removes_unqueued_jobs() {
        let reg = JobRegistry::new(8);
        reg.insert(job(9));
        assert!(!reg.is_empty());
        reg.forget(9);
        assert!(reg.get(9).is_none());
    }
}
