//! The simulation server.
//!
//! ```text
//! hmm-serve [--addr 127.0.0.1:0] [--workers 4] [--conn-threads 16]
//!           [--queue-depth 32] [--cache-entries 256]
//!           [--max-accesses 2000000] [--sync-timeout-ms 30000]
//!           [--sjf] [--max-sweep-cells 1024] [--max-trace-bytes 8M]
//!           [--store-dir path] [--store-max-bytes 256M]
//!           [--snapshot-every 500000]
//!           [--coordinator --peers host:port,host:port,...]
//! ```
//!
//! Prints one line — `hmm-serve listening on <addr>` — once the socket
//! is bound (scripts parse the port out of it), then serves until
//! SIGTERM, SIGINT, or `POST /admin/shutdown` starts the graceful
//! drain: admission stops, every queued job is finished and answered,
//! the final metrics document goes to stderr, and the process exits 0.
//! Exit code 2 on bad usage, with a one-line diagnostic.

use hmm_serve::request::Limits;
use hmm_serve::{Server, ServerConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: hmm-serve [--addr <host:port>] [--workers <n>] [--conn-threads <n>] \
         [--queue-depth <n>] [--cache-entries <n>] [--max-accesses <n>] \
         [--sync-timeout-ms <n>] [--sjf] [--max-sweep-cells <n>] \
         [--max-trace-bytes <n[K|M|G]>] \
         [--store-dir <path>] [--store-max-bytes <n[K|M|G]>] [--snapshot-every <n>] \
         [--coordinator --peers <host:port,...>]"
    );
    std::process::exit(2)
}

/// One-line diagnostic and exit 2 — invalid input must never panic.
fn fail(msg: &str) -> ! {
    eprintln!("hmm-serve: {msg}");
    std::process::exit(2)
}

/// Set by the signal handler; polled by the main loop.
static STOP: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_signal_handlers() {
    // `std` exposes no signal API and the workspace links no libc crate,
    // so register the classic `signal(2)` handler directly. The handler
    // only flips an atomic — everything async-signal-unsafe (joining
    // threads, writing the report) happens on the main thread.
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    extern "C" fn on_signal(_signum: i32) {
        STOP.store(true, Ordering::SeqCst);
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_signal);
        signal(SIGTERM, on_signal);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = ServerConfig::default();
    let mut coordinator = false;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val =
            || it.next().cloned().unwrap_or_else(|| fail(&format!("{a} requires a value")));
        let num = |flag: &str, v: String| {
            v.parse::<u64>().unwrap_or_else(|_| fail(&format!("invalid number for {flag}: {v}")))
        };
        match a.as_str() {
            "--addr" => cfg.addr = val(),
            "--workers" => cfg.workers = num("--workers", val()).max(1) as usize,
            "--conn-threads" => cfg.conn_threads = num("--conn-threads", val()).max(1) as usize,
            "--queue-depth" => cfg.queue_depth = num("--queue-depth", val()).max(1) as usize,
            "--cache-entries" => cfg.cache_entries = num("--cache-entries", val()) as usize,
            "--max-accesses" => {
                cfg.limits = Limits { max_accesses: num("--max-accesses", val()).max(1) }
            }
            "--sync-timeout-ms" => {
                cfg.sync_timeout = Duration::from_millis(num("--sync-timeout-ms", val()))
            }
            "--sjf" => cfg.sjf = true,
            "--max-sweep-cells" => {
                cfg.max_sweep_cells = num("--max-sweep-cells", val()).max(1) as usize
            }
            "--max-trace-bytes" => {
                let v = val();
                match hmm_sim_base::config::parse_size(&v) {
                    Some(bytes) if bytes > 0 => cfg.max_trace_bytes = bytes as usize,
                    _ => fail(&format!(
                        "invalid size for --max-trace-bytes: '{v}' (want e.g. 1048576, 8M)"
                    )),
                }
            }
            "--store-dir" => {
                let dir = val();
                if dir.is_empty() {
                    fail("--store-dir requires a non-empty path");
                }
                cfg.store_dir = Some(dir.into());
            }
            "--store-max-bytes" => {
                let v = val();
                match hmm_sim_base::config::parse_size(&v) {
                    Some(bytes) if bytes > 0 => cfg.store_max_bytes = bytes,
                    _ => fail(&format!(
                        "invalid size for --store-max-bytes: '{v}' (want e.g. 1048576, 64M, 2G)"
                    )),
                }
            }
            "--snapshot-every" => {
                let n = num("--snapshot-every", val());
                if n == 0 {
                    fail("--snapshot-every must be at least 1 access");
                }
                cfg.snapshot_every = n;
            }
            "--coordinator" => coordinator = true,
            "--peers" => {
                cfg.peers = val().split(',').map(|p| p.trim().to_string()).collect();
                for p in &cfg.peers {
                    if p.parse::<std::net::SocketAddr>().is_err() {
                        fail(&format!("invalid peer address '{p}' (want host:port)"));
                    }
                }
            }
            "--help" | "-h" => usage(),
            other => fail(&format!("unknown flag '{other}' (try --help)")),
        }
    }
    if coordinator && cfg.peers.is_empty() {
        fail("--coordinator requires --peers with at least one address");
    }
    if !coordinator && !cfg.peers.is_empty() {
        fail("--peers only makes sense with --coordinator");
    }
    if cfg.store_dir.is_none() {
        if cfg.store_max_bytes != 0 {
            fail("--store-max-bytes only makes sense with --store-dir");
        }
        if cfg.snapshot_every != 0 {
            fail("--snapshot-every only makes sense with --store-dir");
        }
    }

    install_signal_handlers();
    let server = Server::start(cfg).unwrap_or_else(|e| fail(&format!("failed to start: {e}")));
    println!("hmm-serve listening on {}", server.local_addr());
    // Line-buffer stdout may hold the line back when piped; scripts wait
    // on it, so push it out now.
    use std::io::Write;
    let _ = std::io::stdout().flush();

    while !STOP.load(Ordering::SeqCst) && !server.is_draining() {
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!("hmm-serve: draining");
    let final_metrics = server.shutdown();
    eprintln!("hmm-serve: final metrics {final_metrics}");
}
