//! Concurrent load generator for `hmm-serve`.
//!
//! ```text
//! hmm-loadgen --addr <host:port> [--concurrency 8] [--duration-s 10]
//!             [--requests <n>] [--workloads pgbench,mg] [--modes live,static]
//!             [--accesses 20000] [--scale 64] [--seed 1] [--unique]
//!             [--timeout-ms 30000] [--check]
//! hmm-loadgen --addr <host:port> --sweep <spec-json|@file> [--timeout-ms <n>]
//!             [--check] [--figures-out <file>]
//! hmm-loadgen --addr <host:port> --traces <n> [--accesses <n>] [--seed <n>]
//!             [--timeout-ms <n>] [--check]
//! ```
//!
//! Spawns `--concurrency` client threads, each issuing
//! `POST /v1/simulate` requests back-to-back over the workload × mode
//! mix until the duration (or request budget) runs out, then prints
//! throughput, a status-code breakdown, and exact client-side latency
//! percentiles. By default every thread draws from the same small
//! request population so the server's result cache gets real hits;
//! `--unique` gives every request a fresh seed to defeat the cache and
//! measure raw simulation throughput.
//!
//! `--check` then fetches `/metrics` and reconciles the server's
//! counters against what this client saw — admission identity
//! (`accepted == cache_hits + cache_misses`), rejection counts matching
//! the client's `429`/`503` tallies, and one admission per answered
//! request. Exits 1 when reconciliation fails, 2 on bad usage.
//!
//! `--sweep` switches to sweep traffic: submit the grid spec to
//! `POST /v1/sweeps`, poll `GET /v1/sweeps/<id>` to completion while
//! asserting progress is monotone, and print the final accounting. With
//! `--check` it also verifies the sweep identities
//! (`expanded == unique + deduped`, the per-state partition, and the
//! dispatch ledger `dispatched == done + failed + retries`) and
//! recomputes the figures document's totals from its embedded result
//! bodies, which must reconcile byte-for-byte. `--figures-out` saves
//! the aggregated figures document, byte-identical to what the server
//! rendered, for offline comparison or `hmm-bench sweep --doc`.
//!
//! `--traces` switches to trace-ingest traffic: each round generates a
//! distinct `HMT1` trace, uploads it (`POST /v1/traces`), submits an
//! async simulate-by-id job, and tails `GET /v1/jobs/<id>/events` to
//! its EOF, asserting the epoch frames are monotone and the stream ends
//! cleanly exactly when the job turns terminal. With `--check` the
//! `/metrics` deltas for `traces_uploaded`, `trace_sim_runs`,
//! `event_subscribers`, and `event_frames_dropped` must equal what this
//! client counted.

use hmm_core::Mode;
use hmm_serve::client::request;
use hmm_sim_base::SimRng;
use hmm_telemetry::jsonin;
use hmm_workloads::WorkloadId;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn usage() -> ! {
    eprintln!(
        "usage: hmm-loadgen --addr <host:port> [--concurrency <n>] [--duration-s <n>] \
         [--requests <n>] [--workloads <w,...>] [--modes <m,...>] [--accesses <n>] \
         [--scale <divisor>] [--seed <n>] [--unique] [--timeout-ms <n>] [--check]\n\
         \x20      hmm-loadgen --addr <host:port> --sweep <spec-json|@file> \
         [--timeout-ms <n>] [--check] [--figures-out <file>]\n\
         \x20      hmm-loadgen --addr <host:port> --traces <n> [--accesses <n>] \
         [--seed <n>] [--timeout-ms <n>] [--check]"
    );
    std::process::exit(2)
}

/// One-line diagnostic and exit 2 — invalid input must never panic.
fn fail(msg: &str) -> ! {
    eprintln!("hmm-loadgen: {msg}");
    std::process::exit(2)
}

#[derive(Debug, Default)]
struct Tally {
    ok: u64,
    busy_429: u64,
    draining_503: u64,
    timeout_504: u64,
    other_4xx: u64,
    other_5xx: u64,
    io_errors: u64,
    cache_hit_headers: u64,
    latencies_us: Vec<u64>,
}

impl Tally {
    fn answered(&self) -> u64 {
        self.ok
            + self.busy_429
            + self.draining_503
            + self.timeout_504
            + self.other_4xx
            + self.other_5xx
    }

    fn absorb(&mut self, other: Tally) {
        self.ok += other.ok;
        self.busy_429 += other.busy_429;
        self.draining_503 += other.draining_503;
        self.timeout_504 += other.timeout_504;
        self.other_4xx += other.other_4xx;
        self.other_5xx += other.other_5xx;
        self.io_errors += other.io_errors;
        self.cache_hit_headers += other.cache_hit_headers;
        self.latencies_us.extend(other.latencies_us);
    }
}

struct Plan {
    addr: SocketAddr,
    workloads: Vec<WorkloadId>,
    modes: Vec<Mode>,
    accesses: u64,
    scale: u64,
    seed: u64,
    unique: bool,
    timeout: Duration,
    deadline: Instant,
    /// Remaining request budget; `u64::MAX` means duration-bounded only.
    budget: AtomicU64,
}

fn body_for(plan: &Plan, rng: &mut SimRng, serial: u64) -> String {
    let w = plan.workloads[rng.below(plan.workloads.len() as u64) as usize];
    let m = plan.modes[rng.below(plan.modes.len() as u64) as usize];
    // A non-unique run cycles a few seeds per (workload, mode) pair so
    // repeats land in the server's cache; --unique makes every request
    // its own simulation.
    let seed = if plan.unique { plan.seed.wrapping_add(serial) } else { plan.seed + serial % 3 };
    format!(
        "{{\"workload\":\"{}\",\"mode\":\"{}\",\"accesses\":{},\"scale\":{},\"seed\":{},\"timeout_ms\":{}}}",
        w.token(),
        m.token(),
        plan.accesses,
        plan.scale,
        seed,
        plan.timeout.as_millis(),
    )
}

fn client_thread(plan: &Plan, thread_idx: u64) -> Tally {
    let mut rng = SimRng::new(plan.seed ^ 0x10ad_9e4e).fork(thread_idx);
    let mut tally = Tally::default();
    let mut serial = 0u64;
    while Instant::now() < plan.deadline {
        if plan.budget.fetch_sub(1, Ordering::Relaxed) == 0 {
            // Budget exhausted; put the token back for well-definedness.
            plan.budget.fetch_add(1, Ordering::Relaxed);
            break;
        }
        let body = body_for(plan, &mut rng, serial);
        serial += 1;
        let started = Instant::now();
        match request(plan.addr, "POST", "/v1/simulate", &body, plan.timeout) {
            Ok(resp) => {
                match resp.status {
                    200 => {
                        tally.ok += 1;
                        let us = started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
                        tally.latencies_us.push(us);
                        if resp.header("x-cache") == Some("hit") {
                            tally.cache_hit_headers += 1;
                        }
                    }
                    429 => tally.busy_429 += 1,
                    503 => tally.draining_503 += 1,
                    504 => tally.timeout_504 += 1,
                    s if (400..500).contains(&s) => tally.other_4xx += 1,
                    _ => tally.other_5xx += 1,
                }
                if resp.status == 429 {
                    // Honour backpressure briefly instead of hammering.
                    std::thread::sleep(Duration::from_millis(5));
                }
            }
            Err(_) => tally.io_errors += 1,
        }
    }
    tally
}

fn percentile(sorted_us: &[u64], q: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted_us.len() as f64).ceil() as usize).clamp(1, sorted_us.len());
    sorted_us[rank - 1] as f64 / 1000.0
}

fn check_metrics(plan: &Plan, tally: &Tally) -> Result<(), String> {
    let resp = request(plan.addr, "GET", "/metrics", "", plan.timeout)
        .map_err(|e| format!("fetching /metrics failed: {e}"))?;
    if resp.status != 200 {
        return Err(format!("/metrics answered {}", resp.status));
    }
    let doc = jsonin::parse(&resp.body).map_err(|e| format!("/metrics body: {e}"))?;
    let field = |name: &str| {
        doc.get(name)
            .and_then(|v| v.as_f64())
            .map(|v| v as u64)
            .ok_or_else(|| format!("/metrics is missing '{name}'"))
    };
    let accepted = field("accepted")?;
    let hits = field("cache_hits")?;
    let misses = field("cache_misses")?;
    let coalesced = field("coalesced")?;
    let sim_runs = field("sim_runs")?;
    let busy = field("rejected_busy")?;
    let draining = field("rejected_draining")?;
    if accepted != hits + misses {
        return Err(format!(
            "admission identity broken: accepted={accepted}, hits={hits} + misses={misses}"
        ));
    }
    if sim_runs + coalesced > misses {
        return Err(format!(
            "work exceeds misses: sim_runs={sim_runs} + coalesced={coalesced} > misses={misses}"
        ));
    }
    if busy < tally.busy_429 || draining < tally.draining_503 {
        return Err(format!(
            "server rejections ({busy} busy, {draining} draining) below client tallies \
             ({} busy, {} draining)",
            tally.busy_429, tally.draining_503
        ));
    }
    let answered = tally.ok + tally.timeout_504;
    if tally.io_errors == 0 && accepted < answered {
        return Err(format!(
            "accepted={accepted} below the {answered} requests this client got answers for"
        ));
    }
    if tally.cache_hit_headers > hits {
        return Err(format!(
            "client saw {} X-Cache hits but the server counted only {hits}",
            tally.cache_hit_headers
        ));
    }
    Ok(())
}

/// Fetch one sweep status document and pull out the pieces the driver
/// needs: terminal-or-not, the counts object, and the whole document.
fn sweep_status(
    addr: SocketAddr,
    id: u64,
    timeout: Duration,
) -> Result<(String, hmm_sweep::SweepCounts, String), String> {
    let resp = request(addr, "GET", &format!("/v1/sweeps/{id}"), "", timeout)
        .map_err(|e| format!("polling sweep {id} failed: {e}"))?;
    if resp.status != 200 {
        return Err(format!("GET /v1/sweeps/{id} answered {}", resp.status));
    }
    let doc = jsonin::parse(&resp.body).map_err(|e| format!("sweep status body: {e}"))?;
    let status = doc
        .get("status")
        .and_then(|v| v.as_str())
        .ok_or("sweep status lacks 'status'")?
        .to_string();
    let counts = doc.get("counts").ok_or("sweep status lacks 'counts'")?;
    let counts = hmm_sweep::SweepCounts::from_json(counts)?;
    Ok((status, counts, resp.body))
}

/// Sweep traffic mode: submit, poll to completion (asserting monotone
/// progress), verify the accounting identities, and reconcile the
/// figures totals against the embedded result bodies. With
/// `figures_out`, the aggregated figures document is fetched from the
/// raw `GET /v1/sweeps/<id>/figures` endpoint and saved verbatim, so
/// the file can be byte-compared against an in-process run.
fn run_sweep(
    addr: SocketAddr,
    spec: &str,
    timeout: Duration,
    check: bool,
    figures_out: Option<&str>,
) -> Result<(), String> {
    let spec_text = match spec.strip_prefix('@') {
        Some(path) => std::fs::read_to_string(path)
            .map_err(|e| format!("reading sweep spec '{path}': {e}"))?,
        None => spec.to_string(),
    };
    let resp = request(addr, "POST", "/v1/sweeps", &spec_text, timeout)
        .map_err(|e| format!("submitting sweep failed: {e}"))?;
    if resp.status != 202 {
        return Err(format!("POST /v1/sweeps answered {}: {}", resp.status, resp.body));
    }
    let submitted = jsonin::parse(&resp.body).map_err(|e| format!("sweep submit body: {e}"))?;
    let field = |name: &str| {
        submitted
            .get(name)
            .and_then(|v| v.as_f64())
            .map(|v| v as u64)
            .ok_or_else(|| format!("sweep submit response is missing '{name}'"))
    };
    let id = field("id")?;
    let (expanded, deduped, cells) = (field("expanded")?, field("deduped")?, field("cells")?);
    println!(
        "hmm-loadgen: sweep {id} submitted: {expanded} expanded, {deduped} deduped, {cells} cells"
    );

    let started = Instant::now();
    let mut last_done = 0u64;
    let (final_counts, body) = loop {
        let (status, counts, body) = sweep_status(addr, id, timeout)?;
        if counts.done < last_done {
            return Err(format!(
                "progress went backwards: done {} after {}",
                counts.done, last_done
            ));
        }
        last_done = counts.done;
        // Identities that must hold in *every* snapshot, terminal or not.
        counts.check(false)?;
        if status != "running" {
            break (counts, body);
        }
        std::thread::sleep(Duration::from_millis(50));
    };
    println!(
        "hmm-loadgen: sweep {id} finished in {:.1}s: {} done, {} failed, \
         {} dispatched, {} retries ({} stolen)",
        started.elapsed().as_secs_f64(),
        final_counts.done,
        final_counts.failed,
        final_counts.dispatched,
        final_counts.retries,
        final_counts.stolen,
    );

    if let Some(path) = figures_out {
        // Fetch the raw figures endpoint rather than carving the document
        // out of the status body: the embedded u64 digests exceed 2^53,
        // so a parse → render round trip would corrupt them and break
        // byte comparisons against in-process runs.
        let resp = request(addr, "GET", &format!("/v1/sweeps/{id}/figures"), "", timeout)
            .map_err(|e| format!("fetching figures for sweep {id} failed: {e}"))?;
        if resp.status != 200 {
            return Err(format!(
                "GET /v1/sweeps/{id}/figures answered {}: {}",
                resp.status, resp.body
            ));
        }
        std::fs::write(path, format!("{}\n", resp.body))
            .map_err(|e| format!("writing figures to '{path}': {e}"))?;
        println!("  wrote figures document to {path}");
    }

    if !check {
        return Ok(());
    }
    if final_counts.expanded != expanded || final_counts.deduped != deduped {
        return Err("final counts disagree with the submit response".into());
    }
    final_counts.check(true)?;
    let doc = jsonin::parse(&body).map_err(|e| format!("sweep status body: {e}"))?;
    let figures = doc.get("figures").ok_or("sweep status lacks 'figures'")?;
    if final_counts.failed > 0 {
        println!("  check: identities hold ({} cells failed; no figures)", final_counts.failed);
        return Ok(());
    }
    let results = figures
        .get("results")
        .and_then(|v| match v {
            jsonin::Json::Arr(items) => Some(items),
            _ => None,
        })
        .ok_or("figures document lacks 'results'")?;
    if results.len() as u64 != final_counts.done {
        return Err(format!(
            "figures embed {} results for {} done cells",
            results.len(),
            final_counts.done
        ));
    }
    // Recompute the totals from the embedded bodies; the document's own
    // totals must match byte for byte.
    let mut totals = hmm_sweep::Totals::default();
    for body in results {
        totals.absorb_body(&hmm_sweep::spec::render_json(body))?;
    }
    let rendered = figures
        .get("totals")
        .map(hmm_sweep::spec::render_json)
        .ok_or("figures document lacks 'totals'")?;
    if totals.to_json() != rendered {
        return Err(format!(
            "figures totals do not reconcile with the embedded results:\n  doc: {rendered}\n  recomputed: {}",
            totals.to_json()
        ));
    }
    println!("  check: sweep identities hold and figures totals reconcile");
    Ok(())
}

/// Trace-ingest traffic mode: generate → upload → simulate-by-id →
/// tail the event stream, `count` times, then reconcile the `/metrics`
/// deltas against the client-side tallies.
///
/// Every round's trace has a distinct record count, so each upload is a
/// distinct content hash and each job a distinct cache key within one
/// invocation; re-running with the same `--seed` against a warm server
/// legitimately cache-hits, which is why fresh simulations are counted
/// from the `X-Cache: miss` submit responses rather than assumed.
fn run_traces(
    addr: SocketAddr,
    count: u64,
    accesses: u64,
    seed: u64,
    timeout: Duration,
    check: bool,
) -> Result<(), String> {
    use hmm_serve::client::{request_bytes, stream_lines};
    use hmm_sim_base::config::SimScale;

    let fetch_metrics = || -> Result<String, String> {
        let resp = request(addr, "GET", "/metrics", "", timeout)
            .map_err(|e| format!("fetching /metrics failed: {e}"))?;
        if resp.status != 200 {
            return Err(format!("/metrics answered {}", resp.status));
        }
        Ok(resp.body)
    };
    let metrics_field = |body: &str, name: &str| -> Result<u64, String> {
        let doc = jsonin::parse(body).map_err(|e| format!("/metrics body: {e}"))?;
        doc.get(name)
            .and_then(|v| v.as_f64())
            .map(|v| v as u64)
            .ok_or_else(|| format!("/metrics is missing '{name}'"))
    };
    let before = fetch_metrics()?;

    let (mut uploaded, mut fresh, mut subscribed) = (0u64, 0u64, 0u64);
    let (mut frames_total, mut dropped_seen) = (0u64, 0u64);
    for i in 0..count {
        let recs = hmm_workloads::workload(WorkloadId::Pgbench, &SimScale { divisor: 256 })
            .records(seed.wrapping_add(i), (1_000 + 17 * i) as usize);
        let mut bytes = Vec::new();
        hmm_workloads::write_binary(&mut bytes, recs)
            .map_err(|e| format!("encoding trace {i}: {e}"))?;
        let resp = request_bytes(addr, "POST", "/v1/traces", &bytes, timeout)
            .map_err(|e| format!("uploading trace {i} failed: {e}"))?;
        if resp.status != 200 {
            return Err(format!("POST /v1/traces answered {}: {}", resp.status, resp.body));
        }
        uploaded += 1;
        let doc = jsonin::parse(&resp.body).map_err(|e| format!("upload response: {e}"))?;
        let id =
            doc.get("id").and_then(|v| v.as_str()).ok_or("upload response lacks 'id'")?.to_string();

        let body = format!(
            "{{\"workload\":{{\"trace\":\"{id}\"}},\"mode\":\"live\",\"accesses\":{accesses}}}"
        );
        let resp = request(addr, "POST", "/v1/jobs", &body, timeout)
            .map_err(|e| format!("submitting job for trace {id} failed: {e}"))?;
        if resp.status != 202 {
            return Err(format!("POST /v1/jobs answered {}: {}", resp.status, resp.body));
        }
        if resp.header("x-cache") == Some("miss") {
            fresh += 1;
        }
        let doc = jsonin::parse(&resp.body).map_err(|e| format!("job submit response: {e}"))?;
        let job =
            doc.get("id").and_then(|v| v.as_f64()).ok_or("job submit response lacks 'id'")? as u64;

        let stream = stream_lines(addr, &format!("/v1/jobs/{job}/events"), timeout, |_| ())
            .map_err(|e| format!("event stream for job {job} failed: {e}"))?;
        subscribed += 1;
        if stream.status != 200 {
            return Err(format!("GET /v1/jobs/{job}/events answered {}", stream.status));
        }
        if !stream.clean_eof {
            return Err(format!("event stream for job {job} ended without a clean EOF"));
        }
        let mut last_epoch: Option<u64> = None;
        for line in &stream.lines {
            let doc = jsonin::parse(line).map_err(|e| format!("event frame '{line}': {e}"))?;
            if let Some(n) = doc.get("dropped").and_then(|v| v.as_f64()) {
                dropped_seen += n as u64;
                continue;
            }
            let epoch =
                doc.get("epoch")
                    .and_then(|v| v.as_f64())
                    .ok_or_else(|| format!("frame lacks 'epoch': {line}"))? as u64;
            if last_epoch.is_some_and(|last| epoch <= last) {
                return Err(format!("epoch frames not monotone: {epoch} after {last_epoch:?}"));
            }
            last_epoch = Some(epoch);
            frames_total += 1;
        }
        if last_epoch.is_none() {
            return Err(format!("event stream for job {job} carried no epoch frames"));
        }
        // EOF fires exactly at the terminal transition, so the job must
        // already be terminal — and successfully so.
        let resp = request(addr, "GET", &format!("/v1/jobs/{job}"), "", timeout)
            .map_err(|e| format!("polling job {job} failed: {e}"))?;
        let doc = jsonin::parse(&resp.body).map_err(|e| format!("job status body: {e}"))?;
        match doc.get("status").and_then(|v| v.as_str()) {
            Some("done") => {}
            other => return Err(format!("job {job} is {other:?} after its event stream EOF")),
        }
    }
    println!(
        "hmm-loadgen: trace phase: {uploaded} uploaded, {fresh} simulated fresh, \
         {subscribed} event streams ({frames_total} epoch frames, {dropped_seen} dropped)"
    );

    if !check {
        return Ok(());
    }
    let after = fetch_metrics()?;
    for (name, want) in [
        ("traces_uploaded", uploaded),
        ("trace_sim_runs", fresh),
        ("event_subscribers", subscribed),
        ("event_frames_dropped", dropped_seen),
    ] {
        let delta = metrics_field(&after, name)?
            .checked_sub(metrics_field(&before, name)?)
            .ok_or_else(|| format!("'{name}' went backwards across the run"))?;
        if delta != want {
            return Err(format!("'{name}' moved by {delta}, but this client counted {want}"));
        }
    }
    println!("  check: trace/event counters reconcile with client counts");
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr: Option<SocketAddr> = None;
    let mut concurrency = 8u64;
    let mut duration_s = 10u64;
    let mut requests: Option<u64> = None;
    let mut workloads = vec![WorkloadId::Pgbench, WorkloadId::Mg];
    let mut modes: Vec<Mode> = vec!["live".parse().unwrap(), "static".parse().unwrap()];
    let mut accesses = 20_000u64;
    let mut scale = 64u64;
    let mut seed = 1u64;
    let mut unique = false;
    let mut timeout_ms = 30_000u64;
    let mut check = false;
    let mut sweep: Option<String> = None;
    let mut figures_out: Option<String> = None;
    let mut traces: Option<u64> = None;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val =
            || it.next().cloned().unwrap_or_else(|| fail(&format!("{a} requires a value")));
        let num = |flag: &str, v: String| {
            v.parse::<u64>().unwrap_or_else(|_| fail(&format!("invalid number for {flag}: {v}")))
        };
        match a.as_str() {
            "--addr" => {
                let v = val();
                addr = Some(v.parse().unwrap_or_else(|_| fail(&format!("invalid address '{v}'"))));
            }
            "--concurrency" | "-c" => concurrency = num("--concurrency", val()).max(1),
            "--duration-s" | "-d" => duration_s = num("--duration-s", val()),
            "--requests" | "-n" => requests = Some(num("--requests", val())),
            "--workloads" => {
                workloads = val()
                    .split(',')
                    .map(|t| t.trim().parse::<WorkloadId>().unwrap_or_else(|e| fail(&e)))
                    .collect();
            }
            "--modes" => {
                modes = val()
                    .split(',')
                    .map(|t| t.trim().parse::<Mode>().unwrap_or_else(|e| fail(&e)))
                    .collect();
            }
            "--accesses" => accesses = num("--accesses", val()).max(1),
            "--scale" => scale = num("--scale", val()).max(1),
            "--seed" => seed = num("--seed", val()),
            "--unique" => unique = true,
            "--timeout-ms" => timeout_ms = num("--timeout-ms", val()).max(1),
            "--check" => check = true,
            "--sweep" => sweep = Some(val()),
            "--figures-out" => figures_out = Some(val()),
            "--traces" => traces = Some(num("--traces", val()).max(1)),
            "--help" | "-h" => usage(),
            other => fail(&format!("unknown flag '{other}' (try --help)")),
        }
    }
    let addr = addr.unwrap_or_else(|| fail("--addr is required"));
    if workloads.is_empty() || modes.is_empty() {
        fail("--workloads and --modes must each name at least one entry");
    }

    if figures_out.is_some() && sweep.is_none() {
        fail("--figures-out only makes sense with --sweep");
    }
    if traces.is_some() && sweep.is_some() {
        fail("--traces and --sweep are separate traffic modes; pick one");
    }
    if let Some(count) = traces {
        let timeout = Duration::from_millis(timeout_ms);
        match run_traces(addr, count, accesses, seed, timeout, check) {
            Ok(()) => return,
            Err(msg) => {
                eprintln!("hmm-loadgen: trace phase failed: {msg}");
                std::process::exit(1);
            }
        }
    }
    if let Some(spec) = sweep {
        let timeout = Duration::from_millis(timeout_ms);
        match run_sweep(addr, &spec, timeout, check, figures_out.as_deref()) {
            Ok(()) => return,
            Err(msg) => {
                eprintln!("hmm-loadgen: sweep failed: {msg}");
                std::process::exit(1);
            }
        }
    }

    let plan = Arc::new(Plan {
        addr,
        workloads,
        modes,
        accesses,
        scale,
        seed,
        unique,
        timeout: Duration::from_millis(timeout_ms),
        deadline: Instant::now() + Duration::from_secs(duration_s),
        budget: AtomicU64::new(requests.unwrap_or(u64::MAX)),
    });

    let started = Instant::now();
    let threads: Vec<_> = (0..concurrency)
        .map(|i| {
            let plan = Arc::clone(&plan);
            std::thread::spawn(move || client_thread(&plan, i))
        })
        .collect();
    let mut tally = Tally::default();
    for t in threads {
        tally.absorb(t.join().expect("client thread panicked"));
    }
    let elapsed = started.elapsed().as_secs_f64();

    tally.latencies_us.sort_unstable();
    let answered = tally.answered();
    println!(
        "hmm-loadgen: {answered} requests answered in {elapsed:.1}s \
         ({:.1} req/s) at concurrency {concurrency}",
        answered as f64 / elapsed.max(1e-9),
    );
    println!(
        "  ok {}  429 {}  503 {}  504 {}  other-4xx {}  other-5xx {}  io-errors {}  \
         cache-hits {}",
        tally.ok,
        tally.busy_429,
        tally.draining_503,
        tally.timeout_504,
        tally.other_4xx,
        tally.other_5xx,
        tally.io_errors,
        tally.cache_hit_headers,
    );
    println!(
        "  latency ms: p50 {:.1}  p90 {:.1}  p99 {:.1}  max {:.1}",
        percentile(&tally.latencies_us, 0.50),
        percentile(&tally.latencies_us, 0.90),
        percentile(&tally.latencies_us, 0.99),
        tally.latencies_us.last().copied().unwrap_or(0) as f64 / 1000.0,
    );

    if check {
        match check_metrics(&plan, &tally) {
            Ok(()) => println!("  check: /metrics reconciles with client counts"),
            Err(msg) => {
                eprintln!("hmm-loadgen: check failed: {msg}");
                std::process::exit(1);
            }
        }
    }
}
