//! Server counters and the `GET /metrics` document.
//!
//! Counters follow one discipline: every admitted simulate request is
//! counted exactly once as a cache hit or a cache miss, so
//! `accepted == cache_hits + cache_misses` holds at any quiescent
//! moment, and `hmm-loadgen --check` reconciles its client-side counts
//! against these numbers after a run. Alongside the serving counters,
//! the worker pool folds every completed run's `ControllerStats` and
//! `SwapStats` into a merged digest (the workspace-wide `merge()`
//! convention), so `/metrics` also answers "what did all those
//! simulations do" — total demand/migration lines, swaps, stalls —
//! without storing per-run results.

use hmm_core::{ControllerStats, SwapStats};
use hmm_sim_base::stats::{Histogram, RunningMean};
use hmm_simulator::driver::RunResult;
use hmm_telemetry::JsonObject;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Relaxed ordering everywhere: these are statistics, not synchronisation.
const ORD: Ordering = Ordering::Relaxed;

#[derive(Debug, Default)]
struct Latency {
    mean: RunningMean,
    hist: Histogram,
}

#[derive(Debug, Default)]
struct SimTotals {
    controller: ControllerStats,
    swaps: SwapStats,
    runs_with_swaps: u64,
}

/// Shared counter block; one instance per server.
#[derive(Debug)]
pub struct ServerMetrics {
    started: Instant,
    /// TCP connections accepted.
    pub conns_accepted: AtomicU64,
    /// HTTP requests parsed successfully.
    pub requests: AtomicU64,
    /// Requests that failed HTTP- or body-level validation (4xx).
    pub bad_requests: AtomicU64,
    /// Simulate requests admitted (cache hit, coalesced, or enqueued).
    pub accepted: AtomicU64,
    /// Simulate requests refused with `429` (queue full).
    pub rejected_busy: AtomicU64,
    /// Simulate requests refused with `503` (draining).
    pub rejected_draining: AtomicU64,
    /// Admissions served straight from the result cache.
    pub cache_hits: AtomicU64,
    /// Admissions that needed a job (includes coalesced waiters).
    pub cache_misses: AtomicU64,
    /// Cache misses that attached to an identical in-flight job instead
    /// of enqueueing a duplicate (single-flight).
    pub coalesced: AtomicU64,
    /// Simulations actually executed by the worker pool.
    pub sim_runs: AtomicU64,
    /// Worker-side failures (simulator panic).
    pub sim_failures: AtomicU64,
    /// Jobs cancelled before a worker claimed them.
    pub cancelled: AtomicU64,
    /// Synchronous waits that hit their deadline (`504`).
    pub sync_timeouts: AtomicU64,
    /// Jobs currently being simulated.
    pub in_flight: AtomicU64,
    /// Sweeps accepted via `POST /v1/sweeps`.
    pub sweeps_submitted: AtomicU64,
    /// Sweeps that reached a terminal state (all cells concluded).
    pub sweeps_completed: AtomicU64,
    /// Sweep cells concluded with a result body.
    pub sweep_cells_done: AtomicU64,
    /// Sweep cells concluded in permanent failure.
    pub sweep_cells_failed: AtomicU64,
    /// Sweep dispatch attempts that were re-queued (peer death, steal).
    pub sweep_retries: AtomicU64,
    /// The stolen subset of `sweep_retries`.
    pub sweep_stolen: AtomicU64,
    /// Job checkpoints written to the durable store.
    pub snapshots_written: AtomicU64,
    /// Jobs resumed from a checkpoint instead of starting from scratch.
    pub resumed_jobs: AtomicU64,
    /// Store files that failed verification and were quarantined.
    pub store_corrupt_quarantined: AtomicU64,
    /// Store I/O failures absorbed by memory-only degradation.
    pub store_io_errors: AtomicU64,
    /// Traces accepted by `POST /v1/traces` (validated and registered).
    pub traces_uploaded: AtomicU64,
    /// Simulations executed against an uploaded trace.
    pub trace_sim_runs: AtomicU64,
    /// Event-stream subscriptions served (`GET /v1/jobs/<id>/events`).
    pub event_subscribers: AtomicU64,
    /// Event frames subscribers lost to bounded lag (the sum of every
    /// `dropped` frame the server sent).
    pub event_frames_dropped: AtomicU64,
    latency: Mutex<Latency>,
    sim: Mutex<SimTotals>,
}

impl Default for ServerMetrics {
    fn default() -> Self {
        ServerMetrics {
            started: Instant::now(),
            conns_accepted: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            bad_requests: AtomicU64::new(0),
            accepted: AtomicU64::new(0),
            rejected_busy: AtomicU64::new(0),
            rejected_draining: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            sim_runs: AtomicU64::new(0),
            sim_failures: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            sync_timeouts: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
            sweeps_submitted: AtomicU64::new(0),
            sweeps_completed: AtomicU64::new(0),
            sweep_cells_done: AtomicU64::new(0),
            sweep_cells_failed: AtomicU64::new(0),
            sweep_retries: AtomicU64::new(0),
            sweep_stolen: AtomicU64::new(0),
            snapshots_written: AtomicU64::new(0),
            resumed_jobs: AtomicU64::new(0),
            store_corrupt_quarantined: AtomicU64::new(0),
            store_io_errors: AtomicU64::new(0),
            traces_uploaded: AtomicU64::new(0),
            trace_sim_runs: AtomicU64::new(0),
            event_subscribers: AtomicU64::new(0),
            event_frames_dropped: AtomicU64::new(0),
            latency: Mutex::new(Latency::default()),
            sim: Mutex::new(SimTotals::default()),
        }
    }
}

impl ServerMetrics {
    /// Bump a counter by one.
    pub fn inc(&self, counter: &AtomicU64) {
        counter.fetch_add(1, ORD);
    }

    /// Record the service latency of one answered simulate request
    /// (admission to response body ready).
    pub fn record_latency(&self, elapsed: Duration) {
        let micros = elapsed.as_micros().min(u128::from(u64::MAX)) as u64;
        let mut lat = self.latency.lock().unwrap();
        lat.mean.push(micros);
        lat.hist.push(micros);
    }

    /// Fold one completed run's counters into the merged digests.
    pub fn record_run(&self, result: &RunResult) {
        let mut sim = self.sim.lock().unwrap();
        sim.controller.merge(&result.controller);
        if let Some(swaps) = &result.swaps {
            sim.swaps.merge(swaps);
            sim.runs_with_swaps += 1;
        }
    }

    /// Render the `/metrics` document. Queue and cache occupancy are
    /// sampled by the caller, which owns those structures.
    pub fn to_json(&self, sample: &GaugeSample<'_>) -> String {
        let get = |c: &AtomicU64| c.load(ORD);
        let (lat_json, sim_json, swaps_json, runs_with_swaps) = {
            let lat = self.latency.lock().unwrap();
            let lat_json = JsonObject::new()
                .u64("count", lat.mean.count())
                .f64("mean_us", lat.mean.mean())
                .u64("p50_us", lat.hist.quantile(0.50))
                .u64("p90_us", lat.hist.quantile(0.90))
                .u64("p99_us", lat.hist.quantile(0.99))
                .u64("max_us", lat.hist.max())
                .finish();
            let sim = self.sim.lock().unwrap();
            (
                lat_json,
                controller_json(&sim.controller),
                swaps_json(&sim.swaps),
                sim.runs_with_swaps,
            )
        };
        JsonObject::new()
            .str("schema", "hmm-serve-metrics-v1")
            .u64("uptime_ms", self.started.elapsed().as_millis().min(u128::from(u64::MAX)) as u64)
            .bool("draining", sample.draining)
            .u64("workers", sample.workers as u64)
            .u64("queue_capacity", sample.queue_capacity as u64)
            .u64("queue_len", sample.queue_len as u64)
            .u64("cache_capacity", sample.cache_capacity as u64)
            .u64("cache_len", sample.cache_len as u64)
            .u64("cache_evictions", sample.cache_evictions)
            .u64("conns_accepted", get(&self.conns_accepted))
            .u64("requests", get(&self.requests))
            .u64("bad_requests", get(&self.bad_requests))
            .u64("accepted", get(&self.accepted))
            .u64("rejected_busy", get(&self.rejected_busy))
            .u64("rejected_draining", get(&self.rejected_draining))
            .u64("cache_hits", get(&self.cache_hits))
            .u64("cache_misses", get(&self.cache_misses))
            .u64("coalesced", get(&self.coalesced))
            .u64("sim_runs", get(&self.sim_runs))
            .u64("sim_failures", get(&self.sim_failures))
            .u64("cancelled", get(&self.cancelled))
            .u64("sync_timeouts", get(&self.sync_timeouts))
            .u64("in_flight", get(&self.in_flight))
            .u64("sweeps_submitted", get(&self.sweeps_submitted))
            .u64("sweeps_completed", get(&self.sweeps_completed))
            .u64("sweep_cells_done", get(&self.sweep_cells_done))
            .u64("sweep_cells_failed", get(&self.sweep_cells_failed))
            .u64("sweep_retries", get(&self.sweep_retries))
            .u64("sweep_stolen", get(&self.sweep_stolen))
            .bool("store_configured", sample.store_configured)
            .u64("store_entries", sample.store_entries as u64)
            .u64("store_bytes", sample.store_bytes)
            .u64("snapshots_written", get(&self.snapshots_written))
            .u64("resumed_jobs", get(&self.resumed_jobs))
            .u64("store_corrupt_quarantined", get(&self.store_corrupt_quarantined))
            .u64("store_io_errors", get(&self.store_io_errors))
            .u64("traces_stored", sample.traces_stored as u64)
            .u64("traces_uploaded", get(&self.traces_uploaded))
            .u64("trace_sim_runs", get(&self.trace_sim_runs))
            .u64("event_subscribers", get(&self.event_subscribers))
            .u64("event_frames_dropped", get(&self.event_frames_dropped))
            .raw("latency", &lat_json)
            .u64("runs_with_swaps", runs_with_swaps)
            .raw("controller_totals", &sim_json)
            .raw("swap_totals", &swaps_json)
            .finish()
    }
}

/// Point-in-time gauges owned by the server, passed into
/// [`ServerMetrics::to_json`].
#[derive(Debug)]
pub struct GaugeSample<'a> {
    /// Worker-pool size.
    pub workers: usize,
    /// Bounded queue capacity.
    pub queue_capacity: usize,
    /// Jobs currently queued.
    pub queue_len: usize,
    /// Result-cache capacity.
    pub cache_capacity: usize,
    /// Result-cache occupancy.
    pub cache_len: usize,
    /// Result-cache evictions so far.
    pub cache_evictions: u64,
    /// True once a drain has been requested.
    pub draining: bool,
    /// True when a durable store backs the cache (`--store-dir`).
    pub store_configured: bool,
    /// Result entries on disk (0 without a store).
    pub store_entries: usize,
    /// Result-body bytes on disk (0 without a store).
    pub store_bytes: u64,
    /// Traces currently registered in the trace registry.
    pub traces_stored: usize,
    /// Unused lifetime anchor so future samples can borrow.
    pub _marker: std::marker::PhantomData<&'a ()>,
}

// The stat renderers moved to `hmm_sweep::aggregate` so the sweep
// aggregator and this document provably share one field vocabulary
// (the aggregate side also parses them back exactly); re-exported here
// for the existing callers.
pub use hmm_sweep::aggregate::{controller_json, swaps_json};

#[cfg(test)]
mod tests {
    use super::*;
    use hmm_telemetry::jsonin;

    fn sample() -> GaugeSample<'static> {
        GaugeSample {
            workers: 4,
            queue_capacity: 32,
            queue_len: 1,
            cache_capacity: 256,
            cache_len: 2,
            cache_evictions: 0,
            draining: false,
            store_configured: false,
            store_entries: 0,
            store_bytes: 0,
            traces_stored: 0,
            _marker: std::marker::PhantomData,
        }
    }

    #[test]
    fn document_parses_and_reconciles() {
        let m = ServerMetrics::default();
        for _ in 0..3 {
            m.inc(&m.accepted);
        }
        m.inc(&m.cache_hits);
        m.inc(&m.cache_misses);
        m.inc(&m.cache_misses);
        m.record_latency(Duration::from_micros(1500));
        let doc = jsonin::parse(&m.to_json(&sample())).unwrap();
        assert_eq!(doc.get("schema").unwrap().as_str(), Some("hmm-serve-metrics-v1"));
        let accepted = doc.get("accepted").unwrap().as_f64().unwrap();
        let hits = doc.get("cache_hits").unwrap().as_f64().unwrap();
        let misses = doc.get("cache_misses").unwrap().as_f64().unwrap();
        assert_eq!(accepted, hits + misses, "the admission identity");
        let lat = doc.get("latency").unwrap();
        assert_eq!(lat.get("count").unwrap().as_f64(), Some(1.0));
        assert!(lat.get("p99_us").unwrap().as_f64().unwrap() >= 1500.0);
    }

    #[test]
    fn run_totals_merge() {
        use hmm_core::Mode;
        use hmm_simulator::driver::{run, RunConfig};
        use hmm_workloads::WorkloadId;

        let m = ServerMetrics::default();
        let r = run(&RunConfig {
            accesses: 4_000,
            warmup: 500,
            ..RunConfig::quick(WorkloadId::Pgbench, Mode::Static)
        });
        m.record_run(&r);
        m.record_run(&r);
        let doc = jsonin::parse(&m.to_json(&sample())).unwrap();
        let totals = doc.get("controller_totals").unwrap();
        let on = totals.get("demand_on_lines").unwrap().as_f64().unwrap();
        let off = totals.get("demand_off_lines").unwrap().as_f64().unwrap();
        assert_eq!(on + off, 2.0 * 4_000.0, "two runs' demand lines merged");
    }
}
