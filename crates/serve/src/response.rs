//! Deterministic rendering of simulation results to wire JSON.
//!
//! [`render_run`] is a pure function of the canonical request and the
//! `RunResult`, with a fixed field order and the workspace's fixed
//! `f64` formatting — so two runs of the same request produce
//! byte-identical bodies, which is what makes whole-response caching
//! sound. Cache status deliberately never appears in the body (it rides
//! in the `X-Cache` response header): a hit and a miss for the same
//! request must be indistinguishable on the wire.

use crate::metrics::{controller_json, swaps_json};
use hmm_power::{normalized_power, EnergyParams};
use hmm_simulator::driver::RunResult;
use hmm_telemetry::JsonObject;

/// Render the response body for one completed run. `canonical` is the
/// canonical JSON of the resolved configuration (embedded verbatim, so
/// clients can see exactly what was simulated, defaults and all).
pub fn render_run(canonical: &str, result: &RunResult) -> String {
    let geometry = JsonObject::new()
        .u64("total_bytes", result.geometry.total_bytes)
        .u64("on_package_bytes", result.geometry.on_package_bytes)
        .u64("page_shift", u64::from(result.geometry.page_shift))
        .u64("sub_block_shift", u64::from(result.geometry.sub_block_shift))
        .finish();
    let access = JsonObject::new()
        .u64("accesses", result.access.accesses())
        .u64("reads", result.access.reads)
        .u64("writes", result.access.writes)
        .f64("mean_latency_cycles", result.access.mean_latency())
        .f64("dram_core_mean", result.access.dram_core.mean())
        .f64("queuing_mean", result.access.queuing.mean())
        .f64("controller_mean", result.access.controller.mean())
        .f64("interconnect_mean", result.access.interconnect.mean())
        .u64("p99_latency_cycles", result.access.histogram.quantile(0.99))
        .f64("on_package_fraction", result.access.on_package_fraction())
        .finish();
    let traffic = result.traffic();
    let mut out = JsonObject::new()
        .str("schema", "hmm-serve-sim-v1")
        .str("workload", &result.workload)
        .raw("config", canonical)
        .raw("geometry", &geometry)
        .raw("access", &access)
        .raw("controller", &controller_json(&result.controller));
    out = match &result.swaps {
        Some(s) => out.raw("swaps", &swaps_json(s)),
        None => out.raw("swaps", "null"),
    };
    out = match normalized_power(&EnergyParams::default(), &traffic) {
        Some(p) => out.f64("normalized_power", p),
        None => out.raw("normalized_power", "null"),
    };
    // Endurance-tracking schemes (PCM) report wear; the field is absent —
    // not null — otherwise, so pre-existing scheme bodies stay
    // byte-identical.
    if let Some(w) = &result.wear {
        let wear = JsonObject::new()
            .u64("write_lines", w.write_lines)
            .u64("max_bank_writes", w.max_bank_writes)
            .u64("banks", w.banks)
            .f64("imbalance", w.imbalance())
            .finish();
        out = out.raw("wear", &wear);
    }
    out.u64("digest", digest(result)).finish()
}

/// A stable fingerprint of the run's counters, included in the body so
/// clients (and the determinism tests) can compare runs cheaply.
fn digest(result: &RunResult) -> u64 {
    use hmm_sim_base::fxhash::FxHasher;
    use std::hash::Hasher;
    let mut h = FxHasher::default();
    let c = &result.controller;
    for v in [
        result.access.accesses(),
        result.access.reads,
        result.access.writes,
        result.access.on_package_hits,
        result.access.latency.total() as u64,
        c.demand_on_lines,
        c.demand_off_lines,
        c.migration_on_lines,
        c.migration_off_lines,
        c.stall_cycles,
        c.epochs,
    ] {
        h.write_u64(v);
    }
    if let Some(s) = &result.swaps {
        h.write_u64(s.triggered);
        h.write_u64(s.completed);
        h.write_u64(s.sub_blocks_copied);
    }
    h.finish()
}

/// Render a structured error body.
pub fn error_body(message: &str) -> String {
    JsonObject::new().str("error", message).finish()
}

/// Render one trace-registry entry (`POST`/`GET /v1/traces`).
pub fn trace_summary_json(s: &hmm_workloads::TraceSummary) -> String {
    JsonObject::new()
        .str("id", &s.id())
        .u64("records", s.records)
        .u64("ticks", s.last_tick)
        .u64("max_line", s.max_line)
        .u64("footprint_bytes", s.footprint_bytes())
        .f64("read_fraction", s.read_fraction())
        .finish()
}

/// Render the status document for a job (`GET /v1/jobs/<id>`). The
/// `body` of a done job is embedded raw under `result`.
pub fn job_status(id: u64, state: &crate::jobs::JobState) -> String {
    use crate::jobs::JobState;
    let mut out = JsonObject::new().u64("id", id).str("status", state.label());
    out = match state {
        JobState::Done(body) => out.raw("result", body),
        JobState::Failed(msg) => out.str("error", msg),
        _ => out,
    };
    out.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jobs::JobState;
    use hmm_core::Mode;
    use hmm_simulator::driver::{run, RunConfig};
    use hmm_telemetry::jsonin;
    use hmm_workloads::WorkloadId;
    use std::sync::Arc;

    fn quick_result() -> RunResult {
        run(&RunConfig {
            accesses: 5_000,
            warmup: 500,
            ..RunConfig::quick(WorkloadId::Pgbench, "live".parse::<Mode>().unwrap())
        })
    }

    #[test]
    fn render_is_deterministic_and_parseable() {
        let canonical = r#"{"workload":"pgbench"}"#;
        let a = render_run(canonical, &quick_result());
        let b = render_run(canonical, &quick_result());
        assert_eq!(a, b, "same config renders byte-identical bodies");
        let doc = jsonin::parse(&a).unwrap();
        assert_eq!(doc.get("schema").unwrap().as_str(), Some("hmm-serve-sim-v1"));
        assert_eq!(
            doc.get("config").unwrap().get("workload").unwrap().as_str(),
            Some("pgbench"),
            "canonical config embedded verbatim"
        );
        assert!(
            doc.get("access").unwrap().get("mean_latency_cycles").unwrap().as_f64().unwrap() > 0.0
        );
        assert!(doc.get("digest").unwrap().as_f64().is_some());
    }

    #[test]
    fn digest_tracks_counters() {
        let base = quick_result();
        let mut other = base.clone();
        other.controller.demand_on_lines += 1;
        assert_ne!(digest(&base), digest(&other));
    }

    #[test]
    fn job_status_embeds_result_or_error() {
        let done = job_status(7, &JobState::Done(Arc::new(r#"{"x":1}"#.into())));
        let doc = jsonin::parse(&done).unwrap();
        assert_eq!(doc.get("status").unwrap().as_str(), Some("done"));
        assert_eq!(doc.get("result").unwrap().get("x").unwrap().as_f64(), Some(1.0));

        let failed = job_status(8, &JobState::Failed("boom".into()));
        let doc = jsonin::parse(&failed).unwrap();
        assert_eq!(doc.get("status").unwrap().as_str(), Some("failed"));
        assert_eq!(doc.get("error").unwrap().as_str(), Some("boom"));

        let queued = job_status(9, &JobState::Queued);
        let doc = jsonin::parse(&queued).unwrap();
        assert!(doc.get("result").is_none());
    }
}
