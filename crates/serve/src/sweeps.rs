//! Sweep orchestration: `POST /v1/sweeps` grid fan-out over the local
//! worker pool or a peer cluster.
//!
//! A sweep submission expands its grid spec (via [`hmm_sweep::expand`]),
//! parses every cell through the same [`parse_body`] that guards
//! `POST /v1/simulate`, and deduplicates cells by canonical hash — two
//! spellings of one configuration coalesce exactly as they would in the
//! result cache. A background runner thread then drives the cells to
//! completion:
//!
//! * **Local mode** (no peers configured): every cell goes through
//!   `Shared::admit` — cache hits conclude instantly, identical
//!   in-flight work coalesces, and a full queue is backpressure to wait
//!   out, not an error.
//! * **Coordinator mode** (`hmm-serve --peers a,b,c`): cells are sharded
//!   across peers by consistent hashing on the canonical hash
//!   ([`hmm_sweep::Ring`]), so a given cell always lands on the peer
//!   whose cache has seen it before. One dispatcher thread per peer
//!   POSTs each cell's *canonical config text* — itself a valid request
//!   body — to the peer's `/v1/simulate`; the peer re-derives the same
//!   key. An idle dispatcher steals from the longest remaining queue
//!   (stragglers), and a dead peer's cells are re-dispatched to the
//!   survivors with the same bounded-retry/backoff discipline
//!   `hmm-fault` applies to DRAM transfers, lifted to the cluster layer.
//!
//! Accounting is exact and checkable ([`SweepCounts::check`]): every
//! assignment of a cell to an executor bumps `dispatched`, every
//! re-assignment (steal or peer death) bumps `retries` (steals also
//! `stolen`), so at quiescence `dispatched == done + failed + retries`,
//! alongside `expanded == unique + deduped`. Progress is monotone: a
//! cell's visible state only moves forward, and `GET /v1/sweeps/<id>`
//! derives its counts from a single scan over the cells.
//!
//! When every cell succeeds, the runner renders the
//! `hmm-sweep-figures-v1` document over the result bodies *in cell
//! order*. Because bodies are byte-deterministic and embedded verbatim,
//! the document is byte-identical whether the cells ran here, on peers,
//! or in-process via `hmm-bench sweep`.

use crate::client;
use crate::http::Response;
use crate::jobs::{Job, JobState};
use crate::request::{parse_body, SimRequest};
use crate::response::error_body;
use crate::server::{Admitted, Shared};
use hmm_sim_base::FxHashMap;
use hmm_sweep::aggregate::figures_doc;
use hmm_sweep::{expand, CellState, Ring, SweepCounts};
use hmm_telemetry::{JsonArray, JsonObject};
use std::collections::VecDeque;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

/// Re-dispatches allowed per cell before it is declared failed — the
/// cluster-layer mirror of `hmm-fault`'s transfer retry budget.
const CELL_MAX_RETRIES: u64 = 3;

/// Base backoff before a re-dispatch; doubles with each consumed retry.
const RETRY_BACKOFF: Duration = Duration::from_millis(10);

/// Socket deadline for one peer RPC. Generous: a peer that answers
/// `504` keeps the simulation running, and the retry loop coalesces
/// onto it; a SIGKILLed peer surfaces as a fast transport error.
const PEER_TIMEOUT: Duration = Duration::from_secs(60);

/// Finished sweeps kept queryable; running sweeps are never evicted.
const SWEEP_RETENTION: usize = 64;

/// Where one cell currently lives.
#[derive(Debug)]
enum Slot {
    /// Not yet (or no longer) assigned to an executor.
    Pending,
    /// Admitted to the local pool; the job carries the live state.
    Local(Arc<Job>),
    /// An RPC to a peer is in flight.
    Remote,
    /// Concluded with a result body.
    Done(Arc<String>),
    /// Concluded in permanent failure.
    Failed(String),
}

#[derive(Debug)]
struct Cell {
    sim: SimRequest,
    slot: Mutex<Slot>,
    /// Retries consumed by failed dispatch attempts (not steals).
    attempts: AtomicU64,
}

impl Cell {
    fn state(&self) -> CellState {
        match &*self.slot.lock().unwrap() {
            Slot::Pending => CellState::Pending,
            Slot::Remote => CellState::Running,
            Slot::Local(job) => match job.state() {
                JobState::Done(_) => CellState::Done,
                JobState::Failed(_) | JobState::Cancelled => CellState::Failed,
                JobState::Queued | JobState::Running => CellState::Running,
            },
            Slot::Done(_) => CellState::Done,
            Slot::Failed(_) => CellState::Failed,
        }
    }
}

/// One tracked sweep.
#[derive(Debug)]
pub(crate) struct Sweep {
    id: u64,
    expanded: u64,
    deduped: u64,
    cells: Vec<Cell>,
    dispatched: AtomicU64,
    retries: AtomicU64,
    stolen: AtomicU64,
    finished: AtomicBool,
    figures: Mutex<Option<Arc<String>>>,
}

impl Sweep {
    /// Snapshot the counters. States come from one scan over the cells,
    /// so `unique == pending + running + done + failed` holds in every
    /// snapshot; the dispatch ledger balances once the sweep finishes.
    fn counts(&self) -> SweepCounts {
        let mut c = SweepCounts {
            expanded: self.expanded,
            deduped: self.deduped,
            unique: self.cells.len() as u64,
            dispatched: self.dispatched.load(Ordering::SeqCst),
            retries: self.retries.load(Ordering::SeqCst),
            stolen: self.stolen.load(Ordering::SeqCst),
            ..SweepCounts::default()
        };
        for cell in &self.cells {
            match cell.state() {
                CellState::Pending => c.pending += 1,
                CellState::Running => c.running += 1,
                CellState::Done => c.done += 1,
                CellState::Failed => c.failed += 1,
            }
        }
        c
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    sweeps: FxHashMap<u64, Arc<Sweep>>,
    /// Insertion order, for bounded retention.
    order: VecDeque<u64>,
}

/// The server's table of live and recently-finished sweeps.
#[derive(Debug, Default)]
pub(crate) struct SweepRegistry {
    inner: Mutex<RegistryInner>,
    next_id: AtomicU64,
}

impl SweepRegistry {
    pub(crate) fn new() -> Self {
        SweepRegistry { inner: Mutex::default(), next_id: AtomicU64::new(1) }
    }

    fn insert(&self, sweep: Arc<Sweep>) {
        let mut inner = self.inner.lock().unwrap();
        inner.order.push_back(sweep.id);
        inner.sweeps.insert(sweep.id, sweep);
        while inner.sweeps.len() > SWEEP_RETENTION {
            let retired = inner
                .order
                .iter()
                .position(|id| {
                    inner.sweeps.get(id).is_some_and(|s| s.finished.load(Ordering::SeqCst))
                })
                .and_then(|pos| inner.order.remove(pos));
            let Some(id) = retired else { break };
            inner.sweeps.remove(&id);
        }
    }

    fn get(&self, id: u64) -> Option<Arc<Sweep>> {
        self.inner.lock().unwrap().sweeps.get(&id).cloned()
    }
}

fn bad(shared: &Shared, status: u16, msg: &str) -> Response {
    shared.metrics.inc(&shared.metrics.bad_requests);
    Response::json(status, error_body(msg))
}

/// `POST /v1/sweeps`: expand, validate, dedup, start the runner, and
/// answer `202` with the sweep id and expansion accounting.
pub(crate) fn submit(shared: &Arc<Shared>, body: &str) -> Response {
    let bodies = match expand(body, shared.cfg.max_sweep_cells) {
        Ok(bodies) => bodies,
        Err(msg) => return bad(shared, 400, &format!("sweep spec: {msg}")),
    };
    let expanded = bodies.len() as u64;
    let mut cells: Vec<Cell> = Vec::new();
    let mut seen: FxHashMap<u64, ()> = FxHashMap::default();
    for (i, cell_body) in bodies.iter().enumerate() {
        let sim = match parse_body(cell_body, &shared.cfg.limits) {
            Ok(sim) => sim,
            Err(msg) => return bad(shared, 400, &format!("cell {i}: {msg}")),
        };
        if seen.insert(sim.key, ()).is_some() {
            continue; // identical canonical hash: coalesce
        }
        cells.push(Cell { sim, slot: Mutex::new(Slot::Pending), attempts: AtomicU64::new(0) });
    }
    if shared.draining.load(Ordering::SeqCst) {
        return Response::json(503, error_body("server is draining"));
    }
    let deduped = expanded - cells.len() as u64;
    let id = shared.sweeps.next_id.fetch_add(1, Ordering::Relaxed);
    let sweep = Arc::new(Sweep {
        id,
        expanded,
        deduped,
        cells,
        dispatched: AtomicU64::new(0),
        retries: AtomicU64::new(0),
        stolen: AtomicU64::new(0),
        finished: AtomicBool::new(false),
        figures: Mutex::new(None),
    });
    shared.sweeps.insert(Arc::clone(&sweep));
    shared.metrics.inc(&shared.metrics.sweeps_submitted);

    let runner_shared = Arc::clone(shared);
    let runner_sweep = Arc::clone(&sweep);
    let handle = thread::Builder::new()
        .name(format!("hmm-sweep-runner-{id}"))
        .spawn(move || run_sweep(&runner_shared, &runner_sweep))
        .expect("spawn sweep runner");
    shared.runners.lock().unwrap().push(handle);

    Response::json(
        202,
        JsonObject::new()
            .u64("id", id)
            .str("status", "running")
            .u64("expanded", expanded)
            .u64("deduped", deduped)
            .u64("cells", sweep.cells.len() as u64)
            .finish(),
    )
}

/// `GET /v1/sweeps/<id>`: the live status document.
pub(crate) fn get(shared: &Arc<Shared>, path: &str) -> Response {
    let rest = path.strip_prefix("/v1/sweeps/").unwrap_or("");
    let (id, figures_only) = match rest.strip_suffix("/figures") {
        Some(id) => (id, true),
        None => (rest, false),
    };
    let Some(id) = id.parse::<u64>().ok() else {
        return bad(shared, 404, &format!("malformed sweep id in '{path}'"));
    };
    let Some(sweep) = shared.sweeps.get(id) else {
        return bad(shared, 404, &format!("no such sweep {id} (expired or never existed)"));
    };
    if !figures_only {
        return Response::json(200, status_doc(&sweep));
    }
    // The figures document served *verbatim*: the embedded result bodies
    // carry full-range u64 digests that any f64-based JSON round trip
    // would corrupt, so byte-exact consumers (CI's `cmp` against an
    // in-process run, `hmm-bench sweep --doc`) read this endpoint
    // instead of carving the document out of the status body.
    let figures = sweep.figures.lock().unwrap().clone();
    match figures {
        Some(figures) => Response::json(200, figures.as_ref().clone()),
        None => bad(shared, 409, &format!("sweep {id} has no figures document (yet)")),
    }
}

fn status_doc(sweep: &Sweep) -> String {
    let counts = sweep.counts();
    let finished = sweep.finished.load(Ordering::SeqCst);
    let status = if !finished {
        "running"
    } else if counts.failed > 0 {
        "failed"
    } else {
        "done"
    };
    let mut cells = JsonArray::new();
    for cell in &sweep.cells {
        let mut entry = JsonObject::new()
            .str("key", &format!("{:016x}", cell.sim.key))
            .str("status", cell.state().label())
            .raw("config", &cell.sim.canonical);
        if let Slot::Failed(why) = &*cell.slot.lock().unwrap() {
            entry = entry.str("error", why);
        }
        cells = cells.raw(&entry.finish());
    }
    let figures = sweep.figures.lock().unwrap().clone();
    JsonObject::new()
        .str("schema", "hmm-sweep-status-v1")
        .u64("id", sweep.id)
        .str("status", status)
        .raw("counts", &counts.to_json())
        .raw("cells", &cells.finish())
        .raw("figures", figures.as_ref().map_or("null", |f| f.as_str()))
        .finish()
}

fn run_sweep(shared: &Arc<Shared>, sweep: &Sweep) {
    if shared.cfg.peers.is_empty() {
        run_local(shared, sweep);
    } else {
        Cluster::new(shared, sweep).run();
    }
    finish(shared, sweep);
}

/// Terminal bookkeeping: fold cell outcomes into the server metrics and
/// render the figures document when every cell succeeded.
fn finish(shared: &Shared, sweep: &Sweep) {
    let mut bodies: Vec<Arc<String>> = Vec::with_capacity(sweep.cells.len());
    let mut failed = 0u64;
    for cell in &sweep.cells {
        match &*cell.slot.lock().unwrap() {
            Slot::Done(body) => bodies.push(Arc::clone(body)),
            _ => failed += 1,
        }
    }
    shared.metrics.sweep_cells_done.fetch_add(bodies.len() as u64, Ordering::Relaxed);
    shared.metrics.sweep_cells_failed.fetch_add(failed, Ordering::Relaxed);
    if failed == 0 {
        let texts: Vec<&str> = bodies.iter().map(|b| b.as_str()).collect();
        // Result bodies always aggregate (they were rendered by this
        // workspace); a parse failure here would be a bug, and leaving
        // `figures` null keeps the status document honest about it.
        if let Ok(doc) = figures_doc(&texts) {
            *sweep.figures.lock().unwrap() = Some(Arc::new(doc));
        }
    }
    shared.metrics.inc(&shared.metrics.sweeps_completed);
    sweep.finished.store(true, Ordering::SeqCst);
}

/// Local mode: dispatch every cell through the shared admission path,
/// then harvest. Admission gives sweeps the same semantics as clients —
/// cache hits conclude instantly and identical in-flight work coalesces
/// (including across concurrent sweeps).
fn run_local(shared: &Shared, sweep: &Sweep) {
    for cell in &sweep.cells {
        loop {
            match shared.admit(&cell.sim) {
                Admitted::Cached(body) => {
                    sweep.dispatched.fetch_add(1, Ordering::SeqCst);
                    *cell.slot.lock().unwrap() = Slot::Done(body);
                    break;
                }
                Admitted::Pending(job) => {
                    sweep.dispatched.fetch_add(1, Ordering::SeqCst);
                    *cell.slot.lock().unwrap() = Slot::Local(job);
                    break;
                }
                // Full queue: backpressure, not failure. Wait it out.
                Admitted::Refused(429, _) => thread::sleep(Duration::from_millis(2)),
                Admitted::Refused(_, msg) => {
                    sweep.dispatched.fetch_add(1, Ordering::SeqCst);
                    *cell.slot.lock().unwrap() = Slot::Failed(msg);
                    break;
                }
            }
        }
    }
    // Every admitted job concludes even during a drain (workers finish
    // the queue before exiting), so these waits terminate.
    for cell in &sweep.cells {
        let job = match &*cell.slot.lock().unwrap() {
            Slot::Local(job) => Arc::clone(job),
            _ => continue,
        };
        let state = loop {
            if let Some(s) = job.wait_done(Duration::from_secs(60)) {
                break s;
            }
        };
        let outcome = match state {
            JobState::Done(body) => Slot::Done(body),
            JobState::Failed(msg) => Slot::Failed(msg),
            _ => Slot::Failed("cancelled while queued".into()),
        };
        *cell.slot.lock().unwrap() = outcome;
    }
}

/// Coordinator mode: per-peer dispatchers over a consistent-hash ring,
/// with work stealing and bounded re-dispatch on peer death.
struct Cluster<'a> {
    shared: &'a Shared,
    sweep: &'a Sweep,
    ring: Ring,
    addrs: Vec<Option<SocketAddr>>,
    alive: Vec<AtomicBool>,
    /// Pending cell indices assigned to each peer.
    queues: Vec<Mutex<VecDeque<usize>>>,
    /// Cells not yet concluded (done or failed).
    remaining: AtomicU64,
}

impl<'a> Cluster<'a> {
    fn new(shared: &'a Shared, sweep: &'a Sweep) -> Self {
        let peers = &shared.cfg.peers;
        let addrs: Vec<Option<SocketAddr>> = peers.iter().map(|p| p.parse().ok()).collect();
        Cluster {
            ring: Ring::new(peers),
            alive: addrs.iter().map(|a| AtomicBool::new(a.is_some())).collect(),
            queues: peers.iter().map(|_| Mutex::new(VecDeque::new())).collect(),
            remaining: AtomicU64::new(sweep.cells.len() as u64),
            shared,
            sweep,
            addrs,
        }
    }

    fn run(&self) {
        // Initial assignment: shard by canonical hash so repeats of a
        // cell (across sweeps and retries) land on a warm cache.
        let alive_now: Vec<bool> = self.alive.iter().map(|a| a.load(Ordering::SeqCst)).collect();
        for (i, cell) in self.sweep.cells.iter().enumerate() {
            self.sweep.dispatched.fetch_add(1, Ordering::SeqCst);
            match self.ring.assign_among(cell.sim.key, &alive_now) {
                Some(p) => self.queues[p].lock().unwrap().push_back(i),
                None => self.conclude(i, Slot::Failed("no reachable peers".into())),
            }
        }
        thread::scope(|scope| {
            for p in 0..self.shared.cfg.peers.len() {
                scope.spawn(move || self.dispatcher(p));
            }
        });
    }

    /// Replace the cell's slot and strike it off the ledger. Called
    /// exactly once per cell: queue pops grant exclusive ownership.
    fn conclude(&self, idx: usize, outcome: Slot) {
        *self.sweep.cells[idx].slot.lock().unwrap() = outcome;
        self.remaining.fetch_sub(1, Ordering::SeqCst);
    }

    /// Put a failed dispatch back on the ring (bounded by the retry
    /// budget), or fail the cell when nothing is alive to take it.
    fn reassign(&self, idx: usize, why: &str) {
        let cell = &self.sweep.cells[idx];
        let attempts = cell.attempts.fetch_add(1, Ordering::SeqCst) + 1;
        if attempts > CELL_MAX_RETRIES {
            self.conclude(idx, Slot::Failed(format!("retry budget exhausted: {why}")));
            return;
        }
        if self.shared.draining.load(Ordering::SeqCst) {
            self.conclude(idx, Slot::Failed("coordinator draining".into()));
            return;
        }
        let alive_now: Vec<bool> = self.alive.iter().map(|a| a.load(Ordering::SeqCst)).collect();
        match self.ring.assign_among(cell.sim.key, &alive_now) {
            Some(q) => {
                self.sweep.retries.fetch_add(1, Ordering::SeqCst);
                self.shared.metrics.inc(&self.shared.metrics.sweep_retries);
                self.sweep.dispatched.fetch_add(1, Ordering::SeqCst);
                *cell.slot.lock().unwrap() = Slot::Pending;
                self.queues[q].lock().unwrap().push_back(idx);
            }
            None => self.conclude(idx, Slot::Failed(format!("no reachable peers: {why}"))),
        }
    }

    /// Take a cell from the back of the longest other queue — work the
    /// straggler would reach last. Counted as a re-assignment so the
    /// dispatch ledger stays exact.
    fn steal(&self, thief: usize) -> Option<usize> {
        let (mut victim, mut victim_len) = (None, 0usize);
        for (q, queue) in self.queues.iter().enumerate() {
            if q == thief {
                continue;
            }
            let len = queue.lock().unwrap().len();
            if len > victim_len {
                victim = Some(q);
                victim_len = len;
            }
        }
        let idx = self.queues[victim?].lock().unwrap().pop_back()?;
        self.sweep.retries.fetch_add(1, Ordering::SeqCst);
        self.sweep.stolen.fetch_add(1, Ordering::SeqCst);
        self.sweep.dispatched.fetch_add(1, Ordering::SeqCst);
        self.shared.metrics.inc(&self.shared.metrics.sweep_retries);
        self.shared.metrics.inc(&self.shared.metrics.sweep_stolen);
        Some(idx)
    }

    /// One peer's dispatcher. Runs until every cell has concluded; a
    /// dispatcher whose peer died keeps janitoring its queue (cells can
    /// race in) but executes nothing.
    fn dispatcher(&self, p: usize) {
        loop {
            if self.remaining.load(Ordering::SeqCst) == 0 {
                return;
            }
            if self.shared.draining.load(Ordering::SeqCst) {
                while let Some(idx) = self.pop_own(p) {
                    self.conclude(idx, Slot::Failed("coordinator draining".into()));
                }
                return;
            }
            if !self.alive[p].load(Ordering::SeqCst) {
                while let Some(idx) = self.pop_own(p) {
                    self.reassign(idx, "peer died");
                }
                thread::sleep(Duration::from_millis(3));
                continue;
            }
            let idx = self.pop_own(p).or_else(|| self.steal(p));
            let Some(idx) = idx else {
                thread::sleep(Duration::from_millis(3));
                continue;
            };
            self.execute(p, idx);
        }
    }

    fn pop_own(&self, p: usize) -> Option<usize> {
        self.queues[p].lock().unwrap().pop_front()
    }

    /// Run one cell on peer `p`: POST the canonical config text to the
    /// peer's `/v1/simulate` and conclude, retry, or reassign.
    fn execute(&self, p: usize, idx: usize) {
        let cell = &self.sweep.cells[idx];
        let Some(addr) = self.addrs[p] else {
            self.alive[p].store(false, Ordering::SeqCst);
            self.reassign(idx, "unresolvable peer address");
            return;
        };
        let attempts = cell.attempts.load(Ordering::SeqCst);
        if attempts > 0 {
            // Doubling backoff before each re-dispatch, mirroring the
            // fault layer's transfer retry discipline — plus bounded
            // jitter in [0, base/2) so the cells a dead peer strands all
            // at once fan back out instead of re-dispatching in
            // lockstep. The jitter is a pure hash of (cell key,
            // attempt): deterministic for replay, decorrelated across
            // cells, and invisible to the retry-budget ledger.
            let base = RETRY_BACKOFF * (1u32 << (attempts.min(4) as u32 - 1));
            let mut seed = [0u8; 16];
            seed[..8].copy_from_slice(&cell.sim.key.to_le_bytes());
            seed[8..].copy_from_slice(&attempts.to_le_bytes());
            let jitter_ns = hmm_sim_base::snap::snap_hash(&seed) % (base.as_nanos() as u64 / 2);
            thread::sleep(base + Duration::from_nanos(jitter_ns));
        }
        *cell.slot.lock().unwrap() = Slot::Remote;
        loop {
            match client::request(addr, "POST", "/v1/simulate", &cell.sim.canonical, PEER_TIMEOUT) {
                Ok(resp) if resp.status == 200 => {
                    self.conclude(idx, Slot::Done(Arc::new(resp.body)));
                    return;
                }
                // Peer backpressure (429) or a still-running simulation
                // (504): stay on this peer — its single-flight map will
                // coalesce the retry onto the same run.
                Ok(resp) if resp.status == 429 || resp.status == 504 => {
                    if self.shared.draining.load(Ordering::SeqCst) {
                        self.conclude(idx, Slot::Failed("coordinator draining".into()));
                        return;
                    }
                    thread::sleep(Duration::from_millis(5));
                }
                // The cell itself is unacceptable or the simulation
                // deterministically fails; no other peer will disagree.
                Ok(resp) if resp.status == 400 || resp.status == 500 => {
                    self.conclude(
                        idx,
                        Slot::Failed(format!("peer answered {}: {}", resp.status, resp.body)),
                    );
                    return;
                }
                // Draining peer, unexpected status, or transport error
                // (a SIGKILLed peer shows up here as a refused or reset
                // connection): the peer is gone — hand its cells to the
                // survivors.
                Ok(_) | Err(_) => {
                    self.alive[p].store(false, Ordering::SeqCst);
                    self.reassign(idx, &format!("peer {} unreachable", self.shared.cfg.peers[p]));
                    return;
                }
            }
        }
    }
}
