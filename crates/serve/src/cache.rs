//! The deterministic result cache: a fixed-capacity LRU over rendered
//! response bodies.
//!
//! Caching whole responses is sound here because simulation runs are
//! bit-deterministic and the response renderer is a pure function of the
//! run result: serving a cached body is byte-identical to re-running the
//! simulation (the end-to-end tests assert exactly this). Entries are
//! `Arc<String>` so a hit hands out a reference without copying the body
//! under the lock.
//!
//! The implementation is a classic slab + intrusive doubly-linked list:
//! `get` promotes to most-recently-used in O(1), `insert` evicts the
//! list tail when full. Keys are the canonical-request hashes from
//! [`crate::request`], so the map uses the workspace's deterministic
//! [`FxHashMap`].

use hmm_sim_base::FxHashMap;
use std::sync::Arc;

const NIL: usize = usize::MAX;

#[derive(Debug)]
struct Slot {
    key: u64,
    body: Arc<String>,
    prev: usize,
    next: usize,
}

/// Fixed-capacity least-recently-used cache from canonical-request key to
/// rendered response body.
#[derive(Debug)]
pub struct LruCache {
    cap: usize,
    map: FxHashMap<u64, usize>,
    slots: Vec<Slot>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    evictions: u64,
}

impl LruCache {
    /// A cache holding up to `cap` entries; `cap == 0` disables caching
    /// (every lookup misses, every insert is dropped).
    pub fn new(cap: usize) -> Self {
        LruCache {
            cap,
            map: FxHashMap::default(),
            slots: Vec::with_capacity(cap.min(1024)),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            evictions: 0,
        }
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Entries evicted to make room since construction.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Look up `key`, promoting it to most-recently-used on a hit.
    pub fn get(&mut self, key: u64) -> Option<Arc<String>> {
        let &idx = self.map.get(&key)?;
        self.unlink(idx);
        self.push_front(idx);
        Some(Arc::clone(&self.slots[idx].body))
    }

    /// Insert (or refresh) `key`; evicts the least-recently-used entry
    /// when the cache is full.
    pub fn insert(&mut self, key: u64, body: Arc<String>) {
        if self.cap == 0 {
            return;
        }
        if let Some(&idx) = self.map.get(&key) {
            // Same key, same deterministic body — just refresh recency.
            self.slots[idx].body = body;
            self.unlink(idx);
            self.push_front(idx);
            return;
        }
        if self.map.len() == self.cap {
            let victim = self.tail;
            debug_assert_ne!(victim, NIL);
            self.unlink(victim);
            self.map.remove(&self.slots[victim].key);
            self.free.push(victim);
            self.evictions += 1;
        }
        let idx = match self.free.pop() {
            Some(idx) => {
                self.slots[idx] = Slot { key, body, prev: NIL, next: NIL };
                idx
            }
            None => {
                self.slots.push(Slot { key, body, prev: NIL, next: NIL });
                self.slots.len() - 1
            }
        };
        self.map.insert(key, idx);
        self.push_front(idx);
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.slots[idx].prev, self.slots[idx].next);
        match prev {
            NIL => self.head = next,
            p => self.slots[p].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slots[n].prev = prev,
        }
        self.slots[idx].prev = NIL;
        self.slots[idx].next = NIL;
    }

    fn push_front(&mut self, idx: usize) {
        self.slots[idx].prev = NIL;
        self.slots[idx].next = self.head;
        match self.head {
            NIL => self.tail = idx,
            h => self.slots[h].prev = idx,
        }
        self.head = idx;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body(s: &str) -> Arc<String> {
        Arc::new(s.to_string())
    }

    #[test]
    fn hit_and_miss() {
        let mut c = LruCache::new(4);
        assert!(c.get(1).is_none());
        c.insert(1, body("a"));
        assert_eq!(c.get(1).as_deref().map(String::as_str), Some("a"));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(3);
        c.insert(1, body("a"));
        c.insert(2, body("b"));
        c.insert(3, body("c"));
        // Touch 1 so 2 becomes the LRU entry.
        assert!(c.get(1).is_some());
        c.insert(4, body("d"));
        assert_eq!(c.len(), 3);
        assert!(c.get(2).is_none(), "2 was least recently used");
        assert!(c.get(1).is_some());
        assert!(c.get(3).is_some());
        assert!(c.get(4).is_some());
        assert_eq!(c.evictions(), 1);
    }

    #[test]
    fn reinsert_refreshes_recency_without_growth() {
        let mut c = LruCache::new(2);
        c.insert(1, body("a"));
        c.insert(2, body("b"));
        c.insert(1, body("a"));
        c.insert(3, body("c"));
        assert!(c.get(2).is_none(), "2 was the LRU entry after 1's refresh");
        assert!(c.get(1).is_some());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = LruCache::new(0);
        c.insert(1, body("a"));
        assert!(c.get(1).is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn churn_preserves_capacity_and_order() {
        let mut c = LruCache::new(8);
        for k in 0..1000u64 {
            c.insert(k, body(&k.to_string()));
            assert!(c.len() <= 8);
        }
        // The last 8 inserts survive, in order.
        for k in 992..1000 {
            assert_eq!(c.get(k).as_deref().map(String::as_str), Some(k.to_string().as_str()));
        }
        assert_eq!(c.evictions(), 992);
    }
}
