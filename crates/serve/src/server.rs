//! The serving core: accept loop, request dispatch, worker pool, and
//! graceful drain.
//!
//! Threading model: `conn_threads` handler threads share one *blocking*
//! listener — each accepts a connection, serves exactly one request on
//! it (the framing layer closes after every response), and goes back to
//! accepting. Blocking accepts mean a request is picked up the moment it
//! arrives (no poll interval on the request path); drain wakes the
//! parked acceptors with short-lived loopback connections. `workers`
//! worker threads block on the bounded job queue and run simulations.
//! Synchronous requests park their handler thread on [`Job::wait_done`];
//! asynchronous ones return a job id immediately.
//!
//! Admission is a single decision under one lock (`AdmitState` holds
//! the result cache *and* the in-flight map together): cache hit → serve
//! the stored body; identical request already in flight → join it
//! (single-flight, no duplicate simulation); otherwise enqueue a new
//! job or refuse with `429`/`503`. Workers publish under the same lock —
//! insert into the cache and leave the in-flight map atomically — so an
//! identical request admitted at any moment either sees the cache entry
//! or joins the running job; it can never start a duplicate run.
//!
//! Graceful drain ([`Server::shutdown`], triggered by SIGTERM/ctrl-c in
//! the binary or `POST /admin/shutdown`): stop accepting connections,
//! stop admitting jobs (`503`), let the workers finish every queued job,
//! join all threads, exit. Every request the server said yes to gets its
//! answer.

use crate::cache::LruCache;
use crate::http::{
    finish_chunked, read_request_with, write_chunk, write_chunked_head, write_response, ReadError,
    Request, Response,
};
use crate::jobs::{Job, JobRegistry, JobState};
use crate::metrics::{GaugeSample, ServerMetrics};
use crate::queue::{Discipline, JobQueue, PushError};
use crate::request::{parse_body, Limits, SimRequest};
use crate::response::{error_body, job_status, render_run, trace_summary_json};
use crate::store::Store;
use crate::sweeps::{self, SweepRegistry};
use hmm_ingest::TraceRegistry;
use hmm_sim_base::FxHashMap;
use hmm_simulator::driver::{run_resumable_with_sink, run_with_sink, RunResult, SnapshotCtl};
use hmm_telemetry::{EpochFrameSink, Frame, JsonObject};
use hmm_workloads::replay;
use std::io::{ErrorKind, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Everything tunable about one server instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 to let the OS pick (tests do).
    pub addr: String,
    /// Simulation worker threads.
    pub workers: usize,
    /// Connection handler threads (each serves one request at a time).
    pub conn_threads: usize,
    /// Bounded job-queue depth; beyond it requests get `429`.
    pub queue_depth: usize,
    /// Result-cache capacity in entries (0 disables caching).
    pub cache_entries: usize,
    /// Admission limits applied while parsing request bodies.
    pub limits: Limits,
    /// Largest accepted request body on the JSON routes.
    pub max_body_bytes: usize,
    /// Largest accepted trace upload (`POST /v1/traces` only; binary
    /// traces are legitimately much bigger than any JSON body).
    pub max_trace_bytes: usize,
    /// Socket read/write deadline — a slow client cannot hold a handler
    /// longer than this per direction.
    pub io_timeout: Duration,
    /// Default (and maximum) synchronous wait for `POST /v1/simulate`.
    pub sync_timeout: Duration,
    /// Finished jobs kept queryable by id.
    pub job_retention: usize,
    /// Order queued jobs shortest-first (by requested `accesses`)
    /// instead of FIFO, so a sweep's small cells are not starved behind
    /// its big ones.
    pub sjf: bool,
    /// Peer `host:port` addresses for coordinator mode. When non-empty,
    /// sweep cells are sharded across these peers by consistent hashing
    /// instead of running on the local worker pool.
    pub peers: Vec<String>,
    /// Largest grid `POST /v1/sweeps` will expand.
    pub max_sweep_cells: usize,
    /// Root of the durable result store (`--store-dir`); `None` serves
    /// memory-only.
    pub store_dir: Option<PathBuf>,
    /// Byte budget for stored result bodies (`--store-max-bytes`);
    /// 0 = unbounded.
    pub store_max_bytes: u64,
    /// Checkpoint running jobs every this many submitted accesses
    /// (`--snapshot-every`); 0 disables checkpointing.
    pub snapshot_every: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            conn_threads: 16,
            queue_depth: 32,
            cache_entries: 256,
            limits: Limits::default(),
            max_body_bytes: 64 << 10,
            max_trace_bytes: 8 << 20,
            io_timeout: Duration::from_secs(10),
            sync_timeout: Duration::from_secs(30),
            job_retention: 1024,
            sjf: false,
            peers: Vec::new(),
            max_sweep_cells: 1024,
            store_dir: None,
            store_max_bytes: 0,
            snapshot_every: 0,
        }
    }
}

/// The result cache and the single-flight map, guarded together so
/// admission and publication are atomic with respect to each other.
#[derive(Debug)]
struct AdmitState {
    cache: LruCache,
    inflight: FxHashMap<u64, Arc<Job>>,
}

#[derive(Debug)]
pub(crate) struct Shared {
    pub(crate) cfg: ServerConfig,
    queue: JobQueue<Arc<Job>>,
    registry: JobRegistry,
    admit: Mutex<AdmitState>,
    pub(crate) metrics: ServerMetrics,
    pub(crate) draining: AtomicBool,
    /// Bound address, used by the drain waker to unblock parked accepts.
    local_addr: SocketAddr,
    /// Acceptor threads still in their accept loop; the drain waker keeps
    /// poking the listener until this reaches zero.
    live_acceptors: AtomicUsize,
    next_job_id: AtomicU64,
    /// Durable mirror of the result cache plus the checkpoint shelf;
    /// `None` when `--store-dir` was not given.
    store: Option<Store>,
    /// The uploaded-trace registry (durable under `store_dir/traces`
    /// when a store is configured, memory-only otherwise).
    pub(crate) traces: TraceRegistry,
    pub(crate) sweeps: SweepRegistry,
    /// Sweep runner threads, joined on shutdown.
    pub(crate) runners: Mutex<Vec<JoinHandle<()>>>,
}

/// How an admission attempt resolved.
pub(crate) enum Admitted {
    /// Cache hit; here is the body.
    Cached(Arc<String>),
    /// Joined or started a job; wait on it.
    Pending(Arc<Job>),
    /// Refused; answer with this status and message.
    Refused(u16, String),
}

impl Shared {
    /// The single admission decision for the simulate endpoints and the
    /// sweep runner.
    pub(crate) fn admit(&self, req: &SimRequest) -> Admitted {
        let mut admit = self.admit.lock().unwrap();
        if let Some(body) = admit.cache.get(req.key) {
            self.metrics.inc(&self.metrics.accepted);
            self.metrics.inc(&self.metrics.cache_hits);
            return Admitted::Cached(body);
        }
        // Memory miss: a result evicted from the in-memory cache may
        // still be on disk. The read happens under the admission lock so
        // the promotion back into the cache stays atomic with the
        // single-flight check; store reads are small and local.
        if let Some(store) = &self.store {
            if let Some(body) = store.get(req.key, &self.metrics) {
                let body = Arc::new(body);
                admit.cache.insert(req.key, Arc::clone(&body));
                self.metrics.inc(&self.metrics.accepted);
                self.metrics.inc(&self.metrics.cache_hits);
                return Admitted::Cached(body);
            }
        }
        if let Some(job) = admit.inflight.get(&req.key) {
            self.metrics.inc(&self.metrics.accepted);
            self.metrics.inc(&self.metrics.cache_misses);
            self.metrics.inc(&self.metrics.coalesced);
            return Admitted::Pending(Arc::clone(job));
        }
        let id = self.next_job_id.fetch_add(1, Ordering::Relaxed);
        let job = Job::new(id, req.key, req.canonical.clone(), req.cfg);
        match self.queue.try_push_cost(Arc::clone(&job), req.cfg.accesses) {
            Ok(()) => {
                admit.inflight.insert(req.key, Arc::clone(&job));
                self.registry.insert(Arc::clone(&job));
                self.metrics.inc(&self.metrics.accepted);
                self.metrics.inc(&self.metrics.cache_misses);
                Admitted::Pending(job)
            }
            Err(PushError::Full) => {
                self.metrics.inc(&self.metrics.rejected_busy);
                Admitted::Refused(
                    429,
                    format!("queue full ({} jobs); retry later", self.queue.capacity()),
                )
            }
            Err(PushError::ShuttingDown) => {
                self.metrics.inc(&self.metrics.rejected_draining);
                Admitted::Refused(503, "server is draining".into())
            }
        }
    }

    /// Remove `job` from the single-flight map if it still owns its key.
    fn leave_inflight(&self, job: &Job) {
        let mut admit = self.admit.lock().unwrap();
        if admit.inflight.get(&job.key).is_some_and(|j| j.id == job.id) {
            admit.inflight.remove(&job.key);
        }
    }

    /// Begin a drain: refuse new admissions, shut the queue down, and wake
    /// every acceptor parked in a blocking `accept` with short-lived
    /// loopback connections (an accepted wake connection reads as EOF and
    /// the acceptor re-checks the draining flag). The waker is bounded: it
    /// stops once every acceptor has exited or after a hard deadline.
    fn start_drain(self: &Arc<Self>) {
        let already = self.draining.swap(true, Ordering::SeqCst);
        self.queue.shutdown();
        if already {
            return;
        }
        let shared = Arc::clone(self);
        let _ = thread::Builder::new().name("hmm-serve-drain-waker".into()).spawn(move || {
            let deadline = Instant::now() + Duration::from_secs(10);
            while shared.live_acceptors.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
                // Each wake connection unparks at most one acceptor; keep
                // poking until the last one has observed the flag.
                let _ = TcpStream::connect_timeout(&shared.local_addr, Duration::from_millis(100));
                thread::sleep(Duration::from_millis(1));
            }
        });
    }

    fn metrics_doc(&self) -> String {
        let (cache_len, cache_evictions) = {
            let admit = self.admit.lock().unwrap();
            (admit.cache.len(), admit.cache.evictions())
        };
        self.metrics.to_json(&GaugeSample {
            workers: self.cfg.workers,
            queue_capacity: self.queue.capacity(),
            queue_len: self.queue.len(),
            cache_capacity: self.cfg.cache_entries,
            cache_len,
            cache_evictions,
            draining: self.draining.load(Ordering::SeqCst),
            store_configured: self.store.is_some(),
            store_entries: self.store.as_ref().map_or(0, Store::entries),
            store_bytes: self.store.as_ref().map_or(0, Store::bytes),
            traces_stored: self.traces.len(),
            _marker: std::marker::PhantomData,
        })
    }
}

/// A running server; dropping it without [`Server::shutdown`] aborts the
/// threads with the process (tests should always call `shutdown`).
#[derive(Debug)]
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    acceptors: Vec<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind, spawn the worker pool and handler threads, and start
    /// serving.
    pub fn start(cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let discipline = if cfg.sjf { Discipline::Sjf } else { Discipline::Fifo };
        // A store that cannot even be opened is a configuration error
        // (bad path, permissions) and fails startup; I/O trouble *after*
        // this point only degrades to memory-only serving.
        let store = match &cfg.store_dir {
            Some(dir) => Some(Store::open(dir, cfg.store_max_bytes)?),
            None => None,
        };
        // The trace registry rehydrates *before* checkpoint re-admission
        // below: a checkpointed trace-replay job can only re-parse once
        // its trace is back in the replay registry.
        let traces = match &cfg.store_dir {
            Some(dir) => {
                let (traces, restored) = TraceRegistry::open(&dir.join("traces"))?;
                if restored > 0 {
                    eprintln!("hmm-serve: trace registry restored {restored} traces");
                }
                traces
            }
            None => TraceRegistry::memory(),
        };
        let shared = Arc::new(Shared {
            queue: JobQueue::with_discipline(cfg.queue_depth, discipline),
            registry: JobRegistry::new(cfg.job_retention),
            admit: Mutex::new(AdmitState {
                cache: LruCache::new(cfg.cache_entries),
                inflight: FxHashMap::default(),
            }),
            metrics: ServerMetrics::default(),
            draining: AtomicBool::new(false),
            local_addr: addr,
            live_acceptors: AtomicUsize::new(cfg.conn_threads.max(1)),
            next_job_id: AtomicU64::new(1),
            store,
            traces,
            sweeps: SweepRegistry::new(),
            runners: Mutex::new(Vec::new()),
            cfg,
        });

        // Warm up from disk before any thread serves: finished results
        // go back into the cache, and every resumable checkpoint is
        // re-admitted so the (not yet started) workers pick the jobs up
        // from where the previous process was killed.
        if let Some(store) = &shared.store {
            let restored = {
                let mut admit = shared.admit.lock().unwrap();
                store.rehydrate(&mut admit.cache, &shared.metrics)
            };
            let mut readmitted = 0usize;
            for key in store.checkpoint_keys() {
                if shared.admit.lock().unwrap().cache.get(key).is_some() {
                    // The result made it to disk before the crash; the
                    // checkpoint is moot.
                    store.remove_checkpoint(key);
                    continue;
                }
                let Some((canonical, _)) = store.read_checkpoint(key, &shared.metrics) else {
                    continue;
                };
                match parse_body(&canonical, &shared.cfg.limits) {
                    Ok(sim) if sim.key == key => {
                        if matches!(shared.admit(&sim), Admitted::Pending(_)) {
                            readmitted += 1;
                        }
                        // A refused re-admission (full queue) leaves the
                        // checkpoint on the shelf for the next restart.
                    }
                    // The embedded config no longer parses or hashes to
                    // its key: not resumable by this build.
                    _ => store.remove_checkpoint(key),
                }
            }
            if restored > 0 || readmitted > 0 {
                eprintln!(
                    "hmm-serve: store restored {restored} cached results, \
                     re-admitted {readmitted} checkpointed jobs"
                );
            }
        }

        let workers = (0..shared.cfg.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("hmm-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker thread")
            })
            .collect();
        let acceptors = (0..shared.cfg.conn_threads.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                let listener = listener.try_clone().expect("clone listener");
                thread::Builder::new()
                    .name(format!("hmm-serve-conn-{i}"))
                    .spawn(move || accept_loop(&shared, &listener))
                    .expect("spawn handler thread")
            })
            .collect();

        Ok(Server { shared, addr, acceptors, workers })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// True once a drain has been requested (by [`Server::shutdown`] or
    /// `POST /admin/shutdown`).
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }

    /// Current `/metrics` document, for out-of-band inspection.
    pub fn metrics_doc(&self) -> String {
        self.shared.metrics_doc()
    }

    /// Graceful drain: stop accepting, finish every queued job, join all
    /// threads. Returns the final metrics document.
    pub fn shutdown(self) -> String {
        self.shared.start_drain();
        for w in self.workers {
            let _ = w.join();
        }
        for a in self.acceptors {
            let _ = a.join();
        }
        // Sweep runners observe the drain (admission refuses, the
        // draining flag stops peer dispatch) and conclude every cell, so
        // these joins terminate.
        let runners = std::mem::take(&mut *self.shared.runners.lock().unwrap());
        for r in runners {
            let _ = r.join();
        }
        self.shared.metrics_doc()
    }
}

fn accept_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    loop {
        if shared.draining.load(Ordering::SeqCst) {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                // A drain waker's connection closes without sending a
                // request; `read_request` sees EOF and the handler
                // returns, after which the loop re-checks the flag.
                shared.metrics.inc(&shared.metrics.conns_accepted);
                handle_connection(shared, stream);
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            // Accept errors (EMFILE, aborted handshakes) are transient;
            // back off briefly instead of killing the handler thread.
            Err(_) => thread::sleep(Duration::from_millis(10)),
        }
    }
    shared.live_acceptors.fetch_sub(1, Ordering::SeqCst);
}

fn handle_connection(shared: &Arc<Shared>, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(shared.cfg.io_timeout));
    let _ = stream.set_write_timeout(Some(shared.cfg.io_timeout));
    // The body limit is per route: trace uploads are binary and big, so
    // only `POST /v1/traces` gets the raised budget; everything else
    // keeps the tight JSON limit (and its `413`).
    let req = match read_request_with(&mut stream, |head| {
        if head.method == "POST" && head.path == "/v1/traces" {
            shared.cfg.max_trace_bytes
        } else {
            shared.cfg.max_body_bytes
        }
    }) {
        Ok(req) => req,
        Err(ReadError::Eof) | Err(ReadError::Io(_)) => return,
        Err(ReadError::Bad(status, msg)) => {
            shared.metrics.inc(&shared.metrics.bad_requests);
            let _ = write_response(&mut stream, &Response::json(status, error_body(&msg)));
            // Lingering close: a 413 answers before the client finished
            // sending its body. Closing with unread bytes in the receive
            // buffer sends RST, which destroys the response in flight —
            // drain briefly so a plain blocking client actually sees it.
            if status == 413 {
                let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
                let mut scratch = [0u8; 16 * 1024];
                for _ in 0..4096 {
                    match stream.read(&mut scratch) {
                        Ok(0) | Err(_) => break,
                        Ok(_) => {}
                    }
                }
            }
            return;
        }
    };
    shared.metrics.inc(&shared.metrics.requests);
    // The event stream takes the socket over (chunked transfer until
    // the job completes); every other route answers one framed body.
    if req.method == "GET" && req.path.starts_with("/v1/jobs/") && req.path.ends_with("/events") {
        stream_events(shared, &mut stream, &req.path);
        return;
    }
    let response = dispatch(shared, &req);
    let _ = write_response(&mut stream, &response);
}

/// Parse the body of a JSON route, or answer 400 on non-UTF-8 bytes.
macro_rules! utf8_body {
    ($shared:expr, $req:expr) => {
        match $req.body_str() {
            Ok(s) => s,
            Err(msg) => return bad($shared, 400, &msg),
        }
    };
}

fn dispatch(shared: &Arc<Shared>, req: &Request) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => Response::json(
            200,
            JsonObject::new()
                .bool("ok", true)
                .bool("draining", shared.draining.load(Ordering::SeqCst))
                .finish(),
        ),
        ("GET", "/metrics") => Response::json(200, shared.metrics_doc()),
        ("POST", "/v1/simulate") => simulate_sync(shared, req),
        ("POST", "/v1/jobs") => submit_job(shared, req),
        ("GET", path) if path.starts_with("/v1/jobs/") => job_get(shared, path),
        ("DELETE", path) if path.starts_with("/v1/jobs/") => job_cancel(shared, path),
        ("POST", "/v1/sweeps") => sweeps::submit(shared, utf8_body!(shared, req)),
        ("GET", path) if path.starts_with("/v1/sweeps/") => sweeps::get(shared, path),
        ("POST", "/v1/traces") => trace_upload(shared, req),
        ("GET", "/v1/traces") => trace_list(shared),
        ("GET", path) if path.starts_with("/v1/traces/") => trace_get(shared, path),
        ("DELETE", path) if path.starts_with("/v1/traces/") => trace_delete(shared, path),
        ("POST", "/admin/shutdown") => {
            shared.start_drain();
            Response::json(200, JsonObject::new().bool("draining", true).finish())
        }
        (
            _,
            "/healthz" | "/metrics" | "/v1/simulate" | "/v1/jobs" | "/v1/sweeps" | "/v1/traces"
            | "/admin/shutdown",
        ) => bad(shared, 405, &format!("method {} not allowed here", req.method)),
        _ => bad(shared, 404, &format!("no such endpoint '{}'", req.path)),
    }
}

/// `POST /v1/traces`: validate the raw HMT1 body, register it, answer
/// its summary. Content-addressing makes the route idempotent.
fn trace_upload(shared: &Shared, req: &Request) -> Response {
    if req.body.is_empty() {
        return bad(shared, 400, "trace upload body is empty");
    }
    match shared.traces.put(&req.body) {
        Ok(summary) => {
            shared.metrics.inc(&shared.metrics.traces_uploaded);
            Response::json(200, trace_summary_json(&summary))
        }
        Err(msg) => bad(shared, 400, &format!("invalid trace: {msg}")),
    }
}

fn trace_list(shared: &Shared) -> Response {
    let mut arr = hmm_telemetry::JsonArray::new();
    for s in shared.traces.list() {
        arr = arr.raw(&trace_summary_json(&s));
    }
    Response::json(200, JsonObject::new().raw("traces", &arr.finish()).finish())
}

fn trace_id_from(shared: &Shared, path: &str) -> Result<u64, Response> {
    let id = path.strip_prefix("/v1/traces/").unwrap_or_default();
    replay::parse_trace_id(id)
        .ok_or_else(|| bad(shared, 404, &format!("malformed trace id '{id}' (want 16 hex digits)")))
}

fn trace_get(shared: &Shared, path: &str) -> Response {
    let hash = match trace_id_from(shared, path) {
        Ok(hash) => hash,
        Err(resp) => return resp,
    };
    match shared.traces.get(hash) {
        Some(s) => Response::json(200, trace_summary_json(&s)),
        None => bad(shared, 404, &format!("unknown trace '{hash:016x}'")),
    }
}

fn trace_delete(shared: &Shared, path: &str) -> Response {
    let hash = match trace_id_from(shared, path) {
        Ok(hash) => hash,
        Err(resp) => return resp,
    };
    if shared.traces.delete(hash) {
        Response::json(
            200,
            JsonObject::new().str("id", &format!("{hash:016x}")).bool("deleted", true).finish(),
        )
    } else {
        bad(shared, 404, &format!("unknown trace '{hash:016x}'"))
    }
}

fn job_events_id(path: &str) -> Option<u64> {
    path.strip_prefix("/v1/jobs/")?.strip_suffix("/events")?.parse().ok()
}

/// `GET /v1/jobs/<id>/events`: stream the job's epoch frames as chunked
/// JSONL until the job completes. Each subscriber holds its own cursor;
/// one that lags past the hub's retention gets an explicit
/// `{"dropped":N}` frame. The terminating zero chunk is written exactly
/// when the job turns terminal.
fn stream_events(shared: &Arc<Shared>, stream: &mut TcpStream, path: &str) {
    let Some(id) = job_events_id(path) else {
        let resp = bad(shared, 404, &format!("malformed job id in '{path}'"));
        let _ = write_response(stream, &resp);
        return;
    };
    let Some(job) = shared.registry.get(id) else {
        let resp = bad(shared, 404, &format!("no such job {id} (expired or never existed)"));
        let _ = write_response(stream, &resp);
        return;
    };
    shared.metrics.inc(&shared.metrics.event_subscribers);
    if write_chunked_head(stream, 200).is_err() {
        return;
    }
    // Nothing more is expected *from* the client; a short read timeout
    // turns the liveness probe below into a non-blocking peek.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(1)));
    let mut cursor = 0u64;
    loop {
        match job.hub.next(&mut cursor, Duration::from_millis(250)) {
            Frame::Data(line) => {
                let mut msg = line.into_bytes();
                msg.push(b'\n');
                if write_chunk(stream, &msg).is_err() {
                    return;
                }
            }
            Frame::Dropped(n) => {
                shared.metrics.event_frames_dropped.fetch_add(n, Ordering::Relaxed);
                let mut msg = JsonObject::new().u64("dropped", n).finish().into_bytes();
                msg.push(b'\n');
                if write_chunk(stream, &msg).is_err() {
                    return;
                }
            }
            Frame::Eof => {
                let _ = finish_chunked(stream);
                return;
            }
            Frame::Pending => {
                // A disconnected subscriber must not park this handler
                // for the job's whole runtime: a closed peer peeks as
                // `Ok(0)`, a live quiet one as a timeout.
                let mut probe = [0u8; 1];
                match stream.peek(&mut probe) {
                    Ok(0) => return,
                    Ok(_) => {}
                    Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
                    Err(_) => return,
                }
            }
        }
    }
}

fn bad(shared: &Shared, status: u16, msg: &str) -> Response {
    shared.metrics.inc(&shared.metrics.bad_requests);
    Response::json(status, error_body(msg))
}

/// `POST /v1/simulate`: admit, wait for the result, answer in-line.
fn simulate_sync(shared: &Shared, req: &Request) -> Response {
    let sim = match parse_body(utf8_body!(shared, req), &shared.cfg.limits) {
        Ok(sim) => sim,
        Err(msg) => return bad(shared, 400, &msg),
    };
    let started = Instant::now();
    match shared.admit(&sim) {
        Admitted::Cached(body) => {
            shared.metrics.record_latency(started.elapsed());
            Response::json(200, body.as_ref().clone()).with_header("x-cache", "hit".into())
        }
        Admitted::Refused(status, msg) => Response::json(status, error_body(&msg)),
        Admitted::Pending(job) => {
            let wait = sim
                .timeout_ms
                .map(Duration::from_millis)
                .unwrap_or(shared.cfg.sync_timeout)
                .min(shared.cfg.sync_timeout);
            match job.wait_done(wait) {
                Some(JobState::Done(body)) => {
                    shared.metrics.record_latency(started.elapsed());
                    Response::json(200, body.as_ref().clone())
                        .with_header("x-cache", "miss".into())
                        .with_header("x-job-id", job.id.to_string())
                }
                Some(JobState::Failed(msg)) => Response::json(500, error_body(&msg)),
                Some(_) => {
                    Response::json(409, error_body(&format!("job {} was cancelled", job.id)))
                }
                None => {
                    shared.metrics.inc(&shared.metrics.sync_timeouts);
                    Response::json(
                        504,
                        JsonObject::new()
                            .str("error", "deadline exceeded; poll the job instead")
                            .u64("id", job.id)
                            .finish(),
                    )
                }
            }
        }
    }
}

/// `POST /v1/jobs`: admit and answer `202` with the job id immediately.
/// A cache hit manufactures an already-done job so the client's polling
/// flow is uniform.
fn submit_job(shared: &Shared, req: &Request) -> Response {
    let sim = match parse_body(utf8_body!(shared, req), &shared.cfg.limits) {
        Ok(sim) => sim,
        Err(msg) => return bad(shared, 400, &msg),
    };
    match shared.admit(&sim) {
        Admitted::Cached(body) => {
            let id = shared.next_job_id.fetch_add(1, Ordering::Relaxed);
            let job = Job::new(id, sim.key, sim.canonical, sim.cfg);
            job.claim();
            job.complete(body);
            shared.registry.insert(Arc::clone(&job));
            shared.registry.retire(id);
            Response::json(202, JsonObject::new().u64("id", id).str("status", "done").finish())
                .with_header("x-cache", "hit".into())
        }
        Admitted::Pending(job) => Response::json(
            202,
            JsonObject::new().u64("id", job.id).str("status", job.state().label()).finish(),
        )
        .with_header("x-cache", "miss".into()),
        Admitted::Refused(status, msg) => Response::json(status, error_body(&msg)),
    }
}

fn job_id_from(path: &str) -> Option<u64> {
    path.strip_prefix("/v1/jobs/")?.parse().ok()
}

fn job_get(shared: &Shared, path: &str) -> Response {
    let Some(id) = job_id_from(path) else {
        return bad(shared, 404, &format!("malformed job id in '{path}'"));
    };
    match shared.registry.get(id) {
        Some(job) => Response::json(200, job_status(id, &job.state())),
        None => bad(shared, 404, &format!("no such job {id} (expired or never existed)")),
    }
}

fn job_cancel(shared: &Shared, path: &str) -> Response {
    let Some(id) = job_id_from(path) else {
        return bad(shared, 404, &format!("malformed job id in '{path}'"));
    };
    let Some(job) = shared.registry.get(id) else {
        return bad(shared, 404, &format!("no such job {id} (expired or never existed)"));
    };
    if job.cancel() {
        // The worker that eventually pops this job sees the cancelled
        // state and skips it; clean up the admission side now so an
        // identical request starts fresh instead of joining a corpse.
        shared.leave_inflight(&job);
        shared.registry.retire(id);
        shared.metrics.inc(&shared.metrics.cancelled);
        Response::json(200, job_status(id, &JobState::Cancelled))
    } else {
        Response::json(
            409,
            error_body(&format!("job {id} is {} and cannot be cancelled", job.state().label())),
        )
    }
}

/// One worker thread: pop, claim, simulate, publish, until the queue is
/// shut down and drained.
fn worker_loop(shared: &Shared) {
    while let Some(job) = shared.queue.pop() {
        if !job.claim() {
            // Cancelled while queued; the cancel path already retired it.
            continue;
        }
        shared.metrics.in_flight.fetch_add(1, Ordering::Relaxed);
        let outcome = catch_unwind(AssertUnwindSafe(|| run_job(shared, &job)));
        match outcome {
            Ok(result) => {
                shared.metrics.inc(&shared.metrics.sim_runs);
                if job.cfg.trace.is_some() {
                    shared.metrics.inc(&shared.metrics.trace_sim_runs);
                }
                shared.metrics.record_run(&result);
                let body = Arc::new(render_run(&job.canonical, &result));
                if let Some(store) = &shared.store {
                    // Write-through before publication: a crash after
                    // this line still answers this request from disk on
                    // restart. (A crash before it re-runs the job from
                    // its last checkpoint — both end bit-identical.)
                    store.put(job.key, body.as_str(), &shared.metrics);
                    store.remove_checkpoint(job.key);
                }
                {
                    // Publish atomically: once the key leaves the
                    // in-flight map, the cache already has the body.
                    let mut admit = shared.admit.lock().unwrap();
                    admit.cache.insert(job.key, Arc::clone(&body));
                    if admit.inflight.get(&job.key).is_some_and(|j| j.id == job.id) {
                        admit.inflight.remove(&job.key);
                    }
                }
                job.complete(body);
            }
            Err(_) => {
                shared.metrics.inc(&shared.metrics.sim_failures);
                shared.leave_inflight(&job);
                job.fail("simulation panicked; see server log".into());
            }
        }
        shared.metrics.in_flight.fetch_sub(1, Ordering::Relaxed);
        shared.registry.retire(job.id);
    }
}

/// Run one job, checkpointing and resuming through the durable store
/// when one is configured. `run_resumable` is proven bit-identical to
/// `run` (the `snapshot_resume` property tests), so which path a job
/// takes never changes its answer.
fn run_job(shared: &Shared, job: &Job) -> RunResult {
    // The frame sink is a pure observer feeding the job's event stream:
    // results, counters, and snapshot bytes are identical with or
    // without a subscriber, so cached and streamed runs agree.
    let frames = EpochFrameSink::new(Arc::clone(&job.hub));
    let every = shared.cfg.snapshot_every;
    let store = match &shared.store {
        Some(store) if every > 0 => store,
        _ => return run_with_sink(&job.cfg, frames),
    };
    if let Some((_, snap)) = store.read_checkpoint(job.key, &shared.metrics) {
        let mut sink = |_submitted: u64, bytes: Vec<u8>| {
            store.write_checkpoint(job.key, &job.canonical, &bytes, &shared.metrics);
        };
        match run_resumable_with_sink(
            &job.cfg,
            SnapshotCtl { resume_from: Some(&snap), every, sink: Some(&mut sink) },
            frames.clone(),
        ) {
            Ok(result) => {
                shared.metrics.inc(&shared.metrics.resumed_jobs);
                return result;
            }
            Err(e) => {
                // The snapshot container refused the resume (foreign
                // engine stamp, config mismatch, failed checksum).
                // Restarting from scratch gives the same final answer.
                eprintln!(
                    "hmm-serve: checkpoint for job {} not resumable ({e}); restarting fresh",
                    job.id
                );
                store.remove_checkpoint(job.key);
            }
        }
    }
    let mut sink = |_submitted: u64, bytes: Vec<u8>| {
        store.write_checkpoint(job.key, &job.canonical, &bytes, &shared.metrics);
    };
    run_resumable_with_sink(
        &job.cfg,
        SnapshotCtl { resume_from: None, every, sink: Some(&mut sink) },
        frames,
    )
    .expect("a fresh capture run has no resume input and cannot fail")
}
