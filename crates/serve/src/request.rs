//! The JSON wire format of `POST /v1/simulate` and `POST /v1/jobs`, and
//! the canonical form behind the result cache.
//!
//! A request body selects a simulation the same way the `hmm-sim` CLI
//! does — same field names, same value spellings, same defaults:
//!
//! ```json
//! {"workload": "pgbench", "mode": "live", "page": "64K",
//!  "interval": 1000, "accesses": 60000, "warmup": 10000,
//!  "scale": 64, "seed": 42, "on_package": "512M",
//!  "policy": "fcfs", "faults": "stress", "fault_seed": 7,
//!  "timeout_ms": 5000}
//! ```
//!
//! Only `workload` and `mode` are required. Unknown fields are rejected
//! with a structured `400` rather than ignored — a typo like
//! `"intreval"` must not silently simulate something else.
//!
//! **Canonicalisation.** The cache key is `fxhash64` over the canonical
//! JSON rendering of the *resolved* [`RunConfig`]
//! ([`hmm_simulator::wire::canonical_json`]) — every default filled in,
//! sizes reduced to shifts and byte counts, workload and mode reduced to
//! their canonical tokens, fault specs reduced to a structural rendering
//! of the parsed [`FaultPlan`]. Requests that differ in whitespace,
//! field order, or alias spelling (`"jbb"` vs `"specjbb"`) therefore
//! share a cache entry, while any field that changes simulated behaviour
//! changes the key. `timeout_ms` is deliberately *excluded*: it shapes
//! how long the client waits, not what is simulated.
//!
//! The parser also accepts the canonical spelling itself — `page_shift`
//! / `sub_block_shift` instead of sizes, `total`, `os_assisted`, and a
//! structural `faults` object — so a canonical rendering is a valid
//! request body. That closes the loop the sweep coordinator relies on:
//! it ships a cell's canonical text verbatim as a peer's
//! `POST /v1/simulate` body, and the peer re-derives the same canonical
//! form, hence the same cache key, on its side of the wire.

use hmm_core::{validate_scheme, MigrationPolicy, Mode, SchemeId};
use hmm_fault::FaultPlan;
use hmm_sim_base::config::{parse_size, SimScale};
use hmm_simulator::driver::{RunConfig, TraceRef};
use hmm_simulator::wire;
use hmm_telemetry::jsonin::{self, Json};
use hmm_workloads::{replay, WorkloadId};

// The canonical rendering and its hash live in `hmm_simulator::wire` so
// the sweep subsystem and the coordinator share one definition; they are
// re-exported here because they *are* this module's cache-key contract.
pub use hmm_simulator::wire::{canonical_json, fxhash64};

/// Admission limits enforced while parsing, before anything is queued.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Largest demand-access count one request may ask for.
    pub max_accesses: u64,
}

impl Default for Limits {
    fn default() -> Self {
        Limits { max_accesses: 2_000_000 }
    }
}

/// One parsed, validated simulation request.
#[derive(Debug, Clone)]
pub struct SimRequest {
    /// The fully resolved run configuration.
    pub cfg: RunConfig,
    /// Canonical JSON rendering of `cfg` (echoed in responses; its hash
    /// is the cache key).
    pub canonical: String,
    /// `fxhash64` of `canonical`.
    pub key: u64,
    /// Per-request override of the server's synchronous wait deadline.
    pub timeout_ms: Option<u64>,
}

fn field_u64(v: &Json, name: &str) -> Result<u64, String> {
    let n = v.as_f64().ok_or_else(|| format!("field '{name}' must be a number"))?;
    if n.fract() != 0.0 || !(0.0..=(u64::MAX as f64)).contains(&n) {
        return Err(format!("field '{name}' must be a non-negative integer, got {n}"));
    }
    Ok(n as u64)
}

/// Sizes may be spelled as JSON numbers (bytes) or strings (`"64K"`).
fn field_size(v: &Json, name: &str) -> Result<u64, String> {
    match v {
        Json::Str(s) => parse_size(s).ok_or_else(|| format!("invalid size for '{name}': '{s}'")),
        _ => field_u64(v, name),
    }
}

/// A log2 field (the canonical spelling of a size): must fit a shift.
fn field_shift(v: &Json, name: &str) -> Result<u32, String> {
    let n = field_u64(v, name)?;
    if n >= 64 {
        return Err(format!("field '{name}' must be below 64, got {n}"));
    }
    Ok(n as u32)
}

/// Resolve an object-valued `workload` — `{"trace": "<id>", ...}` — to
/// a [`TraceRef`] against the process-global replay registry.
///
/// The bare form `{"trace": "<id>"}` is what clients write; the
/// canonical rendering additionally carries the summary fields
/// (`records`, `ticks`, `max_line`), and when those are present they
/// must *agree* with the registered trace — an inline summary is an
/// integrity claim, never an override, so a forged summary cannot mint
/// a cache key for a simulation that was not run.
fn trace_from_request(v: &Json) -> Result<TraceRef, String> {
    let Json::Obj(fields) = v else {
        return Err("field 'workload' must be a string or a trace object".into());
    };
    for (name, _) in fields {
        if !["trace", "records", "ticks", "max_line"].contains(&name.as_str()) {
            return Err(format!("unknown trace field '{name}'"));
        }
    }
    let id = v
        .get("trace")
        .ok_or("trace object requires field 'trace'")?
        .as_str()
        .ok_or("field 'trace' must be a string")?;
    let hash = replay::parse_trace_id(id)
        .ok_or_else(|| format!("invalid trace id '{id}' (want 16 hex digits)"))?;
    let Some(summary) = replay::summary(hash) else {
        return Err(format!("unknown trace '{id}' (upload it first via POST /v1/traces)"));
    };
    let t = TraceRef::from_summary(&summary);
    for (name, want) in [("records", t.records), ("ticks", t.last_tick), ("max_line", t.max_line)] {
        if let Some(val) = v.get(name) {
            let got = field_u64(val, name)?;
            if got != want {
                return Err(format!(
                    "trace '{name}' of {got} disagrees with the registered trace ({want})"
                ));
            }
        }
    }
    Ok(t)
}

/// Parse one request body into a resolved, validated [`SimRequest`].
pub fn parse_body(body: &str, limits: &Limits) -> Result<SimRequest, String> {
    let doc = jsonin::parse(body).map_err(|e| format!("invalid JSON: {e}"))?;
    let Json::Obj(fields) = &doc else {
        return Err("request body must be a JSON object".into());
    };

    let mut workload: Option<WorkloadId> = None;
    let mut trace: Option<TraceRef> = None;
    let mut mode: Option<Mode> = None;
    let mut page = 64u64 << 10;
    let mut sub_block: Option<u64> = None;
    let mut interval = 1_000u64;
    let mut accesses = 400_000u64;
    let mut warmup: Option<u64> = None;
    let mut scale = 8u64;
    let mut seed = 42u64;
    let mut on_package = 512u64 << 20;
    let mut total: Option<u64> = None;
    let mut os_assisted: Option<bool> = None;
    let mut policy = hmm_dram::SchedPolicy::FrFcfs;
    let mut scheme = SchemeId::Hetero;
    let mut migration = MigrationPolicy::HotCold;
    let mut faults: Option<FaultPlan> = None;
    let mut fault_seed: Option<u64> = None;
    let mut timeout_ms: Option<u64> = None;

    for (name, value) in fields {
        let as_str = || {
            value.as_str().ok_or_else(|| format!("field '{name}' must be a string")).map(str::trim)
        };
        match name.as_str() {
            "workload" => match value {
                Json::Obj(_) => trace = Some(trace_from_request(value)?),
                _ => workload = Some(as_str()?.parse()?),
            },
            "mode" => mode = Some(as_str()?.parse()?),
            "page" => page = field_size(value, name)?,
            "page_shift" => page = 1u64 << field_shift(value, name)?,
            "sub_block" => sub_block = Some(field_size(value, name)?),
            "sub_block_shift" => sub_block = Some(1u64 << field_shift(value, name)?),
            "interval" => interval = field_u64(value, name)?,
            "accesses" => accesses = field_u64(value, name)?,
            "warmup" => warmup = Some(field_u64(value, name)?),
            "scale" => scale = field_u64(value, name)?.max(1),
            "seed" => seed = field_u64(value, name)?,
            "on_package" => on_package = field_size(value, name)?,
            "total" => total = Some(field_size(value, name)?),
            "os_assisted" => {
                os_assisted = Some(
                    value.as_bool().ok_or_else(|| format!("field '{name}' must be a boolean"))?,
                )
            }
            "policy" => policy = wire::policy_from_token(as_str()?)?,
            "scheme" => scheme = as_str()?.parse()?,
            "migration" => migration = as_str()?.parse()?,
            "faults" => {
                faults = Some(match value {
                    // The canonical structural form...
                    Json::Obj(_) => wire::fault_plan_from_json(value)?,
                    // ...or the CLI's compact spec string.
                    _ => FaultPlan::parse(as_str()?).map_err(|e| format!("faults: {e}"))?,
                })
            }
            "fault_seed" => fault_seed = Some(field_u64(value, name)?),
            "timeout_ms" => timeout_ms = Some(field_u64(value, name)?),
            other => return Err(format!("unknown field '{other}'")),
        }
    }

    // A trace replay fills the workload slot; the synthetic id becomes
    // an inert placeholder (the canonical form renders neither it nor
    // the seed, so they cannot split cache keys).
    let workload = match &trace {
        Some(_) => WorkloadId::Pgbench,
        None => workload.ok_or("field 'workload' is required")?,
    };
    let mode = mode.ok_or("field 'mode' is required")?;
    if !page.is_power_of_two() {
        return Err(format!("'page' must be a power of two, got {page}"));
    }
    if let Some(sb) = sub_block {
        if !sb.is_power_of_two() {
            return Err(format!("'sub_block' must be a power of two, got {sb}"));
        }
    }
    if interval == 0 {
        return Err("'interval' must be at least 1".into());
    }
    if accesses == 0 {
        return Err("'accesses' must be at least 1".into());
    }
    if accesses > limits.max_accesses {
        return Err(format!(
            "'accesses' of {accesses} exceeds this server's limit of {}",
            limits.max_accesses
        ));
    }
    let warmup = warmup.unwrap_or(accesses / 5);
    if warmup >= accesses {
        return Err(format!("'warmup' ({warmup}) must be smaller than 'accesses' ({accesses})"));
    }
    match (&mut faults, fault_seed) {
        (Some(plan), Some(s)) => plan.seed = s,
        (None, Some(_)) => return Err("'fault_seed' requires 'faults'".into()),
        _ => {}
    }
    validate_scheme(scheme, mode, migration)?;

    let base = RunConfig::paper(workload, mode);
    let cfg = RunConfig {
        workload,
        mode,
        page_shift: page.trailing_zeros(),
        sub_block_shift: sub_block.map_or(base.sub_block_shift, |sb| sb.trailing_zeros()),
        swap_interval: interval,
        on_package_bytes: on_package,
        total_bytes: total.unwrap_or(base.total_bytes),
        scale: SimScale { divisor: scale },
        accesses,
        warmup,
        seed,
        os_assisted,
        policy,
        faults,
        scheme,
        migration,
        trace,
    };
    cfg.geometry().validate().map_err(|e| format!("invalid memory geometry: {e}"))?;

    let canonical = canonical_json(&cfg);
    Ok(SimRequest { key: fxhash64(canonical.as_bytes()), cfg, canonical, timeout_ms })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmm_core::MigrationDesign;

    const MINIMAL: &str = r#"{"workload":"pgbench","mode":"live"}"#;

    #[test]
    fn minimal_request_resolves_cli_defaults() {
        let r = parse_body(MINIMAL, &Limits::default()).unwrap();
        assert_eq!(r.cfg.workload, WorkloadId::Pgbench);
        assert_eq!(r.cfg.mode, Mode::Dynamic(MigrationDesign::LiveMigration));
        assert_eq!(r.cfg.page_shift, 16, "64K default page");
        assert_eq!(r.cfg.accesses, 400_000);
        assert_eq!(r.cfg.warmup, 80_000, "accesses/5 default");
        assert_eq!(r.cfg.scale.divisor, 8);
        assert_eq!(r.timeout_ms, None);
    }

    #[test]
    fn key_ignores_whitespace_field_order_and_aliases() {
        let a = parse_body(r#"{"workload":"specjbb","mode":"n-1","seed":7}"#, &Limits::default())
            .unwrap();
        let b = parse_body(
            "{ \"seed\": 7,\n  \"mode\": \"N1\",\n  \"workload\": \"jbb\" }",
            &Limits::default(),
        )
        .unwrap();
        assert_eq!(a.canonical, b.canonical);
        assert_eq!(a.key, b.key);
    }

    #[test]
    fn key_tracks_every_behavioural_field() {
        let base = parse_body(MINIMAL, &Limits::default()).unwrap();
        for variant in [
            r#"{"workload":"pgbench","mode":"n"}"#,
            r#"{"workload":"mg","mode":"live"}"#,
            r#"{"workload":"pgbench","mode":"live","seed":43}"#,
            r#"{"workload":"pgbench","mode":"live","page":"128K"}"#,
            r#"{"workload":"pgbench","mode":"live","interval":999}"#,
            r#"{"workload":"pgbench","mode":"live","accesses":400001}"#,
            r#"{"workload":"pgbench","mode":"live","warmup":1}"#,
            r#"{"workload":"pgbench","mode":"live","scale":64}"#,
            r#"{"workload":"pgbench","mode":"live","on_package":"256M"}"#,
            r#"{"workload":"pgbench","mode":"live","policy":"fcfs"}"#,
            r#"{"workload":"pgbench","mode":"live","faults":"flip=1e-4"}"#,
            r#"{"workload":"pgbench","mode":"live","sub_block":"8K"}"#,
            r#"{"workload":"pgbench","mode":"live","total":"8G"}"#,
            r#"{"workload":"pgbench","mode":"live","os_assisted":true}"#,
            r#"{"workload":"pgbench","mode":"off","scheme":"l4cache"}"#,
            r#"{"workload":"pgbench","mode":"live","scheme":"pcm"}"#,
            r#"{"workload":"pgbench","mode":"live","migration":"mlq"}"#,
        ] {
            let v = parse_body(variant, &Limits::default()).unwrap();
            assert_ne!(v.key, base.key, "{variant} must change the cache key");
        }
    }

    #[test]
    fn trace_requests_resolve_against_the_replay_registry() {
        use hmm_sim_base::config::SimScale;
        use std::sync::Arc;
        // Register a real trace; its id becomes addressable in requests.
        let recs = hmm_workloads::workload(WorkloadId::Pgbench, &SimScale { divisor: 256 })
            .records(0x7e57_0001, 300);
        let mut bytes = Vec::new();
        hmm_workloads::write_binary(&mut bytes, recs).unwrap();
        let data = replay::decode(&bytes).unwrap();
        let summary = data.summary;
        replay::register(Arc::new(data));
        let id = summary.id();

        let bare = format!(r#"{{"workload":{{"trace":"{id}"}},"mode":"live"}}"#);
        let r = parse_body(&bare, &Limits::default()).unwrap();
        assert_eq!(r.cfg.trace, Some(TraceRef::from_summary(&summary)));
        assert!(r.canonical.contains(&id), "{}", r.canonical);
        assert!(r.canonical.contains(r#""seed":0"#), "seed is inert under replay");

        // The canonical (summary-carrying) spelling maps to the same key,
        // and the seed — which only feeds the synthetic generator — is
        // inert. (`scale` stays live: it scales the geometry either way.)
        let full = format!(
            r#"{{"workload":{{"trace":"{id}","records":{},"ticks":{},"max_line":{}}},
                "mode":"live","seed":99}}"#,
            summary.records, summary.last_tick, summary.max_line
        );
        let f = parse_body(&full, &Limits::default()).unwrap();
        assert_eq!(f.key, r.key, "summary spelling and the seed must not change the key");

        // A forged summary is an integrity failure, not an override.
        let forged = format!(r#"{{"workload":{{"trace":"{id}","records":7}},"mode":"live"}}"#);
        let err = parse_body(&forged, &Limits::default()).unwrap_err();
        assert!(err.contains("disagrees"), "{err}");

        // Unknown ids, malformed ids, and junk fields are rejected.
        for (body, want) in [
            (
                r#"{"workload":{"trace":"00000000000000aa"},"mode":"live"}"#.to_string(),
                "unknown trace",
            ),
            (r#"{"workload":{"trace":"xyz"},"mode":"live"}"#.to_string(), "invalid trace id"),
            (
                format!(r#"{{"workload":{{"trace":"{id}","evil":1}},"mode":"live"}}"#),
                "unknown trace field",
            ),
            (r#"{"workload":{},"mode":"live"}"#.to_string(), "requires field 'trace'"),
        ] {
            let err = parse_body(&body, &Limits::default()).unwrap_err();
            assert!(err.contains(want), "{body} -> {err}");
        }
        replay::unregister(summary.hash);
    }

    #[test]
    fn timeout_is_excluded_from_the_key() {
        let a = parse_body(MINIMAL, &Limits::default()).unwrap();
        let b = parse_body(
            r#"{"workload":"pgbench","mode":"live","timeout_ms":5}"#,
            &Limits::default(),
        )
        .unwrap();
        assert_eq!(a.key, b.key);
        assert_eq!(b.timeout_ms, Some(5));
    }

    #[test]
    fn equivalent_fault_specs_share_a_key() {
        let a = parse_body(
            r#"{"workload":"pgbench","mode":"live","faults":"flip=1e-4,seed=9"}"#,
            &Limits::default(),
        )
        .unwrap();
        let b = parse_body(
            r#"{"workload":"pgbench","mode":"live","faults":"flip=0.0001","fault_seed":9}"#,
            &Limits::default(),
        )
        .unwrap();
        assert_eq!(a.key, b.key, "spec spelling must not leak into the key");
    }

    #[test]
    fn canonical_text_is_a_valid_request_body() {
        // The coordinator ships a cell's canonical rendering verbatim as
        // a peer's request body; the peer must resolve it to the same
        // canonical form and hence the same cache key.
        let body = r#"{"workload":"pgbench","mode":"live","page":"128K","sub_block":"8K",
                       "interval":1500,"accesses":50000,"warmup":5000,"scale":64,"seed":7,
                       "os_assisted":false,"faults":"flip=1e-4,drop=0.001","fault_seed":3}"#;
        let r = parse_body(body, &Limits::default()).unwrap();
        let echoed = parse_body(&r.canonical, &Limits::default()).unwrap();
        assert_eq!(echoed.canonical, r.canonical);
        assert_eq!(echoed.key, r.key);
        assert_eq!(echoed.cfg.faults, r.cfg.faults);
    }

    #[test]
    fn structural_and_spec_faults_share_a_key() {
        let spec = parse_body(
            r#"{"workload":"pgbench","mode":"live","faults":"flip=1e-4,seed=9"}"#,
            &Limits::default(),
        )
        .unwrap();
        // Extract the structural rendering from the canonical text and
        // feed it back as an object-valued `faults` field.
        let plan = spec.cfg.faults.unwrap();
        let body = format!(
            r#"{{"workload":"pgbench","mode":"live","faults":{}}}"#,
            hmm_simulator::wire::fault_plan_to_json(&plan)
        );
        let structural = parse_body(&body, &Limits::default()).unwrap();
        assert_eq!(structural.key, spec.key);
        assert_eq!(structural.cfg.faults, Some(plan));
    }

    #[test]
    fn rejects_malformed_bodies() {
        let cases = [
            ("", "invalid JSON"),
            ("[1,2]", "must be a JSON object"),
            (r#"{"mode":"live"}"#, "'workload' is required"),
            (r#"{"workload":"pgbench"}"#, "'mode' is required"),
            (r#"{"workload":"warehouse","mode":"live"}"#, "unknown workload"),
            (r#"{"workload":"pgbench","mode":"turbo"}"#, "unknown mode"),
            (r#"{"workload":"pgbench","mode":"live","intreval":5}"#, "unknown field"),
            (r#"{"workload":"pgbench","mode":"live","page":"3K"}"#, "power of two"),
            (r#"{"workload":"pgbench","mode":"live","page":"nope"}"#, "invalid size"),
            (r#"{"workload":"pgbench","mode":"live","accesses":0}"#, "at least 1"),
            (r#"{"workload":"pgbench","mode":"live","seed":1.5}"#, "non-negative integer"),
            (r#"{"workload":"pgbench","mode":"live","warmup":400000}"#, "must be smaller"),
            (r#"{"workload":"pgbench","mode":"live","fault_seed":1}"#, "requires 'faults'"),
            (r#"{"workload":"pgbench","mode":"live","faults":"bogus=1"}"#, "faults:"),
            (r#"{"workload":"pgbench","mode":"live","policy":"elevator"}"#, "unknown policy"),
            (r#"{"workload":"pgbench","mode":"live","scheme":"l5"}"#, "unknown scheme"),
            (r#"{"workload":"pgbench","mode":"live","migration":"fifo"}"#, "unknown migration"),
            (r#"{"workload":"pgbench","mode":"live","scheme":"l4cache"}"#, "only composes"),
            (
                r#"{"workload":"pgbench","mode":"off","scheme":"l4cache","migration":"mlq"}"#,
                "no effect under scheme 'l4cache'",
            ),
            (r#"{"workload":7,"mode":"live"}"#, "must be a string"),
        ];
        for (body, want) in cases {
            let err = parse_body(body, &Limits::default()).unwrap_err();
            assert!(err.contains(want), "{body}: got '{err}', wanted '{want}'");
        }
    }

    #[test]
    fn enforces_the_accesses_limit() {
        let err = parse_body(
            r#"{"workload":"pgbench","mode":"live","accesses":100000}"#,
            &Limits { max_accesses: 50_000 },
        )
        .unwrap_err();
        assert!(err.contains("exceeds this server's limit"), "{err}");
    }
}
