//! The durable result store: a content-addressed on-disk mirror of the
//! in-memory result cache, plus the checkpoint shelf for in-flight jobs.
//!
//! Layout under `--store-dir`:
//!
//! ```text
//! <dir>/entries/<key>       finished result bodies (one file per key)
//! <dir>/checkpoints/<key>   engine snapshots of in-flight jobs
//! <dir>/quarantine/<key>.N  torn/corrupt files moved aside, never served
//! <dir>/tmp/                staging for atomic writes
//! ```
//!
//! Every write goes temp-file-then-rename, so a crash at any instant
//! leaves either the old file, the new file, or a stray temp — never a
//! half-written entry at a live path. Every read re-verifies the header:
//! key, length, checksum, and the engine-version stamp
//! ([`hmm_simulator::snapshot::ENGINE_VERSION`]). A checksum or framing
//! failure quarantines the file (renamed, kept for forensics, never
//! served); an engine-stamp mismatch deletes it silently — the entry is
//! not corrupt, just stale, and serving it would pin figures from an
//! older simulator behaviour.
//!
//! The store is bounded by `--store-max-bytes` with least-recently-used
//! eviction over its own recency ledger (independent of the in-memory
//! cache's capacity). I/O failures degrade, never break, serving: the
//! first failure logs one line, every failure bumps `store_io_errors`,
//! and the server continues memory-only.

use crate::cache::LruCache;
use crate::metrics::ServerMetrics;
use hmm_sim_base::snap::snap_hash;
use hmm_sim_base::FxHashMap;
use hmm_simulator::snapshot::ENGINE_VERSION;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

const ENTRY_MAGIC: &str = "hmm-store-v1";
const CKPT_MAGIC: &str = "hmm-ckpt-v1";

/// Recency ledger for the on-disk entries.
#[derive(Debug, Default)]
struct Ledger {
    /// key → (body bytes on disk, last-use stamp).
    entries: FxHashMap<u64, (u64, u64)>,
    total_bytes: u64,
    clock: u64,
}

impl Ledger {
    fn touch(&mut self, key: u64) {
        self.clock += 1;
        let clock = self.clock;
        if let Some(e) = self.entries.get_mut(&key) {
            e.1 = clock;
        }
    }

    fn insert(&mut self, key: u64, bytes: u64) {
        self.clock += 1;
        if let Some(old) = self.entries.insert(key, (bytes, self.clock)) {
            self.total_bytes -= old.0;
        }
        self.total_bytes += bytes;
    }

    fn remove(&mut self, key: u64) {
        if let Some((bytes, _)) = self.entries.remove(&key) {
            self.total_bytes -= bytes;
        }
    }

    /// The least-recently-used key. O(n), but eviction is rare and the
    /// ledger is small; an intrusive list would buy nothing measurable.
    fn lru(&self) -> Option<u64> {
        self.entries.iter().min_by_key(|(_, (_, used))| *used).map(|(&k, _)| k)
    }
}

/// The content-addressed durable store.
#[derive(Debug)]
pub struct Store {
    entries: PathBuf,
    checkpoints: PathBuf,
    quarantine: PathBuf,
    tmp: PathBuf,
    /// Byte budget for `entries/`; 0 = unbounded.
    max_bytes: u64,
    ledger: Mutex<Ledger>,
    /// Monotone name disambiguator for temp and quarantine files.
    seq: AtomicU64,
    /// First-failure flag: I/O trouble logs once, counts every time.
    io_error_logged: AtomicBool,
}

fn entry_name(key: u64) -> String {
    format!("{key:016x}")
}

impl Store {
    /// Open (creating if needed) a store rooted at `dir`.
    pub fn open(dir: &Path, max_bytes: u64) -> std::io::Result<Store> {
        let store = Store {
            entries: dir.join("entries"),
            checkpoints: dir.join("checkpoints"),
            quarantine: dir.join("quarantine"),
            tmp: dir.join("tmp"),
            max_bytes,
            ledger: Mutex::new(Ledger::default()),
            seq: AtomicU64::new(0),
            io_error_logged: AtomicBool::new(false),
        };
        for d in [&store.entries, &store.checkpoints, &store.quarantine, &store.tmp] {
            fs::create_dir_all(d)?;
        }
        // Stray temp files are crash leftovers; no live path refers to
        // them.
        if let Ok(rd) = fs::read_dir(&store.tmp) {
            for f in rd.flatten() {
                let _ = fs::remove_file(f.path());
            }
        }
        Ok(store)
    }

    /// Bytes of result bodies currently on disk.
    pub fn bytes(&self) -> u64 {
        self.ledger.lock().unwrap().total_bytes
    }

    /// Result entries currently on disk.
    pub fn entries(&self) -> usize {
        self.ledger.lock().unwrap().entries.len()
    }

    fn io_error(&self, what: &str, e: &std::io::Error, metrics: &ServerMetrics) {
        metrics.inc(&metrics.store_io_errors);
        if !self.io_error_logged.swap(true, Ordering::SeqCst) {
            eprintln!(
                "hmm-serve: store {what} failed ({e}); continuing memory-only \
                 (further store I/O errors are counted, not logged)"
            );
        }
    }

    /// Write `bytes` to `path` via a temp file and an atomic rename.
    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> std::io::Result<()> {
        let staged = self.tmp.join(format!(
            "{}.{}",
            path.file_name().and_then(|n| n.to_str()).unwrap_or("entry"),
            self.seq.fetch_add(1, Ordering::Relaxed)
        ));
        let mut f = fs::File::create(&staged)?;
        f.write_all(bytes)?;
        drop(f);
        match fs::rename(&staged, path) {
            Ok(()) => Ok(()),
            Err(e) => {
                let _ = fs::remove_file(&staged);
                Err(e)
            }
        }
    }

    /// Move a bad file into `quarantine/` (never served again, kept for
    /// inspection) and count it.
    fn quarantine_file(&self, path: &Path, why: &str, metrics: &ServerMetrics) {
        metrics.inc(&metrics.store_corrupt_quarantined);
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("entry");
        let dest =
            self.quarantine.join(format!("{name}.{}", self.seq.fetch_add(1, Ordering::Relaxed)));
        eprintln!("hmm-serve: store entry {name} {why}; quarantined to {}", dest.display());
        if fs::rename(path, &dest).is_err() {
            // Can't even move it aside — at least get it off the live
            // path so it is never read again.
            let _ = fs::remove_file(path);
        }
    }

    /// Store one finished result body. Failures degrade to memory-only
    /// serving; they never fail the request.
    pub fn put(&self, key: u64, body: &str, metrics: &ServerMetrics) {
        let framed = frame_entry(key, body);
        let path = self.entries.join(entry_name(key));
        match self.write_atomic(&path, framed.as_bytes()) {
            Ok(()) => {
                let mut ledger = self.ledger.lock().unwrap();
                ledger.insert(key, framed.len() as u64);
                self.evict_over_budget(&mut ledger, metrics);
            }
            Err(e) => self.io_error("write", &e, metrics),
        }
    }

    fn evict_over_budget(&self, ledger: &mut Ledger, metrics: &ServerMetrics) {
        if self.max_bytes == 0 {
            return;
        }
        while ledger.total_bytes > self.max_bytes {
            let Some(victim) = ledger.lru() else { break };
            ledger.remove(victim);
            if let Err(e) = fs::remove_file(self.entries.join(entry_name(victim))) {
                self.io_error("evict", &e, metrics);
            }
        }
    }

    /// Fetch a result body by key, verifying it end to end. A corrupt
    /// entry is quarantined and reads as a miss.
    pub fn get(&self, key: u64, metrics: &ServerMetrics) -> Option<String> {
        let path = self.entries.join(entry_name(key));
        let raw = match fs::read(&path) {
            Ok(raw) => raw,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return None,
            Err(e) => {
                self.io_error("read", &e, metrics);
                return None;
            }
        };
        match parse_entry(key, &raw) {
            Ok(body) => {
                self.ledger.lock().unwrap().touch(key);
                Some(body)
            }
            Err(Stale) => {
                // Not corrupt — written by a different engine version.
                // Serving it would resurrect figures the current engine
                // would not produce; drop it without ceremony.
                let _ = fs::remove_file(&path);
                self.ledger.lock().unwrap().remove(key);
                None
            }
            Err(Corrupt(why)) => {
                self.quarantine_file(&path, &why, metrics);
                self.ledger.lock().unwrap().remove(key);
                None
            }
        }
    }

    /// Load every verifiable entry into `cache`, oldest first (so the
    /// newest entries end up most-recently-used on both sides), and seed
    /// the recency ledger. Returns how many entries were restored.
    pub fn rehydrate(&self, cache: &mut LruCache, metrics: &ServerMetrics) -> usize {
        let Ok(rd) = fs::read_dir(&self.entries) else { return 0 };
        let mut files: Vec<(std::time::SystemTime, PathBuf, u64)> = Vec::new();
        for f in rd.flatten() {
            let path = f.path();
            let Some(key) = path
                .file_name()
                .and_then(|n| n.to_str())
                .and_then(|n| u64::from_str_radix(n, 16).ok())
            else {
                // Not one of ours; leave it alone.
                continue;
            };
            let mtime = f
                .metadata()
                .and_then(|m| m.modified())
                .unwrap_or(std::time::SystemTime::UNIX_EPOCH);
            files.push((mtime, path, key));
        }
        files.sort();
        let mut restored = 0;
        for (_, path, key) in files {
            let Ok(raw) = fs::read(&path) else { continue };
            match parse_entry(key, &raw) {
                Ok(body) => {
                    let mut ledger = self.ledger.lock().unwrap();
                    ledger.insert(key, raw.len() as u64);
                    self.evict_over_budget(&mut ledger, metrics);
                    drop(ledger);
                    cache.insert(key, Arc::new(body));
                    restored += 1;
                }
                Err(Stale) => {
                    let _ = fs::remove_file(&path);
                }
                Err(Corrupt(why)) => self.quarantine_file(&path, &why, metrics),
            }
        }
        restored
    }

    /// Persist a checkpoint for an in-flight job: the canonical config
    /// (so a restarted server can re-admit the job) plus the sealed
    /// engine snapshot. Atomic like every other write.
    pub fn write_checkpoint(
        &self,
        key: u64,
        canonical: &str,
        snapshot: &[u8],
        metrics: &ServerMetrics,
    ) {
        debug_assert!(!canonical.contains('\n'), "canonical JSON is single-line");
        let mut sum = canonical.as_bytes().to_vec();
        sum.extend_from_slice(snapshot);
        let header = format!(
            "{CKPT_MAGIC} {ENGINE_VERSION} {key:016x} {} {} {:016x}\n",
            canonical.len(),
            snapshot.len(),
            snap_hash(&sum)
        );
        let mut framed = header.into_bytes();
        framed.extend_from_slice(canonical.as_bytes());
        framed.push(b'\n');
        framed.extend_from_slice(snapshot);
        let path = self.checkpoints.join(entry_name(key));
        match self.write_atomic(&path, &framed) {
            Ok(()) => metrics.inc(&metrics.snapshots_written),
            Err(e) => self.io_error("checkpoint write", &e, metrics),
        }
    }

    /// Read a job checkpoint back: `(canonical config text, sealed
    /// snapshot bytes)`. A torn or corrupt checkpoint is quarantined and
    /// reads as absent — the job simply restarts from scratch.
    pub fn read_checkpoint(&self, key: u64, metrics: &ServerMetrics) -> Option<(String, Vec<u8>)> {
        let path = self.checkpoints.join(entry_name(key));
        let raw = match fs::read(&path) {
            Ok(raw) => raw,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return None,
            Err(e) => {
                self.io_error("checkpoint read", &e, metrics);
                return None;
            }
        };
        match parse_checkpoint(key, &raw) {
            Ok(parts) => Some(parts),
            Err(Stale) => {
                let _ = fs::remove_file(&path);
                None
            }
            Err(Corrupt(why)) => {
                self.quarantine_file(&path, &why, metrics);
                None
            }
        }
    }

    /// Drop a job's checkpoint (its result has been published).
    pub fn remove_checkpoint(&self, key: u64) {
        let _ = fs::remove_file(self.checkpoints.join(entry_name(key)));
    }

    /// Keys of every checkpoint currently on the shelf (restart
    /// re-admission scans this).
    pub fn checkpoint_keys(&self) -> Vec<u64> {
        let Ok(rd) = fs::read_dir(&self.checkpoints) else { return Vec::new() };
        let mut keys: Vec<u64> = rd
            .flatten()
            .filter_map(|f| f.file_name().to_str().and_then(|n| u64::from_str_radix(n, 16).ok()))
            .collect();
        keys.sort_unstable();
        keys
    }
}

/// Why a stored file was rejected.
enum Reject {
    /// Written by a different engine version: valid, but must not be
    /// served by this build.
    Stale,
    /// Torn, truncated, or mangled: quarantine it.
    Corrupt(String),
}
use Reject::{Corrupt, Stale};

fn frame_entry(key: u64, body: &str) -> String {
    format!(
        "{ENTRY_MAGIC} {ENGINE_VERSION} {key:016x} {} {:016x}\n{body}",
        body.len(),
        snap_hash(body.as_bytes())
    )
}

fn parse_entry(key: u64, raw: &[u8]) -> Result<String, Reject> {
    let nl =
        raw.iter().position(|&b| b == b'\n').ok_or_else(|| Corrupt("has no header line".into()))?;
    let header = std::str::from_utf8(&raw[..nl]).map_err(|_| Corrupt("header not UTF-8".into()))?;
    let fields: Vec<&str> = header.split(' ').collect();
    let [magic, engine, hkey, len, sum] = fields[..] else {
        return Err(Corrupt(format!("header has {} fields, want 5", fields.len())));
    };
    if magic != ENTRY_MAGIC {
        return Err(Corrupt(format!("bad magic '{magic}'")));
    }
    if u64::from_str_radix(hkey, 16) != Ok(key) {
        return Err(Corrupt(format!("header key {hkey} disagrees with file name")));
    }
    let len: usize = len.parse().map_err(|_| Corrupt("unparsable body length".into()))?;
    let sum = u64::from_str_radix(sum, 16).map_err(|_| Corrupt("unparsable checksum".into()))?;
    let body = &raw[nl + 1..];
    if body.len() != len {
        return Err(Corrupt(format!("body is {} bytes, header says {len}", body.len())));
    }
    if snap_hash(body) != sum {
        return Err(Corrupt("fails its checksum".into()));
    }
    // Integrity before staleness: only a file proven whole is trusted to
    // tell us which engine wrote it.
    if engine != ENGINE_VERSION {
        return Err(Stale);
    }
    String::from_utf8(body.to_vec()).map_err(|_| Corrupt("body not UTF-8".into()))
}

fn parse_checkpoint(key: u64, raw: &[u8]) -> Result<(String, Vec<u8>), Reject> {
    let nl =
        raw.iter().position(|&b| b == b'\n').ok_or_else(|| Corrupt("has no header line".into()))?;
    let header = std::str::from_utf8(&raw[..nl]).map_err(|_| Corrupt("header not UTF-8".into()))?;
    let fields: Vec<&str> = header.split(' ').collect();
    let [magic, engine, hkey, clen, slen, sum] = fields[..] else {
        return Err(Corrupt(format!("header has {} fields, want 6", fields.len())));
    };
    if magic != CKPT_MAGIC {
        return Err(Corrupt(format!("bad magic '{magic}'")));
    }
    if u64::from_str_radix(hkey, 16) != Ok(key) {
        return Err(Corrupt(format!("header key {hkey} disagrees with file name")));
    }
    let clen: usize = clen.parse().map_err(|_| Corrupt("unparsable config length".into()))?;
    let slen: usize = slen.parse().map_err(|_| Corrupt("unparsable snapshot length".into()))?;
    let sum = u64::from_str_radix(sum, 16).map_err(|_| Corrupt("unparsable checksum".into()))?;
    let rest = &raw[nl + 1..];
    if rest.len() != clen + 1 + slen {
        return Err(Corrupt(format!(
            "payload is {} bytes, header says {}",
            rest.len(),
            clen + 1 + slen
        )));
    }
    let (canonical, snapshot) = (&rest[..clen], &rest[clen + 1..]);
    if rest[clen] != b'\n' {
        return Err(Corrupt("config/snapshot separator missing".into()));
    }
    let mut summed = canonical.to_vec();
    summed.extend_from_slice(snapshot);
    if snap_hash(&summed) != sum {
        return Err(Corrupt("fails its checksum".into()));
    }
    if engine != ENGINE_VERSION {
        return Err(Stale);
    }
    let canonical =
        String::from_utf8(canonical.to_vec()).map_err(|_| Corrupt("config not UTF-8".into()))?;
    Ok((canonical, snapshot.to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hmm-store-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn put_get_round_trip_and_recency() {
        let dir = tmpdir("roundtrip");
        let m = ServerMetrics::default();
        let s = Store::open(&dir, 0).unwrap();
        s.put(7, "body seven", &m);
        assert_eq!(s.get(7, &m).as_deref(), Some("body seven"));
        assert_eq!(s.get(8, &m), None, "absent key is a clean miss");
        assert_eq!(s.entries(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entry_is_quarantined_not_served() {
        let dir = tmpdir("corrupt");
        let m = ServerMetrics::default();
        let s = Store::open(&dir, 0).unwrap();
        s.put(9, "precious", &m);
        // Flip one body byte on disk.
        let path = dir.join("entries").join(entry_name(9));
        let mut raw = fs::read(&path).unwrap();
        let last = raw.len() - 1;
        raw[last] ^= 0x20;
        fs::write(&path, &raw).unwrap();
        assert_eq!(s.get(9, &m), None, "corrupt entry must read as a miss");
        assert!(!path.exists(), "corrupt entry must leave the live path");
        assert_eq!(fs::read_dir(dir.join("quarantine")).unwrap().count(), 1);
        assert_eq!(m.store_corrupt_quarantined.load(Ordering::Relaxed), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_entry_is_quarantined() {
        let dir = tmpdir("torn");
        let m = ServerMetrics::default();
        let s = Store::open(&dir, 0).unwrap();
        s.put(11, "a body that will be torn in half", &m);
        let path = dir.join("entries").join(entry_name(11));
        let raw = fs::read(&path).unwrap();
        fs::write(&path, &raw[..raw.len() / 2]).unwrap();
        assert_eq!(s.get(11, &m), None);
        assert_eq!(m.store_corrupt_quarantined.load(Ordering::Relaxed), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rehydrate_restores_into_cache() {
        let dir = tmpdir("rehydrate");
        let m = ServerMetrics::default();
        {
            let s = Store::open(&dir, 0).unwrap();
            s.put(1, "one", &m);
            s.put(2, "two", &m);
        }
        // A fresh store over the same directory: simulated restart.
        let s = Store::open(&dir, 0).unwrap();
        let mut cache = LruCache::new(16);
        assert_eq!(s.rehydrate(&mut cache, &m), 2);
        assert_eq!(cache.get(1).as_deref().map(String::as_str), Some("one"));
        assert_eq!(cache.get(2).as_deref().map(String::as_str), Some("two"));
        assert_eq!(s.entries(), 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn byte_budget_evicts_least_recently_used() {
        let dir = tmpdir("budget");
        let m = ServerMetrics::default();
        let one_entry = frame_entry(0, &"x".repeat(64)).len() as u64;
        let s = Store::open(&dir, 2 * one_entry).unwrap();
        s.put(1, &"a".repeat(64), &m);
        s.put(2, &"b".repeat(64), &m);
        assert!(s.get(1, &m).is_some(), "touch 1 so 2 is the LRU entry");
        s.put(3, &"c".repeat(64), &m);
        assert_eq!(s.entries(), 2);
        assert!(s.get(2, &m).is_none(), "LRU entry evicted from disk");
        assert!(s.get(1, &m).is_some());
        assert!(s.get(3, &m).is_some());
        assert!(s.bytes() <= 2 * one_entry);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_round_trip_and_removal() {
        let dir = tmpdir("ckpt");
        let m = ServerMetrics::default();
        let s = Store::open(&dir, 0).unwrap();
        let snap = vec![0u8, 1, 2, 250, 251, 252];
        s.write_checkpoint(5, r#"{"workload":"mg"}"#, &snap, &m);
        assert_eq!(m.snapshots_written.load(Ordering::Relaxed), 1);
        assert_eq!(s.checkpoint_keys(), vec![5]);
        let (canonical, got) = s.read_checkpoint(5, &m).unwrap();
        assert_eq!(canonical, r#"{"workload":"mg"}"#);
        assert_eq!(got, snap);
        s.remove_checkpoint(5);
        assert!(s.read_checkpoint(5, &m).is_none());
        assert!(s.checkpoint_keys().is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_checkpoint_reads_as_absent() {
        let dir = tmpdir("ckpt-corrupt");
        let m = ServerMetrics::default();
        let s = Store::open(&dir, 0).unwrap();
        s.write_checkpoint(6, "{}", b"snapshot", &m);
        let path = dir.join("checkpoints").join(entry_name(6));
        let mut raw = fs::read(&path).unwrap();
        let last = raw.len() - 1;
        raw[last] ^= 1;
        fs::write(&path, &raw).unwrap();
        assert!(s.read_checkpoint(6, &m).is_none());
        assert_eq!(m.store_corrupt_quarantined.load(Ordering::Relaxed), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_engine_entries_are_dropped_silently() {
        let dir = tmpdir("stale");
        let m = ServerMetrics::default();
        let s = Store::open(&dir, 0).unwrap();
        // Hand-write an entry with a foreign engine stamp but a valid
        // checksum.
        let body = "old figures";
        let framed = format!(
            "{ENTRY_MAGIC} hmm-engine-v0 {:016x} {} {:016x}\n{body}",
            4u64,
            body.len(),
            snap_hash(body.as_bytes())
        );
        let path = dir.join("entries").join(entry_name(4));
        fs::write(&path, framed).unwrap();
        assert_eq!(s.get(4, &m), None);
        assert!(!path.exists(), "stale entry deleted");
        assert_eq!(m.store_corrupt_quarantined.load(Ordering::Relaxed), 0, "stale is not corrupt");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_failure_degrades_and_counts_every_error() {
        let dir = tmpdir("degrade");
        let m = ServerMetrics::default();
        let s = Store::open(&dir, 0).unwrap();
        // Replace the entries directory with a plain file: every rename
        // into it now fails with ENOTDIR, which stands in for disk-full
        // or EIO (permission tricks don't work when tests run as root).
        fs::remove_dir_all(dir.join("entries")).unwrap();
        fs::write(dir.join("entries"), b"not a directory").unwrap();
        s.put(1, "body one", &m);
        s.put(2, "body two", &m);
        assert_eq!(m.store_io_errors.load(Ordering::Relaxed), 2, "every failure counts");
        assert_eq!(s.entries(), 0, "failed writes must not enter the ledger");
        assert_eq!(s.bytes(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn tmp_leftovers_are_cleared_on_open() {
        let dir = tmpdir("leftover");
        fs::create_dir_all(dir.join("tmp")).unwrap();
        fs::write(dir.join("tmp").join("entry.0"), b"half-written").unwrap();
        let _ = Store::open(&dir, 0).unwrap();
        assert_eq!(fs::read_dir(dir.join("tmp")).unwrap().count(), 0);
        let _ = fs::remove_dir_all(&dir);
    }
}
