//! `hmm-serve` — the concurrent simulation-serving subsystem.
//!
//! The simulator's entry point, [`hmm_simulator::driver::run`], is a pure
//! function: one [`RunConfig`](hmm_simulator::driver::RunConfig) in, one
//! bit-deterministic [`RunResult`](hmm_simulator::driver::RunResult) out.
//! That makes it exactly the kind of compute kernel a serving layer is
//! built around, and this crate builds that layer with the same
//! no-external-dependencies discipline as the rest of the workspace:
//!
//! * **[`http`]** — minimal HTTP/1.1 framing over `std::net`, with read
//!   and write deadlines so slow clients cannot pin a handler thread.
//! * **[`request`]** — the JSON wire format: request bodies parse into a
//!   validated `RunConfig` plus a *canonical form* whose hash is the
//!   cache key. Two requests that mean the same simulation — whatever
//!   their whitespace or field order — share one key.
//! * **[`queue`]** — a bounded FIFO job queue. When it is full the
//!   server answers `429` immediately instead of letting latency grow
//!   without bound (backpressure, not buffering).
//! * **[`jobs`]** — job lifecycle: queued → running → done / failed,
//!   with cancellation for queued jobs and a bounded-retention registry
//!   backing the async `POST /v1/jobs` + `GET /v1/jobs/<id>` API.
//! * **[`cache`]** — an LRU result cache storing rendered response
//!   bodies. Sound because runs are bit-deterministic: a cache hit is
//!   byte-identical to re-running the simulation.
//! * **[`metrics`]** — server counters (accepted / rejected / cache hit
//!   / in-flight / latency histogram) plus merged per-run
//!   `ControllerStats`/`SwapStats` digests, exported as JSON from
//!   `GET /metrics` and reconciled by `hmm-loadgen --check`.
//! * **[`server`]** — the accept loop, connection handlers, the fixed
//!   worker pool running simulations, and graceful drain: a shutdown
//!   request stops admission, finishes every queued job, then exits.
//! * **[`store`]** — the durable result store behind `--store-dir`: a
//!   content-addressed on-disk mirror of the result cache plus job
//!   checkpoints, written atomically and verified on every read, so a
//!   SIGKILL'd server restarts warm and resumes in-flight jobs.
//! * **[`client`]** — a tiny blocking HTTP client shared by
//!   `hmm-loadgen`, the coordinator's peer RPC, and the end-to-end
//!   tests.
//! * **[`sweeps`]** — `POST /v1/sweeps`: grid expansion (via
//!   `hmm-sweep`), canonical-hash dedup, fan-out across the worker pool
//!   or — with `--peers` — a cluster sharded by consistent hashing,
//!   with work stealing, bounded retries on peer death, and a final
//!   `hmm-sweep-figures-v1` document that is byte-identical to an
//!   in-process run over the same cells.
//!
//! Two binaries ship with the crate: `hmm-serve` (the server; SIGTERM or
//! `POST /admin/shutdown` triggers the graceful drain) and `hmm-loadgen`
//! (a concurrent load generator printing throughput and latency
//! percentiles, with a `--check` mode that reconciles its client-side
//! counts against the server's `/metrics`).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cache;
pub mod client;
pub mod http;
pub mod jobs;
pub mod metrics;
pub mod queue;
pub mod request;
pub mod response;
pub mod server;
pub mod store;
pub mod sweeps;

pub use cache::LruCache;
pub use jobs::{Job, JobRegistry, JobState};
pub use metrics::ServerMetrics;
pub use queue::JobQueue;
pub use request::SimRequest;
pub use server::{Server, ServerConfig};
pub use store::Store;
