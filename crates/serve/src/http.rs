//! Minimal HTTP/1.1 framing over `std::net`.
//!
//! Covers exactly what the serving subsystem needs: parse one request
//! (method, target, headers, `Content-Length`-delimited body) from a
//! stream with a read deadline, and write one response with an explicit
//! `Content-Length` and `Connection: close`. Closing after every response
//! keeps the drain path fast — a handler thread is never parked on an
//! idle keep-alive connection — at the cost of one TCP handshake per
//! request, which is noise on the loopback paths this server is built
//! for. Chunked transfer encoding is rejected on *requests* (`501`);
//! on responses it is used by exactly one endpoint, the live job event
//! stream, via [`write_chunked_head`] / [`write_chunk`] /
//! [`finish_chunked`].
//!
//! Bodies are read as raw bytes: trace uploads are binary, so the UTF-8
//! requirement lives with the JSON routes ([`Request::body_str`]), not
//! the framing layer. The body limit is decided *per route* — the head
//! is parsed first, then [`read_request_with`] asks the caller how many
//! body bytes this particular method/path may carry, and a
//! `Content-Length` beyond that answers `413` before a single body byte
//! is read.

use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;

/// Hard cap on the request line plus all headers.
pub const MAX_HEAD_BYTES: usize = 8 << 10;

/// One parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, `DELETE`, ...).
    pub method: String,
    /// Request target as sent (no query parsing; the API does not use it).
    pub path: String,
    /// Header name/value pairs, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// Case-insensitive header lookup (first match).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers.iter().find(|(k, _)| *k == name).map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 text, for the JSON routes.
    pub fn body_str(&self) -> Result<&str, String> {
        std::str::from_utf8(&self.body).map_err(|_| "body is not UTF-8".to_string())
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum ReadError {
    /// The client closed the connection before sending a request line.
    Eof,
    /// The socket read failed or timed out.
    Io(std::io::Error),
    /// The bytes were not a servable request; respond with this status
    /// and message, then close.
    Bad(u16, String),
}

/// Read one request with a single body limit for every route.
pub fn read_request(stream: &mut TcpStream, max_body: usize) -> Result<Request, ReadError> {
    read_request_with(stream, |_| max_body)
}

/// Read one request from the stream. The stream's read timeout (set by
/// the caller) bounds how long a slow client can hold the handler.
/// `limit_for` sees the parsed head (method, path, headers — body still
/// empty) and returns the body limit for that route; a declared
/// `Content-Length` above it is refused with `413` without reading the
/// body.
pub fn read_request_with(
    stream: &mut TcpStream,
    limit_for: impl FnOnce(&Request) -> usize,
) -> Result<Request, ReadError> {
    let head = read_head(stream)?;
    let head_text = String::from_utf8(head)
        .map_err(|_| ReadError::Bad(400, "request head is not UTF-8".into()))?;
    let mut lines = head_text.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split(' ');
    let (method, path, version) =
        (parts.next().unwrap_or(""), parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    if method.is_empty() || path.is_empty() || parts.next().is_some() {
        return Err(ReadError::Bad(400, format!("malformed request line '{request_line}'")));
    }
    if !version.starts_with("HTTP/1.") {
        return Err(ReadError::Bad(505, format!("unsupported version '{version}'")));
    }

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ReadError::Bad(400, format!("malformed header line '{line}'")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let req = Request {
        method: method.to_ascii_uppercase(),
        path: path.to_string(),
        headers,
        body: Vec::new(),
    };

    if req.header("transfer-encoding").is_some() {
        return Err(ReadError::Bad(501, "transfer-encoding is not supported".into()));
    }
    let content_length = match req.header("content-length") {
        None => 0usize,
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| ReadError::Bad(400, format!("invalid content-length '{v}'")))?,
    };
    let max_body = limit_for(&req);
    if content_length > max_body {
        return Err(ReadError::Bad(
            413,
            format!("body of {content_length} bytes exceeds the {max_body}-byte limit"),
        ));
    }
    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body).map_err(map_io)?;
    Ok(Request { body, ..req })
}

/// Read up to and including the `\r\n\r\n` head terminator without
/// consuming any body bytes. Each round `peek`s whatever is buffered,
/// consumes only bytes known to belong to the head, and blocks in the
/// next `peek` once the buffer is drained — the whole head is normally
/// one `peek` + one `read` instead of a syscall per byte, which is the
/// difference between microseconds and milliseconds per request on
/// kernels where syscalls are expensive.
fn read_head(stream: &mut TcpStream) -> Result<Vec<u8>, ReadError> {
    let mut head: Vec<u8> = Vec::with_capacity(256);
    let mut buf = [0u8; 2048];
    loop {
        let n = match stream.peek(&mut buf) {
            Ok(0) => {
                return if head.is_empty() {
                    Err(ReadError::Eof)
                } else {
                    Err(ReadError::Bad(400, "connection closed mid-request".into()))
                };
            }
            Ok(n) => n,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => {
                return if head.is_empty() { Err(ReadError::Io(e)) } else { Err(map_io(e)) };
            }
        };
        // Search for the terminator across the boundary: the last three
        // consumed bytes plus everything just peeked.
        let start = head.len().saturating_sub(3);
        let mut window = head[start..].to_vec();
        window.extend_from_slice(&buf[..n]);
        if let Some(pos) = window.windows(4).position(|w| w == b"\r\n\r\n") {
            // Consume exactly through the terminator; body bytes stay in
            // the socket buffer.
            let consume = (start + pos + 4) - head.len();
            stream.read_exact(&mut buf[..consume]).map_err(map_io)?;
            head.extend_from_slice(&buf[..consume]);
            head.truncate(head.len() - 4);
            return Ok(head);
        }
        // No terminator yet: every peeked byte is head. Consume them all
        // so the next peek blocks for fresh data instead of spinning.
        stream.read_exact(&mut buf[..n]).map_err(map_io)?;
        head.extend_from_slice(&buf[..n]);
        if head.len() > MAX_HEAD_BYTES {
            return Err(ReadError::Bad(431, "request head too large".into()));
        }
    }
}

fn map_io(e: std::io::Error) -> ReadError {
    match e.kind() {
        ErrorKind::WouldBlock | ErrorKind::TimedOut => {
            ReadError::Bad(408, "timed out reading request".into())
        }
        _ => ReadError::Io(e),
    }
}

/// One response about to be written.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Body bytes (always `application/json` in this API).
    pub body: String,
    /// Extra headers beyond the generated ones (`X-Cache`, ...).
    pub extra_headers: Vec<(&'static str, String)>,
}

impl Response {
    /// A JSON response with no extra headers.
    pub fn json(status: u16, body: String) -> Self {
        Response { status, body, extra_headers: Vec::new() }
    }

    /// Attach one extra header.
    pub fn with_header(mut self, name: &'static str, value: String) -> Self {
        self.extra_headers.push((name, value));
        self
    }
}

/// Serialize and send `resp`; the connection is closed by the caller
/// afterwards (every response carries `Connection: close`).
pub fn write_response(stream: &mut TcpStream, resp: &Response) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n",
        resp.status,
        status_text(resp.status),
        resp.body.len(),
    );
    for (name, value) in &resp.extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    // One write for head + body: a single syscall, and no chance of the
    // body segment waiting on an ACK for a separately-sent head.
    head.push_str(&resp.body);
    stream.write_all(head.as_bytes())?;
    stream.flush()
}

/// Start a chunked response: status line plus `Transfer-Encoding:
/// chunked`, no `Content-Length`. The caller then streams
/// [`write_chunk`]s and ends with [`finish_chunked`]; a client seeing
/// the terminating zero chunk knows the stream ended on purpose, while
/// a connection that dies earlier is a visibly truncated body.
pub fn write_chunked_head(stream: &mut TcpStream, status: u16) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: application/x-ndjson\r\ntransfer-encoding: chunked\r\nconnection: close\r\n\r\n",
        status,
        status_text(status),
    );
    stream.write_all(head.as_bytes())?;
    stream.flush()
}

/// Send one chunk (hex size line, payload, CRLF). Empty payloads are
/// skipped — a zero-size chunk would terminate the stream.
pub fn write_chunk(stream: &mut TcpStream, data: &[u8]) -> std::io::Result<()> {
    if data.is_empty() {
        return Ok(());
    }
    let mut msg = format!("{:x}\r\n", data.len()).into_bytes();
    msg.extend_from_slice(data);
    msg.extend_from_slice(b"\r\n");
    stream.write_all(&msg)?;
    stream.flush()
}

/// Terminate a chunked response cleanly.
pub fn finish_chunked(stream: &mut TcpStream) -> std::io::Result<()> {
    stream.write_all(b"0\r\n\r\n")?;
    stream.flush()
}

/// Reason phrase for the status codes this server emits.
pub fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};
    use std::thread;

    /// Run the parser against raw bytes pushed through a real socket pair.
    fn parse_raw(raw: &'static [u8]) -> Result<Request, ReadError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(raw).unwrap();
        });
        let (mut stream, _) = listener.accept().unwrap();
        let r = read_request(&mut stream, 1 << 10);
        writer.join().unwrap();
        r
    }

    #[test]
    fn parses_post_with_body() {
        let req =
            parse_raw(b"POST /v1/simulate HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd")
                .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/simulate");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body_str().unwrap(), "abcd");
    }

    #[test]
    fn parses_get_without_body() {
        let req = parse_raw(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert!(req.body.is_empty());
    }

    #[test]
    fn binary_bodies_survive_and_utf8_is_a_route_concern() {
        let req =
            parse_raw(b"POST /v1/traces HTTP/1.1\r\nContent-Length: 4\r\n\r\n\x00\xff\x01\x02")
                .unwrap();
        assert_eq!(req.body, vec![0x00, 0xff, 0x01, 0x02]);
        assert!(req.body_str().is_err(), "JSON routes still reject non-UTF-8");
    }

    #[test]
    fn body_limit_is_decided_per_route() {
        // Same Content-Length, two routes, two limits: the raised limit
        // accepts what the default refuses, and the refusal is a 413
        // issued from the framing layer before any body byte is read.
        let run =
            |raw: &'static [u8]| {
                let listener = TcpListener::bind("127.0.0.1:0").unwrap();
                let addr = listener.local_addr().unwrap();
                let writer = thread::spawn(move || {
                    let mut s = TcpStream::connect(addr).unwrap();
                    s.write_all(raw).unwrap();
                });
                let (mut stream, _) = listener.accept().unwrap();
                let r = read_request_with(&mut stream, |head| {
                    if head.path == "/v1/traces" {
                        1 << 20
                    } else {
                        8
                    }
                });
                writer.join().unwrap();
                r
            };
        let ok = run(b"POST /v1/traces HTTP/1.1\r\nContent-Length: 16\r\n\r\nzzzzzzzzzzzzzzzz");
        assert_eq!(ok.unwrap().body.len(), 16);
        match run(b"POST /v1/simulate HTTP/1.1\r\nContent-Length: 16\r\n\r\nzzzzzzzzzzzzzzzz") {
            Err(ReadError::Bad(413, msg)) => assert!(msg.contains("8-byte limit"), "{msg}"),
            other => panic!("expected 413, got {other:?}"),
        }
    }

    #[test]
    fn chunked_response_frames_and_terminates() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let reader = thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            let mut text = String::new();
            s.read_to_string(&mut text).unwrap();
            text
        });
        let (mut stream, _) = listener.accept().unwrap();
        write_chunked_head(&mut stream, 200).unwrap();
        write_chunk(&mut stream, b"{\"epoch\":0}\n").unwrap();
        write_chunk(&mut stream, b"").unwrap(); // skipped, not a terminator
        write_chunk(&mut stream, b"{\"epoch\":1}\n").unwrap();
        finish_chunked(&mut stream).unwrap();
        drop(stream);
        let text = reader.join().unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("transfer-encoding: chunked\r\n"));
        assert!(text.contains("c\r\n{\"epoch\":0}\n\r\n"), "{text}");
        assert!(text.ends_with("0\r\n\r\n"), "clean terminator: {text}");
    }

    #[test]
    fn rejects_malformed_inputs() {
        let cases: [(&'static [u8], u16); 5] = [
            (b"NOT-A-REQUEST\r\n\r\n", 400),
            (b"GET /x HTTP/2.0\r\n\r\n", 505),
            (b"GET /x HTTP/1.1\r\nbadheader\r\n\r\n", 400),
            (b"POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n", 400),
            (b"POST /x HTTP/1.1\r\nContent-Length: 999999\r\n\r\n", 413),
        ];
        for (raw, want) in cases {
            match parse_raw(raw) {
                Err(ReadError::Bad(status, _)) => assert_eq!(status, want, "{raw:?}"),
                other => panic!("{raw:?}: expected Bad({want}), got {other:?}"),
            }
        }
    }

    #[test]
    fn empty_connection_is_eof_not_bad() {
        assert!(matches!(parse_raw(b""), Err(ReadError::Eof)));
    }

    #[test]
    fn response_round_trips() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let reader = thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            let mut text = String::new();
            s.read_to_string(&mut text).unwrap();
            text
        });
        let (mut stream, _) = listener.accept().unwrap();
        let resp = Response::json(200, "{\"ok\":true}".into()).with_header("x-cache", "hit".into());
        write_response(&mut stream, &resp).unwrap();
        drop(stream);
        let text = reader.join().unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("content-length: 11\r\n"));
        assert!(text.contains("x-cache: hit\r\n"));
        assert!(text.ends_with("{\"ok\":true}"));
    }
}
