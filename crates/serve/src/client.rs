//! A tiny blocking HTTP/1.1 client, just enough for `hmm-loadgen` and
//! the end-to-end tests to drive the server without external crates.
//!
//! One request per connection, mirroring the server's
//! `Connection: close` framing. The response is read to EOF and split on
//! the first blank line; only what the tests and load generator need is
//! parsed (status code, headers, body).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One parsed HTTP response.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// Status code from the status line.
    pub status: u16,
    /// Header name/value pairs, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Body bytes as UTF-8.
    pub body: String,
}

impl HttpResponse {
    /// Case-insensitive header lookup (first match).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers.iter().find(|(k, _)| *k == name).map(|(_, v)| v.as_str())
    }
}

/// Send one request and read the full response. `timeout` bounds the
/// connect and each socket read/write.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
    timeout: Duration,
) -> std::io::Result<HttpResponse> {
    request_bytes(addr, method, path, body.as_bytes(), timeout)
}

/// [`request`] with a raw byte body — how traces are uploaded.
pub fn request_bytes(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &[u8],
    timeout: Duration,
) -> std::io::Result<HttpResponse> {
    let mut stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    // Head and body in one write: a single syscall sends the whole
    // request, so the server's first peek usually sees all of it.
    let mut msg = format!(
        "{method} {path} HTTP/1.1\r\nhost: {addr}\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        body.len(),
    )
    .into_bytes();
    msg.extend_from_slice(body);
    // A server refusing the request early (413 on an oversized upload)
    // answers and closes mid-write; the write then fails with EPIPE even
    // though a perfectly good response is waiting. Salvage it: only
    // surface the write error if nothing readable came back.
    let wrote = stream.write_all(&msg).and_then(|()| stream.flush());
    let mut raw = Vec::new();
    match (wrote, stream.read_to_end(&mut raw)) {
        (_, Ok(_)) if !raw.is_empty() => parse_response(&raw),
        (Err(e), _) => Err(e),
        (Ok(()), Err(e)) => Err(e),
        (Ok(()), Ok(_)) => parse_response(&raw),
    }
}

/// One consumed chunked-transfer stream (the job event endpoint).
#[derive(Debug, Clone)]
pub struct StreamedResponse {
    /// Status code from the status line.
    pub status: u16,
    /// Decoded JSONL lines, in arrival order.
    pub lines: Vec<String>,
    /// Whether the stream ended with the terminating zero chunk — a
    /// deliberate EOF, as opposed to a dropped connection.
    pub clean_eof: bool,
}

/// Issue a GET against a chunked endpoint and consume the stream to its
/// end, calling `on_line` as each JSONL line arrives. A non-chunked
/// (error) response is returned with its body as the only line and
/// `clean_eof` false.
pub fn stream_lines(
    addr: SocketAddr,
    path: &str,
    timeout: Duration,
    mut on_line: impl FnMut(&str),
) -> std::io::Result<StreamedResponse> {
    let mut stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let msg = format!("GET {path} HTTP/1.1\r\nhost: {addr}\r\nconnection: close\r\n\r\n");
    stream.write_all(msg.as_bytes())?;
    stream.flush()?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let split = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| bad("response has no head/body separator"))?;
    let head = std::str::from_utf8(&raw[..split]).map_err(|_| bad("response head is not UTF-8"))?;
    let status = head
        .split("\r\n")
        .next()
        .unwrap_or_default()
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| bad("malformed status line"))?;
    let chunked = head.to_ascii_lowercase().contains("transfer-encoding: chunked");
    let body = &raw[split + 4..];
    if !chunked {
        let text = String::from_utf8_lossy(body).to_string();
        if !text.is_empty() {
            on_line(&text);
        }
        return Ok(StreamedResponse {
            status,
            lines: if text.is_empty() { Vec::new() } else { vec![text] },
            clean_eof: false,
        });
    }

    // Decode the chunk framing, then split the payload on newlines.
    let mut payload = Vec::new();
    let mut pos = 0usize;
    let mut clean_eof = false;
    while pos < body.len() {
        let Some(nl) = body[pos..].windows(2).position(|w| w == b"\r\n") else { break };
        let size_line = std::str::from_utf8(&body[pos..pos + nl])
            .map_err(|_| bad("chunk size line is not UTF-8"))?;
        let size = usize::from_str_radix(size_line.trim(), 16)
            .map_err(|_| bad(format!("bad chunk size '{size_line}'")))?;
        pos += nl + 2;
        if size == 0 {
            clean_eof = true;
            break;
        }
        if pos + size > body.len() {
            break; // truncated mid-chunk: not a clean EOF
        }
        payload.extend_from_slice(&body[pos..pos + size]);
        pos += size + 2; // skip the chunk's trailing CRLF
    }
    let text = String::from_utf8(payload).map_err(|_| bad("stream payload is not UTF-8"))?;
    let lines: Vec<String> = text.lines().map(str::to_string).collect();
    for line in &lines {
        on_line(line);
    }
    Ok(StreamedResponse { status, lines, clean_eof })
}

fn bad(msg: impl Into<String>) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.into())
}

fn parse_response(raw: &[u8]) -> std::io::Result<HttpResponse> {
    let split = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| bad("response has no head/body separator"))?;
    let head = std::str::from_utf8(&raw[..split]).map_err(|_| bad("response head is not UTF-8"))?;
    let body = String::from_utf8(raw[split + 4..].to_vec())
        .map_err(|_| bad("response body is not UTF-8"))?;

    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or_default();
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| bad(format!("malformed status line '{status_line}'")))?;
    let mut headers = Vec::new();
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
    }
    // Trust content-length over read-to-EOF only to truncate trailing
    // garbage; the server always sends an exact length.
    let trimmed = match headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .and_then(|(_, v)| v.parse::<usize>().ok())
    {
        Some(n) if n <= body.len() => body[..n].to_string(),
        _ => body,
    };
    Ok(HttpResponse { status, headers, body: trimmed })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_response() {
        let raw = b"HTTP/1.1 429 Too Many Requests\r\ncontent-type: application/json\r\ncontent-length: 13\r\nx-cache: miss\r\n\r\n{\"error\":\"q\"}";
        let r = parse_response(raw).unwrap();
        assert_eq!(r.status, 429);
        assert_eq!(r.header("x-cache"), Some("miss"));
        assert_eq!(r.body, "{\"error\":\"q\"}");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_response(b"not http at all").is_err());
        assert!(parse_response(b"HTTP/1.1 abc\r\n\r\n").is_err());
    }
}
