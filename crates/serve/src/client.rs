//! A tiny blocking HTTP/1.1 client, just enough for `hmm-loadgen` and
//! the end-to-end tests to drive the server without external crates.
//!
//! One request per connection, mirroring the server's
//! `Connection: close` framing. The response is read to EOF and split on
//! the first blank line; only what the tests and load generator need is
//! parsed (status code, headers, body).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One parsed HTTP response.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// Status code from the status line.
    pub status: u16,
    /// Header name/value pairs, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Body bytes as UTF-8.
    pub body: String,
}

impl HttpResponse {
    /// Case-insensitive header lookup (first match).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers.iter().find(|(k, _)| *k == name).map(|(_, v)| v.as_str())
    }
}

/// Send one request and read the full response. `timeout` bounds the
/// connect and each socket read/write.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
    timeout: Duration,
) -> std::io::Result<HttpResponse> {
    let mut stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    // Head and body in one write: a single syscall sends the whole
    // request, so the server's first peek usually sees all of it.
    let mut msg = format!(
        "{method} {path} HTTP/1.1\r\nhost: {addr}\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        body.len(),
    );
    msg.push_str(body);
    stream.write_all(msg.as_bytes())?;
    stream.flush()?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_response(&raw)
}

fn bad(msg: impl Into<String>) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.into())
}

fn parse_response(raw: &[u8]) -> std::io::Result<HttpResponse> {
    let split = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| bad("response has no head/body separator"))?;
    let head = std::str::from_utf8(&raw[..split]).map_err(|_| bad("response head is not UTF-8"))?;
    let body = String::from_utf8(raw[split + 4..].to_vec())
        .map_err(|_| bad("response body is not UTF-8"))?;

    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or_default();
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| bad(format!("malformed status line '{status_line}'")))?;
    let mut headers = Vec::new();
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
    }
    // Trust content-length over read-to-EOF only to truncate trailing
    // garbage; the server always sends an exact length.
    let trimmed = match headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .and_then(|(_, v)| v.parse::<usize>().ok())
    {
        Some(n) if n <= body.len() => body[..n].to_string(),
        _ => body,
    };
    Ok(HttpResponse { status, headers, body: trimmed })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_response() {
        let raw = b"HTTP/1.1 429 Too Many Requests\r\ncontent-type: application/json\r\ncontent-length: 13\r\nx-cache: miss\r\n\r\n{\"error\":\"q\"}";
        let r = parse_response(raw).unwrap();
        assert_eq!(r.status, 429);
        assert_eq!(r.header("x-cache"), Some("miss"));
        assert_eq!(r.body, "{\"error\":\"q\"}");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_response(b"not http at all").is_err());
        assert!(parse_response(b"HTTP/1.1 abc\r\n\r\n").is_err());
    }
}
