//! The bounded job queue between connection handlers and the worker
//! pool.
//!
//! Admission control is the whole point: when the queue is full,
//! [`JobQueue::try_push`] fails *immediately* and the handler answers
//! `429` — the server sheds load at the door instead of accumulating a
//! latency backlog no client asked to wait in. Shutdown follows the
//! graceful-drain convention: after [`JobQueue::shutdown`] no new work
//! is admitted, but [`JobQueue::pop`] keeps handing out already-queued
//! jobs until the queue is empty, so every admitted request is answered
//! before the workers exit.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

#[derive(Debug)]
struct Inner<T> {
    items: VecDeque<T>,
    shutdown: bool,
}

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity; the caller should answer `429`.
    Full,
    /// The server is draining; the caller should answer `503`.
    ShuttingDown,
}

/// A bounded multi-producer multi-consumer FIFO queue.
#[derive(Debug)]
pub struct JobQueue<T> {
    inner: Mutex<Inner<T>>,
    nonempty: Condvar,
    cap: usize,
}

impl<T> JobQueue<T> {
    /// A queue admitting at most `cap` outstanding jobs.
    pub fn new(cap: usize) -> Self {
        JobQueue {
            inner: Mutex::new(Inner { items: VecDeque::with_capacity(cap), shutdown: false }),
            nonempty: Condvar::new(),
            cap,
        }
    }

    /// The configured bound.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Jobs currently queued (racy by nature; for metrics only).
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().items.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Admit one job, or refuse without blocking.
    pub fn try_push(&self, item: T) -> Result<(), PushError> {
        let mut inner = self.inner.lock().unwrap();
        if inner.shutdown {
            return Err(PushError::ShuttingDown);
        }
        if inner.items.len() >= self.cap {
            return Err(PushError::Full);
        }
        inner.items.push_back(item);
        drop(inner);
        self.nonempty.notify_one();
        Ok(())
    }

    /// Take the oldest job, blocking while the queue is empty. Returns
    /// `None` only once the queue is shut down *and* drained — the
    /// worker's signal to exit.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.shutdown {
                return None;
            }
            inner = self.nonempty.wait(inner).unwrap();
        }
    }

    /// Stop admission and wake every blocked consumer. Queued jobs are
    /// still handed out (graceful drain).
    pub fn shutdown(&self) {
        self.inner.lock().unwrap().shutdown = true;
        self.nonempty.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn fifo_order_and_bound() {
        let q = JobQueue::new(3);
        assert_eq!(q.try_push(1), Ok(()));
        assert_eq!(q.try_push(2), Ok(()));
        assert_eq!(q.try_push(3), Ok(()));
        assert_eq!(q.try_push(4), Err(PushError::Full));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.try_push(4), Ok(()), "popping frees a slot");
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), Some(4));
    }

    #[test]
    fn shutdown_drains_then_ends() {
        let q = JobQueue::new(8);
        q.try_push("a").unwrap();
        q.try_push("b").unwrap();
        q.shutdown();
        assert_eq!(q.try_push("c"), Err(PushError::ShuttingDown));
        assert_eq!(q.pop(), Some("a"), "queued work survives shutdown");
        assert_eq!(q.pop(), Some("b"));
        assert_eq!(q.pop(), None, "drained queue signals exit");
    }

    #[test]
    fn blocked_consumers_wake_on_push_and_shutdown() {
        let q = Arc::new(JobQueue::<u32>::new(4));
        let mut consumers = Vec::new();
        for _ in 0..3 {
            let q = Arc::clone(&q);
            consumers.push(thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(v) = q.pop() {
                    got.push(v);
                }
                got
            }));
        }
        thread::sleep(Duration::from_millis(10));
        for v in 0..20 {
            while q.try_push(v).is_err() {
                thread::yield_now();
            }
        }
        q.shutdown();
        let mut all: Vec<u32> = consumers.into_iter().flat_map(|c| c.join().unwrap()).collect();
        all.sort_unstable();
        assert_eq!(all, (0..20).collect::<Vec<_>>(), "every job consumed exactly once");
    }
}
