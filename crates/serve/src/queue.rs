//! The bounded job queue between connection handlers and the worker
//! pool.
//!
//! Admission control is the whole point: when the queue is full,
//! [`JobQueue::try_push`] fails *immediately* and the handler answers
//! `429` — the server sheds load at the door instead of accumulating a
//! latency backlog no client asked to wait in. Shutdown follows the
//! graceful-drain convention: after [`JobQueue::shutdown`] no new work
//! is admitted, but [`JobQueue::pop`] keeps handing out already-queued
//! jobs until the queue is empty, so every admitted request is answered
//! before the workers exit.
//!
//! Two service disciplines are available. The default is strict FIFO.
//! [`Discipline::Sjf`] (shortest job first, `hmm-serve --sjf`) orders
//! by the caller-supplied cost estimate instead — for simulations the
//! requested `accesses` count, which trace-driven runtime is linear in
//! — so a sweep's small cells are not starved behind its big ones.
//! Ties (and all jobs under FIFO) fall back to arrival order, so equal
//! costs keep FIFO fairness and nothing is ever reordered gratuitously.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// How [`JobQueue::pop`] picks among queued jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Discipline {
    /// Arrival order (the default).
    #[default]
    Fifo,
    /// Smallest cost estimate first; arrival order breaks ties.
    Sjf,
}

#[derive(Debug)]
struct Inner<T> {
    /// `(arrival sequence, cost estimate, job)`.
    items: VecDeque<(u64, u64, T)>,
    next_seq: u64,
    shutdown: bool,
}

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity; the caller should answer `429`.
    Full,
    /// The server is draining; the caller should answer `503`.
    ShuttingDown,
}

/// A bounded multi-producer multi-consumer queue with a configurable
/// service discipline.
#[derive(Debug)]
pub struct JobQueue<T> {
    inner: Mutex<Inner<T>>,
    nonempty: Condvar,
    cap: usize,
    discipline: Discipline,
}

impl<T> JobQueue<T> {
    /// A FIFO queue admitting at most `cap` outstanding jobs.
    pub fn new(cap: usize) -> Self {
        Self::with_discipline(cap, Discipline::Fifo)
    }

    /// A queue with an explicit service discipline.
    pub fn with_discipline(cap: usize, discipline: Discipline) -> Self {
        JobQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(cap),
                next_seq: 0,
                shutdown: false,
            }),
            nonempty: Condvar::new(),
            cap,
            discipline,
        }
    }

    /// The configured bound.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// The configured service discipline.
    pub fn discipline(&self) -> Discipline {
        self.discipline
    }

    /// Jobs currently queued (racy by nature; for metrics only).
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().items.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Admit one job with a cost estimate of zero (FIFO callers).
    pub fn try_push(&self, item: T) -> Result<(), PushError> {
        self.try_push_cost(item, 0)
    }

    /// Admit one job, or refuse without blocking. `cost` orders jobs
    /// under [`Discipline::Sjf`] and is ignored under FIFO.
    pub fn try_push_cost(&self, item: T, cost: u64) -> Result<(), PushError> {
        let mut inner = self.inner.lock().unwrap();
        if inner.shutdown {
            return Err(PushError::ShuttingDown);
        }
        if inner.items.len() >= self.cap {
            return Err(PushError::Full);
        }
        let seq = inner.next_seq;
        inner.next_seq += 1;
        inner.items.push_back((seq, cost, item));
        drop(inner);
        self.nonempty.notify_one();
        Ok(())
    }

    /// Take the next job per the discipline, blocking while the queue
    /// is empty. Returns `None` only once the queue is shut down *and*
    /// drained — the worker's signal to exit.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if !inner.items.is_empty() {
                let idx = match self.discipline {
                    Discipline::Fifo => 0,
                    // O(queue depth) scan; the bound is tens of jobs.
                    Discipline::Sjf => inner
                        .items
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, &(seq, cost, _))| (cost, seq))
                        .map(|(i, _)| i)
                        .unwrap(),
                };
                let (_, _, item) = inner.items.remove(idx).unwrap();
                return Some(item);
            }
            if inner.shutdown {
                return None;
            }
            inner = self.nonempty.wait(inner).unwrap();
        }
    }

    /// Stop admission and wake every blocked consumer. Queued jobs are
    /// still handed out (graceful drain).
    pub fn shutdown(&self) {
        self.inner.lock().unwrap().shutdown = true;
        self.nonempty.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn fifo_order_and_bound() {
        let q = JobQueue::new(3);
        assert_eq!(q.try_push(1), Ok(()));
        assert_eq!(q.try_push(2), Ok(()));
        assert_eq!(q.try_push(3), Ok(()));
        assert_eq!(q.try_push(4), Err(PushError::Full));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.try_push(4), Ok(()), "popping frees a slot");
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), Some(4));
    }

    #[test]
    fn fifo_ignores_costs() {
        let q = JobQueue::new(4);
        q.try_push_cost("big", 1_000_000).unwrap();
        q.try_push_cost("small", 1).unwrap();
        assert_eq!(q.pop(), Some("big"), "FIFO must not reorder by cost");
    }

    #[test]
    fn sjf_prefers_small_jobs_and_breaks_ties_by_arrival() {
        let q = JobQueue::with_discipline(8, Discipline::Sjf);
        q.try_push_cost("big", 2_000_000).unwrap();
        q.try_push_cost("mid-a", 60_000).unwrap();
        q.try_push_cost("small", 5_000).unwrap();
        q.try_push_cost("mid-b", 60_000).unwrap();
        assert_eq!(q.pop(), Some("small"));
        assert_eq!(q.pop(), Some("mid-a"), "equal costs keep arrival order");
        assert_eq!(q.pop(), Some("mid-b"));
        // A small late arrival overtakes the big job that was first in.
        q.try_push_cost("late-small", 1).unwrap();
        assert_eq!(q.pop(), Some("late-small"));
        assert_eq!(q.pop(), Some("big"));
    }

    #[test]
    fn shutdown_drains_then_ends() {
        let q = JobQueue::new(8);
        q.try_push("a").unwrap();
        q.try_push("b").unwrap();
        q.shutdown();
        assert_eq!(q.try_push("c"), Err(PushError::ShuttingDown));
        assert_eq!(q.pop(), Some("a"), "queued work survives shutdown");
        assert_eq!(q.pop(), Some("b"));
        assert_eq!(q.pop(), None, "drained queue signals exit");
    }

    #[test]
    fn blocked_consumers_wake_on_push_and_shutdown() {
        let q = Arc::new(JobQueue::<u32>::new(4));
        let mut consumers = Vec::new();
        for _ in 0..3 {
            let q = Arc::clone(&q);
            consumers.push(thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(v) = q.pop() {
                    got.push(v);
                }
                got
            }));
        }
        thread::sleep(Duration::from_millis(10));
        for v in 0..20 {
            while q.try_push(v).is_err() {
                thread::yield_now();
            }
        }
        q.shutdown();
        let mut all: Vec<u32> = consumers.into_iter().flat_map(|c| c.join().unwrap()).collect();
        all.sort_unstable();
        assert_eq!(all, (0..20).collect::<Vec<_>>(), "every job consumed exactly once");
    }
}
