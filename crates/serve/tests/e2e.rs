//! End-to-end tests: a real `Server` on a loopback socket, driven
//! through the real client. These are the acceptance tests for the
//! serving layer's contract — determinism through the wire, cache
//! accounting, backpressure, the async job lifecycle, and graceful
//! drain.

use hmm_serve::client::{request, HttpResponse};
use hmm_serve::request::{parse_body, Limits};
use hmm_serve::{Server, ServerConfig};
use hmm_telemetry::jsonin::{self, Json};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

const TIMEOUT: Duration = Duration::from_secs(30);

/// A fast request body (~25 ms of simulation in debug builds).
const FAST: &str = r#"{"workload":"pgbench","mode":"live","accesses":3000,"scale":64}"#;

fn small_server() -> Server {
    Server::start(ServerConfig {
        workers: 2,
        conn_threads: 8,
        queue_depth: 8,
        ..ServerConfig::default()
    })
    .expect("bind loopback server")
}

fn post(addr: SocketAddr, path: &str, body: &str) -> HttpResponse {
    request(addr, "POST", path, body, TIMEOUT).expect("request failed")
}

fn get(addr: SocketAddr, path: &str) -> HttpResponse {
    request(addr, "GET", path, "", TIMEOUT).expect("request failed")
}

fn metrics(addr: SocketAddr) -> Json {
    let resp = get(addr, "/metrics");
    assert_eq!(resp.status, 200);
    jsonin::parse(&resp.body).expect("metrics must be valid JSON")
}

fn counter(doc: &Json, name: &str) -> u64 {
    doc.get(name).and_then(|v| v.as_f64()).unwrap_or_else(|| panic!("missing '{name}'")) as u64
}

#[test]
fn health_and_metrics_respond() {
    let server = small_server();
    let addr = server.local_addr();

    let health = get(addr, "/healthz");
    assert_eq!(health.status, 200);
    let doc = jsonin::parse(&health.body).unwrap();
    assert_eq!(doc.get("ok").unwrap().as_bool(), Some(true));
    assert_eq!(doc.get("draining").unwrap().as_bool(), Some(false));

    let doc = metrics(addr);
    assert_eq!(doc.get("schema").unwrap().as_str(), Some("hmm-serve-metrics-v1"));
    assert_eq!(counter(&doc, "accepted"), 0);

    server.shutdown();
}

/// The tentpole determinism guarantee, observed from outside: the same
/// request twice produces byte-identical bodies, the first as a miss and
/// the second as a hit, with the hit counter moving exactly once.
#[test]
fn determinism_through_the_wire() {
    let server = small_server();
    let addr = server.local_addr();

    let first = post(addr, "/v1/simulate", FAST);
    assert_eq!(first.status, 200, "{}", first.body);
    assert_eq!(first.header("x-cache"), Some("miss"));

    // Different spelling, same simulation: field order and whitespace
    // must not defeat the cache.
    let respelled = r#"{ "scale": 64, "accesses": 3000, "mode": "live", "workload": "pgbench" }"#;
    let second = post(addr, "/v1/simulate", respelled);
    assert_eq!(second.status, 200);
    assert_eq!(second.header("x-cache"), Some("hit"));
    assert_eq!(first.body, second.body, "cached body must be byte-identical");

    let doc = metrics(addr);
    assert_eq!(counter(&doc, "cache_hits"), 1, "exactly one hit");
    assert_eq!(counter(&doc, "cache_misses"), 1);
    assert_eq!(counter(&doc, "sim_runs"), 1, "the simulation ran once, not twice");
    assert_eq!(counter(&doc, "accepted"), 2);

    let body = jsonin::parse(&first.body).unwrap();
    assert_eq!(body.get("schema").unwrap().as_str(), Some("hmm-serve-sim-v1"));
    assert_eq!(
        body.get("config").unwrap().get("workload").unwrap().as_str(),
        Some("pgbench"),
        "canonical config echoed in the body"
    );
    assert!(
        body.get("access").unwrap().get("mean_latency_cycles").unwrap().as_f64().unwrap() > 0.0
    );

    server.shutdown();
}

#[test]
fn malformed_requests_get_structured_400s() {
    let server = small_server();
    let addr = server.local_addr();

    for body in [
        "",
        "not json",
        r#"{"mode":"live"}"#,
        r#"{"workload":"pgbench","mode":"warp"}"#,
        r#"{"workload":"pgbench","mode":"live","bogus_field":1}"#,
    ] {
        let resp = post(addr, "/v1/simulate", body);
        assert_eq!(resp.status, 400, "{body:?} -> {}", resp.body);
        let doc = jsonin::parse(&resp.body).expect("errors must be JSON");
        assert!(doc.get("error").unwrap().as_str().is_some(), "{body:?}");
    }

    assert_eq!(get(addr, "/nope").status, 404);
    assert_eq!(post(addr, "/healthz", "").status, 405);
    assert_eq!(get(addr, "/v1/jobs/notanumber").status, 404);
    assert_eq!(get(addr, "/v1/jobs/99999").status, 404);

    let doc = metrics(addr);
    assert!(counter(&doc, "bad_requests") >= 5);
    assert_eq!(counter(&doc, "accepted"), 0, "nothing malformed was admitted");

    server.shutdown();
}

/// An over-limit request is refused at the door, before queueing.
#[test]
fn accesses_limit_is_enforced() {
    let server = Server::start(ServerConfig {
        limits: Limits { max_accesses: 10_000 },
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.local_addr();
    let resp =
        post(addr, "/v1/simulate", r#"{"workload":"pgbench","mode":"live","accesses":20000}"#);
    assert_eq!(resp.status, 400);
    assert!(resp.body.contains("limit"), "{}", resp.body);
    server.shutdown();
}

/// Flooding a tiny queue with distinct async jobs produces immediate
/// `429`s, never hangs — and everything that was admitted completes.
#[test]
fn backpressure_rejects_above_the_bound() {
    let server = Server::start(ServerConfig {
        workers: 1,
        conn_threads: 4,
        queue_depth: 1,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.local_addr();

    let mut accepted_ids = Vec::new();
    let mut rejected = 0u64;
    for seed in 0..12u64 {
        // Unique seeds: every request is a distinct simulation, so the
        // cache and single-flight cannot absorb the flood.
        let body = format!(
            r#"{{"workload":"pgbench","mode":"live","accesses":3000,"scale":64,"seed":{seed}}}"#
        );
        let resp = post(addr, "/v1/jobs", &body);
        match resp.status {
            202 => {
                let doc = jsonin::parse(&resp.body).unwrap();
                accepted_ids.push(counter(&doc, "id"));
            }
            429 => rejected += 1,
            other => panic!("unexpected status {other}: {}", resp.body),
        }
    }
    assert!(rejected > 0, "a 12-deep flood must overflow a 1-deep queue");
    assert!(!accepted_ids.is_empty(), "the queue admits up to its bound");

    // Every admitted job still completes (zero dropped work).
    let deadline = Instant::now() + Duration::from_secs(30);
    for id in &accepted_ids {
        loop {
            let resp = get(addr, &format!("/v1/jobs/{id}"));
            assert_eq!(resp.status, 200);
            let doc = jsonin::parse(&resp.body).unwrap();
            match doc.get("status").unwrap().as_str().unwrap() {
                "done" => break,
                "failed" | "cancelled" => panic!("job {id} did not complete: {}", resp.body),
                _ => {
                    assert!(Instant::now() < deadline, "job {id} never finished");
                    std::thread::sleep(Duration::from_millis(20));
                }
            }
        }
    }

    let doc = metrics(server.local_addr());
    assert_eq!(counter(&doc, "rejected_busy"), rejected);
    assert_eq!(counter(&doc, "accepted"), accepted_ids.len() as u64);
    server.shutdown();
}

#[test]
fn async_job_lifecycle_matches_sync_result() {
    let server = small_server();
    let addr = server.local_addr();

    let submitted = post(addr, "/v1/jobs", FAST);
    assert_eq!(submitted.status, 202, "{}", submitted.body);
    let id = counter(&jsonin::parse(&submitted.body).unwrap(), "id");

    let deadline = Instant::now() + Duration::from_secs(30);
    let result = loop {
        let resp = get(addr, &format!("/v1/jobs/{id}"));
        assert_eq!(resp.status, 200);
        let doc = jsonin::parse(&resp.body).unwrap();
        if doc.get("status").unwrap().as_str() == Some("done") {
            break resp.body;
        }
        assert!(Instant::now() < deadline, "job never finished");
        std::thread::sleep(Duration::from_millis(20));
    };

    // The sync endpoint must now hit the cache with the identical body
    // the async job embedded under `result`.
    let sync = post(addr, "/v1/simulate", FAST);
    assert_eq!(sync.status, 200);
    assert_eq!(sync.header("x-cache"), Some("hit"));
    let embedded = jsonin::parse(&result).unwrap();
    let sync_doc = jsonin::parse(&sync.body).unwrap();
    assert_eq!(
        embedded.get("result").unwrap().get("digest").unwrap().as_f64(),
        sync_doc.get("digest").unwrap().as_f64(),
        "async and sync answers describe the same run"
    );

    // A second submission of the same body is answered from the cache as
    // an instantly-done job.
    let resubmitted = post(addr, "/v1/jobs", FAST);
    assert_eq!(resubmitted.status, 202);
    assert_eq!(resubmitted.header("x-cache"), Some("hit"));
    let doc = jsonin::parse(&resubmitted.body).unwrap();
    assert_eq!(doc.get("status").unwrap().as_str(), Some("done"));

    server.shutdown();
}

/// Two concurrent identical requests run the simulation once
/// (single-flight) and both get the full answer.
#[test]
fn identical_concurrent_requests_coalesce() {
    let server = small_server();
    let addr = server.local_addr();
    let body = r#"{"workload":"mg","mode":"static","accesses":20000,"scale":64}"#;

    let threads: Vec<_> = (0..4)
        .map(|_| {
            std::thread::spawn(move || {
                let resp = post(addr, "/v1/simulate", body);
                assert_eq!(resp.status, 200, "{}", resp.body);
                resp.body
            })
        })
        .collect();
    let bodies: Vec<String> = threads.into_iter().map(|t| t.join().unwrap()).collect();
    for b in &bodies[1..] {
        assert_eq!(b, &bodies[0], "coalesced answers must be byte-identical");
    }

    let doc = metrics(addr);
    assert_eq!(counter(&doc, "sim_runs"), 1, "one simulation served all four clients");
    assert_eq!(counter(&doc, "accepted"), 4);
    server.shutdown();
}

#[test]
fn queued_jobs_can_be_cancelled() {
    let server = Server::start(ServerConfig {
        workers: 1,
        conn_threads: 4,
        queue_depth: 8,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.local_addr();

    // Occupy the only worker with ~2.5s of simulation (debug builds).
    let slow = r#"{"workload":"pgbench","mode":"live","accesses":1000000,"scale":64,"seed":77}"#;
    let running = post(addr, "/v1/jobs", slow);
    assert_eq!(running.status, 202, "{}", running.body);
    let running_id = counter(&jsonin::parse(&running.body).unwrap(), "id");

    let queued = post(addr, "/v1/jobs", FAST);
    assert_eq!(queued.status, 202);
    let queued_id = counter(&jsonin::parse(&queued.body).unwrap(), "id");

    let cancel = request(addr, "DELETE", &format!("/v1/jobs/{queued_id}"), "", TIMEOUT).unwrap();
    assert_eq!(cancel.status, 200, "{}", cancel.body);
    let doc = jsonin::parse(&cancel.body).unwrap();
    assert_eq!(doc.get("status").unwrap().as_str(), Some("cancelled"));

    let polled = get(addr, &format!("/v1/jobs/{queued_id}"));
    let doc = jsonin::parse(&polled.body).unwrap();
    assert_eq!(doc.get("status").unwrap().as_str(), Some("cancelled"));

    // After cancellation the same request admits fresh instead of
    // joining the cancelled job.
    let retried = post(addr, "/v1/jobs", FAST);
    assert_eq!(retried.status, 202);
    let retried_id = counter(&jsonin::parse(&retried.body).unwrap(), "id");
    assert_ne!(retried_id, queued_id);

    // The drain finishes the slow job, the retried job, and skips the
    // cancelled one.
    let final_doc = jsonin::parse(&server.shutdown()).unwrap();
    assert_eq!(counter(&final_doc, "cancelled"), 1);
    assert_eq!(counter(&final_doc, "sim_runs"), 2, "cancelled job never ran");
    let _ = running_id;
}

/// A sync request with a tiny deadline gets `504` plus the job id, and
/// the job still completes in the background.
#[test]
fn sync_timeout_hands_back_a_pollable_job() {
    let server = small_server();
    let addr = server.local_addr();
    let body =
        r#"{"workload":"pgbench","mode":"live","accesses":150000,"scale":64,"timeout_ms":1}"#;
    let resp = post(addr, "/v1/simulate", body);
    assert_eq!(resp.status, 504, "{}", resp.body);
    let id = counter(&jsonin::parse(&resp.body).unwrap(), "id");

    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let polled = get(addr, &format!("/v1/jobs/{id}"));
        let doc = jsonin::parse(&polled.body).unwrap();
        if doc.get("status").unwrap().as_str() == Some("done") {
            break;
        }
        assert!(Instant::now() < deadline, "timed-out job never completed");
        std::thread::sleep(Duration::from_millis(20));
    }

    let doc = metrics(addr);
    assert_eq!(counter(&doc, "sync_timeouts"), 1);
    server.shutdown();
}

/// Graceful drain: admitted jobs finish, late arrivals are refused, the
/// final counters balance, and the listener goes away.
#[test]
fn shutdown_drains_admitted_work() {
    let server = Server::start(ServerConfig {
        workers: 1,
        conn_threads: 4,
        queue_depth: 8,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.local_addr();

    let mut ids = Vec::new();
    for seed in 100..104u64 {
        let body = format!(
            r#"{{"workload":"pgbench","mode":"live","accesses":20000,"scale":64,"seed":{seed}}}"#
        );
        let resp = post(addr, "/v1/jobs", &body);
        assert_eq!(resp.status, 202);
        ids.push(counter(&jsonin::parse(&resp.body).unwrap(), "id"));
    }

    let final_doc = jsonin::parse(&server.shutdown()).unwrap();
    assert_eq!(counter(&final_doc, "sim_runs"), 4, "every admitted job ran before exit");
    assert_eq!(counter(&final_doc, "in_flight"), 0);
    assert_eq!(counter(&final_doc, "queue_len"), 0);
    assert_eq!(
        counter(&final_doc, "accepted"),
        counter(&final_doc, "cache_hits") + counter(&final_doc, "cache_misses"),
        "the admission identity survives a drain"
    );

    // The acceptors are gone; fresh connections must fail (possibly
    // after the kernel backlog drains, hence the retry loop).
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        match request(addr, "GET", "/healthz", "", Duration::from_millis(200)) {
            Err(_) => break,
            Ok(_) => {
                assert!(Instant::now() < deadline, "listener still answering after shutdown");
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
}

/// `POST /admin/shutdown` flips the server into draining: health says
/// so, new admissions get `503`, and the binary's poll loop would exit.
#[test]
fn admin_shutdown_starts_the_drain() {
    let server = small_server();
    let addr = server.local_addr();

    let resp = post(addr, "/admin/shutdown", "");
    assert_eq!(resp.status, 200);
    assert!(server.is_draining());

    // Connections racing the drain either get refused admission (503) or
    // cannot connect at all once the acceptors notice the flag.
    if let Ok(late) = request(addr, "POST", "/v1/simulate", FAST, Duration::from_secs(2)) {
        assert_eq!(late.status, 503, "{}", late.body);
    }
    server.shutdown();
}

/// Epoch-boundary determinism, pinned through the cache key: access
/// counts landing one short of, exactly on, and one past a monitoring
/// epoch (swap-interval) boundary each resolve to their own cache entry,
/// and two independent server instances (separate caches, separate
/// controller/arena state) answer each of them byte-identically. This is
/// the serving-layer guard for the batched trace generation and
/// epoch-scoped arenas: a stray access leaking across an epoch batch
/// would diverge one server from the other or alias two entries.
#[test]
fn epoch_boundary_counts_are_distinct_and_deterministic() {
    let bodies: Vec<String> = [3999u64, 4000, 4001]
        .iter()
        .map(|a| {
            format!(
                r#"{{"workload":"pgbench","mode":"live","interval":2000,"accesses":{a},"warmup":1000,"scale":64}}"#
            )
        })
        .collect();

    // Straddling the boundary must change the resolved config, hence the
    // cache key — all three are distinct simulations.
    let keys: Vec<u64> =
        bodies.iter().map(|b| parse_body(b, &Limits::default()).unwrap().key).collect();
    assert_ne!(keys[0], keys[1]);
    assert_ne!(keys[1], keys[2]);
    assert_ne!(keys[0], keys[2]);

    let server_a = small_server();
    let server_b = small_server();
    for body in &bodies {
        let a = post(server_a.local_addr(), "/v1/simulate", body);
        let b = post(server_b.local_addr(), "/v1/simulate", body);
        assert_eq!(a.status, 200, "{}", a.body);
        assert_eq!(b.status, 200, "{}", b.body);
        assert_eq!(a.header("x-cache"), Some("miss"), "instances share no cache");
        assert_eq!(a.body, b.body, "independent instances must agree byte-for-byte");
    }

    // Asking instance A again hits its cache and repeats the bytes.
    let again = post(server_a.local_addr(), "/v1/simulate", &bodies[1]);
    assert_eq!(again.header("x-cache"), Some("hit"));
    server_a.shutdown();
    server_b.shutdown();
}
