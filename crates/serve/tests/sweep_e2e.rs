//! End-to-end tests for the sweep subsystem: expansion and dedup
//! accounting through `POST /v1/sweeps`, monotone progress, SJF
//! admission, the coordinator topology surviving a SIGKILLed peer, and
//! — the acceptance bar — the served figures document reconciling
//! byte-for-byte with an in-process run over the same cells via
//! `hmm_simulator::experiments::run_grid`.

use hmm_serve::client::{request, HttpResponse};
use hmm_serve::request::{parse_body, Limits};
use hmm_serve::response::render_run;
use hmm_serve::{Server, ServerConfig};
use hmm_simulator::experiments::run_grid;
use hmm_sweep::spec::render_json;
use hmm_sweep::{expand, Ring, SweepCounts};
use hmm_telemetry::jsonin::{self, Json};
use std::collections::HashSet;
use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const TIMEOUT: Duration = Duration::from_secs(30);

fn post(addr: SocketAddr, path: &str, body: &str) -> HttpResponse {
    request(addr, "POST", path, body, TIMEOUT).expect("request failed")
}

fn get(addr: SocketAddr, path: &str) -> HttpResponse {
    request(addr, "GET", path, "", TIMEOUT).expect("request failed")
}

fn counter(doc: &Json, name: &str) -> u64 {
    doc.get(name).and_then(|v| v.as_f64()).unwrap_or_else(|| panic!("missing '{name}'")) as u64
}

/// Submit a sweep and return its id plus the submit-time accounting.
fn submit_sweep(addr: SocketAddr, spec: &str) -> (u64, u64, u64, u64) {
    let resp = post(addr, "/v1/sweeps", spec);
    assert_eq!(resp.status, 202, "{}", resp.body);
    let doc = jsonin::parse(&resp.body).unwrap();
    (
        counter(&doc, "id"),
        counter(&doc, "expanded"),
        counter(&doc, "deduped"),
        counter(&doc, "cells"),
    )
}

/// Poll a sweep to its terminal state, asserting on every snapshot that
/// the non-quiescent identities hold and that `done` never regresses.
fn wait_sweep(addr: SocketAddr, id: u64) -> (Json, SweepCounts) {
    let deadline = Instant::now() + Duration::from_secs(120);
    let mut last_done = 0u64;
    loop {
        let resp = get(addr, &format!("/v1/sweeps/{id}"));
        assert_eq!(resp.status, 200, "{}", resp.body);
        let doc = jsonin::parse(&resp.body).unwrap();
        let counts = SweepCounts::from_json(doc.get("counts").unwrap()).unwrap();
        counts.check(false).unwrap_or_else(|e| panic!("identities broken mid-flight: {e}"));
        assert!(counts.done >= last_done, "progress regressed: {} -> {}", last_done, counts.done);
        last_done = counts.done;
        if doc.get("status").unwrap().as_str() != Some("running") {
            return (doc, counts);
        }
        assert!(Instant::now() < deadline, "sweep {id} never finished");
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// The reference path: expand + parse + dedup exactly as the server
/// does, run the cells in-process through the experiments grid runner,
/// render each result with the serving renderer, and aggregate.
fn in_process_figures(spec: &str) -> String {
    let bodies = expand(spec, 1024).unwrap();
    let limits = Limits::default();
    let mut sims = Vec::new();
    let mut seen = HashSet::new();
    for body in &bodies {
        let sim = parse_body(body, &limits).unwrap();
        if seen.insert(sim.key) {
            sims.push(sim);
        }
    }
    let cfgs: Vec<_> = sims.iter().map(|s| s.cfg).collect();
    let (results, _totals) = run_grid(&cfgs);
    let rendered: Vec<String> =
        sims.iter().zip(&results).map(|(s, r)| render_run(&s.canonical, r)).collect();
    hmm_sweep::aggregate::figures_doc(&rendered).unwrap()
}

/// Extract the figures document from a status document as raw text.
/// Both sides of every comparison go through the same parse→render
/// round trip, which is the identity on workspace-rendered JSON.
fn figures_text(status_doc: &Json) -> String {
    let figures = status_doc.get("figures").expect("status lacks 'figures'");
    assert!(!matches!(figures, Json::Null), "finished sweep must carry figures");
    render_json(figures)
}

#[test]
fn sweep_expands_dedups_and_matches_in_process_aggregate() {
    let server =
        Server::start(ServerConfig { workers: 2, conn_threads: 8, ..ServerConfig::default() })
            .unwrap();
    let addr = server.local_addr();

    // "64K" and 65536 are two spellings of one page size, so the 2×2
    // grid holds only two distinct simulations.
    let spec = r#"{"workload":"pgbench","mode":"live","page":["64K",65536],
                   "interval":[1000,10000],"accesses":3000,"scale":64}"#;
    let (id, expanded, deduped, cells) = submit_sweep(addr, spec);
    assert_eq!(expanded, 4);
    assert_eq!(deduped, 2, "spelling variants must coalesce by canonical hash");
    assert_eq!(cells, 2);

    let (doc, counts) = wait_sweep(addr, id);
    assert_eq!(doc.get("status").unwrap().as_str(), Some("done"));
    counts.check(true).unwrap();
    assert_eq!(counts.done, 2);
    assert_eq!(counts.failed, 0);
    assert_eq!(counts.dispatched, 2, "local cells dispatch exactly once");

    // Per-cell entries carry the canonical config and terminal states.
    let cell_list = match doc.get("cells").unwrap() {
        Json::Arr(items) => items,
        other => panic!("cells must be an array, got {other:?}"),
    };
    assert_eq!(cell_list.len(), 2);
    for cell in cell_list {
        assert_eq!(cell.get("status").unwrap().as_str(), Some("done"));
        assert!(cell.get("config").unwrap().get("page_shift").is_some());
    }

    // The acceptance bar: byte-identical to the in-process aggregate.
    assert_eq!(
        figures_text(&doc),
        render_json(&jsonin::parse(&in_process_figures(spec)).unwrap()),
        "served figures must be byte-identical to the in-process run"
    );

    // The raw figures endpoint serves the document verbatim — including
    // the full-range u64 digests no f64 round trip can represent — so
    // this comparison needs no render normalisation at all.
    let raw = get(addr, &format!("/v1/sweeps/{id}/figures"));
    assert_eq!(raw.status, 200);
    assert_eq!(raw.body, in_process_figures(spec), "raw figures must match byte-for-byte");

    // Unknown sweeps and malformed specs answer with structured errors.
    assert_eq!(get(addr, "/v1/sweeps/99999").status, 404);
    assert_eq!(get(addr, "/v1/sweeps/99999/figures").status, 404);
    assert_eq!(get(addr, "/v1/sweeps/nope/figures").status, 404);
    assert_eq!(post(addr, "/v1/sweeps", r#"{"workload":[]}"#).status, 400);
    assert_eq!(post(addr, "/v1/sweeps", r#"{"workload":"x","mode":"live"}"#).status, 400);
    assert_eq!(get(addr, "/v1/sweeps").status, 405);

    server.shutdown();
}

/// Sweep cells flow through the same admission path as clients, so the
/// result cache absorbs a resubmission of the same grid: zero new
/// simulations, same bytes.
#[test]
fn resubmitted_sweep_is_served_from_the_cache() {
    let server =
        Server::start(ServerConfig { workers: 2, conn_threads: 8, ..ServerConfig::default() })
            .unwrap();
    let addr = server.local_addr();
    let spec = r#"{"workload":"mg","mode":"static","accesses":3000,"scale":64,"seed":[5,6]}"#;

    let (id1, ..) = submit_sweep(addr, spec);
    let (doc1, _) = wait_sweep(addr, id1);
    let metrics = jsonin::parse(&get(addr, "/metrics").body).unwrap();
    let runs_after_first = counter(&metrics, "sim_runs");

    let (id2, ..) = submit_sweep(addr, spec);
    assert_ne!(id2, id1);
    let (doc2, _) = wait_sweep(addr, id2);
    assert_eq!(figures_text(&doc1), figures_text(&doc2));

    let metrics = jsonin::parse(&get(addr, "/metrics").body).unwrap();
    assert_eq!(
        counter(&metrics, "sim_runs"),
        runs_after_first,
        "the second sweep must be answered entirely from the cache"
    );
    assert_eq!(counter(&metrics, "sweeps_completed"), 2);

    server.shutdown();
}

/// One worker, six cells: `done` climbs strictly through intermediate
/// values — the progress report is live, not a final-state artifact.
#[test]
fn progress_is_monotone_and_live() {
    let server = Server::start(ServerConfig {
        workers: 1,
        conn_threads: 4,
        queue_depth: 2,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.local_addr();
    let spec =
        r#"{"workload":"pgbench","mode":"live","accesses":60000,"scale":64,"seed":[1,2,3,4,5,6]}"#;
    let (id, _, _, cells) = submit_sweep(addr, spec);
    assert_eq!(cells, 6);

    let mut observed = HashSet::new();
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let doc = jsonin::parse(&get(addr, &format!("/v1/sweeps/{id}")).body).unwrap();
        let counts = SweepCounts::from_json(doc.get("counts").unwrap()).unwrap();
        counts.check(false).unwrap();
        observed.insert(counts.done);
        if doc.get("status").unwrap().as_str() != Some("running") {
            break;
        }
        assert!(Instant::now() < deadline, "sweep never finished");
        std::thread::sleep(Duration::from_millis(5));
    }
    // wait_sweep already pins monotonicity elsewhere; here we pin
    // liveness: with one worker and ~150ms cells, polling every 5ms
    // must catch the count somewhere strictly between start and end.
    assert!(observed.contains(&6), "must observe completion");
    assert!(
        observed.iter().any(|&d| d > 0 && d < 6),
        "never observed partial progress: {observed:?}"
    );

    server.shutdown();
}

/// With `--sjf`, a small job submitted behind a big one overtakes it in
/// the queue (flag-gated shortest-job-first admission).
#[test]
fn sjf_lets_small_cells_overtake_big_ones() {
    let server = Server::start(ServerConfig {
        workers: 1,
        conn_threads: 4,
        queue_depth: 8,
        sjf: true,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.local_addr();

    // Occupy the only worker so the next two jobs queue up together.
    let blocker = r#"{"workload":"pgbench","mode":"live","accesses":300000,"scale":64,"seed":41}"#;
    assert_eq!(post(addr, "/v1/jobs", blocker).status, 202);
    std::thread::sleep(Duration::from_millis(150));

    let big = r#"{"workload":"pgbench","mode":"live","accesses":900000,"scale":64,"seed":42}"#;
    let small = r#"{"workload":"pgbench","mode":"live","accesses":3000,"scale":64,"seed":43}"#;
    let big_resp = post(addr, "/v1/jobs", big);
    let small_resp = post(addr, "/v1/jobs", small);
    assert_eq!(big_resp.status, 202, "{}", big_resp.body);
    assert_eq!(small_resp.status, 202, "{}", small_resp.body);
    let big_id = counter(&jsonin::parse(&big_resp.body).unwrap(), "id");
    let small_id = counter(&jsonin::parse(&small_resp.body).unwrap(), "id");

    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let doc = jsonin::parse(&get(addr, &format!("/v1/jobs/{small_id}")).body).unwrap();
        if doc.get("status").unwrap().as_str() == Some("done") {
            break;
        }
        assert!(Instant::now() < deadline, "small job never finished");
        std::thread::sleep(Duration::from_millis(10));
    }
    let doc = jsonin::parse(&get(addr, &format!("/v1/jobs/{big_id}")).body).unwrap();
    assert_ne!(
        doc.get("status").unwrap().as_str(),
        Some("done"),
        "the big job must not finish before the small one under SJF"
    );

    server.shutdown();
}

/// Spawn a real peer server process and parse its bound address off the
/// banner line.
fn spawn_peer() -> (Child, SocketAddr) {
    let bin = env!("CARGO_BIN_EXE_hmm-serve");
    let mut child = Command::new(bin)
        .args(["--addr", "127.0.0.1:0", "--workers", "2", "--conn-threads", "4"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn peer");
    let stdout = child.stdout.take().unwrap();
    let mut line = String::new();
    BufReader::new(stdout).read_line(&mut line).unwrap();
    let addr = line
        .trim()
        .strip_prefix("hmm-serve listening on ")
        .unwrap_or_else(|| panic!("unexpected banner: {line:?}"))
        .parse()
        .expect("parse peer address");
    (child, addr)
}

/// The distributed acceptance test: two real peer processes, one
/// SIGKILLed mid-run. The coordinator re-shards the dead peer's cells
/// onto the survivor, completes every cell, keeps the dispatch ledger
/// balanced, and still produces the byte-identical aggregate.
#[test]
fn coordinator_survives_a_sigkilled_peer() {
    let (mut peer_a, addr_a) = spawn_peer();
    let (mut peer_b, addr_b) = spawn_peer();
    let peers = vec![addr_a.to_string(), addr_b.to_string()];

    let coordinator = Server::start(ServerConfig {
        workers: 1,
        conn_threads: 4,
        peers: peers.clone(),
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = coordinator.local_addr();

    // ~0.8s per cell in debug builds: long enough that the victim peer
    // is provably still working when the kill lands.
    let spec =
        r#"{"workload":"pgbench","mode":"live","accesses":300000,"scale":64,"seed":[1,2,3,4]}"#;

    // The ring is a pure function of (peer set, key), so the test can
    // compute which peer owns the first cell and kill exactly that one,
    // guaranteeing the retry path runs.
    let first_cell = parse_body(&expand(spec, 16).unwrap()[0], &Limits::default()).unwrap();
    let victim = Ring::new(&peers).assign(first_cell.key);

    let (id, _, _, cells) = submit_sweep(addr, spec);
    assert_eq!(cells, 4);
    std::thread::sleep(Duration::from_millis(100));
    let victim_child = if victim == 0 { &mut peer_a } else { &mut peer_b };
    victim_child.kill().expect("SIGKILL the victim peer");

    let (doc, counts) = wait_sweep(addr, id);
    assert_eq!(doc.get("status").unwrap().as_str(), Some("done"), "{}", counts.to_json());
    counts.check(true).unwrap();
    assert_eq!(counts.done, 4, "every cell must complete despite the kill");
    assert_eq!(counts.failed, 0);
    assert!(counts.retries >= 1, "the victim's cells must have been re-dispatched");

    assert_eq!(
        figures_text(&doc),
        render_json(&jsonin::parse(&in_process_figures(spec)).unwrap()),
        "peer-computed figures must be byte-identical to the in-process run"
    );

    let _ = peer_a.kill();
    let _ = peer_b.kill();
    let _ = peer_a.wait();
    let _ = peer_b.wait();
    coordinator.shutdown();
}

/// `hmm-loadgen --sweep --check` drives the whole client-side protocol:
/// submit, poll monotonically, verify the identities, and reconcile the
/// figures totals against the embedded results.
#[test]
fn loadgen_sweep_mode_reconciles() {
    let server =
        Server::start(ServerConfig { workers: 2, conn_threads: 8, ..ServerConfig::default() })
            .unwrap();
    let addr = server.local_addr();
    let spec = r#"{"workload":"pgbench","mode":"live","accesses":3000,"scale":64,"seed":[1,2]}"#;
    let figures_path =
        std::env::temp_dir().join(format!("hmm-sweep-fig-{}.json", std::process::id()));
    let figures_path = figures_path.to_str().unwrap().to_string();

    let out = Command::new(env!("CARGO_BIN_EXE_hmm-loadgen"))
        .args(["--addr", &addr.to_string(), "--sweep", spec, "--check"])
        .args(["--figures-out", &figures_path])
        .output()
        .expect("run hmm-loadgen");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(0), "stdout: {stdout}\nstderr: {stderr}");
    assert!(stdout.contains("figures totals reconcile"), "{stdout}");

    // The saved document must be byte-identical to the in-process run of
    // the same grid — this is the comparison the CI sweep-smoke job makes
    // with `cmp` against `hmm-bench sweep --out`.
    let saved = std::fs::read_to_string(&figures_path).expect("saved figures");
    assert_eq!(saved, format!("{}\n", in_process_figures(spec)));
    std::fs::remove_file(&figures_path).ok();

    server.shutdown();
}
