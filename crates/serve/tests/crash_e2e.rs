//! Crash-recovery end-to-end: SIGKILL the real `hmm-serve` process —
//! no drain, no warning — restart it over the same `--store-dir`, and
//! require that (a) previously answered requests come back as cache
//! hits with byte-identical bodies, (b) a hand-corrupted store entry is
//! quarantined rather than served, and (c) a job killed mid-simulation
//! resumes from its last checkpoint and still produces the exact bytes
//! an uninterrupted run produces.

#![cfg(unix)]

use hmm_serve::client::request;
use hmm_serve::request::{parse_body, Limits};
use hmm_serve::response::render_run;
use hmm_simulator::driver::run;
use hmm_telemetry::jsonin;
use std::fs;
use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const TIMEOUT: Duration = Duration::from_secs(30);

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hmm-crash-e2e-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Spawn the server binary and parse the bound address off its banner.
fn spawn_server(extra: &[&str]) -> (Child, SocketAddr) {
    let mut args = vec!["--addr", "127.0.0.1:0", "--workers", "2", "--conn-threads", "4"];
    args.extend_from_slice(extra);
    let mut child = Command::new(env!("CARGO_BIN_EXE_hmm-serve"))
        .args(&args)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn hmm-serve");
    let stdout = child.stdout.take().unwrap();
    let mut line = String::new();
    BufReader::new(stdout).read_line(&mut line).unwrap();
    let addr = line
        .trim()
        .strip_prefix("hmm-serve listening on ")
        .unwrap_or_else(|| panic!("unexpected banner: {line:?}"))
        .parse()
        .expect("parse bound address");
    (child, addr)
}

/// SIGKILL — the whole point: no drain, no flush, no goodbye.
fn kill9(child: &mut Child) {
    child.kill().expect("SIGKILL");
    child.wait().expect("reap");
}

fn metric(addr: SocketAddr, name: &str) -> f64 {
    let resp = request(addr, "GET", "/metrics", "", TIMEOUT).expect("metrics");
    assert_eq!(resp.status, 200);
    let doc = jsonin::parse(&resp.body).expect("metrics parse");
    doc.get(name)
        .unwrap_or_else(|| panic!("metrics document has no '{name}'"))
        .as_f64()
        .unwrap_or_else(|| panic!("'{name}' is not a number"))
}

fn graceful_exit(mut child: Child, addr: SocketAddr) {
    let _ = request(addr, "POST", "/admin/shutdown", "", TIMEOUT);
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            assert_eq!(status.code(), Some(0), "graceful drain must exit 0");
            return;
        }
        if Instant::now() > deadline {
            let _ = child.kill();
            panic!("server did not exit after drain");
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

const BODY_A: &str = r#"{"workload":"pgbench","mode":"static","accesses":3000,"scale":64}"#;
const BODY_B: &str = r#"{"workload":"mg","mode":"live","accesses":3000,"scale":64}"#;

#[test]
fn sigkill_restart_serves_warm_hits_and_quarantines_corruption() {
    let dir = tmpdir("warm");
    let store_dir = dir.to_str().unwrap();

    // Round one: answer two distinct configs, then die without warning.
    let (mut child, addr) = spawn_server(&["--store-dir", store_dir]);
    let a1 = request(addr, "POST", "/v1/simulate", BODY_A, TIMEOUT).expect("simulate A");
    let b1 = request(addr, "POST", "/v1/simulate", BODY_B, TIMEOUT).expect("simulate B");
    assert_eq!((a1.status, b1.status), (200, 200));
    assert_eq!(a1.header("x-cache"), Some("miss"));
    let a2 = request(addr, "POST", "/v1/simulate", BODY_A, TIMEOUT).expect("repeat A");
    assert_eq!(a2.header("x-cache"), Some("hit"));
    assert_eq!(a2.body, a1.body);
    assert_eq!(metric(addr, "store_entries"), 2.0);
    kill9(&mut child);

    // Corrupt one stored entry the way a torn write would: truncate it.
    let entries: Vec<PathBuf> =
        fs::read_dir(dir.join("entries")).unwrap().map(|f| f.unwrap().path()).collect();
    assert_eq!(entries.len(), 2, "both results must be on disk");
    let victim = &entries[0];
    let raw = fs::read(victim).unwrap();
    fs::write(victim, &raw[..raw.len() / 2]).unwrap();

    // Round two: same directory, fresh process.
    let (child, addr) = spawn_server(&["--store-dir", store_dir]);
    assert_eq!(
        metric(addr, "store_corrupt_quarantined"),
        1.0,
        "the truncated entry must be caught at rehydration"
    );
    assert_eq!(metric(addr, "store_entries"), 1.0);
    assert_eq!(fs::read_dir(dir.join("quarantine")).unwrap().count(), 1);

    // The intact entry answers as a warm hit; the quarantined one is
    // re-simulated, never served from the bad file. Either way the body
    // is byte-identical to the pre-kill answer (bit-determinism).
    let a3 = request(addr, "POST", "/v1/simulate", BODY_A, TIMEOUT).expect("A after restart");
    let b3 = request(addr, "POST", "/v1/simulate", BODY_B, TIMEOUT).expect("B after restart");
    assert_eq!(a3.body, a1.body, "A must survive the crash byte-identically");
    assert_eq!(b3.body, b1.body, "B must survive the crash byte-identically");
    let hits = [&a3, &b3].iter().filter(|r| r.header("x-cache") == Some("hit")).count();
    assert_eq!(hits, 1, "exactly one of the two survived on disk");

    // Now both are warm again, and the admission identity still holds.
    let a4 = request(addr, "POST", "/v1/simulate", BODY_A, TIMEOUT).unwrap();
    let b4 = request(addr, "POST", "/v1/simulate", BODY_B, TIMEOUT).unwrap();
    assert_eq!(a4.header("x-cache"), Some("hit"));
    assert_eq!(b4.header("x-cache"), Some("hit"));
    assert_eq!(metric(addr, "accepted"), metric(addr, "cache_hits") + metric(addr, "cache_misses"));

    graceful_exit(child, addr);
    let _ = fs::remove_dir_all(&dir);
}

/// Wait until `dir` contains at least one file, with a deadline.
fn wait_nonempty(dir: &Path, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if fs::read_dir(dir).map(|d| d.count() > 0).unwrap_or(false) {
            return;
        }
        if Instant::now() > deadline {
            panic!("no {what} appeared in {} within 60s", dir.display());
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn sigkill_mid_job_resumes_from_checkpoint_bit_identically() {
    // Big enough that the process dies mid-simulation, checkpointed
    // often enough that one lands quickly.
    let body = r#"{"workload":"pgbench","mode":"live","accesses":1000000,"scale":64}"#;

    // Reference: what an uninterrupted run of this exact request renders.
    let sim = parse_body(body, &Limits::default()).expect("reference parse");
    let reference = render_run(&sim.canonical, &run(&sim.cfg));

    let dir = tmpdir("resume");
    let store_dir = dir.to_str().unwrap();
    let flags = [
        "--store-dir",
        store_dir,
        "--snapshot-every",
        "25000",
        "--workers",
        "1",
        "--sync-timeout-ms",
        "110000",
    ];

    let (mut child, addr) = spawn_server(&flags);
    let submit = request(addr, "POST", "/v1/jobs", body, TIMEOUT).expect("submit job");
    assert_eq!(submit.status, 202, "{}", submit.body);
    assert_eq!(submit.header("x-cache"), Some("miss"));

    // Die as soon as the first checkpoint is durable.
    wait_nonempty(&dir.join("checkpoints"), "checkpoint");
    kill9(&mut child);
    assert_eq!(
        fs::read_dir(dir.join("entries")).unwrap().count(),
        0,
        "the job must not have finished before the kill, or this test proves nothing"
    );

    // Restart: the checkpoint is re-admitted and resumed, and a client
    // asking for the same config gets the exact uninterrupted bytes.
    let (child, addr) = spawn_server(&flags);
    let resp = request(addr, "POST", "/v1/simulate", body, Duration::from_secs(120))
        .expect("simulate after restart");
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert_eq!(resp.body, reference, "resumed job must match the uninterrupted run exactly");

    assert_eq!(metric(addr, "resumed_jobs"), 1.0, "the job must have resumed, not restarted");
    assert!(metric(addr, "snapshots_written") >= 1.0);
    assert_eq!(metric(addr, "store_corrupt_quarantined"), 0.0);
    assert_eq!(metric(addr, "accepted"), metric(addr, "cache_hits") + metric(addr, "cache_misses"));

    graceful_exit(child, addr);
    let _ = fs::remove_dir_all(&dir);
}
