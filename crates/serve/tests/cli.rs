//! Negative CLI tests for `hmm-serve` and `hmm-loadgen`, plus a
//! process-level smoke test of the server binary's lifecycle: boot,
//! answer requests, drain cleanly on `POST /admin/shutdown`, exit 0.

use hmm_serve::client::request;
use std::io::{BufRead, BufReader};
use std::process::{Command, Output, Stdio};
use std::time::{Duration, Instant};

fn run(bin: &str, args: &[&str]) -> Output {
    Command::new(bin).args(args).output().unwrap_or_else(|e| panic!("spawn {bin}: {e}"))
}

/// The workspace-wide convention: exit 2, exactly one stderr line,
/// naming the offending input.
fn assert_one_line_exit2(out: &Output, needle: &str) {
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(2), "stderr: {stderr}");
    assert_eq!(
        stderr.trim_end().lines().count(),
        1,
        "diagnostic must be one line, got: {stderr:?}"
    );
    assert!(stderr.contains(needle), "wanted '{needle}' in: {stderr}");
}

#[test]
fn hmm_serve_rejects_invalid_input_with_one_line() {
    let bin = env!("CARGO_BIN_EXE_hmm-serve");
    assert_one_line_exit2(&run(bin, &["--bogus"]), "--bogus");
    assert_one_line_exit2(&run(bin, &["--workers", "lots"]), "lots");
    assert_one_line_exit2(&run(bin, &["--queue-depth"]), "--queue-depth");
    assert_one_line_exit2(&run(bin, &["--addr", "not-an-addr"]), "failed to start");
    assert_one_line_exit2(&run(bin, &["--max-sweep-cells", "many"]), "many");
    assert_one_line_exit2(&run(bin, &["--coordinator"]), "requires --peers");
    assert_one_line_exit2(&run(bin, &["--peers", "127.0.0.1:9000"]), "--coordinator");
    assert_one_line_exit2(
        &run(bin, &["--coordinator", "--peers", "nowhere"]),
        "invalid peer address",
    );
}

#[test]
fn hmm_serve_rejects_invalid_store_flags_with_one_line() {
    let bin = env!("CARGO_BIN_EXE_hmm-serve");
    assert_one_line_exit2(&run(bin, &["--store-dir"]), "--store-dir");
    assert_one_line_exit2(&run(bin, &["--store-dir", ""]), "non-empty path");
    assert_one_line_exit2(
        &run(bin, &["--store-dir", "/tmp/s", "--store-max-bytes", "lots"]),
        "invalid size for --store-max-bytes",
    );
    assert_one_line_exit2(
        &run(bin, &["--store-dir", "/tmp/s", "--store-max-bytes", "0"]),
        "invalid size for --store-max-bytes",
    );
    assert_one_line_exit2(
        &run(bin, &["--store-dir", "/tmp/s", "--snapshot-every", "0"]),
        "at least 1",
    );
    assert_one_line_exit2(
        &run(bin, &["--store-max-bytes", "64M"]),
        "--store-max-bytes only makes sense with --store-dir",
    );
    assert_one_line_exit2(
        &run(bin, &["--snapshot-every", "1000"]),
        "--snapshot-every only makes sense with --store-dir",
    );
    // A store rooted somewhere unwritable is a startup failure, not a
    // silent degradation.
    assert_one_line_exit2(
        &run(bin, &["--addr", "127.0.0.1:0", "--store-dir", "/proc/no-store-here"]),
        "failed to start",
    );
}

#[test]
fn hmm_loadgen_rejects_invalid_input_with_one_line() {
    let bin = env!("CARGO_BIN_EXE_hmm-loadgen");
    assert_one_line_exit2(&run(bin, &[]), "--addr is required");
    assert_one_line_exit2(&run(bin, &["--addr", "nope"]), "nope");
    assert_one_line_exit2(&run(bin, &["--addr", "127.0.0.1:1", "--wat"]), "--wat");
    assert_one_line_exit2(&run(bin, &["--addr", "127.0.0.1:1", "--concurrency", "x"]), "x");
    assert_one_line_exit2(
        &run(bin, &["--addr", "127.0.0.1:1", "--workloads", "warehouse"]),
        "warehouse",
    );
    assert_one_line_exit2(&run(bin, &["--addr", "127.0.0.1:1", "--modes", "turbo"]), "turbo");
    assert_one_line_exit2(&run(bin, &["--addr", "127.0.0.1:1", "--sweep"]), "--sweep");
    assert_one_line_exit2(
        &run(bin, &["--addr", "127.0.0.1:1", "--figures-out", "f.json"]),
        "--figures-out only makes sense with --sweep",
    );
}

/// Sweep-mode failures (spec file missing, unparsable spec) are runtime
/// errors, not usage errors: exit 1, one line, naming the cause.
#[test]
fn hmm_loadgen_sweep_mode_reports_runtime_errors() {
    let bin = env!("CARGO_BIN_EXE_hmm-loadgen");
    for (arg, needle) in
        [("@/nonexistent/spec.json", "reading sweep spec"), ("not json", "sweep failed")]
    {
        let out = run(bin, &["--addr", "127.0.0.1:1", "--sweep", arg]);
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert_eq!(out.status.code(), Some(1), "stderr: {stderr}");
        assert_eq!(stderr.trim_end().lines().count(), 1, "one line, got: {stderr:?}");
        assert!(stderr.contains(needle), "wanted '{needle}' in: {stderr}");
    }
}

/// Boot the real server process, hit it over TCP, drain it via the admin
/// endpoint, and require a clean exit 0 — the same lifecycle the CI
/// `serve-smoke` job drives with SIGTERM.
#[test]
fn hmm_serve_process_boots_serves_and_drains() {
    let bin = env!("CARGO_BIN_EXE_hmm-serve");
    let mut child = Command::new(bin)
        .args(["--addr", "127.0.0.1:0", "--workers", "2", "--conn-threads", "4"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn hmm-serve");

    // The first stdout line announces the bound address.
    let stdout = child.stdout.take().unwrap();
    let mut line = String::new();
    BufReader::new(stdout).read_line(&mut line).unwrap();
    let addr = line
        .trim()
        .strip_prefix("hmm-serve listening on ")
        .unwrap_or_else(|| panic!("unexpected banner: {line:?}"))
        .parse()
        .expect("parse bound address");

    let timeout = Duration::from_secs(10);
    let health = request(addr, "GET", "/healthz", "", timeout).expect("healthz");
    assert_eq!(health.status, 200);
    let sim = request(
        addr,
        "POST",
        "/v1/simulate",
        r#"{"workload":"pgbench","mode":"static","accesses":3000,"scale":64}"#,
        timeout,
    )
    .expect("simulate");
    assert_eq!(sim.status, 200, "{}", sim.body);

    // Scheme selection rides the same wire: a PCM run answers with the
    // wear object, and a contradictory scheme/mode combination is a
    // structured 400, not a queued failure.
    let pcm = request(
        addr,
        "POST",
        "/v1/simulate",
        r#"{"workload":"pgbench","mode":"static","scheme":"pcm","accesses":3000,"scale":64}"#,
        timeout,
    )
    .expect("pcm simulate");
    assert_eq!(pcm.status, 200, "{}", pcm.body);
    assert!(pcm.body.contains(r#""wear":{"write_lines":"#), "{}", pcm.body);
    assert!(!sim.body.contains(r#""wear""#), "default scheme must not grow a wear field");
    let bad = request(
        addr,
        "POST",
        "/v1/simulate",
        r#"{"workload":"pgbench","mode":"static","scheme":"l4cache","accesses":3000}"#,
        timeout,
    )
    .expect("bad scheme combo");
    assert_eq!(bad.status, 400, "{}", bad.body);
    assert!(bad.body.contains("only composes with mode 'off'"), "{}", bad.body);

    let drain = request(addr, "POST", "/admin/shutdown", "", timeout).expect("shutdown");
    assert_eq!(drain.status, 200);

    let deadline = Instant::now() + Duration::from_secs(20);
    let status = loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            break status;
        }
        if Instant::now() > deadline {
            let _ = child.kill();
            panic!("hmm-serve did not exit after the drain");
        }
        std::thread::sleep(Duration::from_millis(50));
    };
    assert_eq!(status.code(), Some(0), "graceful drain must exit 0");
}
