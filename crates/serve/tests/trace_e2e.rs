//! End-to-end tests for the trace-ingest subsystem: upload, registry
//! CRUD, simulate-by-id byte-identity against an in-process replay,
//! durable rehydration across a restart, adversarial uploads, and the
//! live job event stream.

use hmm_serve::client::{request, request_bytes, stream_lines, HttpResponse};
use hmm_serve::request::{parse_body, Limits};
use hmm_serve::response::render_run;
use hmm_serve::{Server, ServerConfig};
use hmm_sim_base::config::SimScale;
use hmm_simulator::driver::run;
use hmm_telemetry::jsonin;
use hmm_workloads::{workload, write_binary, WorkloadId};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(30);

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hmm-trace-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn small_server() -> Server {
    Server::start(ServerConfig {
        workers: 2,
        conn_threads: 8,
        queue_depth: 8,
        ..ServerConfig::default()
    })
    .expect("bind loopback server")
}

fn post(addr: SocketAddr, path: &str, body: &str) -> HttpResponse {
    request(addr, "POST", path, body, TIMEOUT).expect("request failed")
}

fn get(addr: SocketAddr, path: &str) -> HttpResponse {
    request(addr, "GET", path, "", TIMEOUT).expect("request failed")
}

/// A small deterministic HMT1 trace; `seed` varies the content (and so
/// the id) to keep tests independent despite the process-global replay
/// registry.
fn trace_bytes(seed: u64, n: usize) -> Vec<u8> {
    let recs = workload(WorkloadId::Pgbench, &SimScale { divisor: 256 }).records(seed, n);
    let mut bytes = Vec::new();
    write_binary(&mut bytes, recs).unwrap();
    bytes
}

fn upload(addr: SocketAddr, bytes: &[u8]) -> String {
    let resp = request_bytes(addr, "POST", "/v1/traces", bytes, TIMEOUT).expect("upload failed");
    assert_eq!(resp.status, 200, "{}", resp.body);
    let doc = jsonin::parse(&resp.body).unwrap();
    doc.get("id").unwrap().as_str().unwrap().to_string()
}

#[test]
fn upload_simulate_by_id_matches_in_process_replay() {
    let server = small_server();
    let addr = server.local_addr();

    let bytes = trace_bytes(0xA11CE, 4_000);
    let id = upload(addr, &bytes);

    // The summary round-trips through list and get.
    let listed = get(addr, "/v1/traces");
    assert_eq!(listed.status, 200);
    assert!(listed.body.contains(&id), "{}", listed.body);
    let one = get(addr, &format!("/v1/traces/{id}"));
    assert_eq!(one.status, 200);
    let doc = jsonin::parse(&one.body).unwrap();
    assert_eq!(doc.get("records").unwrap().as_f64(), Some(4_000.0));

    // Simulate by id over HTTP; replay the same trace in-process through
    // the same request parser. Byte-identity is the acceptance bar: the
    // HTTP path and a local `hmm-sim --trace-in` must agree exactly.
    let body = format!(r#"{{"workload":{{"trace":"{id}"}},"mode":"live","accesses":3000}}"#);
    let over_wire = post(addr, "/v1/simulate", &body);
    assert_eq!(over_wire.status, 200, "{}", over_wire.body);
    let sim = parse_body(&body, &Limits::default()).unwrap();
    let local = render_run(&sim.canonical, &run(&sim.cfg));
    assert_eq!(over_wire.body, local, "HTTP replay must be byte-identical to local replay");

    // An inline summary that disagrees with the registered trace is an
    // integrity failure, not an override.
    let forged = format!(r#"{{"workload":{{"trace":"{id}","records":1}},"mode":"live"}}"#);
    let resp = post(addr, "/v1/simulate", &forged);
    assert_eq!(resp.status, 400, "{}", resp.body);
    assert!(resp.body.contains("disagrees"), "{}", resp.body);

    // Deleting the trace invalidates simulate-by-id with a structured 400.
    let resp = request(addr, "DELETE", &format!("/v1/traces/{id}"), "", TIMEOUT).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    let resp = post(addr, "/v1/simulate", &body);
    assert_eq!(resp.status, 400, "{}", resp.body);
    assert!(resp.body.contains("upload it first"), "{}", resp.body);

    server.shutdown();
}

#[test]
fn adversarial_uploads_are_refused_with_structured_errors() {
    let dir = tmpdir("adversarial");
    let server = Server::start(ServerConfig {
        workers: 1,
        conn_threads: 4,
        max_trace_bytes: 4096,
        store_dir: Some(dir.clone()),
        ..ServerConfig::default()
    })
    .expect("bind loopback server");
    let addr = server.local_addr();

    // Wrong magic.
    let resp = request_bytes(addr, "POST", "/v1/traces", b"XXXX not a trace", TIMEOUT).unwrap();
    assert_eq!(resp.status, 400, "{}", resp.body);
    assert!(resp.body.contains("not an HMT1 trace"), "{}", resp.body);

    // Truncated mid-record.
    let bytes = trace_bytes(0xBAD, 100);
    let resp =
        request_bytes(addr, "POST", "/v1/traces", &bytes[..bytes.len() - 2], TIMEOUT).unwrap();
    assert_eq!(resp.status, 400, "{}", resp.body);
    assert!(resp.body.contains("truncated"), "{}", resp.body);

    // Empty body.
    let resp = request_bytes(addr, "POST", "/v1/traces", b"", TIMEOUT).unwrap();
    assert_eq!(resp.status, 400, "{}", resp.body);

    // Over the per-route limit: refused before the body is read.
    let big = trace_bytes(0xB16, 3_000);
    assert!(big.len() > 4096, "test needs an oversized trace, got {}", big.len());
    let resp = request_bytes(addr, "POST", "/v1/traces", &big, TIMEOUT).unwrap();
    assert_eq!(resp.status, 413, "{}", resp.body);
    assert!(resp.body.contains("4096-byte limit"), "{}", resp.body);

    // Unknown and malformed ids.
    let resp = get(addr, "/v1/traces/00000000000000ff");
    assert_eq!(resp.status, 404, "{}", resp.body);
    let resp = get(addr, "/v1/traces/zz");
    assert_eq!(resp.status, 404, "{}", resp.body);
    let resp = request(addr, "DELETE", "/v1/traces/00000000000000ff", "", TIMEOUT).unwrap();
    assert_eq!(resp.status, 404, "{}", resp.body);

    // Nothing adversarial landed in the registry.
    let doc = jsonin::parse(&get(addr, "/v1/traces").body).unwrap();
    assert_eq!(doc.get("traces").unwrap().as_arr().unwrap().len(), 0);

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn registry_rehydrates_across_restart() {
    let dir = tmpdir("rehydrate");
    let config = || ServerConfig {
        workers: 1,
        conn_threads: 4,
        store_dir: Some(dir.clone()),
        ..ServerConfig::default()
    };
    let bytes = trace_bytes(0xD15C, 2_000);
    let body_template: String;
    let first_body: String;
    {
        let server = Server::start(config()).expect("bind first server");
        let addr = server.local_addr();
        let id = upload(addr, &bytes);
        body_template =
            format!(r#"{{"workload":{{"trace":"{id}"}},"mode":"static","accesses":2500}}"#);
        let resp = post(addr, "/v1/simulate", &body_template);
        assert_eq!(resp.status, 200, "{}", resp.body);
        first_body = resp.body;
        server.shutdown();
    }
    // Second server, same store dir: the trace must be listed, resolvable
    // by id, and replay to the byte-identical body (served from the
    // durable result store or re-run — indistinguishable by design).
    let server = Server::start(config()).expect("bind second server");
    let addr = server.local_addr();
    let listed = get(addr, "/v1/traces");
    assert!(listed.body.contains("\"records\":2000"), "{}", listed.body);
    let resp = post(addr, "/v1/simulate", &body_template);
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert_eq!(resp.body, first_body, "replay must survive a restart byte-identically");
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn job_event_stream_is_monotone_and_eofs_at_completion() {
    let server = small_server();
    let addr = server.local_addr();

    let bytes = trace_bytes(0xE7E27, 3_000);
    let id = upload(addr, &bytes);
    let body = format!(r#"{{"workload":{{"trace":"{id}"}},"mode":"live","accesses":60000}}"#);
    let resp = post(addr, "/v1/jobs", &body);
    assert_eq!(resp.status, 202, "{}", resp.body);
    let job = jsonin::parse(&resp.body).unwrap().get("id").unwrap().as_f64().unwrap() as u64;

    // Live subscriber: sees monotone epoch frames, then a clean EOF
    // exactly when the job turns terminal.
    let stream = stream_lines(addr, &format!("/v1/jobs/{job}/events"), TIMEOUT, |_| ()).unwrap();
    assert_eq!(stream.status, 200);
    assert!(stream.clean_eof, "stream must end with the terminating chunk");
    assert!(!stream.lines.is_empty(), "expected at least one epoch frame");
    let mut last = None;
    for line in &stream.lines {
        let doc = jsonin::parse(line).unwrap_or_else(|e| panic!("bad frame {line:?}: {e}"));
        assert!(doc.get("dropped").is_none(), "no subscriber lag expected here: {line}");
        let epoch = doc.get("epoch").unwrap().as_f64().unwrap() as u64;
        if let Some(prev) = last {
            assert!(epoch > prev, "epochs must be monotone: {epoch} after {prev}");
        }
        last = Some(epoch);
        assert!(doc.get("cycle").unwrap().as_f64().is_some(), "{line}");
    }

    // EOF implies terminal: the job must already be done.
    let status = get(addr, &format!("/v1/jobs/{job}"));
    let doc = jsonin::parse(&status.body).unwrap();
    assert_eq!(doc.get("status").unwrap().as_str(), Some("done"), "{}", status.body);

    // A late subscriber still drains the retained frames and gets the
    // same clean EOF.
    let late = stream_lines(addr, &format!("/v1/jobs/{job}/events"), TIMEOUT, |_| ()).unwrap();
    assert_eq!(late.status, 200);
    assert!(late.clean_eof);
    assert_eq!(late.lines, stream.lines, "retained frames replay identically");

    // Unknown job: 404, not a stream.
    let missing = stream_lines(addr, "/v1/jobs/999999/events", TIMEOUT, |_| ()).unwrap();
    assert_eq!(missing.status, 404);
    assert!(!missing.clean_eof);

    let doc = jsonin::parse(&get(addr, "/metrics").body).unwrap();
    let counter = |n: &str| doc.get(n).unwrap().as_f64().unwrap() as u64;
    assert_eq!(counter("event_subscribers"), 2, "the 404 probe must not count");
    assert_eq!(counter("traces_uploaded"), 1);
    assert_eq!(counter("trace_sim_runs"), 1);

    server.shutdown();
}
