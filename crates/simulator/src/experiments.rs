//! Parameter grids for the evaluation's tables and figures (Section IV).
//!
//! Every grid point is an independent trace simulation, so the grids fan
//! out over scoped worker threads ([`hmm_sim_base::par_map`]); each shard
//! carries its own counters and the shards are joined with the
//! [`ControllerStats::merge`]/[`SwapStats::merge`] convention. The figure
//! harness (`hmm-bench`) prints these rows in the paper's layout; the
//! functions here return plain data.

use crate::driver::{run, RunConfig, RunResult};
use hmm_core::{ControllerStats, MigrationDesign, Mode, SwapStats};
use hmm_power::{normalized_power, EnergyParams};
use hmm_sim_base::config::SimScale;
use hmm_sim_base::par_map;
use hmm_sim_base::stats::effectiveness;
use hmm_telemetry::{JsonObject, ToJson};
use hmm_workloads::WorkloadId;

/// The paper's macro-page sweep: 4 KB .. 4 MB.
pub const PAGE_SHIFTS: [u32; 6] = [12, 14, 16, 18, 20, 22];

/// The paper's swap-interval sweep (demand accesses per epoch).
pub const INTERVALS: [u64; 3] = [1_000, 10_000, 100_000];

/// Shared knobs for a whole grid.
#[derive(Debug, Clone, Copy)]
pub struct GridConfig {
    /// Footprint/capacity scaling.
    pub scale: SimScale,
    /// Accesses per run.
    pub accesses: u64,
    /// Warm-up accesses per run.
    pub warmup: u64,
    /// Trace seed.
    pub seed: u64,
}

impl GridConfig {
    /// Small grids for tests.
    pub fn quick() -> Self {
        Self { scale: SimScale { divisor: 64 }, accesses: 60_000, warmup: 10_000, seed: 42 }
    }

    /// Bench-sized grids: 1/8 scale keeps full-footprint page dynamics
    /// while finishing in minutes on one core.
    pub fn bench() -> Self {
        Self { scale: SimScale { divisor: 8 }, accesses: 400_000, warmup: 80_000, seed: 42 }
    }

    fn base_run(&self, w: WorkloadId, mode: Mode) -> RunConfig {
        RunConfig {
            scale: self.scale,
            accesses: self.accesses,
            warmup: self.warmup,
            seed: self.seed,
            ..RunConfig::paper(w, mode)
        }
    }
}

/// Counters accumulated across every cell of a sweep.
///
/// Each parallel shard of a grid produces its own totals; the shards are
/// joined at the fan-in point with [`SweepTotals::merge`], which in turn
/// relies on the [`ControllerStats::merge`]/[`SwapStats::merge`]
/// convention, so the whole-sweep traffic and stall numbers are exact
/// sums regardless of how the work was split across threads.
#[derive(Debug, Clone, Default)]
pub struct SweepTotals {
    /// Grid cells (simulation runs) folded in.
    pub cells: u64,
    /// Summed controller counters over all runs.
    pub controller: ControllerStats,
    /// Summed migration counters over all migrating runs.
    pub swaps: SwapStats,
}

impl SweepTotals {
    /// Totals of a single run.
    pub fn of(r: &RunResult) -> Self {
        let mut t = Self::default();
        t.absorb(r);
        t
    }

    /// Fold one run's counters into the totals.
    pub fn absorb(&mut self, r: &RunResult) {
        self.cells += 1;
        self.controller.merge(&r.controller);
        if let Some(s) = &r.swaps {
            self.swaps.merge(s);
        }
    }

    /// Join another shard's totals into this one.
    pub fn merge(&mut self, other: &Self) {
        self.cells += other.cells;
        self.controller.merge(&other.controller);
        self.swaps.merge(&other.swaps);
    }
}

/// One cell of Figs. 11-14: a (workload, design, page size, interval)
/// combination and its measured mean latency.
#[derive(Debug, Clone)]
pub struct Fig11Row {
    /// Workload display name.
    pub workload: String,
    /// Migration design ("N", "N-1", "Live").
    pub design: String,
    /// Macro-page size in bytes.
    pub page_bytes: u64,
    /// Swap interval in accesses.
    pub interval: u64,
    /// Mean memory latency in cycles.
    pub mean_latency: f64,
    /// Fraction of accesses served on-package.
    pub on_fraction: f64,
}

/// Human name of a design as used in the figures.
pub fn design_label(d: MigrationDesign) -> &'static str {
    match d {
        MigrationDesign::N => "N",
        MigrationDesign::NMinusOne => "N-1",
        MigrationDesign::LiveMigration => "Live",
    }
}

/// Compute the Fig. 11 grid for one swap interval: every trace workload x
/// page size x design.
pub fn fig11_grid(
    grid: &GridConfig,
    interval: u64,
    workloads: &[WorkloadId],
    page_shifts: &[u32],
    designs: &[MigrationDesign],
) -> Vec<Fig11Row> {
    fig11_grid_with_totals(grid, interval, workloads, page_shifts, designs).0
}

/// [`fig11_grid`] plus the sweep-wide counters, shard-merged with
/// [`SweepTotals::merge`].
pub fn fig11_grid_with_totals(
    grid: &GridConfig,
    interval: u64,
    workloads: &[WorkloadId],
    page_shifts: &[u32],
    designs: &[MigrationDesign],
) -> (Vec<Fig11Row>, SweepTotals) {
    let cells: Vec<(WorkloadId, u32, MigrationDesign)> = workloads
        .iter()
        .flat_map(|&w| {
            page_shifts.iter().flat_map(move |&p| designs.iter().map(move |&d| (w, p, d)))
        })
        .collect();
    let shards = par_map(cells, |(w, page_shift, design)| {
        let cfg = RunConfig {
            page_shift,
            swap_interval: interval,
            ..grid.base_run(w, Mode::Dynamic(design))
        };
        let r = run(&cfg);
        let row = Fig11Row {
            workload: r.workload.clone(),
            design: design_label(design).to_string(),
            page_bytes: 1 << page_shift,
            interval,
            mean_latency: r.mean_latency(),
            on_fraction: r.on_fraction(),
        };
        (row, SweepTotals::of(&r))
    });
    let mut totals = SweepTotals::default();
    let rows = shards
        .into_iter()
        .map(|(row, shard)| {
            totals.merge(&shard);
            row
        })
        .collect();
    (rows, totals)
}

/// One row of Table IV.
#[derive(Debug, Clone)]
pub struct EffectivenessRow {
    /// Workload display name.
    pub workload: String,
    /// Mean DRAM-core latency (cycles).
    pub dram_core: f64,
    /// Mean latency without migration (static mapping).
    pub latency_without: f64,
    /// Best mean latency with migration over the searched grid.
    pub latency_with: f64,
    /// The page size (bytes) achieving the best latency.
    pub best_page_bytes: u64,
    /// The interval achieving the best latency.
    pub best_interval: u64,
    /// The paper's effectiveness metric, percent.
    pub effectiveness_pct: f64,
}

/// Compute Table IV: for each workload, static-mapping latency vs. the
/// best live-migration latency over `page_shifts x intervals`.
pub fn effectiveness_table(
    grid: &GridConfig,
    workloads: &[WorkloadId],
    page_shifts: &[u32],
    intervals: &[u64],
) -> Vec<EffectivenessRow> {
    par_map(workloads.to_vec(), |w| {
        let stat = run(&grid.base_run(w, Mode::Static));
        let candidates: Vec<(u32, u64)> =
            page_shifts.iter().flat_map(|&p| intervals.iter().map(move |&i| (p, i))).collect();
        // Candidates run sequentially inside this worker: the outer
        // per-workload fan-out already saturates the cores.
        let best = candidates
            .into_iter()
            .map(|(page_shift, interval)| {
                let cfg = RunConfig {
                    page_shift,
                    swap_interval: interval,
                    ..grid.base_run(w, Mode::Dynamic(MigrationDesign::LiveMigration))
                };
                let r = run(&cfg);
                (r.mean_latency(), page_shift, interval, r)
            })
            .min_by(|a, b| a.0.total_cmp(&b.0))
            .expect("non-empty candidate grid");
        let (latency_with, best_shift, best_interval, best_run) = best;
        let dram_core = best_run.dram_core_mean();
        let eta = effectiveness(stat.mean_latency(), latency_with, dram_core)
            .unwrap_or(0.0)
            .clamp(0.0, 100.0);
        EffectivenessRow {
            workload: stat.workload.clone(),
            dram_core,
            latency_without: stat.mean_latency(),
            latency_with,
            best_page_bytes: 1 << best_shift,
            best_interval,
            effectiveness_pct: eta,
        }
    })
}

/// One bar group of Fig. 15: a workload at one on-package capacity.
#[derive(Debug, Clone)]
pub struct Fig15Row {
    /// Workload display name.
    pub workload: String,
    /// On-package capacity in bytes (unscaled label).
    pub on_package_bytes: u64,
    /// Mean DRAM-core latency.
    pub dram_core: f64,
    /// Mean latency with live migration.
    pub with_migration: f64,
    /// Mean latency without migration (static mapping).
    pub without_migration: f64,
}

/// Fig. 15: sensitivity to on-package capacity (128/256/512 MB).
pub fn fig15_capacity(
    grid: &GridConfig,
    workloads: &[WorkloadId],
    capacities: &[u64],
    page_shift: u32,
    interval: u64,
) -> Vec<Fig15Row> {
    let cells: Vec<(WorkloadId, u64)> =
        workloads.iter().flat_map(|&w| capacities.iter().map(move |&c| (w, c))).collect();
    par_map(cells, |(w, cap)| {
        let mig = run(&RunConfig {
            page_shift,
            swap_interval: interval,
            on_package_bytes: cap,
            ..grid.base_run(w, Mode::Dynamic(MigrationDesign::LiveMigration))
        });
        let stat =
            run(&RunConfig { page_shift, on_package_bytes: cap, ..grid.base_run(w, Mode::Static) });
        Fig15Row {
            workload: mig.workload.clone(),
            on_package_bytes: cap,
            dram_core: mig.dram_core_mean(),
            with_migration: mig.mean_latency(),
            without_migration: stat.mean_latency(),
        }
    })
}

/// One bar of Fig. 16: normalized memory power for a (workload, page size,
/// interval) combination.
#[derive(Debug, Clone)]
pub struct Fig16Row {
    /// Workload display name.
    pub workload: String,
    /// Macro-page size in bytes.
    pub page_bytes: u64,
    /// Swap interval in accesses.
    pub interval: u64,
    /// Power relative to the off-package-only solution.
    pub normalized_power: f64,
}

/// Fig. 16: relative memory power of the hybrid system with migration vs.
/// off-package-only, for small pages (4/16/64 KB) across intervals.
pub fn fig16_power(
    grid: &GridConfig,
    workloads: &[WorkloadId],
    page_shifts: &[u32],
    intervals: &[u64],
) -> Vec<Fig16Row> {
    let cells: Vec<(WorkloadId, u32, u64)> = workloads
        .iter()
        .flat_map(|&w| {
            page_shifts.iter().flat_map(move |&p| intervals.iter().map(move |&i| (w, p, i)))
        })
        .collect();
    let params = EnergyParams::default();
    par_map(cells, |(w, page_shift, interval)| {
        let r = run(&RunConfig {
            page_shift,
            swap_interval: interval,
            ..grid.base_run(w, Mode::Dynamic(MigrationDesign::LiveMigration))
        });
        Fig16Row {
            workload: r.workload.clone(),
            page_bytes: 1 << page_shift,
            interval,
            normalized_power: normalized_power(&params, &r.traffic()).unwrap_or(0.0),
        }
    })
}

impl ToJson for Fig11Row {
    fn to_json(&self) -> String {
        JsonObject::new()
            .str("workload", &self.workload)
            .str("design", &self.design)
            .u64("page_bytes", self.page_bytes)
            .u64("interval", self.interval)
            .f64("mean_latency", self.mean_latency)
            .f64("on_fraction", self.on_fraction)
            .finish()
    }
}

impl ToJson for EffectivenessRow {
    fn to_json(&self) -> String {
        JsonObject::new()
            .str("workload", &self.workload)
            .f64("dram_core", self.dram_core)
            .f64("latency_without", self.latency_without)
            .f64("latency_with", self.latency_with)
            .u64("best_page_bytes", self.best_page_bytes)
            .u64("best_interval", self.best_interval)
            .f64("effectiveness_pct", self.effectiveness_pct)
            .finish()
    }
}

impl ToJson for Fig15Row {
    fn to_json(&self) -> String {
        JsonObject::new()
            .str("workload", &self.workload)
            .u64("on_package_bytes", self.on_package_bytes)
            .f64("dram_core", self.dram_core)
            .f64("with_migration", self.with_migration)
            .f64("without_migration", self.without_migration)
            .finish()
    }
}

impl ToJson for Fig16Row {
    fn to_json(&self) -> String {
        JsonObject::new()
            .str("workload", &self.workload)
            .u64("page_bytes", self.page_bytes)
            .u64("interval", self.interval)
            .f64("normalized_power", self.normalized_power)
            .finish()
    }
}

/// Run an explicit list of configurations in parallel and fold their
/// counters, preserving input order in the returned results.
///
/// This is the in-process twin of an `hmm-serve` sweep: the serving
/// layer expands a grid spec into exactly such a list of resolved
/// [`RunConfig`]s, and the sweep e2e suite asserts its aggregate is
/// bit-identical to this function's, so both paths must fold the same
/// per-cell results in the same (input) order.
pub fn run_grid(cfgs: &[RunConfig]) -> (Vec<RunResult>, SweepTotals) {
    let results = par_map(cfgs.to_vec(), |cfg| run(&cfg));
    let mut totals = SweepTotals::default();
    for r in &results {
        totals.absorb(r);
    }
    (results, totals)
}

/// Convenience: rerun one cell and report its full [`RunResult`]
/// (used by the ablation benches).
pub fn run_cell(
    grid: &GridConfig,
    w: WorkloadId,
    mode: Mode,
    page_shift: u32,
    interval: u64,
) -> RunResult {
    run(&RunConfig { page_shift, swap_interval: interval, ..grid.base_run(w, mode) })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn design_labels_match_figures() {
        assert_eq!(design_label(MigrationDesign::N), "N");
        assert_eq!(design_label(MigrationDesign::NMinusOne), "N-1");
        assert_eq!(design_label(MigrationDesign::LiveMigration), "Live");
    }

    #[test]
    fn paper_constants_cover_the_sweeps() {
        assert_eq!(PAGE_SHIFTS.first(), Some(&12), "4 KB");
        assert_eq!(PAGE_SHIFTS.last(), Some(&22), "4 MB");
        assert_eq!(INTERVALS, [1_000, 10_000, 100_000]);
    }

    #[test]
    fn grid_presets_are_ordered_by_fidelity() {
        let q = GridConfig::quick();
        let b = GridConfig::bench();
        assert!(q.scale.divisor > b.scale.divisor);
        assert!(q.accesses < b.accesses);
        assert!(q.warmup < q.accesses && b.warmup < b.accesses);
    }

    #[test]
    fn run_cell_round_trips_parameters() {
        let r = run_cell(&GridConfig::quick(), WorkloadId::SpecJbb, Mode::Static, 14, 5_000);
        assert_eq!(r.geometry.page_shift, 14);
        assert!(r.access.accesses() > 0);
    }

    #[test]
    fn fig11_grid_shape() {
        let rows = fig11_grid(
            &GridConfig::quick(),
            2_000,
            &[WorkloadId::Pgbench],
            &[14, 16],
            &[MigrationDesign::NMinusOne, MigrationDesign::LiveMigration],
        );
        assert_eq!(rows.len(), 4);
        assert!(rows.iter().all(|r| r.mean_latency > 0.0));
        assert!(rows.iter().all(|r| r.interval == 2_000));
    }

    #[test]
    fn sweep_totals_merge_matches_sequential_absorb() {
        let g = GridConfig::quick();
        let (rows, totals) = fig11_grid_with_totals(
            &g,
            2_000,
            &[WorkloadId::Pgbench],
            &[14, 16],
            &[MigrationDesign::LiveMigration],
        );
        assert_eq!(totals.cells as usize, rows.len());
        // Re-run the same cells sequentially; the shard-merged totals
        // must be the exact sum regardless of the parallel split.
        let mut seq = SweepTotals::default();
        for p in [14u32, 16] {
            let r = run_cell(
                &g,
                WorkloadId::Pgbench,
                Mode::Dynamic(MigrationDesign::LiveMigration),
                p,
                2_000,
            );
            seq.absorb(&r);
        }
        assert_eq!(totals.controller, seq.controller);
        assert_eq!(totals.swaps, seq.swaps);
        assert!(totals.controller.demand_on_lines + totals.controller.demand_off_lines > 0);
    }

    #[test]
    fn parallel_grid_is_bit_deterministic_across_invocations() {
        // Two back-to-back parallel invocations must agree bit-for-bit,
        // not approximately: the perf harness digests sim stats on this
        // assumption, and a thread-schedule-dependent float sum would
        // silently break every cross-binary A/B comparison.
        let g = GridConfig::quick();
        let grid = || {
            fig11_grid_with_totals(
                &g,
                2_000,
                &[WorkloadId::Pgbench, WorkloadId::SpecJbb],
                &[14, 16],
                &[MigrationDesign::NMinusOne, MigrationDesign::LiveMigration],
            )
        };
        let (rows_a, totals_a) = grid();
        let (rows_b, totals_b) = grid();
        assert_eq!(totals_a.controller, totals_b.controller);
        assert_eq!(totals_a.swaps, totals_b.swaps);
        assert_eq!(rows_a.len(), rows_b.len());
        for (a, b) in rows_a.iter().zip(rows_b.iter()) {
            assert_eq!(a.workload, b.workload);
            assert_eq!(
                a.mean_latency.to_bits(),
                b.mean_latency.to_bits(),
                "{}/{}: latency must be bit-identical across invocations",
                a.workload,
                a.design,
            );
            assert_eq!(a.on_fraction.to_bits(), b.on_fraction.to_bits());
        }
    }

    #[test]
    fn run_grid_preserves_order_and_totals() {
        let g = GridConfig::quick();
        let cfgs = vec![
            RunConfig { page_shift: 14, ..g.base_run(WorkloadId::Pgbench, Mode::Static) },
            RunConfig {
                page_shift: 16,
                ..g.base_run(WorkloadId::Pgbench, Mode::Dynamic(MigrationDesign::LiveMigration))
            },
        ];
        let (results, totals) = run_grid(&cfgs);
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].geometry.page_shift, 14, "results must keep input order");
        assert_eq!(results[1].geometry.page_shift, 16);
        assert_eq!(totals.cells, 2);
        let mut seq = SweepTotals::default();
        for r in &results {
            seq.absorb(r);
        }
        assert_eq!(totals.controller, seq.controller);
        assert_eq!(totals.swaps, seq.swaps);
    }

    #[test]
    fn effectiveness_row_is_consistent() {
        let rows =
            effectiveness_table(&GridConfig::quick(), &[WorkloadId::Pgbench], &[16], &[2_000]);
        let r = &rows[0];
        assert!(r.latency_with < r.latency_without, "{r:?}");
        assert!(r.effectiveness_pct > 0.0 && r.effectiveness_pct <= 100.0, "{r:?}");
        assert!(r.dram_core < r.latency_with);
    }

    #[test]
    fn fig15_migration_tracks_capacity() {
        let g = GridConfig::quick();
        let rows = fig15_capacity(&g, &[WorkloadId::SpecJbb], &[128 << 20, 512 << 20], 16, 2_000);
        assert_eq!(rows.len(), 2);
        let small = rows.iter().find(|r| r.on_package_bytes == 128 << 20).unwrap();
        let large = rows.iter().find(|r| r.on_package_bytes == 512 << 20).unwrap();
        // Larger on-package memory can only help (allow small noise).
        assert!(
            large.with_migration <= small.with_migration * 1.05,
            "large {} vs small {}",
            large.with_migration,
            small.with_migration
        );
        // Migration stays below no-migration at every capacity (the
        // paper's Fig. 15 observation).
        for r in &rows {
            assert!(r.with_migration < r.without_migration, "{r:?}");
        }
    }

    #[test]
    fn fig16_power_rises_with_migration_frequency() {
        let g = GridConfig::quick();
        let rows = fig16_power(&g, &[WorkloadId::Pgbench], &[14], &[1_000, 20_000]);
        let fast = rows.iter().find(|r| r.interval == 1_000).unwrap();
        let slow = rows.iter().find(|r| r.interval == 20_000).unwrap();
        assert!(
            fast.normalized_power >= slow.normalized_power,
            "more frequent swapping must not cost less power: fast {} slow {}",
            fast.normalized_power,
            slow.normalized_power
        );
    }
}
