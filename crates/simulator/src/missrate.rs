//! The Fig. 4 experiment: last-level-cache miss rate vs. capacity.
//!
//! The paper's argument for heterogeneous main memory begins here: "there
//! is almost no benefit to enlarge the LLC capacity in terms of the cache
//! miss rate" beyond a knee, so spending the on-package gigabyte on a
//! cache buys little. We reproduce the curve by streaming each NPB
//! workload through the Table II hierarchy with the L3 capacity swept.

use hmm_cache::{Hierarchy, HierarchyConfig};
use hmm_sim_base::config::SimScale;
use hmm_workloads::{workload, WorkloadId};

/// Run one workload against a set of L3 capacities (in bytes, unscaled —
/// the same `scale` is applied to capacity and footprint so the knee stays
/// put). Returns `(capacity_bytes, miss_rate)` pairs.
pub fn l3_miss_rates(
    id: WorkloadId,
    capacities: &[u64],
    accesses: u64,
    scale: &SimScale,
    seed: u64,
) -> Vec<(u64, f64)> {
    let w = workload(id, scale);
    capacities
        .iter()
        .map(|&cap| {
            let scaled = scale.bytes(cap).max(64 * 16 * 16); // >= one set per way
            let cfg = HierarchyConfig::paper_default().with_l3_capacity(scaled);
            let mut h = Hierarchy::new(cfg);
            let warmup = accesses / 5;
            for (i, rec) in w.iter(seed).take(accesses as usize).enumerate() {
                if i as u64 == warmup {
                    h.reset_stats();
                }
                h.access(rec.cpu as usize % 4, rec.addr, rec.is_write);
            }
            (cap, h.l3_stats().miss_rate())
        })
        .collect()
}

/// The capacity sweep of Fig. 4 (1 MB to 1 GB).
pub fn fig4_capacities() -> Vec<u64> {
    (0..=10).map(|i| (1u64 << i) << 20).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacities_span_1mb_to_1gb() {
        let c = fig4_capacities();
        assert_eq!(c.first(), Some(&(1 << 20)));
        assert_eq!(c.last(), Some(&(1 << 30)));
        assert_eq!(c.len(), 11);
    }

    #[test]
    fn miss_rate_is_monotone_nonincreasing_in_capacity() {
        let scale = SimScale { divisor: 256 };
        let rates =
            l3_miss_rates(WorkloadId::Ua, &[1 << 20, 8 << 20, 64 << 20], 120_000, &scale, 7);
        assert!(rates[0].1 >= rates[1].1 - 0.02);
        assert!(rates[1].1 >= rates[2].1 - 0.02);
    }

    #[test]
    fn curve_flattens_beyond_the_knee() {
        // The paper's central observation: growing the LLC past the knee
        // buys almost nothing.
        let scale = SimScale { divisor: 256 };
        let rates = l3_miss_rates(
            WorkloadId::Bt,
            &[1 << 20, 4 << 20, 256 << 20, 1 << 30],
            150_000,
            &scale,
            7,
        );
        let drop_early = rates[0].1 - rates[1].1;
        let drop_late = rates[2].1 - rates[3].1;
        assert!(
            drop_late < drop_early.max(0.02),
            "late capacity doublings must be near-useless: early {drop_early:.3}, late {drop_late:.3}"
        );
    }

    #[test]
    fn streaming_workload_keeps_missing() {
        // FT streams: even a big L3 misses heavily.
        let scale = SimScale { divisor: 256 };
        let rates = l3_miss_rates(WorkloadId::Ft, &[64 << 20], 100_000, &scale, 7);
        assert!(rates[0].1 > 0.2, "FT miss rate {}", rates[0].1);
    }
}
