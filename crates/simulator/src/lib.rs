//! Trace-driven system simulation tying the workloads, the cache models,
//! the heterogeneity-aware controller and the DRAM timing model together.
//!
//! * [`driver`] — run one workload trace through a configured
//!   [`hmm_core::HeteroController`] and collect latency/traffic statistics
//!   (the Section IV trace methodology).
//! * [`missrate`] — the Fig. 4 experiment: LLC miss rate as a function of
//!   L3 capacity.
//! * [`ipc`] — the Fig. 5 experiment: a blocking in-order core model
//!   comparing baseline / L4 cache / static mapping / all-on-package.
//! * [`experiments`] — parameter grids for every table and figure of the
//!   evaluation, parallelised with rayon (each grid point is an
//!   independent simulation).
//! * [`snapshot`] — the versioned, checksummed snapshot container behind
//!   [`driver::run_resumable`]'s crash-safe capture/resume.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod driver;
pub mod experiments;
pub mod ipc;
pub mod missrate;
pub mod snapshot;
pub mod wire;

pub use driver::{run, run_resumable, run_with_sink, RunConfig, RunResult, SnapshotCtl};
pub use experiments::{effectiveness_table, fig11_grid, fig15_capacity, fig16_power, Fig11Row};
pub use ipc::{ipc_for, Fig5Option, IpcResult};
pub use missrate::l3_miss_rates;
pub use snapshot::{SnapshotMeta, ENGINE_VERSION};
