//! One trace-driven simulation run (the Section IV methodology).
//!
//! The driver streams a synthetic workload trace into a
//! [`HeteroController`](hmm_core::controller::HeteroController),
//! advancing simulated time with each record's
//! timestamp, and aggregates post-warm-up latency statistics. Statistics
//! exclude a configurable warm-up prefix, mirroring the paper's
//! warm-up-then-measure protocol (Table II).

use crate::snapshot;
use crate::wire::{canonical_json, fxhash64};
use hmm_core::controller::DemandCompletion;
use hmm_core::{
    build_scheme, ControllerConfig, ControllerStats, MigrationPolicy, Mode, SchemeId, SwapStats,
};
use hmm_dram::{DeviceProfile, RegionStats, SchedPolicy, WearStats};
use hmm_fault::FaultPlan;
use hmm_sim_base::config::{MachineConfig, MemoryGeometry, SimScale};
use hmm_sim_base::snap::{SnapReader, SnapWriter};
use hmm_sim_base::stats::{AccessStats, LatencyBreakdown};
use hmm_telemetry::{NullSink, TelemetrySink};
use hmm_workloads::replay::{self, ReplayIter};
use hmm_workloads::{footprint_bytes, workload, TraceSource, WorkloadId};

/// A recorded trace to replay instead of the synthetic generator,
/// identified by the content hash of its `HMT1` bytes. The summary
/// fields are carried inline so the run geometry and the canonical wire
/// form are pure functions of the config — no registry lookup — while
/// the records themselves are fetched from the process-global replay
/// registry (`hmm_workloads::replay`) when the run starts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRef {
    /// `snap_hash` of the raw trace bytes (the trace id).
    pub hash: u64,
    /// Number of records in the trace.
    pub records: u64,
    /// Timestamp of the last record.
    pub last_tick: u64,
    /// Highest line address; the footprint is `(max_line + 1) << 6`.
    pub max_line: u64,
}

impl TraceRef {
    /// Borrow the behaviour-relevant facts from a registry summary.
    pub fn from_summary(s: &replay::TraceSummary) -> Self {
        Self { hash: s.hash, records: s.records, last_tick: s.last_tick, max_line: s.max_line }
    }

    /// The canonical 16-hex-digit spelling of the trace id.
    pub fn id(&self) -> String {
        format!("{:016x}", self.hash)
    }
}

/// Configuration of one simulation run.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Which workload to drive.
    pub workload: WorkloadId,
    /// Controller management mode.
    pub mode: Mode,
    /// log2 of the macro-page (migration granularity), 12..=22 in the
    /// paper's sweep.
    pub page_shift: u32,
    /// log2 of the live-migration sub-block (paper: 12 = 4 KB).
    pub sub_block_shift: u32,
    /// Monitoring-epoch length in demand accesses (paper: 1K/10K/100K).
    pub swap_interval: u64,
    /// On-package capacity before scaling (paper: 512 MB; Fig. 15 sweeps
    /// 128/256/512 MB).
    pub on_package_bytes: u64,
    /// Total memory capacity before scaling (paper Table III: 4 GB; grown
    /// automatically if the workload footprint exceeds it).
    pub total_bytes: u64,
    /// Footprint/capacity scaling for fast runs.
    pub scale: SimScale,
    /// Demand accesses to simulate.
    pub accesses: u64,
    /// Accesses excluded from statistics at the start.
    pub warmup: u64,
    /// Trace seed.
    pub seed: u64,
    /// Table management override (None = paper's 1 MB threshold).
    pub os_assisted: Option<bool>,
    /// DRAM scheduling policy.
    pub policy: SchedPolicy,
    /// Fault-injection plan; `None` runs the fault-free fast path and is
    /// bit-identical to a build without the fault subsystem.
    pub faults: Option<FaultPlan>,
    /// Memory-management scheme. The default ([`SchemeId::Hetero`]) is the
    /// paper's migrating controller and reproduces pre-scheme outputs
    /// bit-for-bit.
    pub scheme: SchemeId,
    /// Swap-trigger rule for the migrating schemes. The default
    /// ([`MigrationPolicy::HotCold`]) is the paper's comparative trigger.
    pub migration: MigrationPolicy,
    /// Replay a recorded trace instead of generating `workload`'s
    /// synthetic stream. When set, `workload` and `seed` are inert (the
    /// canonical wire form normalises them), and the footprint comes
    /// from the trace's own addresses.
    pub trace: Option<TraceRef>,
}

impl RunConfig {
    /// Table III defaults for one workload and mode: 4 GB total, 512 MB
    /// on-package, 4 KB sub-blocks, 10K-access swap interval.
    pub fn paper(workload: WorkloadId, mode: Mode) -> Self {
        Self {
            workload,
            mode,
            page_shift: 22,
            sub_block_shift: 12,
            swap_interval: 10_000,
            on_package_bytes: 512 << 20,
            total_bytes: 4 << 30,
            scale: SimScale::full(),
            accesses: 2_000_000,
            warmup: 200_000,
            seed: 42,
            os_assisted: None,
            policy: SchedPolicy::FrFcfs,
            faults: None,
            scheme: SchemeId::Hetero,
            migration: MigrationPolicy::HotCold,
            trace: None,
        }
    }

    /// A fast configuration for tests: 1/64 scale, short trace.
    pub fn quick(workload: WorkloadId, mode: Mode) -> Self {
        Self {
            scale: SimScale::test_default(),
            accesses: 60_000,
            warmup: 10_000,
            page_shift: 16,
            swap_interval: 2_000,
            ..Self::paper(workload, mode)
        }
    }

    /// The scaled memory geometry for this run. The total capacity grows
    /// to cover the workload footprint (DC.B and FT.C exceed 4 GB), and
    /// everything is rounded to macro-page multiples.
    pub fn geometry(&self) -> MemoryGeometry {
        let page = 1u64 << self.page_shift;
        // A replayed trace's footprint is fixed by its own addresses
        // (never scaled — the addresses are the workload); synthetic
        // footprints scale with the run.
        let fp = match &self.trace {
            Some(t) => (t.max_line + 1) << 6,
            None => footprint_bytes(self.workload, &self.scale),
        };
        let round_up = |v: u64| v.div_ceil(page) * page;
        let round_down = |v: u64| (v / page * page).max(page);
        // One extra page beyond the footprint keeps the reserved ghost
        // page Ω outside the program-visible space; a fault plan reserves
        // further spare pages below Ω for quarantine parking.
        let spares = match (self.faults, self.mode) {
            (Some(p), Mode::Dynamic(d)) if d.sacrifices_slot() => p.spare_slots as u64,
            _ => 0,
        };
        let total = round_up(self.scale.bytes(self.total_bytes).max(fp) + page * (1 + spares));
        let mut on = round_down(self.scale.bytes(self.on_package_bytes));
        if on + 2 * page > total {
            on = (total - 2 * page).max(page);
        }
        MemoryGeometry {
            total_bytes: total,
            on_package_bytes: on,
            page_shift: self.page_shift,
            sub_block_shift: self.sub_block_shift.min(self.page_shift),
        }
    }
}

/// Results of one run. Equality is exact (every counter and histogram
/// bucket), which is what the snapshot/resume property tests compare.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Workload display name.
    pub workload: String,
    /// Post-warm-up access statistics.
    pub access: AccessStats,
    /// Whole-run controller counters (traffic, stalls, epochs).
    pub controller: ControllerStats,
    /// Migration statistics, when the mode migrates.
    pub swaps: Option<SwapStats>,
    /// Per-channel aggregates for the on-package region (ECC and
    /// throttle counters live here).
    pub on_region: RegionStats,
    /// Per-channel aggregates for the off-package region.
    pub off_region: RegionStats,
    /// The geometry that was simulated.
    pub geometry: MemoryGeometry,
    /// Endurance counters for write-limited off-package media; `Some`
    /// only under schemes with an endurance surface (PCM).
    pub wear: Option<WearStats>,
}

impl RunResult {
    /// Mean end-to-end memory latency (cycles).
    pub fn mean_latency(&self) -> f64 {
        self.access.mean_latency()
    }

    /// Mean DRAM-core component (the "DRAM core latency" row of
    /// Table IV).
    pub fn dram_core_mean(&self) -> f64 {
        self.access.dram_core.mean()
    }

    /// Fraction of accesses served on-package.
    pub fn on_fraction(&self) -> f64 {
        self.access.on_package_fraction()
    }

    /// Traffic summary for the power model.
    pub fn traffic(&self) -> hmm_power::Traffic {
        hmm_power::Traffic {
            demand_on_lines: self.controller.demand_on_lines,
            demand_off_lines: self.controller.demand_off_lines,
            migration_on_lines: self.controller.migration_on_lines,
            migration_off_lines: self.controller.migration_off_lines,
        }
    }
}

/// Records per trace-generation block. The value only affects generator
/// locality, never behaviour: records are still submitted and advanced
/// one at a time, so any block size produces the identical run.
const TRACE_BLOCK: usize = 4096;

/// The shared [`ControllerConfig`] for a run: everything but the scheme
/// choice itself (the PCM scheme overrides `off_profile` internally).
fn controller_config(cfg: &RunConfig, machine: MachineConfig) -> ControllerConfig {
    ControllerConfig {
        machine,
        mode: cfg.mode,
        swap_interval: cfg.swap_interval,
        os_assisted: cfg.os_assisted,
        max_outstanding_copies: 16,
        copy_pace_cycles_per_line: 20,
        policy: cfg.policy,
        on_profile: DeviceProfile::on_package(),
        off_profile: DeviceProfile::off_package_ddr3(),
        faults: cfg.faults,
    }
}

/// Resolve the run's record source and display name. Replay runs panic
/// if the trace is no longer registered (a `DELETE` racing an
/// already-parsed job); the serving layer's `catch_unwind` turns that
/// into a failed job rather than a wrong result.
fn trace_source(cfg: &RunConfig) -> (String, TraceSource) {
    match &cfg.trace {
        Some(t) => {
            let data = replay::lookup(t.hash)
                .unwrap_or_else(|| panic!("trace {} is not registered for replay", t.id()));
            (format!("trace:{}", t.id()), TraceSource::Replay(ReplayIter::new(data)))
        }
        None => {
            let w = workload(cfg.workload, &cfg.scale);
            let name = w.name.clone();
            (name, TraceSource::Synthetic(w.iter(cfg.seed)))
        }
    }
}

/// Execute one simulation run.
pub fn run(cfg: &RunConfig) -> RunResult {
    run_with_sink(cfg, NullSink)
}

/// Execute one simulation run, reporting telemetry events into `sink`.
///
/// The sink is threaded through the controller into both DRAM regions, so
/// a [`hmm_telemetry::Recorder`] handed in here observes the demand path,
/// the migration engine, and every bank's row-buffer behaviour of the run.
pub fn run_with_sink<S: TelemetrySink + Clone + Send + 'static>(
    cfg: &RunConfig,
    sink: S,
) -> RunResult {
    let (workload_name, mut trace) = trace_source(cfg);
    let geometry = cfg.geometry();
    let machine = MachineConfig { geometry, ..MachineConfig::default() };
    let mut ctrl = build_scheme(cfg.scheme, controller_config(cfg, machine), cfg.migration, sink);

    let mut access = AccessStats::new();
    // Completions drained before the warm-up boundary id is known are
    // stashed and classified at the end (demand ids are monotone in
    // submission order, so `id <= boundary` identifies warm-up accesses).
    let mut warmup_boundary_id = if cfg.warmup == 0 { Some(0u64) } else { None };
    let mut stash: Vec<hmm_core::controller::DemandCompletion> = Vec::new();
    // Reusable buffer for the periodic post-warm-up drains (the
    // allocation-free object-safe replacement for the old Drain iterator).
    let mut drained: Vec<hmm_core::controller::DemandCompletion> = Vec::new();
    let mut submitted = 0u64;
    // Trace records are generated in blocks (amortising the generator's
    // per-record draw setup and keeping generator and simulator code out
    // of each other's instruction stream), but submitted to the
    // controller one at a time on the exact per-record advance cadence —
    // the controller's stall/copy interactions are cadence-sensitive, so
    // coarsening `advance` would not be bit-identical. Block size is
    // behaviour-invariant: `next_block` reproduces the iterator exactly
    // for any partition (proven by the block-size-invariance test in
    // `hmm_workloads::trace`).
    let mut block = Vec::new();
    let mut remaining = cfg.accesses as usize;
    while remaining > 0 {
        let n = remaining.min(TRACE_BLOCK);
        trace.next_block(&mut block, n);
        remaining -= n;
        for rec in &block {
            let id = ctrl.access(rec.tick, rec.addr, rec.is_write);
            submitted += 1;
            if submitted == cfg.warmup {
                warmup_boundary_id = Some(id);
            }
            ctrl.advance(rec.tick);
            if submitted.is_multiple_of(64) {
                match warmup_boundary_id {
                    Some(b) => {
                        ctrl.drain_completed_into(&mut drained);
                        for c in drained.drain(..) {
                            if c.id > b {
                                access.record(&c.breakdown, c.is_write, c.on_package);
                            }
                        }
                    }
                    None => ctrl.drain_completed_into(&mut stash),
                }
            }
        }
    }
    ctrl.flush();
    ctrl.drain_completed_into(&mut stash);
    let boundary = warmup_boundary_id.unwrap_or(u64::MAX);
    for c in stash {
        if c.id > boundary {
            access.record(&c.breakdown, c.is_write, c.on_package);
        }
    }

    let (on_region, off_region) = ctrl.region_stats();
    RunResult {
        workload: workload_name,
        access,
        controller: ctrl.stats(),
        swaps: ctrl.swap_stats(),
        on_region,
        off_region,
        geometry,
        wear: ctrl.wear(),
    }
}

/// Snapshot control for [`run_resumable`]: where to resume from, how
/// often to capture, and where captured snapshots go.
#[derive(Default)]
pub struct SnapshotCtl<'a> {
    /// Sealed snapshot bytes (from an earlier run's `sink`) to resume
    /// from; `None` starts from the beginning.
    pub resume_from: Option<&'a [u8]>,
    /// Capture cadence in submitted accesses; 0 disables capture.
    pub every: u64,
    /// Receives `(submitted, sealed snapshot bytes)` at each capture.
    pub sink: Option<&'a mut dyn FnMut(u64, Vec<u8>)>,
}

impl SnapshotCtl<'_> {
    /// Neither resuming nor capturing: [`run_resumable`] behaves exactly
    /// like [`run`].
    pub fn none() -> Self {
        Self::default()
    }
}

/// Execute one simulation run with snapshot capture and resume.
///
/// A run resumed from any snapshot is bit-identical to the uninterrupted
/// run: the snapshot serializes every piece of dynamic state the loop
/// touches (controller, DRAM timing, migration engine, trace generator
/// RNG and cursors, warm-up bookkeeping, undrained completions), and the
/// loop below replays the identical per-record cadence as [`run`]. Trace
/// records are generated in blocks aligned to snapshot boundaries; block
/// partitioning is behaviour-invariant (proven by the
/// block-size-invariance test in `hmm_workloads::trace`), so the
/// alignment changes generator locality only, never the record stream.
///
/// Snapshots capture at every multiple of `ctl.every` submitted accesses
/// — including mid-migration, mid-stall, and pre-warm-up points — so any
/// cadence is safe; no "quiescent point" is required.
pub fn run_resumable(cfg: &RunConfig, ctl: SnapshotCtl<'_>) -> Result<RunResult, String> {
    run_resumable_with_sink(cfg, ctl, NullSink)
}

/// [`run_resumable`] with telemetry: the sink observes the run exactly
/// as [`run_with_sink`]'s does, and — because sinks are pure observers —
/// the result and every captured snapshot are byte-identical to the
/// sink-free run.
pub fn run_resumable_with_sink<S: TelemetrySink + Clone + Send + 'static>(
    cfg: &RunConfig,
    mut ctl: SnapshotCtl<'_>,
    sink: S,
) -> Result<RunResult, String> {
    let (workload_name, mut trace) = trace_source(cfg);
    let geometry = cfg.geometry();
    let machine = MachineConfig { geometry, ..MachineConfig::default() };
    let mut ctrl = build_scheme(cfg.scheme, controller_config(cfg, machine), cfg.migration, sink);

    let mut access = AccessStats::new();
    let mut warmup_boundary_id = if cfg.warmup == 0 { Some(0u64) } else { None };
    let mut stash: Vec<DemandCompletion> = Vec::new();
    let mut drained: Vec<DemandCompletion> = Vec::new();
    let mut submitted = 0u64;
    let config_hash = fxhash64(canonical_json(cfg).as_bytes());

    if let Some(bytes) = ctl.resume_from {
        let (meta, payload) = snapshot::open(bytes, config_hash)?;
        if meta.submitted > cfg.accesses {
            return Err(format!(
                "snapshot is {} accesses in, past the run's {}",
                meta.submitted, cfg.accesses
            ));
        }
        let mut r = SnapReader::new(payload);
        r.section(b"drvr")?;
        submitted = r.u64()?;
        if submitted != meta.submitted {
            return Err("snapshot header disagrees with payload".into());
        }
        warmup_boundary_id = if r.bool()? { Some(r.u64()?) } else { None };
        stash = r.seq(|r| {
            Ok(DemandCompletion {
                id: r.u64()?,
                finish: r.u64()?,
                breakdown: LatencyBreakdown {
                    dram_core: r.u64()?,
                    queuing: r.u64()?,
                    controller: r.u64()?,
                    interconnect: r.u64()?,
                },
                on_package: r.bool()?,
                is_write: r.bool()?,
            })
        })?;
        r.end_section()?;
        access.load_state(&mut r)?;
        trace.load_state(&mut r)?;
        ctrl.load_state(&mut r)?;
        r.finish()?;
    }

    let mut block = Vec::new();
    let mut remaining = (cfg.accesses - submitted) as usize;
    while remaining > 0 {
        let mut n = remaining.min(TRACE_BLOCK);
        if ctl.every != 0 {
            n = n.min((ctl.every - submitted % ctl.every) as usize);
        }
        trace.next_block(&mut block, n);
        remaining -= n;
        for rec in &block {
            let id = ctrl.access(rec.tick, rec.addr, rec.is_write);
            submitted += 1;
            if submitted == cfg.warmup {
                warmup_boundary_id = Some(id);
            }
            ctrl.advance(rec.tick);
            if submitted.is_multiple_of(64) {
                match warmup_boundary_id {
                    Some(b) => {
                        ctrl.drain_completed_into(&mut drained);
                        for c in drained.drain(..) {
                            if c.id > b {
                                access.record(&c.breakdown, c.is_write, c.on_package);
                            }
                        }
                    }
                    None => ctrl.drain_completed_into(&mut stash),
                }
            }
        }
        if ctl.every != 0 && submitted.is_multiple_of(ctl.every) && remaining > 0 {
            if let Some(sink) = ctl.sink.as_deref_mut() {
                let mut pw = SnapWriter::new();
                pw.section(b"drvr");
                pw.u64(submitted);
                match warmup_boundary_id {
                    None => pw.bool(false),
                    Some(b) => {
                        pw.bool(true);
                        pw.u64(b);
                    }
                }
                pw.seq(&stash, |pw, c| {
                    pw.u64(c.id);
                    pw.u64(c.finish);
                    pw.u64(c.breakdown.dram_core);
                    pw.u64(c.breakdown.queuing);
                    pw.u64(c.breakdown.controller);
                    pw.u64(c.breakdown.interconnect);
                    pw.bool(c.on_package);
                    pw.bool(c.is_write);
                });
                pw.end_section();
                access.save_state(&mut pw);
                trace.save_state(&mut pw);
                ctrl.save_state(&mut pw);
                sink(submitted, snapshot::seal(config_hash, submitted, &pw.into_bytes()));
            }
        }
    }
    ctrl.flush();
    ctrl.drain_completed_into(&mut stash);
    let boundary = warmup_boundary_id.unwrap_or(u64::MAX);
    for c in stash {
        if c.id > boundary {
            access.record(&c.breakdown, c.is_write, c.on_package);
        }
    }

    let (on_region, off_region) = ctrl.region_stats();
    Ok(RunResult {
        workload: workload_name,
        access,
        controller: ctrl.stats(),
        swaps: ctrl.swap_stats(),
        on_region,
        off_region,
        geometry,
        wear: ctrl.wear(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmm_core::MigrationDesign;

    #[test]
    fn quick_run_completes_and_counts() {
        let cfg = RunConfig::quick(WorkloadId::Pgbench, Mode::Static);
        let r = run(&cfg);
        assert_eq!(
            r.access.accesses(),
            cfg.accesses - cfg.warmup,
            "every post-warm-up access must be recorded exactly once"
        );
        assert!(r.mean_latency() > 0.0);
    }

    #[test]
    fn geometry_covers_footprint() {
        for id in [WorkloadId::Ft, WorkloadId::Dc] {
            let cfg = RunConfig::quick(id, Mode::Static);
            let g = cfg.geometry();
            let fp = workload(id, &cfg.scale).footprint_bytes;
            assert!(g.total_bytes > fp, "{id:?}: ghost page must lie beyond the footprint");
            g.validate().unwrap();
        }
    }

    #[test]
    fn geometry_shrinks_on_package_if_needed() {
        // A workload whose scaled footprint is tiny: on-package must stay
        // strictly smaller than total.
        let mut cfg = RunConfig::quick(WorkloadId::Ep, Mode::Static);
        cfg.scale = SimScale { divisor: 1 << 10 };
        let g = cfg.geometry();
        g.validate().unwrap();
        assert!(g.on_package_bytes < g.total_bytes);
    }

    #[test]
    fn ordering_baseline_static_ideal() {
        // All-off >= static >= all-on in mean latency, for a workload with
        // real off-package traffic.
        let mk = |mode| run(&RunConfig::quick(WorkloadId::Pgbench, mode)).mean_latency();
        let off = mk(Mode::AllOffPackage);
        let stat = mk(Mode::Static);
        let on = mk(Mode::AllOnPackage);
        assert!(off > stat, "off {off:.0} vs static {stat:.0}");
        assert!(stat > on, "static {stat:.0} vs ideal {on:.0}");
    }

    #[test]
    fn migration_beats_static_for_hot_workload() {
        let stat = run(&RunConfig::quick(WorkloadId::Pgbench, Mode::Static));
        let live = run(&RunConfig::quick(
            WorkloadId::Pgbench,
            Mode::Dynamic(MigrationDesign::LiveMigration),
        ));
        assert!(live.swaps.unwrap().completed > 0, "no swaps happened");
        assert!(
            live.mean_latency() < stat.mean_latency(),
            "live {:.0} vs static {:.0}",
            live.mean_latency(),
            stat.mean_latency()
        );
        assert!(live.on_fraction() > stat.on_fraction());
    }

    #[test]
    fn deterministic_runs() {
        let cfg = RunConfig::quick(WorkloadId::SpecJbb, Mode::Dynamic(MigrationDesign::NMinusOne));
        let a = run(&cfg);
        let b = run(&cfg);
        assert_eq!(a.mean_latency(), b.mean_latency());
        assert_eq!(a.controller.migration_on_lines, b.controller.migration_on_lines);
    }
}
