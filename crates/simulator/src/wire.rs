//! The canonical wire form of a [`RunConfig`] — one JSON spelling per
//! configuration, shared by every component that names simulations over
//! a byte boundary.
//!
//! `hmm-serve` hashes this rendering for its result-cache key, the sweep
//! subsystem uses the same hash to deduplicate grid cells and to shard
//! them across peers, and coordinator→peer RPC ships the canonical text
//! itself as the `POST /v1/simulate` body. All of that is only sound if
//! the mapping is *bijective on behaviour*: equal configurations — and
//! only equal configurations — produce equal strings, and the string
//! parses back to the exact configuration it came from.
//!
//! Fault plans are rendered *structurally* (every [`FaultPlan`] field as
//! a nested JSON object) rather than through `Debug`, so the canonical
//! text survives `Debug`-format churn and can be parsed back by
//! [`config_from_canonical`] without a Rust compiler in the loop.
//!
//! One representational limit, inherited from the `jsonin` reader: JSON
//! numbers travel as `f64`, so integers above 2^53 are not exactly
//! representable on this wire. Every counter and knob the simulator
//! exposes stays far below that; the ingestion layer (`hmm-serve`
//! request parsing) already passes numbers through `f64`, so the
//! canonical form is no lossier than the requests that feed it.

use crate::driver::{RunConfig, TraceRef};
use hmm_core::{validate_scheme, MigrationPolicy, Mode, SchemeId};
use hmm_dram::SchedPolicy;
use hmm_fault::{FaultPlan, FaultRegion, StuckBank, ThrottleSpec, MAX_STUCK_BANKS};
use hmm_sim_base::FxHasher;
use hmm_telemetry::jsonin::{self, Json};
use hmm_telemetry::{JsonArray, JsonObject};
use hmm_workloads::WorkloadId;
use std::hash::Hasher;

/// The workspace's deterministic 64-bit hash over a byte string: the
/// result-cache key and the sweep-cell identity are both
/// `fxhash64(canonical_json(cfg))`.
pub fn fxhash64(bytes: &[u8]) -> u64 {
    let mut h = FxHasher::default();
    h.write(bytes);
    h.finish()
}

/// Canonical token of a scheduling policy (round-trips through
/// [`policy_from_token`]).
pub fn policy_token(p: SchedPolicy) -> &'static str {
    match p {
        SchedPolicy::FrFcfs => "frfcfs",
        SchedPolicy::Fcfs => "fcfs",
    }
}

/// Parse a policy token (accepts the `fr-fcfs` alias used by CLI flags).
pub fn policy_from_token(s: &str) -> Result<SchedPolicy, String> {
    match s.to_ascii_lowercase().as_str() {
        "frfcfs" | "fr-fcfs" => Ok(SchedPolicy::FrFcfs),
        "fcfs" => Ok(SchedPolicy::Fcfs),
        other => Err(format!("unknown policy '{other}'")),
    }
}

fn region_token(r: FaultRegion) -> &'static str {
    match r {
        FaultRegion::On => "on",
        FaultRegion::Off => "off",
        FaultRegion::Both => "both",
    }
}

fn region_from_token(s: &str) -> Result<FaultRegion, String> {
    match s {
        "on" => Ok(FaultRegion::On),
        "off" => Ok(FaultRegion::Off),
        "both" => Ok(FaultRegion::Both),
        other => Err(format!("unknown fault region '{other}'")),
    }
}

/// Render a fault plan as a self-contained JSON object, every field
/// explicit. `stuck_banks` is compacted to its populated entries: plans
/// that differ only in where the `None` holes sit behave identically
/// (the fault hash iterates populated entries), so they canonicalise
/// identically too.
pub fn fault_plan_to_json(plan: &FaultPlan) -> String {
    let mut banks = JsonArray::new();
    for b in plan.stuck_banks.iter().flatten() {
        banks = banks.raw(
            &JsonObject::new()
                .str("region", region_token(b.region))
                .u64("channel", b.channel as u64)
                .u64("bank", b.bank as u64)
                .finish(),
        );
    }
    let mut obj = JsonObject::new()
        .u64("seed", plan.seed)
        .f64("flip_rate", plan.flip_rate)
        .f64("uflip_rate", plan.uflip_rate)
        .f64("drop_rate", plan.drop_rate)
        .f64("timeout_rate", plan.timeout_rate)
        .f64("row_corrupt_rate", plan.row_corrupt_rate)
        .raw("stuck_banks", &banks.finish());
    if let Some(t) = &plan.throttle {
        obj = obj.raw(
            "throttle",
            &JsonObject::new()
                .str("region", region_token(t.region))
                .u64("period", t.period)
                .u64("duration", t.duration)
                .finish(),
        );
    }
    obj.u64("max_retries", plan.max_retries as u64)
        .u64("retry_backoff_cycles", plan.retry_backoff_cycles)
        .u64("quarantine_threshold", plan.quarantine_threshold as u64)
        .u64("spare_slots", plan.spare_slots as u64)
        .finish()
}

fn num_f64(v: &Json, name: &str) -> Result<f64, String> {
    v.as_f64().ok_or_else(|| format!("field '{name}' must be a number"))
}

fn num_u64(v: &Json, name: &str) -> Result<u64, String> {
    let n = num_f64(v, name)?;
    if n.fract() != 0.0 || !(0.0..=(u64::MAX as f64)).contains(&n) {
        return Err(format!("field '{name}' must be a non-negative integer, got {n}"));
    }
    Ok(n as u64)
}

fn num_u32(v: &Json, name: &str) -> Result<u32, String> {
    let n = num_u64(v, name)?;
    u32::try_from(n).map_err(|_| format!("field '{name}' exceeds u32 range"))
}

fn str_field<'a>(v: &'a Json, name: &str) -> Result<&'a str, String> {
    v.as_str().ok_or_else(|| format!("field '{name}' must be a string"))
}

fn require<'a>(obj: &'a Json, name: &str) -> Result<&'a Json, String> {
    obj.get(name).ok_or_else(|| format!("missing field '{name}'"))
}

/// Render a [`TraceRef`] as the canonical workload-slot object.
pub fn trace_ref_to_json(t: &TraceRef) -> String {
    JsonObject::new()
        .str("trace", &t.id())
        .u64("records", t.records)
        .u64("ticks", t.last_tick)
        .u64("max_line", t.max_line)
        .finish()
}

/// Parse the canonical workload-slot trace object back to a
/// [`TraceRef`]. Unknown fields are rejected; a bare `{"trace": id}`
/// (no summary) is reported distinctly so callers with a registry can
/// resolve it themselves.
pub fn trace_ref_from_json(v: &Json) -> Result<TraceRef, String> {
    let Json::Obj(fields) = v else {
        return Err("trace workload must be an object".into());
    };
    for (name, _) in fields {
        if !["trace", "records", "ticks", "max_line"].contains(&name.as_str()) {
            return Err(format!("unknown trace field '{name}'"));
        }
    }
    let id = str_field(require(v, "trace")?, "trace")?;
    let hash = hmm_workloads::replay::parse_trace_id(id)
        .ok_or_else(|| format!("invalid trace id '{id}' (want 16 hex digits)"))?;
    let t = TraceRef {
        hash,
        records: num_u64(require(v, "records")?, "records")?,
        last_tick: num_u64(require(v, "ticks")?, "ticks")?,
        max_line: num_u64(require(v, "max_line")?, "max_line")?,
    };
    if t.records == 0 {
        return Err("trace 'records' must be at least 1".into());
    }
    Ok(t)
}

/// Parse a fault plan back from its [`fault_plan_to_json`] form.
pub fn fault_plan_from_json(v: &Json) -> Result<FaultPlan, String> {
    let Json::Obj(_) = v else {
        return Err("'faults' must be an object".into());
    };
    let mut plan = FaultPlan {
        seed: num_u64(require(v, "seed")?, "seed")?,
        flip_rate: num_f64(require(v, "flip_rate")?, "flip_rate")?,
        uflip_rate: num_f64(require(v, "uflip_rate")?, "uflip_rate")?,
        drop_rate: num_f64(require(v, "drop_rate")?, "drop_rate")?,
        timeout_rate: num_f64(require(v, "timeout_rate")?, "timeout_rate")?,
        row_corrupt_rate: num_f64(require(v, "row_corrupt_rate")?, "row_corrupt_rate")?,
        stuck_banks: [None; MAX_STUCK_BANKS],
        throttle: None,
        max_retries: num_u32(require(v, "max_retries")?, "max_retries")?,
        retry_backoff_cycles: num_u64(require(v, "retry_backoff_cycles")?, "retry_backoff_cycles")?,
        quarantine_threshold: num_u32(require(v, "quarantine_threshold")?, "quarantine_threshold")?,
        spare_slots: num_u32(require(v, "spare_slots")?, "spare_slots")?,
    };
    let banks =
        require(v, "stuck_banks")?.as_arr().ok_or("field 'stuck_banks' must be an array")?;
    if banks.len() > MAX_STUCK_BANKS {
        return Err(format!("at most {MAX_STUCK_BANKS} stuck banks"));
    }
    for (slot, b) in plan.stuck_banks.iter_mut().zip(banks) {
        *slot = Some(StuckBank {
            region: region_from_token(str_field(require(b, "region")?, "region")?)?,
            channel: num_u32(require(b, "channel")?, "channel")?,
            bank: num_u32(require(b, "bank")?, "bank")?,
        });
    }
    if let Some(t) = v.get("throttle") {
        plan.throttle = Some(ThrottleSpec {
            region: region_from_token(str_field(require(t, "region")?, "region")?)?,
            period: num_u64(require(t, "period")?, "period")?,
            duration: num_u64(require(t, "duration")?, "duration")?,
        });
    }
    Ok(plan)
}

/// Render a resolved configuration in a fixed field order with canonical
/// value spellings. Equal configurations — and only equal configurations
/// — produce equal strings (modulo `stuck_banks` hole placement, which
/// does not change behaviour).
pub fn canonical_json(cfg: &RunConfig) -> String {
    // A replayed trace takes the workload slot as a self-contained
    // object: the content hash is the identity and the summary fields
    // make geometry (and hence behaviour) a pure function of the text.
    // The synthetic-only knobs a replay ignores (`workload` token,
    // `seed`) are normalised away so two requests that replay the same
    // trace can never canonicalise differently.
    let mut obj = JsonObject::new();
    obj = match &cfg.trace {
        Some(t) => obj.raw("workload", &trace_ref_to_json(t)),
        None => obj.str("workload", cfg.workload.token()),
    };
    obj = obj
        .str("mode", cfg.mode.token())
        .u64("page_shift", cfg.page_shift as u64)
        .u64("sub_block_shift", cfg.sub_block_shift as u64)
        .u64("interval", cfg.swap_interval)
        .u64("accesses", cfg.accesses)
        .u64("warmup", cfg.warmup)
        .u64("scale", cfg.scale.divisor)
        .u64("seed", if cfg.trace.is_some() { 0 } else { cfg.seed })
        .u64("on_package", cfg.on_package_bytes)
        .u64("total", cfg.total_bytes)
        .str("policy", policy_token(cfg.policy));
    // Scheme and migration-policy fields are emitted only when they differ
    // from the defaults: every pre-scheme configuration keeps its exact
    // canonical text, so result-cache keys, sweep-cell identities and
    // snapshot config hashes are all unchanged for existing runs.
    if cfg.scheme != SchemeId::Hetero {
        obj = obj.str("scheme", cfg.scheme.token());
    }
    if cfg.migration != MigrationPolicy::HotCold {
        obj = obj.str("migration", cfg.migration.token());
    }
    if let Some(v) = cfg.os_assisted {
        obj = obj.bool("os_assisted", v);
    }
    if let Some(plan) = &cfg.faults {
        obj = obj.raw("faults", &fault_plan_to_json(plan));
    }
    obj.finish()
}

/// Parse a canonical (or canonical-shaped) rendering back into the
/// [`RunConfig`] it came from. This is the strict inverse of
/// [`canonical_json`] — every field the renderer emits is required
/// except the optional `os_assisted`/`faults`, unknown fields are
/// rejected, and `canonical_json(config_from_canonical(s)?) == s` for
/// any `s` the renderer produced.
pub fn config_from_canonical(text: &str) -> Result<RunConfig, String> {
    let doc = jsonin::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
    let Json::Obj(fields) = &doc else {
        return Err("canonical config must be a JSON object".into());
    };
    const KNOWN: [&str; 16] = [
        "workload",
        "mode",
        "page_shift",
        "sub_block_shift",
        "interval",
        "accesses",
        "warmup",
        "scale",
        "seed",
        "on_package",
        "total",
        "policy",
        "scheme",
        "migration",
        "os_assisted",
        "faults",
    ];
    for (name, _) in fields {
        if !KNOWN.contains(&name.as_str()) {
            return Err(format!("unknown field '{name}'"));
        }
    }
    let (workload, trace) = match require(&doc, "workload")? {
        v @ Json::Obj(_) => {
            // The workload token is inert under replay; the canonical
            // placeholder keeps `RunConfig` total without a registry
            // lookup.
            (WorkloadId::Pgbench, Some(trace_ref_from_json(v)?))
        }
        v => (str_field(v, "workload")?.parse::<WorkloadId>()?, None),
    };
    let mode: Mode = str_field(require(&doc, "mode")?, "mode")?.parse()?;
    let os_assisted = match doc.get("os_assisted") {
        None => None,
        Some(v) => Some(v.as_bool().ok_or("field 'os_assisted' must be a boolean")?),
    };
    let faults = match doc.get("faults") {
        None => None,
        Some(v) => Some(fault_plan_from_json(v)?),
    };
    let scheme: SchemeId = match doc.get("scheme") {
        None => SchemeId::Hetero,
        Some(v) => str_field(v, "scheme")?.parse()?,
    };
    let migration: MigrationPolicy = match doc.get("migration") {
        None => MigrationPolicy::HotCold,
        Some(v) => str_field(v, "migration")?.parse()?,
    };
    validate_scheme(scheme, mode, migration)?;
    Ok(RunConfig {
        workload,
        mode,
        page_shift: num_u32(require(&doc, "page_shift")?, "page_shift")?,
        sub_block_shift: num_u32(require(&doc, "sub_block_shift")?, "sub_block_shift")?,
        swap_interval: num_u64(require(&doc, "interval")?, "interval")?,
        on_package_bytes: num_u64(require(&doc, "on_package")?, "on_package")?,
        total_bytes: num_u64(require(&doc, "total")?, "total")?,
        scale: hmm_sim_base::config::SimScale {
            divisor: num_u64(require(&doc, "scale")?, "scale")?.max(1),
        },
        accesses: num_u64(require(&doc, "accesses")?, "accesses")?,
        warmup: num_u64(require(&doc, "warmup")?, "warmup")?,
        seed: num_u64(require(&doc, "seed")?, "seed")?,
        os_assisted,
        policy: policy_from_token(str_field(require(&doc, "policy")?, "policy")?)?,
        faults,
        scheme,
        migration,
        trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmm_core::MigrationDesign;

    fn sample_plan() -> FaultPlan {
        FaultPlan {
            seed: 9,
            flip_rate: 1e-4,
            uflip_rate: 2.5e-7,
            drop_rate: 0.001,
            timeout_rate: 0.0005,
            row_corrupt_rate: 1e-3,
            stuck_banks: [
                Some(StuckBank { region: FaultRegion::On, channel: 1, bank: 3 }),
                Some(StuckBank { region: FaultRegion::Both, channel: 0, bank: 7 }),
                None,
                None,
            ],
            throttle: Some(ThrottleSpec {
                region: FaultRegion::Off,
                period: 10_000,
                duration: 500,
            }),
            ..FaultPlan::default()
        }
    }

    #[test]
    fn fault_plan_round_trips_structurally() {
        let plan = sample_plan();
        let text = fault_plan_to_json(&plan);
        let parsed = fault_plan_from_json(&jsonin::parse(&text).unwrap()).unwrap();
        assert_eq!(parsed, plan);
        assert_eq!(fault_plan_to_json(&parsed), text, "render must be a fixed point");
    }

    #[test]
    fn stuck_bank_holes_do_not_change_the_canonical_form() {
        let mut a = sample_plan();
        let mut b = sample_plan();
        // Same populated banks, different hole placement: behaviourally
        // identical, so the canonical text must coincide.
        a.stuck_banks = [a.stuck_banks[0], None, a.stuck_banks[1], None];
        b.stuck_banks = [None, b.stuck_banks[0], None, b.stuck_banks[1]];
        assert_eq!(fault_plan_to_json(&a), fault_plan_to_json(&b));
    }

    #[test]
    fn canonical_config_round_trips() {
        let mut cfg =
            RunConfig::quick(WorkloadId::Pgbench, Mode::Dynamic(MigrationDesign::LiveMigration));
        cfg.os_assisted = Some(true);
        cfg.faults = Some(sample_plan());
        let text = canonical_json(&cfg);
        let back = config_from_canonical(&text).unwrap();
        assert_eq!(canonical_json(&back), text);
        assert_eq!(back.workload, cfg.workload);
        assert_eq!(back.mode, cfg.mode);
        assert_eq!(back.faults, cfg.faults);
        assert_eq!(back.os_assisted, cfg.os_assisted);
        assert_eq!(fxhash64(text.as_bytes()), fxhash64(canonical_json(&back).as_bytes()));
    }

    #[test]
    fn canonical_config_without_options_round_trips() {
        let cfg = RunConfig::quick(WorkloadId::Mg, Mode::Static);
        let text = canonical_json(&cfg);
        assert!(!text.contains("faults"));
        assert!(!text.contains("os_assisted"));
        let back = config_from_canonical(&text).unwrap();
        assert_eq!(canonical_json(&back), text);
        assert_eq!(back.faults, None);
    }

    #[test]
    fn parser_rejects_malformed_canonical_text() {
        let good = canonical_json(&RunConfig::quick(WorkloadId::Ft, Mode::Static));
        for (mutation, why) in [
            (good.replace("\"seed\"", "\"sede\""), "unknown field"),
            (good.replace("\"ft\"", "\"nope\""), "unknown workload"),
            (good.replace("\"static\"", "\"turbo\""), "unknown mode"),
            (good.replace("\"frfcfs\"", "\"elevator\""), "unknown policy"),
            ("[]".to_string(), "must be a JSON object"),
            ("{\"workload\":\"ft\"}".to_string(), "missing field"),
        ] {
            let err = config_from_canonical(&mutation).unwrap_err();
            assert!(err.contains(why), "{mutation}: got '{err}', wanted '{why}'");
        }
    }

    #[test]
    fn trace_canonical_round_trips_and_normalises_synthetic_knobs() {
        let t = TraceRef {
            hash: 0x0123456789abcdef,
            records: 5_000,
            last_tick: 99_000,
            max_line: 1 << 18,
        };
        let mut cfg = RunConfig::quick(WorkloadId::Pgbench, Mode::Static);
        cfg.trace = Some(t);
        cfg.seed = 77; // inert under replay; must not leak into the text
        let text = canonical_json(&cfg);
        assert!(text.starts_with(r#"{"workload":{"trace":"0123456789abcdef""#), "{text}");
        assert!(text.contains(r#""seed":0"#), "{text}");
        let back = config_from_canonical(&text).unwrap();
        assert_eq!(back.trace, Some(t));
        assert_eq!(canonical_json(&back), text, "round trip is a fixed point");

        // Same trace, different inert knobs: identical canonical text.
        let mut other = cfg;
        other.seed = 123;
        other.workload = WorkloadId::Mg;
        // (workload token is also normalised away under replay)
        let mut other_text = canonical_json(&other);
        // `workload` only affects the synthetic arm; under replay both
        // configs must share one canonical spelling.
        assert_eq!(other_text, text);
        // A different trace hash must change the text.
        other.trace = Some(TraceRef { hash: 1, ..t });
        other_text = canonical_json(&other);
        assert_ne!(other_text, text);
    }

    #[test]
    fn trace_object_rejects_malformed_forms() {
        for (body, why) in [
            (r#"{"trace":"xyz","records":1,"ticks":1,"max_line":1}"#, "invalid trace id"),
            (r#"{"trace":"0123456789abcdef","records":1,"ticks":1}"#, "missing field 'max_line'"),
            (r#"{"trace":"0123456789abcdef","records":0,"ticks":1,"max_line":1}"#, "at least 1"),
            (
                r#"{"trace":"0123456789abcdef","records":1,"ticks":1,"max_line":1,"x":1}"#,
                "unknown trace field",
            ),
        ] {
            let err = trace_ref_from_json(&jsonin::parse(body).unwrap()).unwrap_err();
            assert!(err.contains(why), "{body}: got '{err}', wanted '{why}'");
        }
    }

    #[test]
    fn distinct_plans_get_distinct_canonical_text() {
        let base = sample_plan();
        let mut variants = Vec::new();
        for f in [
            |p: &mut FaultPlan| p.seed += 1,
            |p: &mut FaultPlan| p.flip_rate *= 2.0,
            |p: &mut FaultPlan| p.max_retries += 1,
            |p: &mut FaultPlan| p.throttle = None,
            |p: &mut FaultPlan| p.stuck_banks[1] = None,
            |p: &mut FaultPlan| p.spare_slots += 1,
        ] {
            let mut v = base;
            f(&mut v);
            variants.push(fault_plan_to_json(&v));
        }
        let canonical = fault_plan_to_json(&base);
        for v in variants {
            assert_ne!(v, canonical);
        }
    }
}
