//! The Fig. 5 experiment: IPC under four uses of the on-package DRAM.
//!
//! The paper's Section II comparison runs NPB on a Simics quad-core model.
//! We use a blocking in-order core model instead: each core executes
//! `mean_gap` single-cycle instructions between memory references, and a
//! reference that misses the SRAM hierarchy stalls the core for the
//! analytic memory latency of the option under test (Table II constants).
//! This captures exactly what Fig. 5 measures — the sensitivity of IPC to
//! the average memory latency of each option — without pretending to model
//! an out-of-order pipeline.
//!
//! Options (Fig. 5):
//! (a) baseline — all memory off-package;
//! (b) a 1 GB on-package DRAM **L4 cache** (tags in DRAM: hit 2x, miss 1x
//!     on-package access, then off-package);
//! (c) **static mapping** of the first 1 GB of physical memory on-package;
//! (d) the **ideal**: all memory on-package.

use hmm_cache::{DramCache, DramCacheConfig, Hierarchy, HierarchyConfig, HitLevel};
use hmm_sim_base::config::{LatencyConfig, SimScale};
use hmm_sim_base::cycles::Cycle;
use hmm_workloads::{workload, WorkloadId};

/// The four Fig. 5 configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fig5Option {
    /// All memory off-package.
    Baseline,
    /// 1 GB on-package DRAM used as an L4 cache.
    L4Cache,
    /// First 1 GB of the physical space statically on-package.
    StaticMapping,
    /// Everything on-package (the ideal).
    AllOnPackage,
}

impl Fig5Option {
    /// All options in the paper's bar order.
    pub fn all() -> [Fig5Option; 4] {
        [
            Fig5Option::Baseline,
            Fig5Option::L4Cache,
            Fig5Option::StaticMapping,
            Fig5Option::AllOnPackage,
        ]
    }

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            Fig5Option::Baseline => "Baseline",
            Fig5Option::L4Cache => "L4 Cache 1GB",
            Fig5Option::StaticMapping => "On-Chip Memory 1GB",
            Fig5Option::AllOnPackage => "All Memory On-Chip",
        }
    }
}

/// Result of one IPC simulation.
#[derive(Debug, Clone, Copy)]
pub struct IpcResult {
    /// Total IPC across the four cores.
    pub ipc: f64,
    /// Instructions retired (all cores).
    pub instructions: u64,
    /// Cycles of the slowest core.
    pub cycles: Cycle,
    /// L3 miss rate observed.
    pub l3_miss_rate: f64,
}

/// Simulate one workload under one option. `on_package_bytes` is the
/// unscaled on-package capacity (1 GB in Fig. 5); `accesses` is the number
/// of memory references to drive.
pub fn ipc_for(
    id: WorkloadId,
    option: Fig5Option,
    on_package_bytes: u64,
    accesses: u64,
    scale: &SimScale,
    seed: u64,
) -> IpcResult {
    let w = workload(id, scale);
    let lat = LatencyConfig::default();
    let cores = 4usize;
    let mut hierarchy = Hierarchy::new(HierarchyConfig {
        l3: hmm_cache::CacheConfig::new(scale.bytes(8 << 20).max(64 * 16 * 16), 16),
        ..HierarchyConfig::paper_default()
    });
    let mut l4 = match option {
        Fig5Option::L4Cache => Some(DramCache::new(
            DramCacheConfig {
                array_bytes: scale.bytes(on_package_bytes).max(64 * 16 * 16),
                line_bytes: 64,
            },
            &lat,
        )),
        _ => None,
    };
    let on_boundary = scale.bytes(on_package_bytes);

    let mut cycles = vec![0u64; cores];
    let mut insts = vec![0u64; cores];
    let off_latency = lat.off_package_analytic();
    let on_latency = lat.on_package_analytic();

    // Warm the caches before measuring, as the paper does ("Warm-up:
    // 1 billion instructions", comparable to the measured window): the
    // first half of the trace fills the hierarchy and the L4 without
    // counting cycles.
    let warmup = accesses;
    for (i, rec) in w.iter(seed).take((accesses + warmup) as usize).enumerate() {
        if i as u64 == warmup {
            hierarchy.reset_stats();
            if let Some(l4) = &mut l4 {
                l4.reset_stats();
            }
            cycles.fill(0);
            insts.fill(0);
        }
        let core = rec.cpu as usize % cores;
        // Instructions between memory references execute at 1 IPC.
        cycles[core] += w.mean_gap;
        insts[core] += w.mean_gap + 1;
        let r = hierarchy.access(core, rec.addr, rec.is_write);
        cycles[core] += r.latency;
        if r.level == HitLevel::Memory {
            let mem = match option {
                Fig5Option::Baseline => off_latency,
                Fig5Option::AllOnPackage => on_latency,
                Fig5Option::StaticMapping => {
                    if rec.addr.0 < on_boundary {
                        on_latency
                    } else {
                        off_latency
                    }
                }
                Fig5Option::L4Cache => {
                    let l4 = l4.as_mut().expect("L4 option has a DRAM cache");
                    let out = l4.access(rec.addr.line(), rec.is_write);
                    if out.hit {
                        out.latency
                    } else {
                        out.latency + off_latency
                    }
                }
            };
            cycles[core] += mem;
        }
    }

    let total_insts: u64 = insts.iter().sum();
    let slowest = cycles.iter().copied().max().unwrap_or(1).max(1);
    IpcResult {
        ipc: total_insts as f64 / slowest as f64,
        instructions: total_insts,
        cycles: slowest,
        l3_miss_rate: hierarchy.l3_stats().miss_rate(),
    }
}

/// IPC improvement of `option` over the baseline, in percent (the Fig. 5
/// y-axis).
pub fn improvement_over_baseline(
    id: WorkloadId,
    option: Fig5Option,
    on_package_bytes: u64,
    accesses: u64,
    scale: &SimScale,
    seed: u64,
) -> f64 {
    let base = ipc_for(id, Fig5Option::Baseline, on_package_bytes, accesses, scale, seed);
    let opt = ipc_for(id, option, on_package_bytes, accesses, scale, seed);
    (opt.ipc / base.ipc - 1.0) * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    const GB: u64 = 1 << 30;

    fn quick(id: WorkloadId, opt: Fig5Option) -> IpcResult {
        ipc_for(id, opt, GB, 60_000, &SimScale { divisor: 64 }, 3)
    }

    #[test]
    fn ideal_beats_baseline() {
        let base = quick(WorkloadId::Mg, Fig5Option::Baseline);
        let ideal = quick(WorkloadId::Mg, Fig5Option::AllOnPackage);
        assert!(ideal.ipc > base.ipc, "ideal {} vs base {}", ideal.ipc, base.ipc);
    }

    #[test]
    fn small_footprint_static_equals_ideal() {
        // 7 of 10 NPB workloads fit in 1 GB: for them static mapping is
        // "equivalent to having all the memory on-package".
        let s = quick(WorkloadId::Lu, Fig5Option::StaticMapping);
        let i = quick(WorkloadId::Lu, Fig5Option::AllOnPackage);
        assert!((s.ipc - i.ipc).abs() / i.ipc < 1e-9, "static {} vs ideal {}", s.ipc, i.ipc);
    }

    #[test]
    fn big_footprint_static_trails_ideal() {
        let s = quick(WorkloadId::Ft, Fig5Option::StaticMapping);
        let i = quick(WorkloadId::Ft, Fig5Option::AllOnPackage);
        assert!(s.ipc < i.ipc, "static {} vs ideal {}", s.ipc, i.ipc);
    }

    #[test]
    fn l4_cache_improves_over_baseline_when_it_captures_reuse() {
        // UA's working set exceeds the (scaled) L3 but fits the 1 GB L4.
        let base = quick(WorkloadId::Ua, Fig5Option::Baseline);
        let l4 = quick(WorkloadId::Ua, Fig5Option::L4Cache);
        assert!(l4.ipc > base.ipc, "L4 {} vs base {}", l4.ipc, base.ipc);
    }

    #[test]
    fn l4_beats_static_for_giant_footprints() {
        // The paper's Fig. 5: "DC.B and FT.C cannot compete against the
        // L4 cache" under static mapping — their footprints dwarf the
        // on-package gigabyte, but their pass-structured reuse is
        // cacheable.
        for id in [WorkloadId::Dc, WorkloadId::Ft] {
            let l4 = quick(id, Fig5Option::L4Cache);
            let st = quick(id, Fig5Option::StaticMapping);
            assert!(l4.ipc > st.ipc, "{id:?}: L4 {} must beat static {}", l4.ipc, st.ipc);
        }
    }

    #[test]
    fn ipc_bounded_by_core_count() {
        let r = quick(WorkloadId::Ep, Fig5Option::AllOnPackage);
        assert!(r.ipc <= 4.0 + 1e-9);
        assert!(r.ipc > 0.0);
    }

    #[test]
    fn improvement_metric_signs() {
        let imp = improvement_over_baseline(
            WorkloadId::Mg,
            Fig5Option::AllOnPackage,
            GB,
            60_000,
            &SimScale { divisor: 64 },
            3,
        );
        assert!(imp > 0.0, "ideal must improve over baseline: {imp}%");
    }
}
