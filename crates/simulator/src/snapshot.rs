//! Versioned, checksummed container for engine snapshots.
//!
//! A snapshot file wraps the driver's serialized payload with enough
//! metadata to refuse every unsafe resume: a magic number (is this a
//! snapshot at all?), a format version (can this build parse it?), an
//! engine-version stamp (would this build replay it bit-identically?),
//! and the canonical-config hash (is it a snapshot of *this* run?). The
//! whole container is covered by a trailing checksum, so a torn or
//! corrupted file is detected before any field is trusted.
//!
//! The checksum doubles as the snapshot's canonical content hash: the
//! payload encoding is fixed-width and deterministic
//! ([`hmm_sim_base::snap`]), so equal engine states produce equal bytes
//! and therefore equal hashes.

use hmm_sim_base::snap::{snap_hash, SnapReader, SnapResult};

/// Behavioural version of the simulation engine. Bump this whenever a
/// change alters simulated behaviour (not just performance): a snapshot
/// resumed under a different engine version would silently diverge from
/// the uninterrupted run, so resume refuses mismatched stamps, and the
/// serving layer keys its durable result store by this stamp so stale
/// cached figures are never served across an engine change.
pub const ENGINE_VERSION: &str = "hmm-engine-v1";

/// `b"HMMSNAP1"` as a little-endian u64.
const MAGIC: u64 = u64::from_le_bytes(*b"HMMSNAP1");

/// Container layout version (independent of [`ENGINE_VERSION`]: the
/// format can survive engine changes and vice versa).
const FORMAT: u32 = 1;

/// Parsed snapshot header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotMeta {
    /// Container layout version.
    pub format: u32,
    /// Engine-version stamp the snapshot was captured under.
    pub engine: String,
    /// `fxhash64(canonical_json(cfg))` of the run being snapshotted.
    pub config_hash: u64,
    /// Demand accesses submitted when the snapshot was captured.
    pub submitted: u64,
    /// Canonical content hash of the whole snapshot (the trailing
    /// checksum).
    pub content_hash: u64,
}

/// Wrap a serialized engine payload into a sealed snapshot file.
pub fn seal(config_hash: u64, submitted: u64, payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(payload.len() + 64);
    buf.extend_from_slice(&MAGIC.to_le_bytes());
    buf.extend_from_slice(&FORMAT.to_le_bytes());
    buf.extend_from_slice(&(ENGINE_VERSION.len() as u64).to_le_bytes());
    buf.extend_from_slice(ENGINE_VERSION.as_bytes());
    buf.extend_from_slice(&config_hash.to_le_bytes());
    buf.extend_from_slice(&submitted.to_le_bytes());
    buf.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    buf.extend_from_slice(payload);
    let sum = snap_hash(&buf);
    buf.extend_from_slice(&sum.to_le_bytes());
    buf
}

fn parse(bytes: &[u8]) -> SnapResult<(SnapshotMeta, &[u8])> {
    if bytes.len() < 8 {
        return Err("snapshot too short for a checksum".into());
    }
    let (body, sum_bytes) = bytes.split_at(bytes.len() - 8);
    let sum = u64::from_le_bytes(sum_bytes.try_into().unwrap());
    if snap_hash(body) != sum {
        return Err("snapshot checksum mismatch (torn or corrupted file)".into());
    }
    let mut r = SnapReader::new(body);
    if r.u64()? != MAGIC {
        return Err("not a snapshot file (bad magic)".into());
    }
    let format = r.u32()?;
    if format != FORMAT {
        return Err(format!("unsupported snapshot format {format} (this build reads {FORMAT})"));
    }
    let engine = r.str()?;
    let config_hash = r.u64()?;
    let submitted = r.u64()?;
    let payload = r.bytes()?;
    r.finish()?;
    Ok((SnapshotMeta { format, engine, config_hash, submitted, content_hash: sum }, payload))
}

/// Read a snapshot's header without touching the payload. Verifies the
/// checksum, so success means the file is whole.
pub fn peek(bytes: &[u8]) -> SnapResult<SnapshotMeta> {
    parse(bytes).map(|(meta, _)| meta)
}

/// Open a snapshot for resuming a run whose canonical-config hash is
/// `expect_config_hash`. Refuses engine-version and config mismatches:
/// both would produce a resume that diverges from the uninterrupted run.
pub fn open(bytes: &[u8], expect_config_hash: u64) -> SnapResult<(SnapshotMeta, &[u8])> {
    let (meta, payload) = parse(bytes)?;
    if meta.engine != ENGINE_VERSION {
        return Err(format!(
            "snapshot was captured by engine '{}', this build is '{ENGINE_VERSION}'",
            meta.engine
        ));
    }
    if meta.config_hash != expect_config_hash {
        return Err(format!(
            "snapshot belongs to a different configuration \
             (hash {:#018x}, expected {expect_config_hash:#018x})",
            meta.config_hash
        ));
    }
    Ok((meta, payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seal_and_open_round_trip() {
        let sealed = seal(0xabcd, 512, b"engine state");
        let meta = peek(&sealed).unwrap();
        assert_eq!(meta.format, FORMAT);
        assert_eq!(meta.engine, ENGINE_VERSION);
        assert_eq!(meta.config_hash, 0xabcd);
        assert_eq!(meta.submitted, 512);
        let (meta2, payload) = open(&sealed, 0xabcd).unwrap();
        assert_eq!(meta2, meta);
        assert_eq!(payload, b"engine state");
    }

    #[test]
    fn every_single_byte_corruption_is_detected() {
        let sealed = seal(7, 64, b"payload bytes here");
        for i in 0..sealed.len() {
            let mut bad = sealed.clone();
            bad[i] ^= 0x40;
            assert!(peek(&bad).is_err(), "flipping byte {i} must fail the checksum");
        }
    }

    #[test]
    fn truncation_is_detected_at_every_length() {
        let sealed = seal(7, 64, b"payload");
        for cut in 0..sealed.len() {
            assert!(peek(&sealed[..cut]).is_err(), "prefix of {cut} bytes must be rejected");
        }
    }

    #[test]
    fn config_mismatch_refused() {
        let sealed = seal(1, 0, b"");
        assert!(peek(&sealed).is_ok());
        let err = open(&sealed, 2).unwrap_err();
        assert!(err.contains("different configuration"), "{err}");
    }

    #[test]
    fn engine_stamp_mismatch_refused() {
        // Re-seal with a foreign engine stamp by rebuilding the container
        // manually (the public API never writes foreign stamps).
        let payload = b"state";
        let engine = "hmm-engine-v0-ancient";
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC.to_le_bytes());
        buf.extend_from_slice(&FORMAT.to_le_bytes());
        buf.extend_from_slice(&(engine.len() as u64).to_le_bytes());
        buf.extend_from_slice(engine.as_bytes());
        buf.extend_from_slice(&9u64.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        buf.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        buf.extend_from_slice(payload);
        let sum = snap_hash(&buf);
        buf.extend_from_slice(&sum.to_le_bytes());
        assert!(peek(&buf).is_ok(), "header itself is well-formed");
        let err = open(&buf, 9).unwrap_err();
        assert!(err.contains("engine"), "{err}");
    }

    #[test]
    fn content_hash_is_deterministic_and_state_sensitive() {
        let a = seal(1, 10, b"state A");
        let b = seal(1, 10, b"state A");
        let c = seal(1, 10, b"state B");
        assert_eq!(peek(&a).unwrap().content_hash, peek(&b).unwrap().content_hash);
        assert_ne!(peek(&a).unwrap().content_hash, peek(&c).unwrap().content_hash);
    }
}
