//! E2E reconciliation of the recorder's keyed counter families against
//! the simulator's flat counters.
//!
//! The keyed families (`demand_classes`, `bank_accesses`) are derived on
//! the recorder's hot path from the same event stream the flat counters
//! come from, but through a completely different code path (integer-key
//! interning vs. struct fields). If the two ever disagree, one of them is
//! dropping or double-counting traffic — so a full simulated run must
//! reconcile *exactly*, not approximately.

use hmm_core::{MigrationDesign, Mode};
use hmm_simulator::{run_with_sink, RunConfig};
use hmm_telemetry::{demand_class_key, EventKind, Recorder, TelemetryLevel};
use hmm_workloads::WorkloadId;

#[test]
fn keyed_families_reconcile_with_controller_stats() {
    let cfg = RunConfig::quick(WorkloadId::Pgbench, Mode::Dynamic(MigrationDesign::LiveMigration));
    let rec = Recorder::with_level(TelemetryLevel::Counters);
    let result = run_with_sink(&cfg, rec.clone());
    let c = rec.counters();

    // Every demand line the controller enqueued completed by the end of
    // the run and produced exactly one Demand event, keyed by its service
    // class — so the per-region sums equal the controller's counters.
    let on = c.demand_classes.get(demand_class_key(true, false))
        + c.demand_classes.get(demand_class_key(true, true));
    let off = c.demand_classes.get(demand_class_key(false, false))
        + c.demand_classes.get(demand_class_key(false, true));
    assert_eq!(on, result.controller.demand_on_lines, "on-package demand");
    assert_eq!(off, result.controller.demand_off_lines, "off-package demand");
    assert_eq!(c.demand_classes.total(), c.get(EventKind::Demand));
    assert!(on > 0 && off > 0, "a live run drives both regions");

    // Every DRAM column access produced one bank-keyed count and one
    // row-outcome count; the family total must equal the outcome total.
    let outcomes =
        c.get(EventKind::RowHit) + c.get(EventKind::RowMiss) + c.get(EventKind::BankConflict);
    assert_eq!(c.bank_accesses.total(), outcomes, "bank family vs row outcomes");

    // Region split: keyed counts with the region bit set sum to the
    // on-package region's serviced transactions (demand + migration),
    // ditto off-package. `bank_key` packs the region into bit 49.
    let (mut on_banks, mut off_banks) = (0u64, 0u64);
    for (key, count) in c.bank_accesses.sorted() {
        if key >> 49 & 1 != 0 {
            on_banks += count;
        } else {
            off_banks += count;
        }
    }
    assert_eq!(on_banks, result.on_region.serviced, "on-region serviced");
    assert_eq!(off_banks, result.off_region.serviced, "off-region serviced");

    // A live-migration run spreads traffic over many banks; the keyed
    // family must actually fan out rather than lump everything together.
    assert!(c.bank_accesses.len() > 8, "expected many bank series, got {}", c.bank_accesses.len());
}
