//! Resume determinism: a run resumed from a snapshot must be
//! bit-identical to the uninterrupted run — at *every* capture boundary,
//! not just convenient ones. This is the property that makes checkpointed
//! serving sound: a job killed and resumed elsewhere reports exactly the
//! figures the unkilled job would have.

use hmm_core::{MigrationDesign, MigrationPolicy, Mode, SchemeId};
use hmm_fault::FaultPlan;
use hmm_simulator::driver::{run, run_resumable, RunConfig, SnapshotCtl};
use hmm_simulator::snapshot;
use hmm_simulator::wire::{canonical_json, fxhash64};
use hmm_workloads::WorkloadId;

/// Shrink a quick config further so capturing at every boundary stays
/// fast: enough accesses to cross the warm-up boundary, several
/// migration epochs, and several snapshot points.
fn small(workload: WorkloadId, mode: Mode) -> RunConfig {
    RunConfig {
        accesses: 4_000,
        warmup: 500,
        swap_interval: 400,
        ..RunConfig::quick(workload, mode)
    }
}

/// Run uninterrupted while capturing at `every`, then resume from each
/// snapshot and require exact result equality.
fn assert_resume_identical(cfg: &RunConfig, every: u64) {
    let mut snaps: Vec<(u64, Vec<u8>)> = Vec::new();
    let mut sink = |submitted: u64, bytes: Vec<u8>| snaps.push((submitted, bytes));
    let full = run_resumable(cfg, SnapshotCtl { resume_from: None, every, sink: Some(&mut sink) })
        .expect("uninterrupted run");

    // Capture-disabled path must equal the plain driver too.
    assert_eq!(full, run(cfg), "run_resumable must reproduce run()");

    let expected = (cfg.accesses - 1) / every;
    assert_eq!(snaps.len() as u64, expected, "one snapshot per interior boundary");

    for (submitted, bytes) in &snaps {
        let resumed =
            run_resumable(cfg, SnapshotCtl { resume_from: Some(bytes), every: 0, sink: None })
                .unwrap_or_else(|e| panic!("resume from {submitted} failed: {e}"));
        assert_eq!(resumed, full, "resume from snapshot at {submitted}/{} diverged", cfg.accesses);
        // Debug output covers any field a future refactor might exclude
        // from PartialEq.
        assert_eq!(format!("{resumed:?}"), format!("{full:?}"));
    }
}

#[test]
fn static_mode_resumes_identically_at_every_boundary() {
    assert_resume_identical(&small(WorkloadId::Pgbench, Mode::Static), 256);
}

#[test]
fn live_migration_resumes_identically_at_every_boundary() {
    assert_resume_identical(
        &small(WorkloadId::Pgbench, Mode::Dynamic(MigrationDesign::LiveMigration)),
        256,
    );
}

#[test]
fn n_minus_one_resumes_identically_at_every_boundary() {
    assert_resume_identical(
        &small(WorkloadId::SpecJbb, Mode::Dynamic(MigrationDesign::NMinusOne)),
        256,
    );
}

#[test]
fn faulty_run_resumes_identically_at_every_boundary() {
    // Fault injection exercises the retry/rollback/quarantine machinery;
    // its in-flight state must survive a snapshot too.
    let mut cfg = small(WorkloadId::Mg, Mode::Dynamic(MigrationDesign::LiveMigration));
    cfg.faults = Some(FaultPlan {
        seed: 3,
        drop_rate: 0.01,
        timeout_rate: 0.005,
        flip_rate: 1e-4,
        ..FaultPlan::default()
    });
    assert_resume_identical(&cfg, 256);
}

#[test]
fn misaligned_cadence_resumes_identically() {
    // 64-access drain cadence and 100-access snapshot cadence interleave;
    // undrained completions must travel inside the snapshot.
    assert_resume_identical(
        &small(WorkloadId::Pgbench, Mode::Dynamic(MigrationDesign::LiveMigration)),
        100,
    );
}

#[test]
fn pre_warmup_snapshot_resumes_identically() {
    // A snapshot taken before the warm-up boundary carries the stash of
    // unclassified completions.
    let mut cfg = small(WorkloadId::Pgbench, Mode::Dynamic(MigrationDesign::LiveMigration));
    cfg.warmup = 1_000;
    assert_resume_identical(&cfg, 250);
}

#[test]
fn l4cache_scheme_resumes_identically_at_every_boundary() {
    // The L4 scheme snapshots a different state vector entirely (tag
    // array + in-flight slot queue instead of translation table +
    // migration engine); the same every-boundary property must hold.
    let mut cfg = small(WorkloadId::Pgbench, Mode::AllOffPackage);
    cfg.scheme = SchemeId::L4Cache;
    assert_resume_identical(&cfg, 256);
}

#[test]
fn pcm_scheme_resumes_identically_at_every_boundary() {
    // PCM rides the hetero state vector but adds per-bank wear counters
    // inside the DRAM sections; they must survive capture too (the
    // resumed RunResult embeds the wear report).
    let mut cfg = small(WorkloadId::SpecJbb, Mode::Dynamic(MigrationDesign::LiveMigration));
    cfg.scheme = SchemeId::Pcm;
    assert_resume_identical(&cfg, 256);
}

#[test]
fn mlq_policy_resumes_identically_at_every_boundary() {
    // The MLQ policy changes *which* pages the engine promotes; the
    // monitor state it reads is already snapshotted, so resume must not
    // perturb its decisions either.
    let mut cfg = small(WorkloadId::Mg, Mode::Dynamic(MigrationDesign::LiveMigration));
    cfg.migration = MigrationPolicy::Mlq;
    assert_resume_identical(&cfg, 256);
}

#[test]
fn resume_refuses_foreign_scheme_snapshot() {
    // A hetero snapshot opened under `--scheme l4cache` is a different
    // configuration, hence a different config hash: the sealed container
    // refuses it before any scheme state is deserialised.
    let cfg = small(WorkloadId::Pgbench, Mode::AllOffPackage);
    let mut snaps = Vec::new();
    let mut sink = |_: u64, bytes: Vec<u8>| snaps.push(bytes);
    run_resumable(&cfg, SnapshotCtl { resume_from: None, every: 1000, sink: Some(&mut sink) })
        .unwrap();
    let mut other = cfg;
    other.scheme = SchemeId::L4Cache;
    let err =
        run_resumable(&other, SnapshotCtl { resume_from: Some(&snaps[0]), every: 0, sink: None })
            .unwrap_err();
    assert!(err.contains("different configuration"), "{err}");
}

#[test]
fn resume_refuses_mismatched_config() {
    let cfg = small(WorkloadId::Pgbench, Mode::Static);
    let mut snaps = Vec::new();
    let mut sink = |_: u64, bytes: Vec<u8>| snaps.push(bytes);
    run_resumable(&cfg, SnapshotCtl { resume_from: None, every: 1000, sink: Some(&mut sink) })
        .unwrap();
    let mut other = cfg;
    other.seed += 1;
    let err =
        run_resumable(&other, SnapshotCtl { resume_from: Some(&snaps[0]), every: 0, sink: None })
            .unwrap_err();
    assert!(err.contains("different configuration"), "{err}");
}

#[test]
fn resume_refuses_corrupt_snapshot() {
    let cfg = small(WorkloadId::Pgbench, Mode::Static);
    let mut snaps = Vec::new();
    let mut sink = |_: u64, bytes: Vec<u8>| snaps.push(bytes);
    run_resumable(&cfg, SnapshotCtl { resume_from: None, every: 1000, sink: Some(&mut sink) })
        .unwrap();
    let mut bad = snaps[0].clone();
    let mid = bad.len() / 2;
    bad[mid] ^= 1;
    let err = run_resumable(&cfg, SnapshotCtl { resume_from: Some(&bad), every: 0, sink: None })
        .unwrap_err();
    assert!(err.contains("checksum"), "{err}");
}

#[test]
fn snapshot_metadata_matches_run() {
    let cfg = small(WorkloadId::Pgbench, Mode::Static);
    let hash = fxhash64(canonical_json(&cfg).as_bytes());
    let mut snaps = Vec::new();
    let mut sink = |submitted: u64, bytes: Vec<u8>| snaps.push((submitted, bytes));
    run_resumable(&cfg, SnapshotCtl { resume_from: None, every: 512, sink: Some(&mut sink) })
        .unwrap();
    for (submitted, bytes) in &snaps {
        let meta = snapshot::peek(bytes).expect("valid snapshot");
        assert_eq!(meta.submitted, *submitted);
        assert_eq!(meta.config_hash, hash);
        assert_eq!(meta.engine, snapshot::ENGINE_VERSION);
    }
}

#[test]
fn snapshots_are_content_hashed_deterministically() {
    // Same run captured twice: every snapshot must be byte-identical,
    // which is what makes the content hash canonical.
    let cfg = small(WorkloadId::SpecJbb, Mode::Dynamic(MigrationDesign::LiveMigration));
    let capture = || {
        let mut snaps: Vec<Vec<u8>> = Vec::new();
        let mut sink = |_: u64, bytes: Vec<u8>| snaps.push(bytes);
        run_resumable(&cfg, SnapshotCtl { resume_from: None, every: 500, sink: Some(&mut sink) })
            .unwrap();
        snaps
    };
    let a = capture();
    let b = capture();
    assert_eq!(a, b, "snapshot bytes must be deterministic");
}
