//! Pluggable memory-placement schemes.
//!
//! The paper's heterogeneity-aware controller (Section III) is one point in
//! a larger design space it compares against: a flat hardware-managed DRAM
//! L4 cache (Section I), and — in the related work it positions against —
//! off-package media with asymmetric timing such as PCM. This module
//! factors the driver-facing surface of [`HeteroController`] into the
//! [`PlacementScheme`] trait so the same trace driver, telemetry, fault,
//! snapshot and serving layers run any of them unchanged:
//!
//! * [`SchemeId::Hetero`] — the paper's migrating controller, exactly as
//!   before (this is the default; its outputs are bit-identical to the
//!   pre-trait code).
//! * [`SchemeId::L4Cache`] — the on-package array used as a tags-in-DRAM
//!   15-way set-associative cache of off-package memory (the η comparison
//!   of Section I), built on `hmm-cache`'s machinery.
//! * [`SchemeId::Pcm`] — the hetero controller with the off-package DIMMs
//!   replaced by phase-change memory: asymmetric read/write timing, no
//!   refresh, and per-bank endurance counters surfaced through
//!   [`PlacementScheme::wear`].
//!
//! Orthogonally, [`MigrationPolicy`] selects the swap-trigger rule the
//! migrating schemes apply at epoch boundaries: the paper's
//! hottest-vs-coldest comparison, or a multi-level-queue promotion rule
//! that also trusts queue level.

use crate::controller::{
    ControllerConfig, ControllerStats, DemandCompletion, HeteroController, Mode,
};
use crate::migrate::SwapStats;
use hmm_cache::{DramCache, DramCacheConfig};
use hmm_dram::{Completion, DeviceProfile, DramRegion, RegionStats, Transaction, WearStats};
use hmm_sim_base::addr::{LineAddr, PhysAddr};
use hmm_sim_base::cycles::Cycle;
use hmm_sim_base::snap::{SnapReader, SnapResult, SnapWriter};
use hmm_sim_base::stats::LatencyBreakdown;
use hmm_telemetry::{NullSink, RegionKind, TelemetrySink};

/// Which memory-management scheme a run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchemeId {
    /// The paper's migrating heterogeneous controller (the default).
    #[default]
    Hetero,
    /// On-package array as a DRAM L4 cache of off-package memory.
    L4Cache,
    /// Hetero controller over off-package PCM instead of DDR3.
    Pcm,
}

impl SchemeId {
    /// Canonical lowercase token, round-trippable through
    /// [`FromStr`](std::str::FromStr); used by CLI flags, the wire format
    /// and sweep grids.
    pub fn token(&self) -> &'static str {
        match self {
            SchemeId::Hetero => "hetero",
            SchemeId::L4Cache => "l4cache",
            SchemeId::Pcm => "pcm",
        }
    }
}

impl std::str::FromStr for SchemeId {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Ok(match s.to_ascii_lowercase().as_str() {
            "hetero" => SchemeId::Hetero,
            "l4cache" => SchemeId::L4Cache,
            "pcm" => SchemeId::Pcm,
            other => return Err(format!("unknown scheme '{other}'")),
        })
    }
}

/// Swap-trigger rule applied by the migrating schemes at epoch boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MigrationPolicy {
    /// The paper's rule: swap when the hottest off-package page was touched
    /// strictly more than the coldest on-package slot this epoch.
    #[default]
    HotCold,
    /// Multi-level-queue promotion: any page that climbed out of the lowest
    /// MRU queue level is promoted regardless of the coldest slot's count
    /// (pages still in level 0 fall back to the comparative rule).
    Mlq,
}

impl MigrationPolicy {
    /// Canonical lowercase token, round-trippable through
    /// [`FromStr`](std::str::FromStr).
    pub fn token(&self) -> &'static str {
        match self {
            MigrationPolicy::HotCold => "hotcold",
            MigrationPolicy::Mlq => "mlq",
        }
    }
}

impl std::str::FromStr for MigrationPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Ok(match s.to_ascii_lowercase().as_str() {
            "hotcold" => MigrationPolicy::HotCold,
            "mlq" => MigrationPolicy::Mlq,
            other => return Err(format!("unknown migration policy '{other}'")),
        })
    }
}

/// Check that a `(scheme, mode, migration)` combination is meaningful.
/// Call sites (CLI parsing, the wire layer) reject invalid combinations
/// with this message before building anything.
pub fn validate_scheme(
    scheme: SchemeId,
    mode: Mode,
    migration: MigrationPolicy,
) -> Result<(), String> {
    if scheme == SchemeId::L4Cache && mode != Mode::AllOffPackage {
        return Err(format!(
            "scheme 'l4cache' manages placement itself and only composes with mode 'off', got mode '{}'",
            mode.token()
        ));
    }
    if scheme == SchemeId::L4Cache && migration == MigrationPolicy::Mlq {
        return Err(
            "migration policy 'mlq' has no effect under scheme 'l4cache' (no migration engine)"
                .into(),
        );
    }
    Ok(())
}

/// The driver-facing surface every placement scheme implements.
///
/// The contract mirrors [`HeteroController`] exactly, so the trace driver,
/// snapshot/resume machinery and serving layers are scheme-agnostic:
///
/// * [`access`](PlacementScheme::access) submits one demand access and
///   returns a token matched by the corresponding [`DemandCompletion`];
///   `now` must be non-decreasing across calls.
/// * [`advance`](PlacementScheme::advance) services queued work up to
///   `now`; [`flush`](PlacementScheme::flush) runs everything (including
///   in-flight background traffic) to completion at end of trace.
/// * [`drain_completed_into`](PlacementScheme::drain_completed_into)
///   appends finished demand completions in completion order. Schemes must
///   produce the same completion stream for the same access stream on
///   every run (bit-determinism is a workspace invariant).
/// * [`save_state`](PlacementScheme::save_state) /
///   [`load_state`](PlacementScheme::load_state) serialize the complete
///   dynamic state; a resumed run must continue bit-identically. Schemes
///   are not interchangeable at resume time — the snapshot container's
///   config hash covers the scheme, so opening a snapshot under a
///   different scheme fails before `load_state` is reached.
/// * [`wear`](PlacementScheme::wear) reports endurance counters for
///   write-limited media; `None` (the default) means the scheme's media
///   has no endurance concern and reports stay byte-identical to builds
///   without the wear machinery.
pub trait PlacementScheme {
    /// Submit one demand access at `now`; returns its completion token.
    fn access(&mut self, now: Cycle, addr: PhysAddr, is_write: bool) -> u64;
    /// Service queued work up to `now`.
    fn advance(&mut self, now: Cycle);
    /// Run all queues (and any in-flight background work) to completion.
    fn flush(&mut self);
    /// Append finished demand completions to `out` in completion order.
    fn drain_completed_into(&mut self, out: &mut Vec<DemandCompletion>);
    /// Aggregate controller counters.
    fn stats(&self) -> ControllerStats;
    /// Migration statistics, if this scheme migrates.
    fn swap_stats(&self) -> Option<SwapStats>;
    /// DRAM region statistics: `(on_package, off_package)`.
    fn region_stats(&self) -> (RegionStats, RegionStats);
    /// Endurance counters for write-limited off-package media.
    fn wear(&self) -> Option<WearStats> {
        None
    }
    /// Serialize the scheme's full dynamic state for snapshot/resume.
    fn save_state(&self, w: &mut SnapWriter);
    /// Restore state saved by [`PlacementScheme::save_state`] onto a
    /// freshly constructed scheme with the same configuration.
    fn load_state(&mut self, r: &mut SnapReader<'_>) -> SnapResult<()>;
}

impl<S: TelemetrySink + Clone + Send> PlacementScheme for HeteroController<S> {
    fn access(&mut self, now: Cycle, addr: PhysAddr, is_write: bool) -> u64 {
        HeteroController::access(self, now, addr, is_write)
    }

    fn advance(&mut self, now: Cycle) {
        HeteroController::advance(self, now)
    }

    fn flush(&mut self) {
        HeteroController::flush(self)
    }

    fn drain_completed_into(&mut self, out: &mut Vec<DemandCompletion>) {
        HeteroController::drain_completed_into(self, out)
    }

    fn stats(&self) -> ControllerStats {
        HeteroController::stats(self)
    }

    fn swap_stats(&self) -> Option<SwapStats> {
        HeteroController::swap_stats(self)
    }

    fn region_stats(&self) -> (RegionStats, RegionStats) {
        HeteroController::region_stats(self)
    }

    fn save_state(&self, w: &mut SnapWriter) {
        HeteroController::save_state(self, w)
    }

    fn load_state(&mut self, r: &mut SnapReader<'_>) -> SnapResult<()> {
        HeteroController::load_state(self, r)
    }
}

/// The hetero controller over off-package PCM: identical placement and
/// migration machinery, different off-package media. A newtype (rather
/// than a config knob on the hetero scheme) so the endurance surface only
/// exists where it is meaningful.
pub struct PcmScheme<S: TelemetrySink = NullSink>(HeteroController<S>);

impl<S: TelemetrySink + Clone + Send> PcmScheme<S> {
    /// Build a PCM-backed controller. The caller's `off_profile` is
    /// overridden with [`DeviceProfile::pcm`].
    pub fn with_sink(mut cfg: ControllerConfig, sink: S) -> Self {
        cfg.off_profile = DeviceProfile::pcm();
        Self(HeteroController::with_sink(cfg, sink))
    }

    /// The wrapped controller (tests and inspection).
    pub fn controller(&self) -> &HeteroController<S> {
        &self.0
    }

    /// Select the swap-trigger rule (mirrors
    /// [`HeteroController::set_migration_policy`]).
    pub fn set_migration_policy(&mut self, policy: MigrationPolicy) {
        self.0.set_migration_policy(policy);
    }
}

impl<S: TelemetrySink + Clone + Send> PlacementScheme for PcmScheme<S> {
    fn access(&mut self, now: Cycle, addr: PhysAddr, is_write: bool) -> u64 {
        self.0.access(now, addr, is_write)
    }

    fn advance(&mut self, now: Cycle) {
        self.0.advance(now)
    }

    fn flush(&mut self) {
        self.0.flush()
    }

    fn drain_completed_into(&mut self, out: &mut Vec<DemandCompletion>) {
        self.0.drain_completed_into(out)
    }

    fn stats(&self) -> ControllerStats {
        self.0.stats()
    }

    fn swap_stats(&self) -> Option<SwapStats> {
        self.0.swap_stats()
    }

    fn region_stats(&self) -> (RegionStats, RegionStats) {
        self.0.region_stats()
    }

    fn wear(&self) -> Option<WearStats> {
        Some(self.0.off_region_wear())
    }

    fn save_state(&self, w: &mut SnapWriter) {
        self.0.save_state(w)
    }

    fn load_state(&mut self, r: &mut SnapReader<'_>) -> SnapResult<()> {
        self.0.load_state(r)
    }
}

/// In-flight metadata for one L4 transaction id.
#[derive(Debug, Clone, Copy)]
enum L4Slot {
    /// Already consumed.
    Empty,
    /// A demand access: `(issued_at, controller, interconnect, on_package,
    /// is_write)`.
    Demand(Cycle, Cycle, Cycle, bool, bool),
    /// A background fill or write-back leg; dropped on completion.
    Background,
}

/// The DRAM-L4-cache baseline: the on-package array holds a tags-in-DRAM
/// 15-way set-associative cache of the flat off-package space (Section I's
/// "implements a 15-way set associative cache in the space of a 16-way
/// set-associative data array").
///
/// Every access pays the tag read against the on-package array first
/// (charged at the analytic tag latency the `hmm-cache` model derives),
/// then a hit reads its data line from the on-package region and a miss
/// goes off-package, with a background fill into the array and a
/// background write-back of any dirty victim — both contending with demand
/// traffic in the detailed DRAM model, exactly like migration traffic does
/// under the hetero scheme.
pub struct L4CacheScheme<S: TelemetrySink = NullSink> {
    cfg: ControllerConfig,
    l4: DramCache,
    on_region: DramRegion<S>,
    off_region: DramRegion<S>,
    /// Byte mask mapping a machine address onto the on-package array.
    array_mask: u64,
    next_id: u64,
    meta_base: u64,
    meta: std::collections::VecDeque<L4Slot>,
    completed: Vec<DemandCompletion>,
    comp_scratch: Vec<Completion>,
    stats: ControllerStats,
    now: Cycle,
}

impl<S: TelemetrySink + Clone + Send> L4CacheScheme<S> {
    /// Build the L4-cache baseline. `cfg.mode` must be
    /// [`Mode::AllOffPackage`] (validated by [`validate_scheme`]; asserted
    /// here). The array size is the largest power of two within the
    /// geometry's on-package capacity.
    pub fn with_sink(cfg: ControllerConfig, sink: S) -> Self {
        assert!(
            cfg.mode == Mode::AllOffPackage,
            "L4CacheScheme requires Mode::AllOffPackage (validate_scheme)"
        );
        cfg.machine.geometry.validate().expect("invalid geometry");
        let on_bytes = cfg.machine.geometry.on_package_bytes;
        let array_bytes = 1u64 << (63 - on_bytes.leading_zeros());
        let l4 =
            DramCache::new(DramCacheConfig { array_bytes, line_bytes: 64 }, &cfg.machine.latency);
        let on_region = DramRegion::with_sink(
            cfg.on_profile,
            &cfg.machine.clock,
            cfg.policy,
            hmm_dram::PagePolicy::Open,
            sink.clone(),
            RegionKind::OnPackage,
        );
        let off_region = DramRegion::with_sink(
            cfg.off_profile,
            &cfg.machine.clock,
            cfg.policy,
            hmm_dram::PagePolicy::Open,
            sink,
            RegionKind::OffPackage,
        );
        let mut this = Self {
            cfg,
            l4,
            on_region,
            off_region,
            array_mask: array_bytes - 1,
            next_id: 0,
            meta_base: 0,
            meta: std::collections::VecDeque::new(),
            completed: Vec::new(),
            comp_scratch: Vec::new(),
            stats: ControllerStats::default(),
            now: 0,
        };
        if let Some(plan) = this.cfg.faults {
            this.on_region.set_faults(plan);
            this.off_region.set_faults(plan);
        }
        this
    }

    /// Cache hit/miss counters (tests and reports).
    pub fn cache_stats(&self) -> hmm_cache::CacheStats {
        self.l4.stats()
    }

    fn fresh_id(&mut self) -> u64 {
        self.next_id += 1;
        self.next_id
    }

    fn meta_insert(&mut self, id: u64, slot: L4Slot) {
        if self.meta.is_empty() {
            self.meta_base = id;
        }
        debug_assert_eq!(id, self.meta_base + self.meta.len() as u64);
        self.meta.push_back(slot);
    }

    fn meta_remove(&mut self, id: u64) -> L4Slot {
        let idx = (id - self.meta_base) as usize;
        let slot = std::mem::replace(&mut self.meta[idx], L4Slot::Empty);
        while matches!(self.meta.front(), Some(L4Slot::Empty)) {
            self.meta.pop_front();
            self.meta_base += 1;
        }
        slot
    }

    fn process_completions(&mut self, _now: Cycle) -> bool {
        let lat = self.cfg.machine.latency;
        let mut any = false;
        let mut completions = std::mem::take(&mut self.comp_scratch);
        self.on_region.drain_completions_into(&mut completions);
        self.off_region.drain_completions_into(&mut completions);
        for c in completions.drain(..) {
            any = true;
            match self.meta_remove(c.id) {
                L4Slot::Demand(issued_at, controller, interconnect, on_package, is_write) => {
                    let tail = lat.ctl_to_core_each_way
                        + if on_package {
                            lat.interposer_pin_each_way + lat.intra_package_round_trip
                        } else {
                            lat.package_pin_each_way + lat.pcb_wire_round_trip
                        };
                    let finish = c.finish + tail;
                    let breakdown = LatencyBreakdown {
                        dram_core: c.breakdown.dram_core,
                        queuing: c.breakdown.queuing,
                        controller,
                        interconnect,
                    };
                    debug_assert_eq!(
                        breakdown.total(),
                        finish - issued_at,
                        "latency components must sum to end-to-end latency"
                    );
                    self.completed.push(DemandCompletion {
                        id: c.id,
                        finish,
                        breakdown,
                        on_package,
                        is_write,
                    });
                }
                L4Slot::Background | L4Slot::Empty => {}
            }
        }
        self.comp_scratch = completions;
        any
    }
}

impl<S: TelemetrySink + Clone + Send> PlacementScheme for L4CacheScheme<S> {
    fn access(&mut self, now: Cycle, addr: PhysAddr, is_write: bool) -> u64 {
        debug_assert!(now >= self.now, "time went backwards");
        self.now = now;
        let lat = self.cfg.machine.latency;
        let line = LineAddr(addr.0 >> 6);
        let tag = self.l4.tag_latency();
        let out = self.l4.access(line, is_write);

        // Fixed-path components; the tag read against the on-package array
        // serializes ahead of the data access on both paths.
        let controller = lat.mc_processing + 2 * lat.ctl_to_core_each_way + tag;
        let (interconnect, lead) = if out.hit {
            (
                2 * lat.interposer_pin_each_way + lat.intra_package_round_trip,
                lat.mc_processing + lat.ctl_to_core_each_way + tag + lat.interposer_pin_each_way,
            )
        } else {
            (
                2 * lat.package_pin_each_way + lat.pcb_wire_round_trip,
                lat.mc_processing + lat.ctl_to_core_each_way + tag + lat.package_pin_each_way,
            )
        };

        let id = self.fresh_id();
        self.meta_insert(id, L4Slot::Demand(now, controller, interconnect, out.hit, is_write));
        if out.hit {
            self.stats.demand_on_lines += 1;
            self.on_region.enqueue(Transaction::demand(
                id,
                now + lead,
                addr.0 & self.array_mask,
                is_write,
            ));
        } else {
            self.stats.demand_off_lines += 1;
            self.off_region.enqueue(Transaction::demand(id, now + lead, addr.0, is_write));
            // Background fill of the missed line into the array.
            let fill = self.fresh_id();
            self.meta_insert(fill, L4Slot::Background);
            self.stats.migration_on_lines += 1;
            self.on_region.enqueue(Transaction::migration(
                fill,
                now + lead,
                addr.0 & self.array_mask,
                true,
                1,
            ));
            // Dirty victim: read it out of the array, write it back to its
            // off-package home (the tag reconstructs the full address).
            if let Some(victim) = out.writeback {
                let vbyte = victim.0 * 64;
                let vr = self.fresh_id();
                self.meta_insert(vr, L4Slot::Background);
                self.stats.migration_on_lines += 1;
                self.on_region.enqueue(Transaction::migration(
                    vr,
                    now + lead,
                    vbyte & self.array_mask,
                    false,
                    1,
                ));
                let vw = self.fresh_id();
                self.meta_insert(vw, L4Slot::Background);
                self.stats.migration_off_lines += 1;
                self.off_region.enqueue(Transaction::migration(vw, now + lead, vbyte, true, 1));
            }
        }
        id
    }

    fn advance(&mut self, now: Cycle) {
        self.now = self.now.max(now);
        self.on_region.advance_par(now);
        self.off_region.advance_par(now);
        self.process_completions(now);
    }

    fn flush(&mut self) {
        loop {
            self.on_region.flush_par();
            self.off_region.flush_par();
            if !self.process_completions(self.now) {
                break;
            }
        }
    }

    fn drain_completed_into(&mut self, out: &mut Vec<DemandCompletion>) {
        out.append(&mut self.completed);
    }

    fn stats(&self) -> ControllerStats {
        self.stats
    }

    fn swap_stats(&self) -> Option<SwapStats> {
        None
    }

    fn region_stats(&self) -> (RegionStats, RegionStats) {
        (self.on_region.stats(), self.off_region.stats())
    }

    fn save_state(&self, w: &mut SnapWriter) {
        w.section(b"l4ch");
        self.l4.save_state(w);
        w.u64(self.next_id);
        w.u64(self.meta_base);
        w.usize(self.meta.len());
        for slot in &self.meta {
            match slot {
                L4Slot::Empty => w.u8(0),
                L4Slot::Demand(issued_at, controller, interconnect, on, wr) => {
                    w.u8(1);
                    w.u64(*issued_at);
                    w.u64(*controller);
                    w.u64(*interconnect);
                    w.bool(*on);
                    w.bool(*wr);
                }
                L4Slot::Background => w.u8(2),
            }
        }
        w.seq(&self.completed, |w, c| {
            w.u64(c.id);
            w.u64(c.finish);
            w.u64(c.breakdown.dram_core);
            w.u64(c.breakdown.queuing);
            w.u64(c.breakdown.controller);
            w.u64(c.breakdown.interconnect);
            w.bool(c.on_package);
            w.bool(c.is_write);
        });
        w.u64(self.stats.demand_on_lines);
        w.u64(self.stats.demand_off_lines);
        w.u64(self.stats.migration_on_lines);
        w.u64(self.stats.migration_off_lines);
        w.u64(self.now);
        w.end_section();
        w.section(b"dram");
        self.on_region.save_state(w);
        self.off_region.save_state(w);
        w.end_section();
    }

    fn load_state(&mut self, r: &mut SnapReader<'_>) -> SnapResult<()> {
        r.section(b"l4ch")?;
        self.l4.load_state(r)?;
        self.next_id = r.u64()?;
        self.meta_base = r.u64()?;
        let n = r.seq_len(1)?;
        self.meta.clear();
        for _ in 0..n {
            let slot = match r.u8()? {
                0 => L4Slot::Empty,
                1 => {
                    let issued_at = r.u64()?;
                    let controller = r.u64()?;
                    let interconnect = r.u64()?;
                    let on = r.bool()?;
                    let wr = r.bool()?;
                    L4Slot::Demand(issued_at, controller, interconnect, on, wr)
                }
                2 => L4Slot::Background,
                t => return Err(format!("invalid L4 meta-slot tag {t}")),
            };
            self.meta.push_back(slot);
        }
        self.completed = r.seq(|r| {
            Ok(DemandCompletion {
                id: r.u64()?,
                finish: r.u64()?,
                breakdown: LatencyBreakdown {
                    dram_core: r.u64()?,
                    queuing: r.u64()?,
                    controller: r.u64()?,
                    interconnect: r.u64()?,
                },
                on_package: r.bool()?,
                is_write: r.bool()?,
            })
        })?;
        self.stats.demand_on_lines = r.u64()?;
        self.stats.demand_off_lines = r.u64()?;
        self.stats.migration_on_lines = r.u64()?;
        self.stats.migration_off_lines = r.u64()?;
        self.now = r.u64()?;
        r.end_section()?;
        r.section(b"dram")?;
        self.on_region.load_state(r)?;
        self.off_region.load_state(r)?;
        r.end_section()?;
        Ok(())
    }
}

/// Construct the scheme selected by `(scheme, migration)` over `cfg`.
/// `cfg` carries the shared machine/mode/policy/fault configuration; the
/// PCM scheme overrides `off_profile` itself. Combination validity is the
/// caller's job ([`validate_scheme`]).
pub fn build_scheme<S: TelemetrySink + Clone + Send + 'static>(
    scheme: SchemeId,
    cfg: ControllerConfig,
    migration: MigrationPolicy,
    sink: S,
) -> Box<dyn PlacementScheme> {
    match scheme {
        SchemeId::Hetero => {
            let mut c = HeteroController::with_sink(cfg, sink);
            c.set_migration_policy(migration);
            Box::new(c)
        }
        SchemeId::Pcm => {
            let mut c = PcmScheme::with_sink(cfg, sink);
            c.set_migration_policy(migration);
            Box::new(c)
        }
        SchemeId::L4Cache => Box::new(L4CacheScheme::with_sink(cfg, sink)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::migrate::MigrationDesign;
    use hmm_sim_base::SimRng;

    fn quick_cfg(mode: Mode) -> ControllerConfig {
        ControllerConfig::paper_default(mode)
    }

    fn drive(scheme: &mut dyn PlacementScheme, accesses: u64, seed: u64) -> Vec<DemandCompletion> {
        let mut rng = SimRng::new(seed);
        let mut out = Vec::new();
        for i in 0..accesses {
            // Span both sides of the 512 MB on-package boundary so traffic
            // reaches the off-package region too.
            let addr = PhysAddr(rng.below(2 << 30) & !63);
            scheme.access(i * 10, addr, rng.chance(0.3));
            if i % 64 == 63 {
                scheme.advance(i * 10);
                scheme.drain_completed_into(&mut out);
            }
        }
        scheme.flush();
        scheme.drain_completed_into(&mut out);
        out
    }

    #[test]
    fn tokens_round_trip() {
        for s in [SchemeId::Hetero, SchemeId::L4Cache, SchemeId::Pcm] {
            assert_eq!(s.token().parse::<SchemeId>().unwrap(), s);
        }
        for p in [MigrationPolicy::HotCold, MigrationPolicy::Mlq] {
            assert_eq!(p.token().parse::<MigrationPolicy>().unwrap(), p);
        }
        assert!("bogus".parse::<SchemeId>().is_err());
        assert!("bogus".parse::<MigrationPolicy>().is_err());
    }

    #[test]
    fn validate_rejects_bad_combinations() {
        let live = Mode::Dynamic(MigrationDesign::LiveMigration);
        assert!(validate_scheme(SchemeId::L4Cache, live, MigrationPolicy::HotCold).is_err());
        assert!(
            validate_scheme(SchemeId::L4Cache, Mode::AllOffPackage, MigrationPolicy::Mlq).is_err()
        );
        assert!(validate_scheme(SchemeId::L4Cache, Mode::AllOffPackage, MigrationPolicy::HotCold)
            .is_ok());
        assert!(validate_scheme(SchemeId::Hetero, live, MigrationPolicy::Mlq).is_ok());
        assert!(validate_scheme(SchemeId::Pcm, live, MigrationPolicy::Mlq).is_ok());
    }

    #[test]
    fn hetero_through_trait_matches_direct_controller() {
        let mut direct = HeteroController::new(quick_cfg(Mode::Dynamic(MigrationDesign::N)));
        let mut rng = SimRng::new(11);
        let addrs: Vec<(u64, bool)> =
            (0..2_000).map(|_| (rng.below(1 << 28) & !63, rng.chance(0.3))).collect();
        let mut want = Vec::new();
        for (i, &(a, w)) in addrs.iter().enumerate() {
            direct.access(i as u64 * 10, PhysAddr(a), w);
            if i % 64 == 63 {
                direct.advance(i as u64 * 10);
                direct.drain_completed_into(&mut want);
            }
        }
        direct.flush();
        direct.drain_completed_into(&mut want);

        let mut boxed = build_scheme(
            SchemeId::Hetero,
            quick_cfg(Mode::Dynamic(MigrationDesign::N)),
            MigrationPolicy::HotCold,
            NullSink,
        );
        let mut got = Vec::new();
        for (i, &(a, w)) in addrs.iter().enumerate() {
            boxed.access(i as u64 * 10, PhysAddr(a), w);
            if i % 64 == 63 {
                boxed.advance(i as u64 * 10);
                boxed.drain_completed_into(&mut got);
            }
        }
        boxed.flush();
        boxed.drain_completed_into(&mut got);
        assert_eq!(want, got, "trait dispatch must be bit-identical to direct calls");
        assert_eq!(direct.stats(), boxed.stats());
    }

    #[test]
    fn l4_cache_serves_hits_on_package() {
        let mut s = L4CacheScheme::with_sink(quick_cfg(Mode::AllOffPackage), NullSink);
        // Touch the same small working set twice: second pass mostly hits.
        let mut out = Vec::new();
        for pass in 0..2u64 {
            for i in 0..512u64 {
                s.access(pass * 100_000 + i * 100, PhysAddr(i * 64), false);
            }
            PlacementScheme::advance(&mut s, pass * 100_000 + 90_000);
        }
        PlacementScheme::flush(&mut s);
        s.drain_completed_into(&mut out);
        assert_eq!(out.len(), 1024);
        let st = PlacementScheme::stats(&s);
        assert_eq!(st.demand_on_lines, s.cache_stats().hits);
        assert!(st.demand_on_lines >= 512, "second pass should hit: {st:?}");
        assert!(st.migration_on_lines >= 512, "misses must fill the array");
        // Latency identity: every completion's breakdown sums.
        assert!(PlacementScheme::swap_stats(&s).is_none());
    }

    #[test]
    fn l4_cache_writeback_traffic_reaches_off_package() {
        let mut s = L4CacheScheme::with_sink(quick_cfg(Mode::AllOffPackage), NullSink);
        // Dirty a working set far larger than one set's 15 ways by walking
        // set-conflicting addresses: evictions must write back.
        let sets = (1u64 << (63 - (512u64 << 20).leading_zeros())) / (16 * 64);
        for k in 0..64u64 {
            s.access(k * 1_000, PhysAddr(k * sets * 64), true);
        }
        PlacementScheme::flush(&mut s);
        let st = PlacementScheme::stats(&s);
        assert!(st.migration_off_lines >= 1, "dirty victims must be written back: {st:?}");
    }

    #[test]
    fn pcm_reports_wear_hetero_does_not() {
        let mut pcm = build_scheme(
            SchemeId::Pcm,
            quick_cfg(Mode::Dynamic(MigrationDesign::N)),
            MigrationPolicy::HotCold,
            NullSink,
        );
        let mut het = build_scheme(
            SchemeId::Hetero,
            quick_cfg(Mode::Dynamic(MigrationDesign::N)),
            MigrationPolicy::HotCold,
            NullSink,
        );
        drive(pcm.as_mut(), 2_000, 5);
        drive(het.as_mut(), 2_000, 5);
        let wear = pcm.wear().expect("pcm reports wear");
        assert!(wear.write_lines > 0, "writes must reach the PCM region");
        assert_eq!(wear.banks, DeviceProfile::pcm().total_banks() as u64);
        assert!(het.wear().is_none(), "hetero media has no endurance surface");
    }

    #[test]
    fn pcm_reads_faster_than_writes() {
        // One read and one write to the same idle PCM bank: the write's
        // completion reflects the asymmetric program time.
        let cpu = hmm_sim_base::cycles::CpuClock::default();
        let mut region = DramRegion::new(DeviceProfile::pcm(), &cpu, hmm_dram::SchedPolicy::FrFcfs);
        region.enqueue(Transaction::demand(1, 0, 0, false));
        region.flush();
        let read = region.drain_completions()[0];
        let mut region = DramRegion::new(DeviceProfile::pcm(), &cpu, hmm_dram::SchedPolicy::FrFcfs);
        region.enqueue(Transaction::demand(1, 0, 0, true));
        region.enqueue(Transaction::demand(2, 0, 64 * 4, false));
        region.flush();
        let after_write = region.drain_completions()[1];
        assert!(
            after_write.finish > read.finish,
            "read after a write must see the long PCM program time"
        );
    }

    #[test]
    fn mlq_policy_promotes_more_aggressively() {
        // A workload with a moderately-hot off-package page: MLQ promotes
        // on level alone, HotCold needs the comparative trigger. Drive both
        // and require MLQ to complete at least as many swaps.
        let run = |policy: MigrationPolicy| {
            let mut c = HeteroController::new(ControllerConfig {
                swap_interval: 1_000,
                ..quick_cfg(Mode::Dynamic(MigrationDesign::LiveMigration))
            });
            c.set_migration_policy(policy);
            let mut rng = SimRng::new(21);
            for i in 0..20_000u64 {
                // Hot on-package set plus a recurring off-package page.
                let addr = if rng.chance(0.85) {
                    rng.below(256 << 20) & !63
                } else {
                    (300 << 20) + (rng.below(1 << 16) & !63)
                };
                c.access(i * 10, PhysAddr(addr), rng.chance(0.3));
            }
            c.flush();
            c.swap_stats().unwrap()
        };
        let hot = run(MigrationPolicy::HotCold);
        let mlq = run(MigrationPolicy::Mlq);
        assert!(
            mlq.triggered >= hot.triggered,
            "MLQ must trigger at least as many swaps: mlq {mlq:?} vs hotcold {hot:?}"
        );
    }

    #[test]
    fn l4_snapshot_round_trip_is_bit_identical() {
        let cfg = quick_cfg(Mode::AllOffPackage);
        let mut a = L4CacheScheme::with_sink(cfg, NullSink);
        let mut rng = SimRng::new(31);
        let addrs: Vec<(u64, bool)> =
            (0..3_000).map(|_| (rng.below(1 << 26) & !63, rng.chance(0.4))).collect();
        let mut pre = Vec::new();
        for (i, &(ad, wr)) in addrs.iter().take(1_500).enumerate() {
            PlacementScheme::access(&mut a, i as u64 * 10, PhysAddr(ad), wr);
            if i % 64 == 63 {
                PlacementScheme::advance(&mut a, i as u64 * 10);
                a.drain_completed_into(&mut pre);
            }
        }
        let mut w = SnapWriter::new();
        PlacementScheme::save_state(&a, &mut w);
        let bytes = w.into_bytes();

        let mut b = L4CacheScheme::with_sink(cfg, NullSink);
        let mut r = SnapReader::new(&bytes);
        PlacementScheme::load_state(&mut b, &mut r).unwrap();

        let mut out_a = Vec::new();
        let mut out_b = Vec::new();
        for (k, &(ad, wr)) in addrs.iter().enumerate().skip(1_500) {
            PlacementScheme::access(&mut a, k as u64 * 10, PhysAddr(ad), wr);
            PlacementScheme::access(&mut b, k as u64 * 10, PhysAddr(ad), wr);
            if k % 64 == 63 {
                PlacementScheme::advance(&mut a, k as u64 * 10);
                PlacementScheme::advance(&mut b, k as u64 * 10);
                a.drain_completed_into(&mut out_a);
                b.drain_completed_into(&mut out_b);
            }
        }
        PlacementScheme::flush(&mut a);
        PlacementScheme::flush(&mut b);
        a.drain_completed_into(&mut out_a);
        b.drain_completed_into(&mut out_b);
        assert_eq!(out_a, out_b, "resumed run must continue bit-identically");
        assert_eq!(PlacementScheme::stats(&a), PlacementScheme::stats(&b));
        assert_eq!(a.cache_stats(), b.cache_stats());
    }
}
