//! The pure-hardware cost model of Section III-B and Fig. 10.
//!
//! For a 1 GB on-package region managed at 4 MB granularity the paper
//! counts 9,228 bits:
//!
//! * translation table: 256 entries x (26-bit page id + P bit + F bit)
//!   = 7,168 bits;
//! * fill bitmap: 4 MB / 4 KB = 1,024 bits;
//! * clock pseudo-LRU bitmap: 256 bits (one per slot);
//! * multi-queue: 3 levels x 10 entries x 26-bit page ids = 780 bits.
//!
//! (7,168 + 1,024 + 256 + 780 = 9,228 — the OCR of the paper prints the
//! multi-queue size as "78", which the total shows to be 780.)
//!
//! "The pure-hardware solution is only feasible for the granularity larger
//! than 1 MB" — below that the table explodes (Fig. 10) and the OS-assisted
//! scheme keeps the table in software instead.

/// Address-space width assumed by the paper (48-bit).
pub const ADDRESS_BITS: u32 = 48;

/// Macro pages smaller than this use the OS-assisted scheme (Section IV:
/// "OS-assisted scheme is used for macro pages smaller than 1 MB and
/// pure-hardware scheme is used for macro pages larger than 1 MB
/// (including 1 MB)").
pub const OS_ASSIST_THRESHOLD_BYTES: u64 = 1 << 20;

/// Bit counts of the pure-hardware scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HardwareOverhead {
    /// Translation-table bits (entries x entry width).
    pub translation_table: u64,
    /// Live-migration fill bitmap bits (sub-blocks per page).
    pub fill_bitmap: u64,
    /// Clock pseudo-LRU reference bits (one per slot).
    pub lru_bitmap: u64,
    /// Multi-queue storage bits.
    pub multi_queue: u64,
}

impl HardwareOverhead {
    /// Total bits.
    pub fn total(&self) -> u64 {
        self.translation_table + self.fill_bitmap + self.lru_bitmap + self.multi_queue
    }

    /// Is pure hardware considered feasible at this size? (The paper draws
    /// the line at 1 MB pages.)
    pub fn feasible(page_bytes: u64) -> bool {
        page_bytes >= OS_ASSIST_THRESHOLD_BYTES
    }
}

/// Compute the Fig. 10 hardware overhead for managing `on_package_bytes`
/// of on-package memory at `page_bytes` granularity with `sub_block_bytes`
/// live-migration sub-blocks.
pub fn hardware_bits(
    on_package_bytes: u64,
    page_bytes: u64,
    sub_block_bytes: u64,
) -> HardwareOverhead {
    assert!(page_bytes.is_power_of_two() && page_bytes >= sub_block_bytes);
    assert!(on_package_bytes >= page_bytes);
    let slots = on_package_bytes / page_bytes;
    let page_id_bits = (ADDRESS_BITS - page_bytes.trailing_zeros()) as u64;
    // Entry = remapped page id + P bit + F bit.
    let entry_bits = page_id_bits + 2;
    HardwareOverhead {
        translation_table: slots * entry_bits,
        fill_bitmap: page_bytes / sub_block_bytes,
        lru_bitmap: slots,
        multi_queue: 3 * 10 * page_id_bits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_the_papers_9228_bits() {
        // 1 GB on-package, 4 MB pages, 4 KB sub-blocks.
        let o = hardware_bits(1 << 30, 4 << 20, 4 << 10);
        assert_eq!(o.translation_table, 7_168, "256 entries x 28 bits");
        assert_eq!(o.fill_bitmap, 1_024);
        assert_eq!(o.lru_bitmap, 256);
        assert_eq!(o.multi_queue, 780);
        assert_eq!(o.total(), 9_228);
    }

    #[test]
    fn fig10_grows_rapidly_as_pages_shrink() {
        let sizes = [4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20];
        let bits: Vec<u64> =
            sizes.iter().map(|&p| hardware_bits(1 << 30, p, (4 << 10).min(p)).total()).collect();
        // Monotonically decreasing with page size.
        for w in bits.windows(2) {
            assert!(w[0] > w[1], "bits must shrink as pages grow: {bits:?}");
        }
        // 4 KB granularity needs ~10 Mbit (the top of Fig. 10's y-axis).
        assert!(bits[0] > 9_000_000, "4 KB pages: {} bits", bits[0]);
        // 4 MB granularity is TLB-sized.
        assert!(bits[5] < 10_000);
    }

    #[test]
    fn feasibility_threshold_at_1mb() {
        assert!(HardwareOverhead::feasible(1 << 20));
        assert!(HardwareOverhead::feasible(4 << 20));
        assert!(!HardwareOverhead::feasible(256 << 10));
    }

    #[test]
    fn scales_with_on_package_capacity() {
        let half = hardware_bits(512 << 20, 4 << 20, 4 << 10);
        let full = hardware_bits(1 << 30, 4 << 20, 4 << 10);
        assert_eq!(half.translation_table * 2, full.translation_table);
        assert_eq!(half.lru_bitmap * 2, full.lru_bitmap);
        assert_eq!(half.fill_bitmap, full.fill_bitmap, "bitmap depends on page size only");
    }
}
