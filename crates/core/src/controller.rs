//! The heterogeneity-aware on-chip memory controller (Fig. 3).
//!
//! Compared to a conventional controller (Fig. 2), the Address Translation
//! stage moves *ahead* of transaction scheduling: every access is first
//! routed to the on-package or off-package region through the translation
//! table, then each region schedules its own transactions independently.
//! The migration controller monitors recent behaviour, reconfigures the
//! routing and emits background copy traffic.
//!
//! The controller also supports three comparison modes used by Section II:
//! static mapping (the lowest addresses live on-package, no migration), an
//! all-on-package ideal, and an all-off-package baseline.

use crate::migrate::{
    FailureAction, MigrationDesign, MigrationEngine, SwapStats, Transfer, TransferKind,
};
use crate::monitor::{MultiQueueMru, SlotClock};
use crate::scheme::MigrationPolicy;
use crate::table::{RowState, TranslationTable};
use crate::tcache::TranslationCache;
use hmm_dram::{Completion, DeviceProfile, DramRegion, RegionStats, SchedPolicy, Transaction};
use hmm_fault::{FaultPlan, MemFault, TransferFault};
use hmm_sim_base::addr::{PhysAddr, LINE_BYTES};
use hmm_sim_base::arena::Slab;
use hmm_sim_base::config::MachineConfig;
use hmm_sim_base::cycles::Cycle;
use hmm_sim_base::snap::{SnapReader, SnapResult, SnapWriter};
use hmm_sim_base::stats::LatencyBreakdown;
use hmm_telemetry::{Event, EventKind, FaultClass, NullSink, RegionKind, TelemetrySink};

/// How the controller manages the heterogeneous space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Dynamic migration with the given design (Section III).
    Dynamic(MigrationDesign),
    /// Static mapping: "always keeps the lowest memory address space
    /// on-chip" (Section II / Fig. 5 option c).
    Static,
    /// The ideal: all DRAM resources on-package (Fig. 5 option d).
    AllOnPackage,
    /// The baseline: off-package DIMMs only (Fig. 5 option a).
    AllOffPackage,
}

impl Mode {
    /// Canonical lowercase token, round-trippable through [`FromStr`](std::str::FromStr).
    /// This is the spelling used by CLI flags and the `hmm-serve` wire
    /// format, so cache keys and reports agree on one name per mode.
    pub fn token(&self) -> &'static str {
        match self {
            Mode::AllOffPackage => "off",
            Mode::AllOnPackage => "on",
            Mode::Static => "static",
            Mode::Dynamic(MigrationDesign::N) => "n",
            Mode::Dynamic(MigrationDesign::NMinusOne) => "n-1",
            Mode::Dynamic(MigrationDesign::LiveMigration) => "live",
        }
    }
}

impl std::str::FromStr for Mode {
    type Err = String;

    /// Accepts the canonical token plus the historical CLI aliases
    /// (`baseline`, `ideal`, `n1`), case-insensitively.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Ok(match s.to_ascii_lowercase().as_str() {
            "off" | "baseline" => Mode::AllOffPackage,
            "on" | "ideal" => Mode::AllOnPackage,
            "static" => Mode::Static,
            "n" => Mode::Dynamic(MigrationDesign::N),
            "n-1" | "n1" => Mode::Dynamic(MigrationDesign::NMinusOne),
            "live" => Mode::Dynamic(MigrationDesign::LiveMigration),
            other => return Err(format!("unknown mode '{other}'")),
        })
    }
}

/// Controller configuration.
#[derive(Debug, Clone, Copy)]
pub struct ControllerConfig {
    /// Clock, fixed latencies and memory geometry.
    pub machine: MachineConfig,
    /// Management mode.
    pub mode: Mode,
    /// Demand accesses per monitoring epoch (the paper sweeps 1K / 10K /
    /// 100K).
    pub swap_interval: u64,
    /// Force OS-assisted (`Some(true)`) or pure-hardware (`Some(false)`)
    /// table management; `None` picks by the paper's 1 MB threshold.
    pub os_assisted: Option<bool>,
    /// Maximum outstanding migration sub-block copies (copy-engine flow
    /// control).
    pub max_outstanding_copies: u32,
    /// Copy-engine pacing: cycles between successive copied lines
    /// (0 = unpaced). The default — the off-package burst time — devotes
    /// at most one channel's worth (1/4) of off-package bandwidth to
    /// migration, so demand keeps the lion's share even mid-swap.
    pub copy_pace_cycles_per_line: u64,
    /// DRAM scheduling policy for both regions.
    pub policy: SchedPolicy,
    /// Device profile for the on-package region.
    pub on_profile: DeviceProfile,
    /// Device profile for the off-package region.
    pub off_profile: DeviceProfile,
    /// Deterministic fault-injection plan (`None` = fault-free; the
    /// fault machinery is then never consulted, so runs are bit-identical
    /// to a build without it). When set, program-visible pages must stay
    /// below `TranslationTable::first_reserved_page()` — the plan's
    /// `spare_slots` pages just under the ghost are parking space for
    /// quarantined slots.
    pub faults: Option<FaultPlan>,
}

impl ControllerConfig {
    /// Paper defaults for a given mode.
    pub fn paper_default(mode: Mode) -> Self {
        Self {
            machine: MachineConfig::default(),
            mode,
            swap_interval: 10_000,
            os_assisted: None,
            max_outstanding_copies: 16,
            copy_pace_cycles_per_line: 20,
            policy: SchedPolicy::FrFcfs,
            on_profile: DeviceProfile::on_package(),
            off_profile: DeviceProfile::off_package_ddr3(),
            faults: None,
        }
    }

    /// Is the table managed by the OS for this page size? ("OS-assisted
    /// scheme is used for macro pages smaller than 1 MB".)
    pub fn is_os_assisted(&self) -> bool {
        self.os_assisted.unwrap_or(
            self.machine.geometry.page_bytes() < crate::overhead::OS_ASSIST_THRESHOLD_BYTES,
        )
    }
}

/// A completed demand access returned by [`HeteroController::drain`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DemandCompletion {
    /// The token returned by [`HeteroController::access`].
    pub id: u64,
    /// Completion time.
    pub finish: Cycle,
    /// Full latency breakdown (DRAM + queuing + controller + interconnect).
    pub breakdown: LatencyBreakdown,
    /// Served by the on-package region?
    pub on_package: bool,
    /// Store (true) or load.
    pub is_write: bool,
}

/// Aggregate controller counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ControllerStats {
    /// Demand lines served on-package.
    pub demand_on_lines: u64,
    /// Demand lines served off-package.
    pub demand_off_lines: u64,
    /// Migration lines moved through the on-package region (reads+writes).
    pub migration_on_lines: u64,
    /// Migration lines moved through the off-package region.
    pub migration_off_lines: u64,
    /// Cycles demand accesses spent stalled behind N-design halts or
    /// OS-assisted table updates.
    pub stall_cycles: u64,
    /// Monitoring epochs that considered (and possibly rejected) a swap.
    pub epochs: u64,
    /// Epochs where the trigger comparison rejected the swap (MRU not
    /// hotter than LRU).
    pub rejected_triggers: u64,
    /// Failed migration transfers that were re-issued with backoff.
    pub transfer_retries: u64,
    /// Migration transfers whose copy request was dropped in flight.
    pub transfers_dropped: u64,
    /// Migration transfers that timed out in flight.
    pub transfers_timed_out: u64,
    /// Migration transfers whose read returned uncorrectable data.
    pub transfers_ecc_failed: u64,
    /// Sub-block copies that were in flight when their swap aborted and
    /// whose results were discarded on arrival.
    pub abandoned_sub_blocks: u64,
    /// Translation-table rows found corrupted (and repaired) at epoch
    /// boundaries.
    pub row_corruptions: u64,
    /// Slots retired from the migration pool after repeated uncorrectable
    /// errors.
    pub slots_quarantined: u64,
}

impl ControllerStats {
    /// Fold another counter set into this one (the workspace-wide merge
    /// convention, mirroring `RunningMean::merge`). Used when joining
    /// parallel sweep shards.
    pub fn merge(&mut self, other: &ControllerStats) {
        self.demand_on_lines += other.demand_on_lines;
        self.demand_off_lines += other.demand_off_lines;
        self.migration_on_lines += other.migration_on_lines;
        self.migration_off_lines += other.migration_off_lines;
        self.stall_cycles += other.stall_cycles;
        self.epochs += other.epochs;
        self.rejected_triggers += other.rejected_triggers;
        self.transfer_retries += other.transfer_retries;
        self.transfers_dropped += other.transfers_dropped;
        self.transfers_timed_out += other.transfers_timed_out;
        self.transfers_ecc_failed += other.transfers_ecc_failed;
        self.abandoned_sub_blocks += other.abandoned_sub_blocks;
        self.row_corruptions += other.row_corruptions;
        self.slots_quarantined += other.slots_quarantined;
    }
}

#[derive(Debug, Clone, Copy)]
struct DemandMeta {
    issued_at: Cycle,
    stall: Cycle,
    controller: Cycle,
    interconnect: Cycle,
    on_package: bool,
    is_write: bool,
    /// Physical macro page (telemetry labelling).
    page: u64,
    /// On-package slot serving this access, for attributing uncorrectable
    /// errors to slots (quarantine accounting). `None` off-package.
    slot: Option<u32>,
}

/// What an in-flight transaction id resolves to when its DRAM completion
/// arrives.
#[derive(Debug, Clone)]
enum MetaSlot {
    /// Already consumed (or never issued — defensive only).
    Empty,
    /// A demand access with its latency-attribution metadata.
    Demand(DemandMeta),
    /// A migration copy leg: handle into the controller's leg arena.
    Copy(u32),
}

/// Id-indexed in-flight transaction metadata (hot path: one insert and
/// one remove per transaction). Ids come from the controller's monotone
/// counter, so a deque indexed by `id - base` replaces a hash map — no
/// hashing, O(1) amortised, memory bounded by the in-flight id span.
/// Demand and copy-leg ids draw from the same counter and share the ring:
/// a copy id stores its leg-arena handle instead of occupying a permanent
/// gap slot next to a separate id→token hash map (which is what the
/// previous layout paid two hash operations per leg for).
#[derive(Debug, Default)]
struct MetaRing {
    base: u64,
    slots: std::collections::VecDeque<MetaSlot>,
}

impl MetaRing {
    fn insert(&mut self, id: u64, slot: MetaSlot) {
        if self.slots.is_empty() {
            self.base = id;
        }
        debug_assert!(id >= self.base + self.slots.len() as u64, "ids are monotone");
        while self.base + (self.slots.len() as u64) < id {
            self.slots.push_back(MetaSlot::Empty);
        }
        self.slots.push_back(slot);
    }

    fn remove(&mut self, id: u64) -> MetaSlot {
        let Some(idx) = id.checked_sub(self.base) else { return MetaSlot::Empty };
        let Some(slot) = self.slots.get_mut(idx as usize) else { return MetaSlot::Empty };
        let meta = std::mem::replace(slot, MetaSlot::Empty);
        while matches!(self.slots.front(), Some(MetaSlot::Empty)) {
            self.slots.pop_front();
            self.base += 1;
        }
        meta
    }
}

/// How a migration transfer's copy failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FailKind {
    Dropped,
    TimedOut,
    Ecc,
}

/// Bookkeeping for the in-flight line legs of one sub-block transfer,
/// stored in the leg arena and reached directly through the handle each
/// leg id carries in the [`MetaRing`] — no map lookup on completion. The
/// generation is bumped on every swap abort so legs issued for a dead
/// swap are recognised and discarded when their DRAM completions
/// eventually arrive.
#[derive(Debug, Clone, Copy)]
struct LegState {
    remaining: u32,
    /// Set when the transfer is doomed (decided at issue for drops and
    /// timeouts, or when a read leg returns uncorrectable data).
    fail: Option<FailKind>,
    kind: TransferKind,
    /// On-package slot the copy touches, for error attribution.
    slot: Option<u32>,
    /// Transfer generation this leg was issued under.
    gen: u64,
    /// Engine token the last leg reports completion with.
    token: u64,
}

/// Upper bound on buffered demand events between flushes, so a huge epoch
/// (or a run with swaps disabled) cannot grow the buffer unboundedly.
const DEMAND_BATCH_CAP: usize = 4096;

/// Snapshot of the cumulative counters at the last epoch rollover, so
/// [`Event::EpochRollover`] can carry per-epoch deltas that sum exactly to
/// the flat totals.
#[derive(Debug, Clone, Copy, Default)]
struct EpochMark {
    demand_on: u64,
    demand_off: u64,
    migration: u64,
    stall: u64,
    swaps_completed: u64,
}

/// The heterogeneity-aware memory controller.
///
/// Generic over the telemetry sink: the default [`NullSink`] folds every
/// instrumentation branch away, so `HeteroController::new` builds exactly
/// the pre-telemetry controller. Pass a `Recorder` via
/// [`HeteroController::with_sink`] to capture events.
#[derive(Debug)]
pub struct HeteroController<S: TelemetrySink = NullSink> {
    cfg: ControllerConfig,
    sink: S,
    table: TranslationTable,
    /// Direct-mapped lookup cache in front of `table` for the demand path;
    /// invalidated wholesale by the table's generation counter.
    tcache: TranslationCache,
    engine: Option<MigrationEngine>,
    lru: SlotClock,
    mru: MultiQueueMru,
    on_region: DramRegion<S>,
    off_region: DramRegion<S>,
    next_id: u64,
    /// In-flight metadata for every transaction id (demand and copy legs
    /// share the monotone id counter and this ring).
    meta: MetaRing,
    /// Arena of in-flight sub-block leg states; copy ids in the ring hold
    /// handles into it, so a leg completion is two direct index
    /// operations instead of two hash-map lookups.
    copy_legs: Slab<LegState>,
    /// Copy-leg ids currently in flight (ring occupancy of `Copy` slots);
    /// drained-to-zero is the flush convergence condition.
    copy_ids_live: u64,
    /// Current transfer generation; bumped when a swap aborts so stale
    /// legs are dropped instead of reported to the engine.
    copy_gen: u64,
    /// Monotone issue counter hashed by the fault plan to doom transfers.
    copy_seq: u64,
    /// Uncorrectable-error counts per on-package slot, indexed by slot.
    slot_errors: Vec<u32>,
    /// Slots over the quarantine threshold awaiting an idle engine.
    pending_quarantine: Vec<u32>,
    completed: Vec<DemandCompletion>,
    /// Reusable buffer for draining region completions (per-access path;
    /// reuse keeps it allocation-free after warm-up).
    comp_scratch: Vec<Completion>,
    /// Reusable buffer for transfers taken from the engine in
    /// [`HeteroController::advance`]'s copy pump.
    transfer_scratch: Vec<Transfer>,
    /// Demand events buffered between epoch rollovers so the sink takes
    /// one lock per batch instead of one per access. Flushed at every
    /// rollover, at [`HeteroController::flush`], and at a size cap.
    demand_events: Vec<Event>,
    accesses_in_epoch: u64,
    /// Demand traffic stalls until this cycle (N-design halts, OS updates).
    stall_until: Cycle,
    outstanding_copies: u32,
    /// Earliest cycle the paced copy engine may inject its next sub-block.
    copy_release: Cycle,
    now: Cycle,
    stats: ControllerStats,
    /// Counter snapshot at the last epoch rollover (telemetry deltas).
    epoch_mark: EpochMark,
    /// Step index within the in-flight swap (telemetry labelling).
    swap_steps_seen: u32,
    /// `sub_blocks_copied` at the start of the in-flight swap.
    swap_subs_mark: u64,
    /// Which swap-trigger rule `swap_decision` applies. Pure configuration
    /// (not dynamic state), so it is set once after construction and never
    /// snapshotted; the default reproduces the paper's hottest-vs-coldest
    /// comparison bit-for-bit.
    migration: MigrationPolicy,
}

impl HeteroController {
    /// Build a controller with telemetry disabled. Panics on invalid
    /// configuration.
    pub fn new(cfg: ControllerConfig) -> Self {
        Self::with_sink(cfg, NullSink)
    }
}

impl<S: TelemetrySink + Clone + Send> HeteroController<S> {
    /// Build a controller reporting events into `sink`. Panics on invalid
    /// configuration.
    pub fn with_sink(cfg: ControllerConfig, sink: S) -> Self {
        cfg.machine.geometry.validate().expect("invalid geometry");
        let g = &cfg.machine.geometry;
        let slots = g.on_package_slots();
        let sacrifice = match cfg.mode {
            Mode::Dynamic(d) => d.sacrifices_slot(),
            _ => false,
        };
        let engine = match cfg.mode {
            Mode::Dynamic(d) => {
                let mut e = MigrationEngine::new(d, g.sub_blocks_per_page());
                e.set_pf_logging(sink.enabled(EventKind::PfTransition));
                Some(e)
            }
            _ => None,
        };
        // Spare pages (quarantine parking) are only meaningful for the
        // N-1 designs, which are the only ones that can retire a slot.
        let spares = if sacrifice { cfg.faults.map_or(0, |p| p.spare_slots) } else { 0 };
        let faults = cfg.faults;
        let mut this = Self {
            table: TranslationTable::with_spares(slots, g.total_pages(), sacrifice, spares),
            tcache: TranslationCache::default(),
            engine,
            lru: SlotClock::new(slots as usize),
            mru: MultiQueueMru::paper_default(),
            on_region: DramRegion::with_sink(
                cfg.on_profile,
                &cfg.machine.clock,
                cfg.policy,
                hmm_dram::PagePolicy::Open,
                sink.clone(),
                RegionKind::OnPackage,
            ),
            off_region: DramRegion::with_sink(
                cfg.off_profile,
                &cfg.machine.clock,
                cfg.policy,
                hmm_dram::PagePolicy::Open,
                sink.clone(),
                RegionKind::OffPackage,
            ),
            sink,
            next_id: 0,
            meta: MetaRing::default(),
            copy_legs: Slab::new(),
            copy_ids_live: 0,
            copy_gen: 0,
            copy_seq: 0,
            slot_errors: vec![0; slots as usize],
            pending_quarantine: Vec::new(),
            completed: Vec::new(),
            comp_scratch: Vec::new(),
            transfer_scratch: Vec::new(),
            demand_events: Vec::new(),
            accesses_in_epoch: 0,
            stall_until: 0,
            outstanding_copies: 0,
            copy_release: 0,
            now: 0,
            cfg,
            stats: ControllerStats::default(),
            epoch_mark: EpochMark::default(),
            swap_steps_seen: 0,
            swap_subs_mark: 0,
            migration: MigrationPolicy::HotCold,
        };
        if let Some(plan) = faults {
            this.on_region.set_faults(plan);
            this.off_region.set_faults(plan);
        }
        this
    }

    /// The translation table (read-only, for inspection and tests).
    pub fn table(&self) -> &TranslationTable {
        &self.table
    }

    /// The configuration this controller was built with.
    pub fn config(&self) -> &ControllerConfig {
        &self.cfg
    }

    /// Stall demand traffic for `cycles` from the current time (used by
    /// the adaptive-granularity wrapper to charge reconfiguration costs,
    /// and available for modelling other OS-level events).
    pub fn inject_stall(&mut self, cycles: Cycle) {
        self.stall_until = self.stall_until.max(self.now + cycles);
        self.stats.stall_cycles += 0; // accounted per-access as usual
    }

    /// Select the swap-trigger rule (default: the paper's comparative
    /// hottest-vs-coldest trigger). Applies from the next epoch boundary.
    pub fn set_migration_policy(&mut self, policy: MigrationPolicy) {
        self.migration = policy;
    }

    /// The active swap-trigger rule.
    pub fn migration_policy(&self) -> MigrationPolicy {
        self.migration
    }

    /// Swap statistics, if migration is enabled.
    pub fn swap_stats(&self) -> Option<SwapStats> {
        self.engine.as_ref().map(|e| e.stats())
    }

    /// Controller counters.
    pub fn stats(&self) -> ControllerStats {
        self.stats
    }

    /// DRAM region statistics: `(on_package, off_package)`.
    pub fn region_stats(&self) -> (RegionStats, RegionStats) {
        (self.on_region.stats(), self.off_region.stats())
    }

    /// Serialize the controller's full dynamic state (snapshot/resume
    /// support): translation table, monitors, migration engine, both DRAM
    /// regions, the in-flight transaction ring and leg arena, and every
    /// counter. The translation cache is deliberately excluded — it is a
    /// pure memo validated by the table's generation counter, so a resumed
    /// run restarts it cold with identical results. Telemetry state cannot
    /// be captured, so snapshots require a [`NullSink`] controller with
    /// flushed event buffers (the driver's default run path).
    pub fn save_state(&self, w: &mut SnapWriter) {
        debug_assert!(
            self.demand_events.is_empty(),
            "snapshots require flushed telemetry buffers (NullSink run path)"
        );
        w.section(b"tabl");
        self.table.save_state(w);
        w.end_section();
        w.section(b"moni");
        self.lru.save_state(w);
        self.mru.save_state(w);
        w.end_section();
        w.section(b"engn");
        match &self.engine {
            None => w.bool(false),
            Some(e) => {
                w.bool(true);
                e.save_state(w);
            }
        }
        w.end_section();
        w.section(b"dram");
        self.on_region.save_state(w);
        self.off_region.save_state(w);
        w.end_section();
        w.section(b"ctrl");
        w.u64(self.next_id);
        w.u64(self.meta.base);
        w.usize(self.meta.slots.len());
        for slot in &self.meta.slots {
            match slot {
                MetaSlot::Empty => w.u8(0),
                MetaSlot::Demand(m) => {
                    w.u8(1);
                    w.u64(m.issued_at);
                    w.u64(m.stall);
                    w.u64(m.controller);
                    w.u64(m.interconnect);
                    w.bool(m.on_package);
                    w.bool(m.is_write);
                    w.u64(m.page);
                    match m.slot {
                        None => w.bool(false),
                        Some(s) => {
                            w.bool(true);
                            w.u32(s);
                        }
                    }
                }
                MetaSlot::Copy(handle) => {
                    w.u8(2);
                    w.u32(*handle);
                }
            }
        }
        self.copy_legs.save_state(w, |w, leg| {
            w.u32(leg.remaining);
            match leg.fail {
                None => w.u8(0),
                Some(FailKind::Dropped) => w.u8(1),
                Some(FailKind::TimedOut) => w.u8(2),
                Some(FailKind::Ecc) => w.u8(3),
            }
            w.u8(match leg.kind {
                TransferKind::Forward => 0,
                TransferKind::Rollback => 1,
                TransferKind::Drain => 2,
            });
            match leg.slot {
                None => w.bool(false),
                Some(s) => {
                    w.bool(true);
                    w.u32(s);
                }
            }
            w.u64(leg.gen);
            w.u64(leg.token);
        });
        w.u64(self.copy_ids_live);
        w.u64(self.copy_gen);
        w.u64(self.copy_seq);
        w.usize(self.slot_errors.len());
        for &e in &self.slot_errors {
            w.u32(e);
        }
        w.seq(&self.pending_quarantine, |w, &s| w.u32(s));
        w.seq(&self.completed, |w, c| {
            w.u64(c.id);
            w.u64(c.finish);
            w.u64(c.breakdown.dram_core);
            w.u64(c.breakdown.queuing);
            w.u64(c.breakdown.controller);
            w.u64(c.breakdown.interconnect);
            w.bool(c.on_package);
            w.bool(c.is_write);
        });
        w.u64(self.accesses_in_epoch);
        w.u64(self.stall_until);
        w.u32(self.outstanding_copies);
        w.u64(self.copy_release);
        w.u64(self.now);
        w.u64(self.stats.demand_on_lines);
        w.u64(self.stats.demand_off_lines);
        w.u64(self.stats.migration_on_lines);
        w.u64(self.stats.migration_off_lines);
        w.u64(self.stats.stall_cycles);
        w.u64(self.stats.epochs);
        w.u64(self.stats.rejected_triggers);
        w.u64(self.stats.transfer_retries);
        w.u64(self.stats.transfers_dropped);
        w.u64(self.stats.transfers_timed_out);
        w.u64(self.stats.transfers_ecc_failed);
        w.u64(self.stats.abandoned_sub_blocks);
        w.u64(self.stats.row_corruptions);
        w.u64(self.stats.slots_quarantined);
        w.u64(self.epoch_mark.demand_on);
        w.u64(self.epoch_mark.demand_off);
        w.u64(self.epoch_mark.migration);
        w.u64(self.epoch_mark.stall);
        w.u64(self.epoch_mark.swaps_completed);
        w.u32(self.swap_steps_seen);
        w.u64(self.swap_subs_mark);
        w.end_section();
    }

    /// Restore controller state saved by [`HeteroController::save_state`]
    /// onto a freshly constructed controller with the same configuration.
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> SnapResult<()> {
        r.section(b"tabl")?;
        self.table.load_state(r)?;
        r.end_section()?;
        r.section(b"moni")?;
        self.lru.load_state(r)?;
        self.mru.load_state(r)?;
        r.end_section()?;
        r.section(b"engn")?;
        let has_engine = r.bool()?;
        if has_engine != self.engine.is_some() {
            return Err("snapshot's migration mode disagrees with configuration".into());
        }
        if let Some(e) = &mut self.engine {
            e.load_state(r)?;
        }
        r.end_section()?;
        r.section(b"dram")?;
        self.on_region.load_state(r)?;
        self.off_region.load_state(r)?;
        r.end_section()?;
        r.section(b"ctrl")?;
        self.next_id = r.u64()?;
        self.meta.base = r.u64()?;
        let n = r.seq_len(1)?;
        self.meta.slots.clear();
        for _ in 0..n {
            let slot = match r.u8()? {
                0 => MetaSlot::Empty,
                1 => {
                    let issued_at = r.u64()?;
                    let stall = r.u64()?;
                    let controller = r.u64()?;
                    let interconnect = r.u64()?;
                    let on_package = r.bool()?;
                    let is_write = r.bool()?;
                    let page = r.u64()?;
                    let slot = if r.bool()? { Some(r.u32()?) } else { None };
                    MetaSlot::Demand(DemandMeta {
                        issued_at,
                        stall,
                        controller,
                        interconnect,
                        on_package,
                        is_write,
                        page,
                        slot,
                    })
                }
                2 => MetaSlot::Copy(r.u32()?),
                t => return Err(format!("invalid meta-slot tag {t}")),
            };
            self.meta.slots.push_back(slot);
        }
        self.copy_legs.load_state(r, |r| {
            let remaining = r.u32()?;
            let fail = match r.u8()? {
                0 => None,
                1 => Some(FailKind::Dropped),
                2 => Some(FailKind::TimedOut),
                3 => Some(FailKind::Ecc),
                t => return Err(format!("invalid fail-kind tag {t}")),
            };
            let kind = match r.u8()? {
                0 => TransferKind::Forward,
                1 => TransferKind::Rollback,
                2 => TransferKind::Drain,
                t => return Err(format!("invalid transfer-kind tag {t}")),
            };
            let slot = if r.bool()? { Some(r.u32()?) } else { None };
            let gen = r.u64()?;
            let token = r.u64()?;
            Ok(LegState { remaining, fail, kind, slot, gen, token })
        })?;
        self.copy_ids_live = r.u64()?;
        self.copy_gen = r.u64()?;
        self.copy_seq = r.u64()?;
        let n = r.usize()?;
        if n != self.slot_errors.len() {
            return Err(format!("slot count mismatch: expected {}", self.slot_errors.len()));
        }
        for e in &mut self.slot_errors {
            *e = r.u32()?;
        }
        self.pending_quarantine = r.seq(|r| r.u32())?;
        self.completed = r.seq(|r| {
            Ok(DemandCompletion {
                id: r.u64()?,
                finish: r.u64()?,
                breakdown: LatencyBreakdown {
                    dram_core: r.u64()?,
                    queuing: r.u64()?,
                    controller: r.u64()?,
                    interconnect: r.u64()?,
                },
                on_package: r.bool()?,
                is_write: r.bool()?,
            })
        })?;
        self.accesses_in_epoch = r.u64()?;
        self.stall_until = r.u64()?;
        self.outstanding_copies = r.u32()?;
        self.copy_release = r.u64()?;
        self.now = r.u64()?;
        self.stats.demand_on_lines = r.u64()?;
        self.stats.demand_off_lines = r.u64()?;
        self.stats.migration_on_lines = r.u64()?;
        self.stats.migration_off_lines = r.u64()?;
        self.stats.stall_cycles = r.u64()?;
        self.stats.epochs = r.u64()?;
        self.stats.rejected_triggers = r.u64()?;
        self.stats.transfer_retries = r.u64()?;
        self.stats.transfers_dropped = r.u64()?;
        self.stats.transfers_timed_out = r.u64()?;
        self.stats.transfers_ecc_failed = r.u64()?;
        self.stats.abandoned_sub_blocks = r.u64()?;
        self.stats.row_corruptions = r.u64()?;
        self.stats.slots_quarantined = r.u64()?;
        self.epoch_mark.demand_on = r.u64()?;
        self.epoch_mark.demand_off = r.u64()?;
        self.epoch_mark.migration = r.u64()?;
        self.epoch_mark.stall = r.u64()?;
        self.epoch_mark.swaps_completed = r.u64()?;
        self.swap_steps_seen = r.u32()?;
        self.swap_subs_mark = r.u64()?;
        r.end_section()?;
        Ok(())
    }

    fn fresh_id(&mut self) -> u64 {
        self.next_id += 1;
        self.next_id
    }

    /// Submit one demand access. Returns a token matched by the
    /// corresponding [`DemandCompletion`]. `now` must be non-decreasing.
    pub fn access(&mut self, now: Cycle, addr: PhysAddr, is_write: bool) -> u64 {
        debug_assert!(now >= self.now, "time went backwards");
        self.now = now;
        let g = self.cfg.machine.geometry;
        let lat = self.cfg.machine.latency;
        let page = addr.macro_page(g.page_shift);
        let sub = addr.sub_block(g.page_shift, g.sub_block_shift);

        // N-design halting / OS table-update stall.
        let halted = self.engine.as_ref().is_some_and(|e| e.halting());
        let stall_gate = if halted { Cycle::MAX } else { self.stall_until };
        let (effective, stall) = if stall_gate > now && stall_gate != Cycle::MAX {
            (stall_gate, stall_gate - now)
        } else if halted {
            // Halted with unknown completion time: accesses pile up behind
            // the current stall_until estimate (set when the swap started).
            let t = self.stall_until.max(now);
            (t, t - now)
        } else {
            (now, 0)
        };
        self.stats.stall_cycles += stall;

        // Translate (Fig. 3: translation ahead of scheduling).
        let (machine_byte, on_pkg, translated) = match self.cfg.mode {
            Mode::AllOnPackage => (addr.0, true, false),
            Mode::AllOffPackage => (addr.0, false, false),
            Mode::Static => {
                let mp = page.0; // identity mapping
                let on = mp < g.on_package_slots();
                (addr.0, on, false)
            }
            Mode::Dynamic(_) => {
                let mp = self.tcache.translate(&self.table, page, sub);
                let on = self.table.is_on_package(mp);
                let byte = mp.0 * g.page_bytes() + addr.page_offset(g.page_shift);
                (byte, on, true)
            }
        };

        // Monitor touches and epoch bookkeeping (dynamic modes only).
        let mut slot_attr = None;
        if let Mode::Dynamic(_) = self.cfg.mode {
            if on_pkg {
                let slot = (machine_byte / g.page_bytes()) as u32;
                slot_attr = Some(slot);
                self.lru.touch(slot);
            } else {
                self.mru.touch(page.0, sub.0);
            }
            self.accesses_in_epoch += 1;
            if self.accesses_in_epoch >= self.cfg.swap_interval {
                self.accesses_in_epoch = 0;
                self.consider_swap(effective);
            }
        }

        // Fixed-path components.
        let controller = lat.mc_processing
            + 2 * lat.ctl_to_core_each_way
            + if translated { lat.translation_table } else { 0 };
        let interconnect = if on_pkg {
            2 * lat.interposer_pin_each_way + lat.intra_package_round_trip
        } else {
            2 * lat.package_pin_each_way + lat.pcb_wire_round_trip
        };
        // The request-side share of the fixed path leads the DRAM arrival.
        let lead = lat.mc_processing
            + lat.ctl_to_core_each_way
            + if translated { lat.translation_table } else { 0 }
            + if on_pkg { lat.interposer_pin_each_way } else { lat.package_pin_each_way };

        let id = self.fresh_id();
        self.meta.insert(
            id,
            MetaSlot::Demand(DemandMeta {
                issued_at: now,
                stall,
                controller,
                interconnect,
                on_package: on_pkg,
                is_write,
                page: page.0,
                slot: slot_attr,
            }),
        );
        let local = self.region_local(machine_byte, on_pkg);
        let txn = Transaction::demand(id, effective + lead, local, is_write);
        if on_pkg {
            self.stats.demand_on_lines += 1;
            self.on_region.enqueue(txn);
        } else {
            self.stats.demand_off_lines += 1;
            self.off_region.enqueue(txn);
        }
        id
    }

    /// Byte address local to the chosen region.
    fn region_local(&self, machine_byte: u64, on_pkg: bool) -> u64 {
        match self.cfg.mode {
            // Comparison modes address one region with the whole space.
            Mode::AllOnPackage | Mode::AllOffPackage => machine_byte,
            _ => {
                if on_pkg {
                    machine_byte
                } else {
                    machine_byte - self.cfg.machine.geometry.on_package_bytes
                }
            }
        }
    }

    /// Epoch-boundary trigger: compare the off-package MRU candidate with
    /// the on-package LRU slot and start a swap if strictly hotter.
    fn consider_swap(&mut self, now: Cycle) {
        self.stats.epochs += 1;
        // Translation-RAM row corruption check (the table rows are SRAM
        // protected by ECC; the model is detect-and-repair): a corrupted
        // row costs a repair stall akin to a kernel table update, never a
        // wrong translation.
        if let Some(plan) = self.cfg.faults {
            if plan.row_corrupts(self.stats.epochs) {
                self.stats.row_corruptions += 1;
                self.stall_until = self.stall_until.max(now + self.cfg.machine.latency.os_update);
                if self.sink.enabled(EventKind::FaultInjected) {
                    let slot = self.stats.epochs % self.table.slots();
                    self.sink.emit(Event::FaultInjected {
                        cycle: now,
                        class: FaultClass::RowCorruption,
                        detail: slot,
                    });
                }
            }
        }
        // A pending quarantine drain outranks starting a new swap.
        self.maybe_start_quarantine(now);
        let rejected_before = self.stats.rejected_triggers;
        self.swap_decision(now);
        self.lru.new_epoch();
        self.mru.new_epoch();
        // Hand the epoch's buffered demand events to the sink in one batch
        // before the rollover marker (export re-sorts by cycle, so only
        // same-cycle tie-break order depends on this).
        self.sink.emit_batch(&mut self.demand_events);
        if self.sink.enabled(EventKind::EpochRollover) {
            let rejected = self.stats.rejected_triggers > rejected_before;
            self.emit_epoch_rollover(now, self.stats.epochs - 1, rejected);
        }
    }

    /// Emit an [`Event::EpochRollover`] carrying the deltas since the last
    /// rollover, and advance the mark.
    fn emit_epoch_rollover(&mut self, now: Cycle, epoch: u64, rejected: bool) {
        let s = self.stats;
        let completed = self.engine.as_ref().map_or(0, |e| e.stats().completed);
        let migration = s.migration_on_lines + s.migration_off_lines;
        let m = self.epoch_mark;
        self.sink.emit(Event::EpochRollover {
            cycle: now,
            epoch,
            demand_on: s.demand_on_lines - m.demand_on,
            demand_off: s.demand_off_lines - m.demand_off,
            migration_lines: migration - m.migration,
            stall_cycles: s.stall_cycles - m.stall,
            swaps_completed: completed - m.swaps_completed,
            rejected,
        });
        self.epoch_mark = EpochMark {
            demand_on: s.demand_on_lines,
            demand_off: s.demand_off_lines,
            migration,
            stall: s.stall_cycles,
            swaps_completed: completed,
        };
    }

    /// The swap-trigger comparison of `consider_swap`, separated so the
    /// epoch bookkeeping wraps every exit path uniformly.
    fn swap_decision(&mut self, now: Cycle) {
        let Some(engine) = &mut self.engine else { return };
        if engine.busy() {
            // "The existence of P bit and F bit prevents triggering
            // another swap if the previous swap is not complete yet."
            return;
        }
        let table = &self.table;
        let n = table.slots();
        // Skip pages that are already fast or not migratable.
        let hot_candidate = self.mru.hottest_with_level(|p| {
            if p >= n {
                table.cam_lookup(p).is_some() || table.is_reserved(p)
            } else {
                !matches!(table.row_state(p as u32), RowState::Swapped(_))
            }
        });
        if let Some((hot, hot_count, hot_sub, hot_level)) = hot_candidate {
            let empty = table.empty_slot();
            let cold = self.lru.coldest(|s| {
                Some(s) == empty || (hot < n && s as u64 == hot) || table.is_quarantined(s)
            });
            if let Some(cold_slot) = cold {
                let cold_count = self.lru.epoch_count(cold_slot);
                // HotCold is the paper's comparative trigger. The MLQ rule
                // ("Efficient Page Migration in Hybrid Memory Systems")
                // promotes on multi-queue level: a page that climbed past
                // level 0 has demonstrated sustained reuse and migrates
                // even when the victim happens to be warm this epoch;
                // level-0 pages still face the comparative trigger.
                let trigger = match self.migration {
                    MigrationPolicy::HotCold => hot_count > cold_count,
                    MigrationPolicy::Mlq => hot_level > 0 || hot_count > cold_count,
                };
                if trigger {
                    let cases_before = engine.stats().case_counts;
                    if engine.start_swap(&mut self.table, hot, cold_slot, hot_sub) {
                        self.mru.remove(hot);
                        if self.sink.enabled(EventKind::SwapStart) {
                            let after = engine.stats().case_counts;
                            let case =
                                (0..4).find(|&i| after[i] > cases_before[i]).unwrap_or(0) as u8;
                            self.swap_steps_seen = 0;
                            self.swap_subs_mark = engine.stats().sub_blocks_copied;
                            self.sink.emit(Event::SwapStart {
                                cycle: now,
                                hot_page: hot,
                                cold_slot,
                                case,
                            });
                        }
                        if self.sink.enabled(EventKind::PfTransition) {
                            for t in engine.drain_pf_log() {
                                self.sink.emit(Event::PfTransition {
                                    cycle: now,
                                    slot: t.slot,
                                    bit: t.bit,
                                    set: t.set,
                                });
                            }
                        }
                        if engine.halting() {
                            // Halt window estimate: ~3 page moves (the
                            // case-average) at the full off-package
                            // bandwidth — while execution is halted, the
                            // copy engine owns every channel. At 4 KB
                            // pages this is under a thousand cycles
                            // (matching the paper's observation that N and
                            // N-1 converge at fine granularity); at 4 MB
                            // it is ~1M cycles, the paper's 374 us.
                            let g = self.cfg.machine.geometry;
                            let est = g.lines_per_page()
                                * self
                                    .cfg
                                    .machine
                                    .clock
                                    .dram_to_cpu(self.cfg.off_profile.timing.t_burst)
                                * 3
                                / self.cfg.off_profile.channels as u64;
                            self.stall_until = self.stall_until.max(now + est);
                        }
                        if self.cfg.is_os_assisted() {
                            // Kernel entry/exit for the table update.
                            self.stall_until =
                                self.stall_until.max(now + self.cfg.machine.latency.os_update);
                        }
                        self.pump_copies(now);
                    }
                } else {
                    self.stats.rejected_triggers += 1;
                }
            }
        }
    }

    /// Issue migration transfers up to the outstanding limit.
    ///
    /// Each sub-block copy is issued as per-line read and write legs: the
    /// sub-block (4 KB) is the *bookkeeping* granularity of the fill
    /// bitmap, but on the buses the lines stripe across channels exactly
    /// like demand traffic, so a copy soaks up whatever per-channel idle
    /// capacity exists without monopolising any one bus.
    fn pump_copies(&mut self, now: Cycle) {
        let Some(engine) = &mut self.engine else { return };
        let g = self.cfg.machine.geometry;
        let sub_lines = (g.sub_block_bytes() / LINE_BYTES).max(1) as u32;
        let mut allowance = self.cfg.max_outstanding_copies.saturating_sub(self.outstanding_copies);
        // Pacing: one sub-block may be injected per
        // `sub_lines x pace` cycles.
        // While the halting N design stalls execution, the copy engine
        // owns the buses: no pacing.
        let pace = if engine.halting() {
            0
        } else {
            self.cfg.copy_pace_cycles_per_line * sub_lines as u64
        };
        if pace > 0 {
            // Idle time does not bank copy credit: at most one pace
            // quantum may have accumulated, so a newly triggered swap
            // starts as a trickle, not a burst.
            self.copy_release = self.copy_release.max(now.saturating_sub(pace));
            match now.checked_sub(self.copy_release) {
                None => allowance = 0,
                Some(elapsed) => {
                    let window = 1 + elapsed / pace;
                    allowance = allowance.min(window.min(u32::MAX as u64) as u32);
                }
            }
        }
        if allowance == 0 {
            return;
        }
        let mut transfers = std::mem::take(&mut self.transfer_scratch);
        engine.take_transfers(allowance, &mut transfers);
        if pace > 0 && !transfers.is_empty() {
            self.copy_release = self.copy_release.max(now) + pace * transfers.len() as u64;
        }
        for t in transfers.drain(..) {
            self.enqueue_transfer(t, now);
        }
        self.transfer_scratch = transfers;
    }

    /// Issue the per-line read and write legs of one sub-block transfer,
    /// arriving at `arrival` (the future, for retries with backoff). For
    /// forward transfers under a fault plan this is also where the
    /// transfer's fate is sealed: a hash of the monotone issue counter
    /// decides up front whether this copy will be dropped or time out,
    /// which keeps fault placement independent of completion order.
    fn enqueue_transfer(&mut self, t: Transfer, arrival: Cycle) {
        let g = self.cfg.machine.geometry;
        let sub_lines = (g.sub_block_bytes() / LINE_BYTES).max(1) as u32;
        let mut fail = None;
        if t.kind == TransferKind::Forward {
            if let Some(plan) = self.cfg.faults {
                let seq = self.copy_seq;
                self.copy_seq += 1;
                fail = match plan.transfer_fault(seq) {
                    Some(TransferFault::Dropped) => Some(FailKind::Dropped),
                    Some(TransferFault::TimedOut) => Some(FailKind::TimedOut),
                    None => None,
                };
            }
        }
        let src_on = self.table.is_on_package(t.src);
        let dst_on = self.table.is_on_package(t.dst);
        let slot = if src_on {
            Some(t.src.0 as u32)
        } else if dst_on {
            Some(t.dst.0 as u32)
        } else {
            None
        };
        let sub_off = t.sub as u64 * g.sub_block_bytes();
        let src_base = self.region_local(t.src.0 * g.page_bytes() + sub_off, src_on);
        let dst_base = self.region_local(t.dst.0 * g.page_bytes() + sub_off, dst_on);
        // All legs of a sub-block share one arena entry (and the engine
        // token inside it); the last leg to complete reports to the
        // engine.
        let leg = self.copy_legs.insert(LegState {
            remaining: 2 * sub_lines,
            fail,
            kind: t.kind,
            slot,
            gen: self.copy_gen,
            token: t.token,
        });
        for k in 0..sub_lines as u64 {
            let off = k * LINE_BYTES;
            let read_id = self.fresh_id();
            let write_id = self.fresh_id();
            self.meta.insert(read_id, MetaSlot::Copy(leg));
            self.meta.insert(write_id, MetaSlot::Copy(leg));
            self.copy_ids_live += 2;
            let read = Transaction::migration(read_id, arrival, src_base + off, false, 1);
            let write = Transaction::migration(write_id, arrival, dst_base + off, true, 1);
            if src_on {
                self.stats.migration_on_lines += 1;
                self.on_region.enqueue(read);
            } else {
                self.stats.migration_off_lines += 1;
                self.off_region.enqueue(read);
            }
            if dst_on {
                self.stats.migration_on_lines += 1;
                self.on_region.enqueue(write);
            } else {
                self.stats.migration_off_lines += 1;
                self.off_region.enqueue(write);
            }
        }
        self.outstanding_copies += 1;
    }

    /// Advance simulated time; service queues and process completions.
    pub fn advance(&mut self, now: Cycle) {
        self.now = self.now.max(now);
        // The paced copy engine releases work as time passes, not only on
        // completions.
        if self.engine.as_ref().is_some_and(|e| e.busy()) {
            self.pump_copies(now);
        }
        self.on_region.advance_par(now);
        self.off_region.advance_par(now);
        self.process_completions(now);
    }

    /// Drain all queues at end of trace; completes in-flight migration.
    pub fn flush(&mut self) {
        let mut guard = 0;
        loop {
            self.on_region.flush_par();
            self.off_region.flush_par();
            let had = self.process_completions(self.now);
            let busy = self.engine.as_ref().is_some_and(|e| e.busy());
            if !had && !busy && self.copy_ids_live == 0 {
                break;
            }
            if !had && busy {
                // The engine wants to issue more transfers; pacing no
                // longer applies once the trace has ended.
                self.copy_release = 0;
                let saved = self.cfg.copy_pace_cycles_per_line;
                self.cfg.copy_pace_cycles_per_line = 0;
                self.pump_copies(self.now);
                self.cfg.copy_pace_cycles_per_line = saved;
                if self.copy_ids_live == 0 {
                    // Nothing issuable: abandon (trace ended mid-swap).
                    break;
                }
            }
            guard += 1;
            assert!(guard < 1_000_000, "flush did not converge");
        }
        self.sink.emit_batch(&mut self.demand_events);
        if self.sink.enabled(EventKind::EpochRollover) {
            // Tail row covering the partial epoch since the last rollover,
            // so the per-epoch CSV sums exactly to the flat counters.
            self.emit_epoch_rollover(self.now, self.stats.epochs, false);
        }
    }

    fn process_completions(&mut self, now: Cycle) -> bool {
        let lat = self.cfg.machine.latency;
        let mut any = false;
        let mut completions = std::mem::take(&mut self.comp_scratch);
        self.on_region.drain_completions_into(&mut completions);
        self.off_region.drain_completions_into(&mut completions);
        for c in completions.drain(..) {
            any = true;
            match self.meta.remove(c.id) {
                MetaSlot::Demand(meta) => {
                    // Uncorrectable demand reads count against the serving
                    // slot's quarantine budget.
                    if matches!(c.fault, Some(MemFault::Uncorrectable(_))) {
                        if let Some(slot) = meta.slot {
                            self.note_uncorrectable(slot);
                        }
                    }
                    // Response-side share of the fixed path.
                    let tail = lat.ctl_to_core_each_way
                        + if meta.on_package {
                            lat.interposer_pin_each_way + lat.intra_package_round_trip
                        } else {
                            lat.package_pin_each_way + lat.pcb_wire_round_trip
                        };
                    let finish = c.finish + tail;
                    let breakdown = LatencyBreakdown {
                        dram_core: c.breakdown.dram_core,
                        queuing: c.breakdown.queuing + meta.stall,
                        controller: meta.controller,
                        interconnect: meta.interconnect,
                    };
                    debug_assert_eq!(
                        breakdown.total(),
                        finish - meta.issued_at,
                        "latency components must sum to end-to-end latency"
                    );
                    if self.sink.enabled(EventKind::Demand) {
                        self.demand_events.push(Event::Demand {
                            cycle: finish,
                            page: meta.page,
                            on_package: meta.on_package,
                            is_write: meta.is_write,
                            latency: breakdown.total(),
                            queuing: breakdown.queuing,
                        });
                        if self.demand_events.len() >= DEMAND_BATCH_CAP {
                            self.sink.emit_batch(&mut self.demand_events);
                        }
                    }
                    self.completed.push(DemandCompletion {
                        id: c.id,
                        finish,
                        breakdown,
                        on_package: meta.on_package,
                        is_write: meta.is_write,
                    });
                }
                MetaSlot::Copy(leg) => {
                    self.copy_ids_live -= 1;
                    self.handle_copy_leg(leg, c.fault, now.max(c.finish));
                }
                MetaSlot::Empty => {}
            }
        }
        self.comp_scratch = completions;
        any
    }

    fn handle_copy_leg(&mut self, handle: u32, fault: Option<MemFault>, now: Cycle) {
        let leg = self.copy_legs.get_mut(handle).expect("legs tracked per handle");
        if leg.gen != self.copy_gen {
            // A leg issued for a swap that has since aborted: its data is
            // discarded on arrival (the rollback owns those pages now).
            leg.remaining -= 1;
            if leg.remaining == 0 {
                self.copy_legs.remove(handle);
                self.stats.abandoned_sub_blocks += 1;
            }
            return;
        }
        // All line read/write legs of a sub-block share the arena entry;
        // the last one to complete reports to the engine.
        if leg.kind == TransferKind::Forward
            && leg.fail.is_none()
            && matches!(fault, Some(MemFault::Uncorrectable(_)))
        {
            leg.fail = Some(FailKind::Ecc);
        }
        leg.remaining -= 1;
        if leg.remaining > 0 {
            return;
        }
        let leg = self.copy_legs.remove(handle);
        let token = leg.token;
        self.outstanding_copies = self.outstanding_copies.saturating_sub(1);
        if let Some(kind) = leg.fail {
            match kind {
                FailKind::Dropped => {
                    self.stats.transfers_dropped += 1;
                    if self.sink.enabled(EventKind::FaultInjected) {
                        self.sink.emit(Event::FaultInjected {
                            cycle: now,
                            class: FaultClass::TransferDrop,
                            detail: token,
                        });
                    }
                }
                FailKind::TimedOut => {
                    self.stats.transfers_timed_out += 1;
                    if self.sink.enabled(EventKind::FaultInjected) {
                        self.sink.emit(Event::FaultInjected {
                            cycle: now,
                            class: FaultClass::TransferTimeout,
                            detail: token,
                        });
                    }
                }
                // The channel already counted and reported the ECC event;
                // here it only escalates to a transfer failure.
                FailKind::Ecc => {
                    self.stats.transfers_ecc_failed += 1;
                    if let Some(slot) = leg.slot {
                        self.note_uncorrectable(slot);
                    }
                }
            }
            self.transfer_failure(token, now);
            return;
        }
        let Some(engine) = &mut self.engine else { return };
        let progress = engine.transfer_done(token, &mut self.table);
        let subs_copied = engine.stats().sub_blocks_copied;
        if self.sink.enabled(EventKind::PfTransition) {
            for t in engine.drain_pf_log() {
                self.sink.emit(Event::PfTransition {
                    cycle: now,
                    slot: t.slot,
                    bit: t.bit,
                    set: t.set,
                });
            }
        }
        use crate::migrate::SwapProgress;
        match progress {
            SwapProgress::StepDone => {
                if self.sink.enabled(EventKind::SwapStep) {
                    self.sink.emit(Event::SwapStep { cycle: now, step: self.swap_steps_seen });
                    self.swap_steps_seen += 1;
                }
            }
            SwapProgress::SwapDone => {
                if self.sink.enabled(EventKind::SwapComplete) {
                    self.sink.emit(Event::SwapComplete {
                        cycle: now,
                        sub_blocks: subs_copied - self.swap_subs_mark,
                    });
                }
            }
            // The abort itself was reported when the rollback began.
            SwapProgress::RollbackDone => {}
            SwapProgress::DrainDone { slot, parked } => {
                self.stats.slots_quarantined += 1;
                if self.sink.enabled(EventKind::SlotQuarantined) {
                    self.sink.emit(Event::SlotQuarantined {
                        cycle: now,
                        slot,
                        parked_page: parked,
                    });
                }
            }
            SwapProgress::InFlight => {}
        }
        match progress {
            SwapProgress::SwapDone
            | SwapProgress::RollbackDone
            | SwapProgress::DrainDone { .. } => {
                // The halting N design's stall window is the estimate set
                // at trigger time; it is deliberately not shortened here —
                // the controller's effective clock must stay monotone so
                // per-channel arrival order is preserved.
                if self.cfg.is_os_assisted() {
                    self.stall_until =
                        self.stall_until.max(now + self.cfg.machine.latency.os_update);
                }
                // The engine is idle: a pending slot retirement may start.
                self.maybe_start_quarantine(now);
            }
            SwapProgress::StepDone => {
                if self.cfg.is_os_assisted() {
                    self.stall_until =
                        self.stall_until.max(now + self.cfg.machine.latency.os_update);
                }
            }
            SwapProgress::InFlight => {}
        }
        self.pump_copies(now);
    }

    /// The last leg of a transfer arrived with its copy marked failed:
    /// consult the engine for retry-or-abort and carry out the decision.
    fn transfer_failure(&mut self, token: u64, now: Cycle) {
        let plan = self.cfg.faults.expect("transfer failures require a fault plan");
        let action = {
            let Some(engine) = &mut self.engine else { return };
            engine.transfer_failed(token, &mut self.table, plan.max_retries)
        };
        if self.sink.enabled(EventKind::PfTransition) {
            if let Some(engine) = &mut self.engine {
                for t in engine.drain_pf_log() {
                    self.sink.emit(Event::PfTransition {
                        cycle: now,
                        slot: t.slot,
                        bit: t.bit,
                        set: t.set,
                    });
                }
            }
        }
        match action {
            FailureAction::Retry(t) => {
                self.stats.transfer_retries += 1;
                if self.sink.enabled(EventKind::TransferRetried) {
                    self.sink.emit(Event::TransferRetried {
                        cycle: now,
                        sub: t.sub,
                        attempt: t.attempt,
                    });
                }
                // Exponential backoff, capped to keep the shift sane.
                let backoff = plan.retry_backoff_cycles << (t.attempt - 1).min(16);
                self.enqueue_transfer(t, now + backoff);
            }
            FailureAction::RollbackStarted | FailureAction::Aborted => {
                if self.sink.enabled(EventKind::SwapAborted) {
                    self.sink.emit(Event::SwapAborted {
                        cycle: now,
                        step: (token >> 32) as u32,
                        rollback: matches!(action, FailureAction::RollbackStarted),
                    });
                }
                // Outstanding transfers of the dead swap become stale:
                // bump the generation so their completions are discarded.
                self.copy_gen += 1;
                self.outstanding_copies = 0;
                self.maybe_start_quarantine(now);
                self.pump_copies(now);
            }
        }
    }

    /// Count an uncorrectable error against an on-package slot; past the
    /// plan's threshold the slot is queued for quarantine.
    fn note_uncorrectable(&mut self, slot: u32) {
        let Some(plan) = self.cfg.faults else { return };
        let count = &mut self.slot_errors[slot as usize];
        *count += 1;
        if *count >= plan.quarantine_threshold
            && !self.pending_quarantine.contains(&slot)
            && !self.table.is_quarantined(slot)
        {
            self.pending_quarantine.push(slot);
        }
    }

    /// Start a quarantine drain for the oldest pending slot, if the engine
    /// is idle and degrading further still leaves a workable pool (a spare
    /// page to park the occupant, and more than three usable slots so the
    /// hottest-coldest trigger keeps a meaningful choice).
    fn maybe_start_quarantine(&mut self, now: Cycle) {
        if self.pending_quarantine.is_empty() {
            return;
        }
        let Some(engine) = &mut self.engine else {
            self.pending_quarantine.clear();
            return;
        };
        if !engine.design().sacrifices_slot() {
            self.pending_quarantine.clear();
            return;
        }
        if engine.busy() {
            return;
        }
        let mut started = false;
        while let Some(slot) = self.pending_quarantine.first().copied() {
            let usable = self.table.slots() - self.table.quarantined_count();
            if usable <= 3 || !self.table.spare_available() {
                // Degraded as far as allowed; further requests are moot.
                self.pending_quarantine.clear();
                break;
            }
            self.pending_quarantine.remove(0);
            if self.table.is_quarantined(slot) {
                continue;
            }
            if engine.start_quarantine(&mut self.table, slot) {
                started = true;
                break;
            }
        }
        if started {
            self.pump_copies(now);
        }
    }

    /// Take all demand completions accumulated so far.
    pub fn drain(&mut self) -> Vec<DemandCompletion> {
        std::mem::take(&mut self.completed)
    }

    /// Drain accumulated demand completions in place, keeping the internal
    /// buffer's capacity — the allocation-free variant of
    /// [`HeteroController::drain`] for tight polling loops.
    pub fn drain_completed(&mut self) -> std::vec::Drain<'_, DemandCompletion> {
        self.completed.drain(..)
    }

    /// Append accumulated demand completions to `out` (same values and
    /// order as [`HeteroController::drain_completed`]), the object-safe
    /// spelling used through the [`crate::scheme::PlacementScheme`] trait.
    pub fn drain_completed_into(&mut self, out: &mut Vec<DemandCompletion>) {
        out.append(&mut self.completed);
    }

    /// Endurance/wear counters of the off-package region (meaningful for
    /// write-limited backends such as the PCM profile).
    pub fn off_region_wear(&self) -> hmm_dram::WearStats {
        self.off_region.wear()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmm_sim_base::config::{LatencyConfig, MemoryGeometry};
    use hmm_sim_base::cycles::CpuClock;
    use hmm_sim_base::rng::SimRng;

    /// Tiny geometry: 1 MB total, 128 KB on-package, 16 KB pages -> 8
    /// slots, 64 pages, 4 KB sub-blocks.
    fn tiny_geometry() -> MemoryGeometry {
        MemoryGeometry {
            total_bytes: 1 << 20,
            on_package_bytes: 128 << 10,
            page_shift: 14,
            sub_block_shift: 12,
        }
    }

    fn cfg(mode: Mode) -> ControllerConfig {
        ControllerConfig {
            machine: MachineConfig {
                clock: CpuClock::default(),
                latency: LatencyConfig::default(),
                geometry: tiny_geometry(),
            },
            mode,
            swap_interval: 200,
            os_assisted: Some(false),
            max_outstanding_copies: 8,
            copy_pace_cycles_per_line: 20,
            policy: SchedPolicy::FrFcfs,
            on_profile: DeviceProfile::on_package(),
            off_profile: DeviceProfile::off_package_ddr3(),
            faults: None,
        }
    }

    fn run(
        mode: Mode,
        accesses: usize,
        hot_page: u64,
    ) -> (HeteroController, Vec<DemandCompletion>) {
        let mut c = HeteroController::new(cfg(mode));
        let mut rng = SimRng::new(5);
        let g = tiny_geometry();
        let mut now = 0;
        for _ in 0..accesses {
            now += 40;
            // 80% of accesses to the hot (off-package) page, the rest
            // uniform.
            let addr = if rng.chance(0.8) {
                hot_page * g.page_bytes() + (rng.below(g.page_bytes()) & !63)
            } else {
                rng.below(g.total_bytes - g.page_bytes()) & !63
            };
            c.access(now, PhysAddr(addr), rng.chance(0.3));
            c.advance(now);
        }
        c.flush();
        let done = c.drain();
        (c, done)
    }

    #[test]
    fn baseline_modes_route_everything_one_way() {
        let (c, done) = run(Mode::AllOffPackage, 500, 40);
        assert_eq!(c.stats().demand_on_lines, 0);
        assert_eq!(done.len(), 500);
        assert!(done.iter().all(|d| !d.on_package));

        let (c, done) = run(Mode::AllOnPackage, 500, 40);
        assert_eq!(c.stats().demand_off_lines, 0);
        assert!(done.iter().all(|d| d.on_package));
    }

    #[test]
    fn static_mapping_splits_by_address() {
        let (c, done) = run(Mode::Static, 500, 40);
        assert!(c.stats().demand_on_lines > 0);
        assert!(c.stats().demand_off_lines > 0);
        // The hot page (page 40 of 64, beyond the 8 on-package slots) is
        // off-package under static mapping.
        let hot_accesses = done.iter().filter(|d| !d.on_package).count();
        assert!(hot_accesses > done.len() / 2);
    }

    #[test]
    fn fixed_path_latencies_match_table2() {
        // A single idle access in each mode hits the analytic numbers.
        let lat = LatencyConfig::default();
        let (_, done) = run(Mode::AllOffPackage, 1, 40);
        let d = &done[0];
        assert_eq!(d.breakdown.controller, lat.mc_processing + 2 * lat.ctl_to_core_each_way);
        assert_eq!(
            d.breakdown.interconnect,
            2 * lat.package_pin_each_way + lat.pcb_wire_round_trip
        );
        let (_, done) = run(Mode::AllOnPackage, 1, 40);
        let d = &done[0];
        assert_eq!(
            d.breakdown.interconnect,
            2 * lat.interposer_pin_each_way + lat.intra_package_round_trip
        );
    }

    #[test]
    fn dynamic_migration_moves_the_hot_page_on_package() {
        let (c, done) = run(Mode::Dynamic(MigrationDesign::LiveMigration), 4_000, 40);
        let swaps = c.swap_stats().unwrap();
        assert!(swaps.completed >= 1, "at least one swap should complete");
        // The hot page must be on-package at the end.
        assert!(c.table().cam_lookup(40).is_some(), "hot page 40 should be CAM-mapped on-package");
        // Late accesses to the hot page are served on-package.
        let late_hot: Vec<_> = done.iter().rev().take(200).filter(|d| d.on_package).collect();
        assert!(!late_hot.is_empty());
        c.table().check_invariants(true, true).unwrap();
    }

    #[test]
    fn migration_reduces_average_latency_vs_static() {
        let (_, stat) = run(Mode::Static, 6_000, 40);
        let (_, dynv) = run(Mode::Dynamic(MigrationDesign::LiveMigration), 6_000, 40);
        let mean = |v: &[DemandCompletion]| {
            v.iter().map(|d| d.breakdown.total()).sum::<u64>() as f64 / v.len() as f64
        };
        let m_static = mean(&stat);
        let m_dyn = mean(&dynv);
        assert!(
            m_dyn < m_static * 0.95,
            "migration should cut latency: static {m_static:.0} vs dynamic {m_dyn:.0}"
        );
    }

    #[test]
    fn all_three_designs_complete_swaps() {
        for design in
            [MigrationDesign::N, MigrationDesign::NMinusOne, MigrationDesign::LiveMigration]
        {
            let (c, done) = run(Mode::Dynamic(design), 4_000, 40);
            assert_eq!(done.len(), 4_000, "{design:?} lost completions");
            let swaps = c.swap_stats().unwrap();
            assert!(swaps.completed >= 1, "{design:?} completed no swaps");
            c.table().check_invariants(true, design.sacrifices_slot()).unwrap();
        }
    }

    #[test]
    fn n_design_accumulates_stall_cycles() {
        let (c, _) = run(Mode::Dynamic(MigrationDesign::N), 4_000, 40);
        assert!(c.stats().stall_cycles > 0, "the halting design must stall demand");
        let (c2, _) = run(Mode::Dynamic(MigrationDesign::LiveMigration), 4_000, 40);
        assert!(c2.stats().stall_cycles < c.stats().stall_cycles);
    }

    #[test]
    fn os_assisted_adds_update_stalls() {
        let mut base = cfg(Mode::Dynamic(MigrationDesign::LiveMigration));
        base.os_assisted = Some(true);
        let mut hw = cfg(Mode::Dynamic(MigrationDesign::LiveMigration));
        hw.os_assisted = Some(false);
        let run_with = |cc: ControllerConfig| {
            let mut c = HeteroController::new(cc);
            let mut rng = SimRng::new(5);
            let g = tiny_geometry();
            let mut now = 0;
            for _ in 0..4_000 {
                now += 40;
                let addr = if rng.chance(0.8) {
                    40 * g.page_bytes() + (rng.below(g.page_bytes()) & !63)
                } else {
                    rng.below(g.total_bytes - g.page_bytes()) & !63
                };
                c.access(now, PhysAddr(addr), false);
                c.advance(now);
            }
            c.flush();
            c
        };
        let c_os = run_with(base);
        let c_hw = run_with(hw);
        assert!(
            c_os.stats().stall_cycles > c_hw.stats().stall_cycles,
            "OS-assisted updates must add kernel-switch stalls"
        );
    }

    #[test]
    fn completions_match_submissions() {
        let (c, done) = run(Mode::Dynamic(MigrationDesign::NMinusOne), 2_000, 40);
        assert_eq!(done.len(), 2_000);
        let mut ids: Vec<u64> = done.iter().map(|d| d.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 2_000, "duplicate or missing completions");
        assert_eq!(c.stats().demand_on_lines + c.stats().demand_off_lines, 2_000);
    }

    #[test]
    fn migration_traffic_is_accounted() {
        let (c, _) = run(Mode::Dynamic(MigrationDesign::LiveMigration), 4_000, 40);
        let s = c.stats();
        let swaps = c.swap_stats().unwrap();
        assert!(s.migration_on_lines > 0);
        assert!(s.migration_off_lines > 0);
        // Every sub-block copy moves sub_block/line lines twice (read +
        // write legs).
        let lines_per_sub = tiny_geometry().sub_block_bytes() / 64;
        assert_eq!(
            s.migration_on_lines + s.migration_off_lines,
            swaps.sub_blocks_copied * lines_per_sub * 2
        );
    }

    /// Like [`run`] but with a fault plan armed; accesses stay below the
    /// program-visible ceiling (spare pages are carved from the top).
    fn run_faulty(
        plan: FaultPlan,
        design: MigrationDesign,
        accesses: usize,
    ) -> (HeteroController, Vec<DemandCompletion>) {
        let mut c = HeteroController::new(ControllerConfig {
            faults: Some(plan),
            ..cfg(Mode::Dynamic(design))
        });
        let mut rng = SimRng::new(5);
        let g = tiny_geometry();
        let visible = c.table().first_reserved_page();
        let mut now = 0;
        for _ in 0..accesses {
            now += 40;
            let addr = if rng.chance(0.8) {
                40 * g.page_bytes() + (rng.below(g.page_bytes()) & !63)
            } else {
                rng.below(visible * g.page_bytes()) & !63
            };
            c.access(now, PhysAddr(addr), rng.chance(0.3));
            c.advance(now);
        }
        c.flush();
        let done = c.drain();
        (c, done)
    }

    fn stress_plan() -> FaultPlan {
        FaultPlan {
            drop_rate: 0.05,
            timeout_rate: 0.02,
            flip_rate: 1e-4,
            uflip_rate: 2e-5,
            row_corrupt_rate: 0.05,
            max_retries: 2,
            retry_backoff_cycles: 500,
            ..FaultPlan::default()
        }
    }

    #[test]
    fn faulty_runs_complete_and_reconcile_lines() {
        for design in
            [MigrationDesign::N, MigrationDesign::NMinusOne, MigrationDesign::LiveMigration]
        {
            let (c, done) = run_faulty(stress_plan(), design, 4_000);
            assert_eq!(done.len(), 4_000, "{design:?} lost completions under faults");
            let s = c.stats();
            let swaps = c.swap_stats().unwrap();
            assert!(
                s.transfers_dropped + s.transfers_timed_out > 0,
                "{design:?}: the stress plan should hit some transfers"
            );
            // Every issued sub-block ends exactly one way: copied (engine
            // saw it), failed (dropped/timed out/ECC), or abandoned by an
            // abort — so the line counters reconcile exactly.
            let lines_per_sub = tiny_geometry().sub_block_bytes() / 64;
            let outcomes = swaps.sub_blocks_copied
                + s.transfers_dropped
                + s.transfers_timed_out
                + s.transfers_ecc_failed
                + s.abandoned_sub_blocks;
            assert_eq!(
                s.migration_on_lines + s.migration_off_lines,
                outcomes * lines_per_sub * 2,
                "{design:?}: migration line accounting out of balance"
            );
            // Every started swap ended: completed, or aborted.
            assert_eq!(swaps.triggered, swaps.completed + swaps.aborted, "{design:?}");
            c.table().validate(design.sacrifices_slot()).unwrap();
        }
    }

    #[test]
    fn faulty_runs_are_deterministic() {
        let a = run_faulty(stress_plan(), MigrationDesign::LiveMigration, 3_000);
        let b = run_faulty(stress_plan(), MigrationDesign::LiveMigration, 3_000);
        assert_eq!(a.0.stats(), b.0.stats());
        assert_eq!(a.0.swap_stats(), b.0.swap_stats());
        assert_eq!(a.1, b.1);
    }

    #[test]
    fn zero_rate_plan_matches_no_plan_exactly() {
        let plan = FaultPlan::default(); // all rates zero
        assert!(!plan.any_faults());
        let (cf, df) = run_faulty(plan, MigrationDesign::LiveMigration, 3_000);
        // The same run with faults: None — run_faulty's address stream is
        // identical because spare_slots defaults to >0... so compare
        // against a controller built without a plan but with the same
        // spare carve-out.
        let mut c = HeteroController::new(ControllerConfig {
            faults: Some(plan),
            ..cfg(Mode::Dynamic(MigrationDesign::LiveMigration))
        });
        let mut c0 = HeteroController::new(cfg(Mode::Dynamic(MigrationDesign::LiveMigration)));
        // Identical visible ceilings are required for identical streams.
        let visible = c.table().first_reserved_page().min(c0.table().first_reserved_page());
        let g = tiny_geometry();
        let mut rng = SimRng::new(9);
        let mut rng0 = SimRng::new(9);
        let mut now = 0;
        for _ in 0..2_000 {
            now += 40;
            let mk = |r: &mut SimRng| {
                if r.chance(0.8) {
                    40 * g.page_bytes() + (r.below(g.page_bytes()) & !63)
                } else {
                    r.below(visible * g.page_bytes()) & !63
                }
            };
            c.access(now, PhysAddr(mk(&mut rng)), false);
            c0.access(now, PhysAddr(mk(&mut rng0)), false);
            c.advance(now);
            c0.advance(now);
        }
        c.flush();
        c0.flush();
        assert_eq!(c.drain(), c0.drain(), "zero-rate plan must not perturb completions");
        assert_eq!(c.stats(), c0.stats());
        assert_eq!(c.swap_stats(), c0.swap_stats());
        // And the faulty-path counters all stayed at zero.
        let s = cf.stats();
        assert_eq!(
            (
                s.transfer_retries,
                s.transfers_dropped,
                s.transfers_timed_out,
                s.transfers_ecc_failed,
                s.abandoned_sub_blocks,
                s.row_corruptions,
                s.slots_quarantined
            ),
            (0, 0, 0, 0, 0, 0, 0)
        );
        assert!(!df.is_empty());
    }

    #[test]
    fn stuck_bank_drives_slot_quarantine() {
        // A stuck on-package bank makes every read through it
        // uncorrectable; with a low threshold the affected slots retire
        // and the run degrades instead of failing.
        let plan = FaultPlan {
            stuck_banks: {
                let mut banks = [None; hmm_fault::MAX_STUCK_BANKS];
                banks[0] = Some(hmm_fault::StuckBank {
                    region: hmm_fault::FaultRegion::On,
                    channel: 0,
                    bank: 0,
                });
                banks
            },
            quarantine_threshold: 2,
            spare_slots: 2,
            max_retries: 1,
            ..FaultPlan::default()
        };
        let (c, done) = run_faulty(plan, MigrationDesign::NMinusOne, 6_000);
        assert_eq!(done.len(), 6_000);
        let s = c.stats();
        assert!(s.slots_quarantined > 0, "stuck bank should retire at least one slot");
        assert!(c.table().quarantined_count() > 0);
        assert_eq!(s.slots_quarantined, c.table().quarantined_count());
        c.table().validate(true).unwrap();
        // Quarantined slots keep their page reachable (degraded, not
        // lost): each parks at a distinct reserved spare.
        let swaps = c.swap_stats().unwrap();
        assert_eq!(swaps.quarantine_drains, s.slots_quarantined);
    }

    #[test]
    fn controller_stats_merge_covers_fault_counters() {
        let mut a = ControllerStats {
            transfer_retries: 1,
            transfers_dropped: 2,
            transfers_timed_out: 3,
            transfers_ecc_failed: 4,
            abandoned_sub_blocks: 5,
            row_corruptions: 6,
            slots_quarantined: 7,
            ..ControllerStats::default()
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.transfer_retries, 2);
        assert_eq!(a.transfers_dropped, 4);
        assert_eq!(a.transfers_timed_out, 6);
        assert_eq!(a.transfers_ecc_failed, 8);
        assert_eq!(a.abandoned_sub_blocks, 10);
        assert_eq!(a.row_corruptions, 12);
        assert_eq!(a.slots_quarantined, 14);
    }
}
