//! A direct-mapped lookup cache in front of the [`TranslationTable`].
//!
//! The demand path translates every access; between migration events the
//! table is read-only, and most lookups are CAM misses (off-package pages
//! at their own home) that cost a `HashMap` probe each. The cache replaces
//! the full row walk with one array index and two compares in the common
//! no-migration case.
//!
//! Coherence is by construction, not by callbacks: every mutating table
//! primitive bumps [`TranslationTable::generation`], and an entry is valid
//! only while its recorded generation equals the table's. A stale mapping
//! after a P-bit flip would be a *correctness* bug (the access would read
//! the wrong DRAM location), so entries never outlive a table mutation.
//! Fill-in-progress pages translate per sub-block and are never inserted
//! ([`TranslationTable::translate_stable`] returns `None` for them); their
//! bitmap progress is the one table change that deliberately does not bump
//! the generation.

use crate::table::{MachinePage, TranslationTable};
use hmm_sim_base::addr::{MacroPageId, SubBlockId};

/// One direct-mapped entry. `gen` must match the table's current
/// generation for the entry to be live; `page` disambiguates the pages
/// aliasing onto one index.
#[derive(Debug, Clone, Copy)]
struct Entry {
    page: u64,
    machine: u64,
    gen: u64,
}

/// Direct-mapped physical-page → machine-page cache with generation-based
/// invalidation. Sized in entries (a power of two).
#[derive(Debug, Clone)]
pub struct TranslationCache {
    entries: Box<[Entry]>,
    mask: u64,
    hits: u64,
    misses: u64,
}

/// Default cache size: covers the hot working set of every paper geometry
/// while staying well inside L1/L2 (1024 × 24 B = 24 KB).
pub const DEFAULT_ENTRIES: usize = 1024;

impl Default for TranslationCache {
    fn default() -> Self {
        Self::new(DEFAULT_ENTRIES)
    }
}

impl TranslationCache {
    /// Cache with `entries` slots (rounded up to a power of two).
    pub fn new(entries: usize) -> Self {
        let n = entries.next_power_of_two().max(1);
        // Generation 0 entries for page u64::MAX can never be hit: the
        // table starts at generation 0 but no real page is u64::MAX.
        let empty = Entry { page: u64::MAX, machine: 0, gen: 0 };
        Self {
            entries: vec![empty; n].into_boxed_slice(),
            mask: (n - 1) as u64,
            hits: 0,
            misses: 0,
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the cache has no slots (never: `new` clamps to ≥ 1).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lookups served from the cache so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that walked the table so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Translate through the cache. Hits cost one array read; misses walk
    /// the table and, when the mapping is sub-block-independent, install
    /// it for the table's current generation.
    #[inline]
    pub fn translate(
        &mut self,
        table: &TranslationTable,
        page: MacroPageId,
        sub: SubBlockId,
    ) -> MachinePage {
        let idx = (page.0 & self.mask) as usize;
        let e = self.entries[idx];
        if e.page == page.0 && e.gen == table.generation() {
            self.hits += 1;
            return MachinePage(e.machine);
        }
        self.misses += 1;
        match table.translate_stable(page) {
            Some(mp) => {
                self.entries[idx] = Entry { page: page.0, machine: mp.0, gen: table.generation() };
                mp
            }
            // Mid-fill pages route per sub-block; never cached.
            None => table.translate(page, sub),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(p: u64) -> MacroPageId {
        MacroPageId(p)
    }

    fn sub(s: u32) -> SubBlockId {
        SubBlockId(s)
    }

    /// 8 slots, 32 total pages, ghost = 31, sacrificed slot 7.
    fn table() -> TranslationTable {
        TranslationTable::new(8, 32, true)
    }

    /// Every cached translation must agree with the table at all times.
    fn assert_coherent(c: &mut TranslationCache, t: &TranslationTable) {
        for p in 0..28 {
            // program-visible pages (below spares/ghost)
            assert_eq!(
                c.translate(t, page(p), sub(0)),
                t.translate(page(p), sub(0)),
                "cache diverged on page {p}"
            );
        }
    }

    #[test]
    fn hit_after_miss_returns_same_mapping() {
        let t = table();
        let mut c = TranslationCache::new(64);
        let a = c.translate(&t, page(20), sub(0));
        assert_eq!(c.misses(), 1);
        let b = c.translate(&t, page(20), sub(1));
        assert_eq!(c.hits(), 1, "second lookup must hit");
        assert_eq!(a, b);
        assert_eq!(a, MachinePage(20));
    }

    #[test]
    fn aliasing_pages_evict_each_other() {
        let t = table();
        let mut c = TranslationCache::new(4);
        // Pages 20 and 24 alias onto index 0 of a 4-entry cache.
        c.translate(&t, page(20), sub(0));
        c.translate(&t, page(24), sub(0));
        c.translate(&t, page(20), sub(0));
        assert_eq!(c.hits(), 0);
        assert_eq!(c.misses(), 3);
    }

    #[test]
    fn swap_start_invalidates_cached_mapping() {
        let mut t = table();
        let mut c = TranslationCache::new(64);
        assert_eq!(c.translate(&t, page(20), sub(0)), MachinePage(20));
        // The fill begins: page 20 is now mid-flight, its unfilled
        // sub-blocks still live at the source.
        t.begin_fill_into_empty(7, 20, MachinePage(20), 4);
        assert_eq!(
            c.translate(&t, page(20), sub(0)),
            MachinePage(20),
            "stale cached slot mapping would read the wrong location"
        );
        assert_eq!(c.hits(), 0, "generation bump must invalidate the entry");
        assert_coherent(&mut c, &t);
    }

    #[test]
    fn fill_progress_is_never_cached() {
        let mut t = table();
        let mut c = TranslationCache::new(64);
        t.begin_fill_into_empty(7, 20, MachinePage(20), 4);
        assert_eq!(c.translate(&t, page(20), sub(0)), MachinePage(20));
        t.mark_sub_block_filled(7, sub(0));
        // Filled sub-block now serves on-package, unfilled still remote —
        // the cache must track the bitmap exactly (by not caching).
        assert_eq!(c.translate(&t, page(20), sub(0)), MachinePage(7));
        assert_eq!(c.translate(&t, page(20), sub(1)), MachinePage(20));
        assert_eq!(c.hits(), 0, "mid-fill pages must bypass the cache");
    }

    #[test]
    fn swap_complete_invalidates_p_bit_mapping() {
        let mut t = table();
        let mut c = TranslationCache::new(64);
        t.begin_fill_into_empty(7, 20, MachinePage(20), 1);
        t.mark_sub_block_filled(7, sub(0));
        // P bit set: page 7 translates to the ghost Ω = 31. Cache it.
        assert_eq!(c.translate(&t, page(7), sub(0)), MachinePage(31));
        // Completion clears P: page 7's data now lives at home(20).
        t.clear_p(7);
        assert_eq!(
            c.translate(&t, page(7), sub(0)),
            MachinePage(20),
            "a stale mapping after a P-bit flip is a correctness bug"
        );
        assert_coherent(&mut c, &t);
    }

    #[test]
    fn swap_abort_invalidates() {
        let mut t = table();
        let mut c = TranslationCache::new(64);
        t.begin_fill_into_empty(7, 20, MachinePage(20), 4);
        // Cache the hot page's CAM mapping... which is mid-fill, so it is
        // not cached; cache a neighbour that the abort also touches.
        assert_eq!(c.translate(&t, page(7), sub(0)), MachinePage(31));
        t.abort_fill_into_empty(7);
        // Rollback: slot 7 is empty again, page 20 back at its own home.
        assert_eq!(c.translate(&t, page(20), sub(0)), MachinePage(20));
        assert_eq!(c.translate(&t, page(7), sub(0)), MachinePage(31));
        assert_coherent(&mut c, &t);
    }

    #[test]
    fn quarantine_invalidates_and_parks() {
        let mut t = TranslationTable::with_spares(8, 32, true, 2);
        let mut c = TranslationCache::new(64);
        // Slot 2 starts Own; cache its RAM mapping.
        assert_eq!(c.translate(&t, page(2), sub(0)), MachinePage(2));
        let spare = t.allocate_spare().unwrap();
        t.quarantine_row(2, spare);
        assert_eq!(
            c.translate(&t, page(2), sub(0)),
            spare,
            "quarantined slot's page must translate to its parking spare"
        );
        assert_coherent(&mut c, &t);
    }

    #[test]
    fn n_design_direct_ops_invalidate() {
        let mut t = TranslationTable::new(8, 32, false);
        let mut c = TranslationCache::new(64);
        assert_eq!(c.translate(&t, page(25), sub(0)), MachinePage(25));
        assert_eq!(c.translate(&t, page(3), sub(0)), MachinePage(3));
        t.set_swapped(3, 25);
        assert_eq!(c.translate(&t, page(25), sub(0)), MachinePage(3));
        assert_eq!(c.translate(&t, page(3), sub(0)), MachinePage(25));
        t.set_own(3);
        assert_eq!(c.translate(&t, page(25), sub(0)), MachinePage(25));
        assert_eq!(c.translate(&t, page(3), sub(0)), MachinePage(3));
        assert_eq!(c.hits(), 0, "every mutation in between must invalidate");
    }

    #[test]
    fn cache_agrees_with_table_through_full_case_b() {
        // Replay the Fig. 8(b) sequence from the table tests with a cache
        // interposed on every step.
        let mut t = table();
        let mut c = TranslationCache::new(64);
        assert_coherent(&mut c, &t);
        t.begin_fill_into_empty(7, 20, MachinePage(20), 1);
        assert_coherent(&mut c, &t);
        t.mark_sub_block_filled(7, sub(0));
        assert_coherent(&mut c, &t);
        t.clear_p(7);
        assert_coherent(&mut c, &t);
        t.retire_to_empty(3);
        assert_coherent(&mut c, &t);
        t.begin_fill_into_empty(3, 21, MachinePage(21), 1);
        t.mark_sub_block_filled(3, sub(0));
        t.clear_p(3);
        t.set_p(7);
        assert_coherent(&mut c, &t);
        t.retire_to_empty(7);
        assert_coherent(&mut c, &t);
        t.check_invariants(true, true).unwrap();
        assert!(c.hits() > 0, "idle stretches should hit");
    }
}
