//! The paper's contribution: a heterogeneity-aware on-chip memory
//! controller that manages a main-memory space spanning fast on-package
//! DRAM and conventional off-package DIMMs, migrating hot data across the
//! package boundary through an extra layer of address translation.
//!
//! * [`table`] — the bi-directional (RAM + CAM) physical-to-machine
//!   translation table with the **P** (pending) bit, the **F** (filling)
//!   bit and the per-slot sub-block bitmap of Figs. 6/7/9.
//! * [`monitor`] — hotness tracking: clock-based pseudo-LRU over the
//!   on-package slots and the three-level multi-queue MRU filter over
//!   off-package macro pages (Section III-B).
//! * [`migrate`] — the hottest-coldest swap algorithm in its three
//!   incarnations: **N** (halt-and-copy), **N-1** (one sacrificed slot +
//!   ghost page Ω, Fig. 8 cases a-d) and **N-1 with live migration**
//!   (critical-data-first sub-block filling, Fig. 9).
//! * [`controller`] — the heterogeneity-aware memory controller of Fig. 3:
//!   translation before scheduling, independent per-region scheduling, and
//!   the migration controller driving background copy traffic.
//! * [`tcache`] — a direct-mapped, generation-validated lookup cache in
//!   front of the translation table so the common no-migration case skips
//!   the full row walk on the demand path.
//! * [`overhead`] — the pure-hardware cost model of Fig. 10 (translation
//!   table + bitmaps + multi-queue bits) and the pure-HW vs. OS-assisted
//!   threshold.
//! * [`adaptive`] — the extension the paper calls for: online selection
//!   of the migration granularity (explore candidates, commit to the
//!   best, optionally re-explore).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod adaptive;
pub mod controller;
pub mod migrate;
pub mod monitor;
pub mod overhead;
pub mod scheme;
pub mod table;
pub mod tcache;

pub use adaptive::{AdaptiveConfig, AdaptiveController, TrialResult};
pub use controller::{ControllerConfig, ControllerStats, HeteroController, Mode};
pub use migrate::{MigrationDesign, MigrationEngine, SwapStats};
pub use monitor::{MultiQueueMru, SlotClock};
pub use overhead::{hardware_bits, HardwareOverhead, OS_ASSIST_THRESHOLD_BYTES};
pub use scheme::{
    build_scheme, validate_scheme, L4CacheScheme, MigrationPolicy, PcmScheme, PlacementScheme,
    SchemeId,
};
pub use table::{MachinePage, RowState, TranslationTable};
pub use tcache::TranslationCache;
