//! The bi-directional physical-to-machine translation table (Figs. 6-9).
//!
//! Machine pages `0..N` are the on-package slots; machine pages `N..total`
//! are the off-package DIMM locations ("MSBs of physical memory addresses
//! are used to decode the target location"). The table has one row per
//! on-package slot. Row `n` encodes, in a single entry, *both* directions
//! of a swap:
//!
//! * `Own` — slot `n` holds its own macro page `n` (an **OF** page). This
//!   is the boot state ("the right column ... is initialized to contain the
//!   same value as its left column counterpart").
//! * `Swapped(m)` (`m >= N`) — slot `n` holds macro page `m` (an **MF**
//!   page, found by the CAM function), while page `n`'s own data lives at
//!   `m`'s off-package home (page `n` is **MS**, found by the RAM
//!   function).
//! * `Empty` — slot `n` is the sacrificed slot of the N-1 design; page
//!   `n`'s data lives at the reserved ghost page Ω (page `n` is the
//!   **Ghost** page).
//!
//! Pages `>= N` with no CAM entry are **OS** pages at their own home.
//!
//! The paper's invariant — "if macro page n (n < N) is located in the
//! on-package region, it can only be in the position of the n-th row" —
//! makes the single-entry encoding sound: an on-package slot can only hold
//! its own page or a high page, so the RAM and CAM functions never
//! disagree.
//!
//! Two flags refine the translation during migration:
//!
//! * **P bit** (pending, Fig. 7): while set on row `n`, the RAM function is
//!   bypassed and page `n` translates to Ω regardless of the row state
//!   ("the left column is always translated to Ω instead, while the CAM
//!   function still works").
//! * **F bit + bitmap** (filling, Fig. 9): the slot is receiving a page
//!   sub-block by sub-block; accesses to already-filled sub-blocks are
//!   served on-package, the rest route to the recorded source location.

use hmm_sim_base::addr::{MacroPageId, SubBlockId};
use hmm_sim_base::fxhash::FxHashMap;

/// A macro-page-sized machine location: `< N` → on-package slot,
/// `>= N` → off-package DIMM page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MachinePage(pub u64);

/// State of one translation-table row (one on-package slot).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowState {
    /// Slot holds its own page (OF).
    Own,
    /// Slot holds the given high page (MF); the row's own page is MS at
    /// that page's home.
    Swapped(u64),
    /// The sacrificed slot (N-1 design); the row's own page is the Ghost
    /// page, resident at Ω.
    Empty,
}

/// Live-migration fill progress for one slot.
#[derive(Debug, Clone)]
pub struct FillState {
    /// The page arriving into this slot.
    pub page: u64,
    /// Where its not-yet-copied sub-blocks still live.
    pub source: MachinePage,
    bitmap: Vec<u64>,
    filled: u32,
    total: u32,
}

impl FillState {
    fn new(page: u64, source: MachinePage, sub_blocks: u32) -> Self {
        assert!(sub_blocks >= 1);
        Self {
            page,
            source,
            bitmap: vec![0; sub_blocks.div_ceil(64) as usize],
            filled: 0,
            total: sub_blocks,
        }
    }

    /// Map a real sub-block index onto the bitmap granularity: a
    /// single-bit bitmap (the conservative N-1 all-or-nothing switch)
    /// folds every sub-block onto bit 0.
    #[inline]
    fn bit_index(&self, sub: SubBlockId) -> u32 {
        if self.total == 1 {
            0
        } else {
            debug_assert!(sub.0 < self.total);
            sub.0
        }
    }

    /// Has this sub-block arrived?
    #[inline]
    pub fn is_filled(&self, sub: SubBlockId) -> bool {
        let i = self.bit_index(sub);
        self.bitmap[(i / 64) as usize] >> (i % 64) & 1 == 1
    }

    fn mark(&mut self, sub: SubBlockId) -> bool {
        let i = self.bit_index(sub);
        let w = &mut self.bitmap[(i / 64) as usize];
        let bit = 1u64 << (i % 64);
        if *w & bit == 0 {
            *w |= bit;
            self.filled += 1;
        }
        self.filled == self.total
    }

    /// Fraction of sub-blocks already present.
    pub fn progress(&self) -> f64 {
        self.filled as f64 / self.total as f64
    }
}

#[derive(Debug, Clone)]
struct Row {
    state: RowState,
    p_bit: bool,
    fill: Option<FillState>,
    /// In Fig. 8(c)/(d) the partner page's CAM entry moves to the empty
    /// slot while this row's RAM state must keep pointing at the partner's
    /// home. While suppressed, the row's `Swapped` entry serves only the
    /// RAM function.
    cam_suppressed: bool,
    /// Where the row's own page was parked when the slot was drained for
    /// quarantine (a reserved spare page). While set, the P-bit/Empty
    /// translation goes here instead of Ω.
    parked: Option<u64>,
    /// The slot was retired from the migration pool after exceeding its
    /// uncorrectable-error budget. Quarantined rows stay `Empty` forever
    /// and are never picked as the fill target of a swap.
    quarantined: bool,
}

/// The translation table.
#[derive(Debug, Clone)]
pub struct TranslationTable {
    slots: u64,
    total_pages: u64,
    /// The reserved ghost page Ω: the highest macro page of the space,
    /// reserved by the hardware driver at boot (Section III-A footnote).
    ghost: u64,
    rows: Vec<Row>,
    /// CAM function: high page -> slot holding it.
    cam: FxHashMap<u64, u32>,
    /// Reserved spare pages just below Ω, used to park the occupants of
    /// quarantined slots.
    spares_total: u32,
    /// Spares handed out so far.
    next_spare: u32,
    /// Mutation epoch: bumped by every primitive that can change a
    /// translation, so lookup caches in front of the table
    /// ([`crate::tcache::TranslationCache`]) can validate entries with a
    /// single compare instead of subscribing to individual updates.
    generation: u64,
}

impl TranslationTable {
    /// Identity-mapped table over `slots` on-package slots and
    /// `total_pages` macro pages. With `sacrifice_slot` (the N-1 designs),
    /// the last slot starts `Empty` and its page lives at Ω.
    pub fn new(slots: u64, total_pages: u64, sacrifice_slot: bool) -> Self {
        Self::with_spares(slots, total_pages, sacrifice_slot, 0)
    }

    /// Like [`TranslationTable::new`], additionally reserving `spares`
    /// pages just below Ω as parking space for quarantined-slot
    /// occupants. The reserved pages (spares plus Ω) are invisible to the
    /// program; the caller must size the machine space to cover them.
    pub fn with_spares(slots: u64, total_pages: u64, sacrifice_slot: bool, spares: u32) -> Self {
        assert!(slots >= 2, "need at least two on-package slots");
        assert!(
            total_pages > slots + 1 + spares as u64,
            "need off-package pages plus the ghost page plus {spares} spares"
        );
        let mut rows = vec![
            Row {
                state: RowState::Own,
                p_bit: false,
                fill: None,
                cam_suppressed: false,
                parked: None,
                quarantined: false,
            };
            slots as usize
        ];
        if sacrifice_slot {
            rows[slots as usize - 1].state = RowState::Empty;
        }
        Self {
            slots,
            total_pages,
            ghost: total_pages - 1,
            rows,
            cam: FxHashMap::default(),
            spares_total: spares,
            next_spare: 0,
            generation: 0,
        }
    }

    /// Current mutation epoch. Any value change means previously observed
    /// translations may be stale; equality guarantees they are not (the
    /// sole exception is fill-bitmap progress, which only ever affects the
    /// filling page itself — a page [`TranslationTable::translate_stable`]
    /// refuses to vouch for).
    #[inline]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    #[inline]
    fn bump(&mut self) {
        self.generation = self.generation.wrapping_add(1);
    }

    /// Number of on-package slots N.
    pub fn slots(&self) -> u64 {
        self.slots
    }

    /// The reserved ghost machine page Ω.
    pub fn ghost(&self) -> MachinePage {
        MachinePage(self.ghost)
    }

    /// Is this machine page inside the on-package region?
    #[inline]
    pub fn is_on_package(&self, mp: MachinePage) -> bool {
        mp.0 < self.slots
    }

    /// First reserved (non-program-visible) page: the spares and Ω live
    /// at `first_reserved_page()..total_pages`.
    pub fn first_reserved_page(&self) -> u64 {
        self.ghost - self.spares_total as u64
    }

    /// Is `page` reserved (a spare or the ghost page Ω)? Reserved pages
    /// must never be picked as swap candidates.
    #[inline]
    pub fn is_reserved(&self, page: u64) -> bool {
        page >= self.first_reserved_page()
    }

    /// Is at least one spare page still unallocated?
    pub fn spare_available(&self) -> bool {
        self.next_spare < self.spares_total
    }

    /// Hand out the next reserved spare page for a quarantine drain.
    pub fn allocate_spare(&mut self) -> Option<MachinePage> {
        if !self.spare_available() {
            return None;
        }
        let p = self.first_reserved_page() + self.next_spare as u64;
        self.next_spare += 1;
        Some(MachinePage(p))
    }

    /// Has this slot been retired from the migration pool?
    pub fn is_quarantined(&self, slot: u32) -> bool {
        self.rows[slot as usize].quarantined
    }

    /// Number of quarantined slots.
    pub fn quarantined_count(&self) -> u64 {
        self.rows.iter().filter(|r| r.quarantined).count() as u64
    }

    /// Current state of a row.
    pub fn row_state(&self, slot: u32) -> RowState {
        self.rows[slot as usize].state
    }

    /// Is the row's P bit set?
    pub fn p_bit(&self, slot: u32) -> bool {
        self.rows[slot as usize].p_bit
    }

    /// Fill progress of a row, if a fill is active.
    pub fn fill_state(&self, slot: u32) -> Option<&FillState> {
        self.rows[slot as usize].fill.as_ref()
    }

    /// The slot currently holding `page` (CAM function), if any.
    pub fn cam_lookup(&self, page: u64) -> Option<u32> {
        self.cam.get(&page).copied()
    }

    /// The macro page whose data currently occupies `slot`, or `None` for
    /// the empty slot. This is what the LRU monitor evicts.
    pub fn occupant(&self, slot: u32) -> Option<u64> {
        match self.rows[slot as usize].state {
            RowState::Own => Some(slot as u64),
            RowState::Swapped(m) => Some(m),
            RowState::Empty => None,
        }
    }

    /// Number of high pages currently migrated on-package (CAM entries).
    /// This is the amount of state a granularity switch must drain.
    pub fn swapped_count(&self) -> usize {
        self.cam.len()
    }

    /// The slot in `Empty` state, if any (idle N-1 table has exactly
    /// one). Quarantined slots are also `Empty` but are permanently out
    /// of the pool, so they don't count.
    pub fn empty_slot(&self) -> Option<u32> {
        self.rows
            .iter()
            .position(|r| r.state == RowState::Empty && !r.quarantined)
            .map(|i| i as u32)
    }

    /// Translate one access (the paper's two additional clock cycles are
    /// charged by the controller, not here).
    pub fn translate(&self, page: MacroPageId, sub: SubBlockId) -> MachinePage {
        let p = page.0;
        debug_assert!(p < self.total_pages, "page {p} out of range");
        if p < self.slots {
            // RAM function.
            let row = &self.rows[p as usize];
            if let Some(f) = &row.fill {
                if f.page == p {
                    return if f.is_filled(sub) { MachinePage(p) } else { f.source };
                }
            }
            if row.p_bit {
                return MachinePage(row.parked.unwrap_or(self.ghost));
            }
            match row.state {
                RowState::Own => MachinePage(p),
                RowState::Swapped(m) => MachinePage(m),
                RowState::Empty => MachinePage(row.parked.unwrap_or(self.ghost)),
            }
        } else {
            // CAM function.
            if let Some(&slot) = self.cam.get(&p) {
                let row = &self.rows[slot as usize];
                if let Some(f) = &row.fill {
                    if f.page == p {
                        return if f.is_filled(sub) { MachinePage(slot as u64) } else { f.source };
                    }
                }
                MachinePage(slot as u64)
            } else {
                MachinePage(p)
            }
        }
    }

    /// Translate a page whose mapping does not depend on the sub-block, or
    /// `None` while the page is the target of an active fill (its F bitmap
    /// decides per sub-block). A `Some` result stays valid until
    /// [`TranslationTable::generation`] changes, which is what makes it
    /// safe to hold in a lookup cache.
    pub fn translate_stable(&self, page: MacroPageId) -> Option<MachinePage> {
        let p = page.0;
        debug_assert!(p < self.total_pages, "page {p} out of range");
        if p < self.slots {
            // RAM function.
            let row = &self.rows[p as usize];
            if let Some(f) = &row.fill {
                if f.page == p {
                    return None;
                }
            }
            if row.p_bit {
                return Some(MachinePage(row.parked.unwrap_or(self.ghost)));
            }
            Some(match row.state {
                RowState::Own => MachinePage(p),
                RowState::Swapped(m) => MachinePage(m),
                RowState::Empty => MachinePage(row.parked.unwrap_or(self.ghost)),
            })
        } else {
            // CAM function.
            if let Some(&slot) = self.cam.get(&p) {
                let row = &self.rows[slot as usize];
                if let Some(f) = &row.fill {
                    if f.page == p {
                        return None;
                    }
                }
                Some(MachinePage(slot as u64))
            } else {
                Some(MachinePage(p))
            }
        }
    }

    // ---- mutation primitives used by the migration engine ----
    //
    // Each mirrors one of the paper's table updates; preconditions are
    // asserted because a violation is a bug in the engine's sequencing,
    // never a runtime condition.

    /// Begin filling `page` (a high page) into the empty slot `slot`,
    /// arriving from `source`. Sets the row to `Swapped(page)` with the
    /// P bit (paper: "a new link B-to-C is updated ... the P bit of this
    /// row is set to 1") and an F-bitmap of `sub_blocks` entries.
    pub fn begin_fill_into_empty(
        &mut self,
        slot: u32,
        page: u64,
        source: MachinePage,
        sub_blocks: u32,
    ) {
        self.bump();
        let row = &mut self.rows[slot as usize];
        assert_eq!(row.state, RowState::Empty, "fill target must be the empty slot");
        assert!(!row.quarantined, "quarantined slots never rejoin the pool");
        assert!(page >= self.slots, "only high pages enter via the empty slot");
        assert!(row.fill.is_none());
        row.state = RowState::Swapped(page);
        row.p_bit = true;
        row.fill = Some(FillState::new(page, source, sub_blocks));
        let prev = self.cam.insert(page, slot);
        assert!(prev.is_none(), "page {page} already CAM-mapped");
    }

    /// Suppress this row's CAM entry: the partner page's entry is about to
    /// be re-created at the empty slot (Fig. 8c/d step 1), but this row's
    /// RAM state must keep translating its own page to the partner's home
    /// until the restore step. Panics unless the row is `Swapped`.
    pub fn suppress_cam(&mut self, slot: u32) {
        self.bump();
        let row = &mut self.rows[slot as usize];
        let RowState::Swapped(partner) = row.state else {
            panic!("only swapped rows have a CAM entry to suppress");
        };
        assert!(!row.cam_suppressed, "CAM already suppressed on slot {slot}");
        row.cam_suppressed = true;
        let removed = self.cam.remove(&partner);
        assert_eq!(removed, Some(slot), "CAM out of sync for page {partner}");
    }

    /// Begin restoring the row's own page into `slot` (Fig. 8c/d step 2:
    /// "copy data B back to its original slot"). The row must currently be
    /// `Swapped(partner)` with its CAM entry suppressed (the partner's data
    /// was re-homed to the empty slot by the previous step).
    pub fn begin_restore_own(&mut self, slot: u32, source: MachinePage, sub_blocks: u32) {
        self.bump();
        let row = &mut self.rows[slot as usize];
        let RowState::Swapped(_) = row.state else {
            panic!("restore target must be a swapped slot");
        };
        assert!(row.cam_suppressed, "suppress_cam must precede begin_restore_own");
        assert!(row.fill.is_none());
        row.state = RowState::Own;
        row.cam_suppressed = false;
        row.fill = Some(FillState::new(slot as u64, source, sub_blocks));
    }

    /// Record the arrival of one sub-block into `slot`. Returns true when
    /// the fill is complete (the F bit resets: "when all the bits in the
    /// bit map become 1, the F bit is reset").
    pub fn mark_sub_block_filled(&mut self, slot: u32, sub: SubBlockId) -> bool {
        let row = &mut self.rows[slot as usize];
        let fill = row.fill.as_mut().expect("no fill in progress");
        let done = fill.mark(sub);
        if done {
            row.fill = None;
        }
        done
    }

    /// Clear the P bit (the reverse copy finished).
    pub fn clear_p(&mut self, slot: u32) {
        self.bump();
        let row = &mut self.rows[slot as usize];
        assert!(row.p_bit, "P bit not set on slot {slot}");
        row.p_bit = false;
    }

    /// Set the P bit (Fig. 8b/d: the row's own data has been parked at Ω
    /// while its slot drains).
    pub fn set_p(&mut self, slot: u32) {
        self.bump();
        let row = &mut self.rows[slot as usize];
        assert!(!row.p_bit, "P bit already set on slot {slot}");
        assert!(row.state != RowState::Empty);
        row.p_bit = true;
    }

    /// Retire a slot to `Empty` (its occupant has been copied out; the
    /// row's own page now lives at Ω — it is the new Ghost page).
    pub fn retire_to_empty(&mut self, slot: u32) {
        self.bump();
        let row = &mut self.rows[slot as usize];
        assert!(row.fill.is_none(), "cannot retire a filling slot");
        if let RowState::Swapped(m) = row.state {
            if !row.cam_suppressed {
                let removed = self.cam.remove(&m);
                assert_eq!(removed, Some(slot));
            }
        }
        row.state = RowState::Empty;
        row.p_bit = false;
        row.cam_suppressed = false;
    }

    /// Directly set a row to `Swapped(page)` without a fill (used by the
    /// halting N design, which completes the whole exchange before any
    /// table update).
    pub fn set_swapped(&mut self, slot: u32, page: u64) {
        self.bump();
        assert!(page >= self.slots);
        let row = &mut self.rows[slot as usize];
        assert!(row.fill.is_none());
        if let RowState::Swapped(old) = row.state {
            let removed = self.cam.remove(&old);
            assert_eq!(removed, Some(slot));
        }
        row.state = RowState::Swapped(page);
        let prev = self.cam.insert(page, slot);
        assert!(prev.is_none(), "page {page} already CAM-mapped");
    }

    /// Directly set a row to `Own` without a fill (N design).
    pub fn set_own(&mut self, slot: u32) {
        self.bump();
        let row = &mut self.rows[slot as usize];
        assert!(row.fill.is_none());
        if let RowState::Swapped(old) = row.state {
            let removed = self.cam.remove(&old);
            assert_eq!(removed, Some(slot));
        }
        row.state = RowState::Own;
    }

    // ---- rollback and quarantine primitives ----
    //
    // Inverses of the begin-ops above, used when a swap aborts mid-flight
    // and the engine walks the P/F state machine backwards, plus the two
    // operations of a quarantine drain.

    /// Undo [`TranslationTable::begin_fill_into_empty`]: the fill is
    /// abandoned, the CAM entry withdrawn and the slot returns to `Empty`
    /// (whatever sub-blocks already arrived are discarded — the source
    /// copy is still intact, so the page's single valid home moves back).
    pub fn abort_fill_into_empty(&mut self, slot: u32) {
        self.bump();
        let row = &mut self.rows[slot as usize];
        let RowState::Swapped(page) = row.state else {
            panic!("abort_fill target is not mid-fill");
        };
        assert!(row.p_bit, "fill rows carry the P bit until the ghost drains");
        row.state = RowState::Empty;
        row.p_bit = false;
        row.fill = None;
        let removed = self.cam.remove(&page);
        assert_eq!(removed, Some(slot), "CAM out of sync for page {page}");
    }

    /// Undo [`TranslationTable::suppress_cam`]: re-create the partner
    /// page's CAM entry at this row.
    pub fn unsuppress_cam(&mut self, slot: u32) {
        self.bump();
        let row = &mut self.rows[slot as usize];
        let RowState::Swapped(partner) = row.state else {
            panic!("only swapped rows can re-own a CAM entry");
        };
        assert!(row.cam_suppressed, "CAM not suppressed on slot {slot}");
        row.cam_suppressed = false;
        let prev = self.cam.insert(partner, slot);
        assert!(prev.is_none(), "page {partner} already CAM-mapped");
    }

    /// Undo [`TranslationTable::begin_restore_own`]: the restore is
    /// abandoned and the row returns to `Swapped(partner)` with its CAM
    /// entry suppressed (as it was between the suppress and restore
    /// steps). `partner` is the high page whose home still holds the
    /// row's own data.
    pub fn abort_restore_own(&mut self, slot: u32, partner: u64) {
        self.bump();
        let row = &mut self.rows[slot as usize];
        assert_eq!(row.state, RowState::Own, "abort_restore target is not mid-restore");
        assert!(!row.cam_suppressed);
        assert!(partner >= self.slots);
        row.state = RowState::Swapped(partner);
        row.cam_suppressed = true;
        row.fill = None;
    }

    /// Set the P bit with a parked destination: the row's own data has
    /// been copied to the reserved spare page (quarantine drain of a
    /// `Swapped` slot) and translates there while the occupant drains.
    pub fn set_p_parked(&mut self, slot: u32, spare: MachinePage) {
        self.bump();
        assert!(self.is_reserved(spare.0) && spare.0 != self.ghost, "park target must be a spare");
        let row = &mut self.rows[slot as usize];
        assert!(!row.p_bit, "P bit already set on slot {slot}");
        assert!(matches!(row.state, RowState::Swapped(_)), "parked drains leave swapped rows");
        assert!(row.parked.is_none());
        row.p_bit = true;
        row.parked = Some(spare.0);
    }

    /// Retire `slot` from the migration pool for good: its own page now
    /// lives at the spare, any occupant has been drained, and the row is
    /// permanently `Empty` + quarantined.
    pub fn quarantine_row(&mut self, slot: u32, spare: MachinePage) {
        self.bump();
        assert!(self.is_reserved(spare.0) && spare.0 != self.ghost, "park target must be a spare");
        let row = &mut self.rows[slot as usize];
        assert!(!row.quarantined, "slot {slot} already quarantined");
        assert!(row.fill.is_none(), "cannot quarantine a filling slot");
        assert!(!row.cam_suppressed);
        if let RowState::Swapped(m) = row.state {
            let removed = self.cam.remove(&m);
            assert_eq!(removed, Some(slot));
        }
        row.state = RowState::Empty;
        row.p_bit = false;
        row.quarantined = true;
        row.parked = Some(spare.0);
    }

    /// Serialize the table's dynamic state (snapshot/resume support).
    /// Geometry (`slots`, `total_pages`, `ghost`, `spares_total`) is
    /// rebuilt from configuration on load; the CAM is reconstructed from
    /// the rows, restoring exactly the `check_invariants` relationship.
    pub fn save_state(&self, w: &mut hmm_sim_base::snap::SnapWriter) {
        w.u32(self.next_spare);
        w.u64(self.generation);
        w.usize(self.rows.len());
        for row in &self.rows {
            match row.state {
                RowState::Own => w.u8(0),
                RowState::Swapped(m) => {
                    w.u8(1);
                    w.u64(m);
                }
                RowState::Empty => w.u8(2),
            }
            w.bool(row.p_bit);
            match &row.fill {
                None => w.bool(false),
                Some(f) => {
                    w.bool(true);
                    w.u64(f.page);
                    w.u64(f.source.0);
                    w.u64s(&f.bitmap);
                    w.u32(f.filled);
                    w.u32(f.total);
                }
            }
            w.bool(row.cam_suppressed);
            match row.parked {
                None => w.bool(false),
                Some(p) => {
                    w.bool(true);
                    w.u64(p);
                }
            }
            w.bool(row.quarantined);
        }
    }

    /// Restore table state saved by [`TranslationTable::save_state`] onto
    /// a freshly constructed table with the same geometry.
    pub fn load_state(
        &mut self,
        r: &mut hmm_sim_base::snap::SnapReader<'_>,
    ) -> hmm_sim_base::snap::SnapResult<()> {
        self.next_spare = r.u32()?;
        self.generation = r.u64()?;
        let n = r.usize()?;
        if n != self.rows.len() {
            return Err(format!("row count mismatch: expected {}", self.rows.len()));
        }
        for row in &mut self.rows {
            row.state = match r.u8()? {
                0 => RowState::Own,
                1 => RowState::Swapped(r.u64()?),
                2 => RowState::Empty,
                t => return Err(format!("invalid row-state tag {t}")),
            };
            row.p_bit = r.bool()?;
            row.fill = if r.bool()? {
                let page = r.u64()?;
                let source = MachinePage(r.u64()?);
                let bitmap = r.u64s()?;
                let filled = r.u32()?;
                let total = r.u32()?;
                Some(FillState { page, source, bitmap, filled, total })
            } else {
                None
            };
            row.cam_suppressed = r.bool()?;
            row.parked = if r.bool()? { Some(r.u64()?) } else { None };
            row.quarantined = r.bool()?;
        }
        self.cam.clear();
        for (i, row) in self.rows.iter().enumerate() {
            if let RowState::Swapped(m) = row.state {
                if !row.cam_suppressed {
                    self.cam.insert(m, i as u32);
                }
            }
        }
        Ok(())
    }

    /// Verify the paper's structural invariants; used by tests and
    /// property tests. `idle` additionally requires no in-flight migration
    /// state (no P/F bits) and, for N-1 tables, exactly one empty slot.
    pub fn check_invariants(&self, idle: bool, n_minus_one: bool) -> Result<(), String> {
        let mut seen = FxHashMap::default();
        let mut parked_seen = FxHashMap::default();
        let mut empties = 0;
        for (i, row) in self.rows.iter().enumerate() {
            match row.state {
                RowState::Own => {}
                RowState::Swapped(m) => {
                    if m < self.slots {
                        return Err(format!(
                            "slot {i} holds low page {m}; low pages may only live in their own slot"
                        ));
                    }
                    if self.is_reserved(m) {
                        return Err(format!("slot {i} claims reserved page {m}"));
                    }
                    if row.cam_suppressed {
                        if idle {
                            return Err(format!("slot {i} has residual CAM suppression"));
                        }
                    } else {
                        if let Some(prev) = seen.insert(m, i) {
                            return Err(format!("page {m} mapped by slots {prev} and {i}"));
                        }
                        if self.cam.get(&m) != Some(&(i as u32)) {
                            return Err(format!("CAM out of sync for page {m}"));
                        }
                    }
                }
                RowState::Empty if row.quarantined => {}
                RowState::Empty => empties += 1,
            }
            if row.quarantined {
                if row.state != RowState::Empty {
                    return Err(format!("quarantined slot {i} is not empty"));
                }
                if row.parked.is_none() {
                    return Err(format!("quarantined slot {i} has nowhere to park its page"));
                }
                if row.p_bit || row.fill.is_some() {
                    return Err(format!("quarantined slot {i} has residual P/F state"));
                }
            }
            if let Some(pk) = row.parked {
                if !self.is_reserved(pk) || pk == self.ghost {
                    return Err(format!("slot {i} parked at non-spare page {pk}"));
                }
                if !row.quarantined && !row.p_bit {
                    return Err(format!("slot {i} parked without quarantine or pending drain"));
                }
                if let Some(prev) = parked_seen.insert(pk, i) {
                    return Err(format!("spare {pk} parks slots {prev} and {i}"));
                }
            }
            if idle && (row.p_bit || row.fill.is_some()) {
                return Err(format!("slot {i} has residual P/F state while idle"));
            }
        }
        if self.cam.len() != seen.len() {
            return Err("CAM contains stale entries".into());
        }
        if idle && n_minus_one && empties != 1 {
            return Err(format!(
                "idle N-1 table must have exactly one empty slot, found {empties}"
            ));
        }
        if !n_minus_one && empties != 0 {
            return Err(format!("N table must have no empty slots, found {empties}"));
        }
        Ok(())
    }

    /// Full consistency check, run after every table-mutating state
    /// transition in debug builds (and by the property tests in any
    /// build): the structural invariants of
    /// [`TranslationTable::check_invariants`], fill records that agree
    /// with their rows, and the paper's availability claim itself —
    /// every program-visible page has exactly **one** valid home at
    /// every instant, even mid-swap, mid-rollback or mid-drain.
    pub fn validate(&self, n_minus_one: bool) -> Result<(), String> {
        self.check_invariants(false, n_minus_one)?;
        for (i, row) in self.rows.iter().enumerate() {
            if let Some(f) = &row.fill {
                let consistent =
                    f.page == i as u64 || matches!(row.state, RowState::Swapped(m) if m == f.page);
                if !consistent {
                    return Err(format!("slot {i} fill record names page {} it does not hold", {
                        f.page
                    }));
                }
            }
        }
        // One-valid-home: the translation of the program-visible space is
        // injective (checked at sub-block 0; other sub-blocks differ only
        // in picking the fill target vs. the fill source, both of which
        // are exclusive to the same page).
        let mut homes = FxHashMap::default();
        for p in 0..self.first_reserved_page() {
            let mp = self.translate(MacroPageId(p), SubBlockId(0));
            if let Some(prev) = homes.insert(mp, p) {
                return Err(format!(
                    "pages {prev} and {p} both translate to machine page {}",
                    mp.0
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(p: u64) -> MacroPageId {
        MacroPageId(p)
    }

    fn sub(s: u32) -> SubBlockId {
        SubBlockId(s)
    }

    /// 8 slots, 32 total pages, ghost = 31.
    fn table() -> TranslationTable {
        TranslationTable::new(8, 32, true)
    }

    #[test]
    fn boot_state_is_identity_with_one_empty() {
        let t = table();
        t.check_invariants(true, true).unwrap();
        assert_eq!(t.empty_slot(), Some(7));
        // Low pages 0..7 map to their own slots (except the ghost page 7).
        for p in 0..7 {
            assert_eq!(t.translate(page(p), sub(0)), MachinePage(p));
            assert!(t.is_on_package(t.translate(page(p), sub(0))));
        }
        // The sacrificed slot's own page lives at the ghost Ω = 31.
        assert_eq!(t.translate(page(7), sub(0)), MachinePage(31));
        // High pages are at their own homes.
        assert_eq!(t.translate(page(20), sub(0)), MachinePage(20));
        assert!(!t.is_on_package(t.translate(page(20), sub(0))));
    }

    #[test]
    fn fill_into_empty_follows_bitmap() {
        let mut t = table();
        // Page 20 starts arriving into the empty slot 7, 4 sub-blocks.
        t.begin_fill_into_empty(7, 20, MachinePage(20), 4);
        // Not-yet-copied sub-blocks still route to the source.
        assert_eq!(t.translate(page(20), sub(0)), MachinePage(20));
        assert!(!t.mark_sub_block_filled(7, sub(0)));
        assert_eq!(t.translate(page(20), sub(0)), MachinePage(7), "filled sub-block is on-package");
        assert_eq!(t.translate(page(20), sub(1)), MachinePage(20), "unfilled still off-package");
        // P bit: RAM lookups of the slot's own page go to the ghost.
        assert_eq!(t.translate(page(7), sub(0)), MachinePage(31));
        // Finish the fill.
        assert!(!t.mark_sub_block_filled(7, sub(1)));
        assert!(!t.mark_sub_block_filled(7, sub(2)));
        assert!(t.mark_sub_block_filled(7, sub(3)));
        assert_eq!(t.translate(page(20), sub(2)), MachinePage(7));
    }

    #[test]
    fn full_case_a_sequence_reaches_consistent_state() {
        // Fig. 8(a): hot OS page 20, cold OF page 3, empty slot 7.
        let mut t = table();
        // Step 1: copy 20 into slot 7.
        t.begin_fill_into_empty(7, 20, MachinePage(20), 1);
        t.mark_sub_block_filled(7, sub(0));
        // Step 2: copy ghost data (page 7's) to home(20); then clear P.
        t.clear_p(7);
        // Page 7's data is now at home(20).
        assert_eq!(t.translate(page(7), sub(0)), MachinePage(20));
        // Step 3: copy page 3 to Ω; slot 3 becomes the new empty slot.
        t.retire_to_empty(3);
        assert_eq!(t.translate(page(3), sub(0)), MachinePage(31));
        assert_eq!(t.empty_slot(), Some(3));
        assert_eq!(t.translate(page(20), sub(0)), MachinePage(7));
        t.check_invariants(true, true).unwrap();
    }

    #[test]
    fn full_case_b_sequence() {
        // Prepare: page 20 in slot 7 (so row 7 is Swapped(20)), empty at 3.
        let mut t = table();
        t.begin_fill_into_empty(7, 20, MachinePage(20), 1);
        t.mark_sub_block_filled(7, sub(0));
        t.clear_p(7);
        t.retire_to_empty(3);
        t.check_invariants(true, true).unwrap();

        // Fig. 8(b): hot OS page 21 arrives; LRU is MF page 20 in slot 7.
        t.begin_fill_into_empty(3, 21, MachinePage(21), 1);
        t.mark_sub_block_filled(3, sub(0));
        t.clear_p(3); // ghost (page 3's data) copied to home(21)
        assert_eq!(t.translate(page(3), sub(0)), MachinePage(21));
        // Step 3: page 7's data (at home(20)) parks at Ω; P bit set.
        t.set_p(7);
        assert_eq!(t.translate(page(7), sub(0)), MachinePage(31));
        // Accesses to 20 still reach slot 7 ("the P bit only prevents the
        // address translation from A to C").
        assert_eq!(t.translate(page(20), sub(0)), MachinePage(7));
        // Step 4: 20's data drains home; slot 7 retires to empty.
        t.retire_to_empty(7);
        assert_eq!(t.translate(page(20), sub(0)), MachinePage(20));
        assert_eq!(t.translate(page(7), sub(0)), MachinePage(31));
        t.check_invariants(true, true).unwrap();
    }

    #[test]
    fn full_case_c_sequence() {
        // Prepare: page 20 swapped into slot 2 => page 2 is MS at home(20).
        let mut t = table();
        t.begin_fill_into_empty(7, 20, MachinePage(20), 1);
        t.mark_sub_block_filled(7, sub(0));
        t.clear_p(7);
        t.retire_to_empty(2);
        // Move 20 from slot 7 to... actually build the MS state directly:
        // we need row 2 = Swapped(20). Simplest: fresh table + N-design ops.
        let mut t = TranslationTable::new(8, 32, true);
        t.set_swapped(2, 20); // page 2's data at home(20), 20 in slot 2
        t.check_invariants(true, true).unwrap();

        // Fig. 8(c): hot MS page 2 (at home(20)) returns; LRU is OF page 4.
        // Step 1: move 20's CAM entry aside, then copy its data (slot 2)
        // into the empty slot 7.
        t.suppress_cam(2);
        t.begin_fill_into_empty(7, 20, MachinePage(2), 1);
        // CAM(20) during the fill: unfilled sub-blocks come from slot 2.
        assert_eq!(t.translate(page(20), sub(0)), MachinePage(2));
        t.mark_sub_block_filled(7, sub(0));
        assert_eq!(t.translate(page(20), sub(0)), MachinePage(7));
        // Step 2: restore page 2 into its own slot from home(20).
        t.begin_restore_own(2, MachinePage(20), 1);
        assert_eq!(t.translate(page(2), sub(0)), MachinePage(20), "still filling");
        t.mark_sub_block_filled(2, sub(0));
        assert_eq!(t.translate(page(2), sub(0)), MachinePage(2));
        // Step 3: ghost data (page 7's) copied to home(20); clear P.
        t.clear_p(7);
        assert_eq!(t.translate(page(7), sub(0)), MachinePage(20));
        // Step 4: LRU page 4 parks at Ω; slot 4 becomes empty.
        t.retire_to_empty(4);
        assert_eq!(t.translate(page(4), sub(0)), MachinePage(31));
        t.check_invariants(true, true).unwrap();
    }

    #[test]
    fn n_design_direct_ops() {
        let mut t = TranslationTable::new(8, 32, false);
        t.check_invariants(true, false).unwrap();
        t.set_swapped(3, 25);
        assert_eq!(t.translate(page(25), sub(0)), MachinePage(3));
        assert_eq!(t.translate(page(3), sub(0)), MachinePage(25));
        t.check_invariants(true, false).unwrap();
        t.set_own(3);
        assert_eq!(t.translate(page(25), sub(0)), MachinePage(25));
        assert_eq!(t.translate(page(3), sub(0)), MachinePage(3));
        t.check_invariants(true, false).unwrap();
    }

    #[test]
    fn occupants_reflect_state() {
        let mut t = table();
        assert_eq!(t.occupant(0), Some(0));
        assert_eq!(t.occupant(7), None);
        t.begin_fill_into_empty(7, 20, MachinePage(20), 1);
        assert_eq!(t.occupant(7), Some(20));
    }

    #[test]
    #[should_panic(expected = "fill target must be the empty slot")]
    fn cannot_fill_into_occupied_slot() {
        let mut t = table();
        t.begin_fill_into_empty(0, 20, MachinePage(20), 1);
    }

    #[test]
    #[should_panic(expected = "already CAM-mapped")]
    fn cannot_double_map_a_page() {
        let mut t = TranslationTable::new(8, 32, false);
        t.set_swapped(0, 20);
        t.set_swapped(1, 20);
    }

    #[test]
    fn invariants_catch_stale_cam() {
        let mut t = table();
        t.begin_fill_into_empty(7, 20, MachinePage(20), 1);
        // Mid-migration state is not idle-clean.
        assert!(t.check_invariants(true, true).is_err());
        assert!(t.check_invariants(false, true).is_ok());
    }

    #[test]
    fn big_bitmap_paths() {
        // A 4 MB page with 4 KB sub-blocks: 1024 bits across 16 words.
        let mut t = table();
        t.begin_fill_into_empty(7, 20, MachinePage(20), 1024);
        for i in 0..1023 {
            assert!(!t.mark_sub_block_filled(7, sub(i)));
        }
        let f = t.fill_state(7).unwrap();
        assert!((f.progress() - 1023.0 / 1024.0).abs() < 1e-9);
        assert!(t.mark_sub_block_filled(7, sub(1023)));
        assert!(t.fill_state(7).is_none(), "F bit resets when the bitmap is full");
    }

    #[test]
    fn mark_same_sub_block_twice_is_idempotent() {
        let mut t = table();
        t.begin_fill_into_empty(7, 20, MachinePage(20), 2);
        assert!(!t.mark_sub_block_filled(7, sub(0)));
        assert!(!t.mark_sub_block_filled(7, sub(0)));
        assert!(t.mark_sub_block_filled(7, sub(1)));
    }
}
