//! Adaptive migration granularity — the extension the paper calls for:
//! "it is necessary for the memory controller to adaptively change the
//! migration granularity according to different types of workloads"
//! (Section IV-B).
//!
//! [`AdaptiveController`] wraps a [`HeteroController`] and searches the
//! macro-page granularity online:
//!
//! 1. **Explore** — run each candidate granularity for a fixed trial of
//!    demand accesses, measuring the mean memory latency it achieves.
//! 2. **Commit** — rebuild the controller at the best-measured granularity
//!    and keep running (optionally re-exploring after a long exploitation
//!    phase, so phase-changing workloads are re-evaluated).
//!
//! Switching granularity is not free: every migrated page must drain back
//! to its home before the translation table can be rebuilt with different
//! row dimensions. The wrapper charges a per-displaced-page table-update
//! stall (the OS-assisted kernel-switch cost); the bulk data movement
//! overlaps execution like any other migration.

use crate::controller::{ControllerConfig, DemandCompletion, HeteroController};
use hmm_sim_base::addr::PhysAddr;
use hmm_sim_base::cycles::Cycle;
use hmm_telemetry::{Event, EventKind, NullSink, TelemetrySink};

/// Adaptive-search configuration.
#[derive(Debug, Clone)]
pub struct AdaptiveConfig {
    /// Candidate `page_shift` values, tried in order (paper sweep:
    /// 12..=22).
    pub candidate_shifts: Vec<u32>,
    /// Demand accesses per exploration trial.
    pub trial_accesses: u64,
    /// Demand accesses of exploitation before re-exploring (`None` =
    /// commit forever).
    pub reexplore_after: Option<u64>,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        Self {
            candidate_shifts: vec![14, 16, 18, 20],
            trial_accesses: 50_000,
            reexplore_after: None,
        }
    }
}

/// One completed measurement.
#[derive(Debug, Clone, Copy)]
pub struct TrialResult {
    /// The granularity tried.
    pub page_shift: u32,
    /// Mean latency over the trial's completed accesses.
    pub mean_latency: f64,
    /// Completions measured.
    pub samples: u64,
}

#[derive(Debug)]
enum Phase {
    Exploring { idx: usize },
    Committed { since_accesses: u64 },
}

/// A heterogeneity-aware controller that picks its own macro-page size.
#[derive(Debug)]
pub struct AdaptiveController<S: TelemetrySink = NullSink> {
    cfg: AdaptiveConfig,
    base: ControllerConfig,
    sink: S,
    inner: HeteroController<S>,
    phase: Phase,
    trials: Vec<TrialResult>,
    /// Accesses issued in the current phase segment.
    segment_accesses: u64,
    /// Latency sum / count for the running trial.
    acc_latency: u128,
    acc_samples: u64,
    /// Makes tokens unique across controller rebuilds.
    id_offset: u64,
    last_issued_raw: u64,
    /// Completions drained during a rebuild, held for the next `drain`.
    pending: Vec<DemandCompletion>,
    now: Cycle,
    switches: u64,
}

impl AdaptiveController {
    /// Build the wrapper; the `base` configuration's `page_shift` field in
    /// its geometry is overridden by the candidates.
    pub fn new(cfg: AdaptiveConfig, base: ControllerConfig) -> Self {
        Self::with_sink(cfg, base, NullSink)
    }
}

impl<S: TelemetrySink + Clone + Send> AdaptiveController<S> {
    /// Build the wrapper with a telemetry sink; granularity switches are
    /// reported as [`Event::GranularitySwitch`], and the sink is threaded
    /// into every rebuilt inner controller.
    pub fn with_sink(cfg: AdaptiveConfig, base: ControllerConfig, sink: S) -> Self {
        assert!(!cfg.candidate_shifts.is_empty(), "need at least one candidate");
        assert!(cfg.trial_accesses > 0);
        let first = cfg.candidate_shifts[0];
        let inner = HeteroController::with_sink(Self::with_shift(&base, first), sink.clone());
        Self {
            cfg,
            base,
            sink,
            inner,
            phase: Phase::Exploring { idx: 0 },
            trials: Vec::new(),
            segment_accesses: 0,
            acc_latency: 0,
            acc_samples: 0,
            id_offset: 0,
            last_issued_raw: 0,
            pending: Vec::new(),
            now: 0,
            switches: 0,
        }
    }

    fn with_shift(base: &ControllerConfig, shift: u32) -> ControllerConfig {
        let mut c = *base;
        let g = &mut c.machine.geometry;
        let page = 1u64 << shift;
        g.page_shift = shift;
        g.sub_block_shift = g.sub_block_shift.min(shift);
        // Re-round the capacities to the new page grid: total up (keeping
        // every address reachable plus the ghost page), on-package down
        // (capacity can only be used in whole pages).
        g.total_bytes = g.total_bytes.div_ceil(page) * page;
        g.on_package_bytes = (g.on_package_bytes / page * page).max(page);
        if g.on_package_bytes + 2 * page > g.total_bytes {
            g.total_bytes = g.on_package_bytes + 2 * page;
        }
        g.validate().expect("candidate shift breaks geometry");
        c
    }

    /// Currently active macro-page shift.
    pub fn current_page_shift(&self) -> u32 {
        self.inner.config().machine.geometry.page_shift
    }

    /// The committed shift, if exploration has finished.
    pub fn committed_shift(&self) -> Option<u32> {
        match self.phase {
            Phase::Committed { .. } => Some(self.current_page_shift()),
            Phase::Exploring { .. } => None,
        }
    }

    /// All finished trials so far.
    pub fn trials(&self) -> &[TrialResult] {
        &self.trials
    }

    /// Times the controller was rebuilt at a new granularity.
    pub fn switches(&self) -> u64 {
        self.switches
    }

    /// The wrapped controller (for statistics inspection).
    pub fn inner(&self) -> &HeteroController<S> {
        &self.inner
    }

    /// Submit one demand access (see [`HeteroController::access`]).
    pub fn access(&mut self, now: Cycle, addr: PhysAddr, is_write: bool) -> u64 {
        self.now = self.now.max(now);
        let raw = self.inner.access(now, addr, is_write);
        self.last_issued_raw = raw;
        self.segment_accesses += 1;
        self.maybe_transition();
        raw + self.id_offset
    }

    /// Advance simulated time (see [`HeteroController::advance`]).
    pub fn advance(&mut self, now: Cycle) {
        self.now = self.now.max(now);
        self.inner.advance(now);
    }

    /// Drain demand completions; ids match the tokens returned by
    /// [`AdaptiveController::access`].
    pub fn drain(&mut self) -> Vec<DemandCompletion> {
        let offset = self.id_offset;
        let mut out = std::mem::take(&mut self.pending);
        for mut c in self.inner.drain() {
            self.acc_latency += c.breakdown.total() as u128;
            self.acc_samples += 1;
            c.id += offset;
            out.push(c);
        }
        out
    }

    /// Drain remaining work at end of trace.
    pub fn flush(&mut self) {
        self.inner.flush();
    }

    fn maybe_transition(&mut self) {
        match self.phase {
            Phase::Exploring { idx } => {
                if self.segment_accesses < self.cfg.trial_accesses {
                    return;
                }
                self.finish_trial(idx);
                let next = idx + 1;
                if next < self.cfg.candidate_shifts.len() {
                    let shift = self.cfg.candidate_shifts[next];
                    self.rebuild(shift);
                    self.phase = Phase::Exploring { idx: next };
                } else {
                    // Commit to the best-measured candidate.
                    let best = self
                        .trials
                        .iter()
                        .min_by(|a, b| a.mean_latency.total_cmp(&b.mean_latency))
                        .expect("at least one trial ran")
                        .page_shift;
                    self.rebuild(best);
                    self.phase = Phase::Committed { since_accesses: 0 };
                }
            }
            Phase::Committed { since_accesses } => {
                let since = since_accesses + 1;
                if let Some(limit) = self.cfg.reexplore_after {
                    if since >= limit {
                        self.trials.clear();
                        let shift = self.cfg.candidate_shifts[0];
                        self.rebuild(shift);
                        self.phase = Phase::Exploring { idx: 0 };
                        return;
                    }
                }
                self.phase = Phase::Committed { since_accesses: since };
            }
        }
    }

    fn finish_trial(&mut self, idx: usize) {
        let mean = if self.acc_samples == 0 {
            f64::INFINITY
        } else {
            self.acc_latency as f64 / self.acc_samples as f64
        };
        self.trials.push(TrialResult {
            page_shift: self.cfg.candidate_shifts[idx],
            mean_latency: mean,
            samples: self.acc_samples,
        });
        self.acc_latency = 0;
        self.acc_samples = 0;
        self.segment_accesses = 0;
    }

    /// Tear down the current controller and rebuild at a new granularity,
    /// charging the drain cost of displaced pages as a demand stall.
    fn rebuild(&mut self, shift: u32) {
        if shift == self.current_page_shift() {
            // Keep the warm state; just reset the measurement window.
            self.segment_accesses = 0;
            return;
        }
        // Drain in-flight work so no completions are lost; they are
        // delivered (with the offset they were issued under) at the next
        // `drain` call.
        self.inner.flush();
        for mut c in self.inner.drain() {
            self.acc_latency += c.breakdown.total() as u128;
            self.acc_samples += 1;
            c.id += self.id_offset;
            self.pending.push(c);
        }
        // Reconfiguration cost: every displaced page needs a table update
        // (kernel-switch cost, as in the OS-assisted scheme) before the
        // table can be rebuilt at the new dimensions. The bulk data drain
        // itself overlaps execution like any other migration, so it is
        // not charged as a stall (its bandwidth is simply not modelled
        // across the rebuild — a documented simplification).
        let displaced = self.inner.table().swapped_count() as u64;
        let drain_cost = displaced * self.inner.config().machine.latency.os_update;

        if self.sink.enabled(EventKind::GranularitySwitch) {
            self.sink.emit(Event::GranularitySwitch {
                cycle: self.now,
                from_shift: self.current_page_shift(),
                to_shift: shift,
            });
        }
        self.id_offset += self.last_issued_raw + 1;
        self.last_issued_raw = 0;
        self.inner =
            HeteroController::with_sink(Self::with_shift(&self.base, shift), self.sink.clone());
        self.inner.advance(self.now);
        if drain_cost > 0 {
            self.inner.inject_stall(drain_cost);
        }
        self.switches += 1;
        self.segment_accesses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::Mode;
    use crate::migrate::MigrationDesign;
    use hmm_dram::{DeviceProfile, SchedPolicy};
    use hmm_sim_base::config::{LatencyConfig, MachineConfig, MemoryGeometry};
    use hmm_sim_base::cycles::CpuClock;
    use hmm_sim_base::rng::SimRng;

    fn base() -> ControllerConfig {
        ControllerConfig {
            machine: MachineConfig {
                clock: CpuClock::default(),
                latency: LatencyConfig::default(),
                geometry: MemoryGeometry {
                    total_bytes: 64 << 20,
                    on_package_bytes: 8 << 20,
                    page_shift: 16,
                    sub_block_shift: 12,
                },
            },
            mode: Mode::Dynamic(MigrationDesign::LiveMigration),
            swap_interval: 1_000,
            os_assisted: Some(false),
            max_outstanding_copies: 16,
            copy_pace_cycles_per_line: 20,
            policy: SchedPolicy::FrFcfs,
            on_profile: DeviceProfile::on_package(),
            off_profile: DeviceProfile::off_package_ddr3(),
            faults: None,
        }
    }

    fn drive(ctrl: &mut AdaptiveController, accesses: u64, seed: u64) -> Vec<DemandCompletion> {
        let mut rng = SimRng::new(seed);
        let mut now = 0;
        let mut done = Vec::new();
        for _ in 0..accesses {
            now += 10;
            // Hot 2 MB region (off-package) + uniform background.
            let addr = if rng.chance(0.7) {
                (40 << 20) + (rng.below(2 << 20) & !63)
            } else {
                rng.below(63 << 20) & !63
            };
            ctrl.access(now, PhysAddr(addr), rng.chance(0.3));
            ctrl.advance(now);
            done.extend(ctrl.drain());
        }
        ctrl.flush();
        done.extend(ctrl.drain());
        done
    }

    #[test]
    fn explores_all_candidates_then_commits() {
        let cfg = AdaptiveConfig {
            candidate_shifts: vec![14, 16, 18],
            trial_accesses: 5_000,
            reexplore_after: None,
        };
        let mut ctrl = AdaptiveController::new(cfg, base());
        drive(&mut ctrl, 30_000, 1);
        assert_eq!(ctrl.trials().len(), 3, "every candidate must be measured");
        let committed = ctrl.committed_shift().expect("must commit after trials");
        assert!([14, 16, 18].contains(&committed));
        // The committed shift is the best-measured one.
        let best = ctrl
            .trials()
            .iter()
            .min_by(|a, b| a.mean_latency.total_cmp(&b.mean_latency))
            .unwrap()
            .page_shift;
        assert_eq!(committed, best);
    }

    #[test]
    fn completions_are_conserved_and_unique_across_switches() {
        let cfg = AdaptiveConfig {
            candidate_shifts: vec![14, 18],
            trial_accesses: 4_000,
            reexplore_after: None,
        };
        let mut ctrl = AdaptiveController::new(cfg, base());
        let n = 16_000;
        let done = drive(&mut ctrl, n, 2);
        assert_eq!(done.len() as u64, n, "no completion may be lost in a switch");
        let mut ids: Vec<u64> = done.iter().map(|c| c.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len() as u64, n, "token collision across rebuilds");
        // Exploring two candidates requires at least one switch; a second
        // happens only if the commit differs from the last trial.
        assert!(ctrl.switches() >= 1, "explore must actually switch granularity");
    }

    #[test]
    fn single_candidate_never_switches() {
        let cfg = AdaptiveConfig {
            candidate_shifts: vec![16],
            trial_accesses: 2_000,
            reexplore_after: None,
        };
        let mut ctrl = AdaptiveController::new(cfg, base());
        drive(&mut ctrl, 8_000, 3);
        assert_eq!(ctrl.switches(), 0, "committing to the only candidate keeps warm state");
        assert_eq!(ctrl.committed_shift(), Some(16));
    }

    #[test]
    fn reexplore_restarts_trials() {
        let cfg = AdaptiveConfig {
            candidate_shifts: vec![14, 16],
            trial_accesses: 2_000,
            reexplore_after: Some(3_000),
        };
        let mut ctrl = AdaptiveController::new(cfg, base());
        drive(&mut ctrl, 20_000, 4);
        // 2 trials, commit, 3k exploit, re-explore (trials cleared and
        // re-run) — at least one full second round fits in 20k accesses.
        assert!(ctrl.switches() >= 3);
    }

    #[test]
    fn switch_charges_a_drain_stall() {
        // Force migrations at the first granularity, then switch: the
        // rebuilt controller must start with stall time proportional to
        // the displaced pages.
        let cfg = AdaptiveConfig {
            candidate_shifts: vec![14, 20],
            trial_accesses: 8_000,
            reexplore_after: None,
        };
        let mut ctrl = AdaptiveController::new(cfg, base());
        let done = drive(&mut ctrl, 20_000, 5);
        // Stall shows up as queuing on accesses right after the switch.
        let max_q = done.iter().map(|c| c.breakdown.queuing).max().unwrap();
        assert!(max_q > 0);
    }
}
