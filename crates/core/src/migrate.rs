//! The hottest-coldest swap algorithm (Section III-A).
//!
//! Three designs:
//!
//! * **N** — every slot is used; a swap copies whole pages through a
//!   hardware buffer and *halts execution* until it completes (the paper's
//!   strawman: "it will halt the execution and incur unacceptable
//!   performance overhead" at large granularity).
//! * **N-1** — one slot is sacrificed (the empty slot, its page parked at
//!   the ghost location Ω). The four case-specific copy sequences of
//!   Fig. 8(a)-(d) keep *every page addressable at all times*: "during the
//!   data migration procedure, the data under movement has two physical
//!   locations". The hot page is conservatively served from its old (slow)
//!   location until its copy step completes.
//! * **Live Migration** — N-1 plus the F bit and sub-block bitmap of
//!   Fig. 9: each 4 KB sub-block becomes servable from the fast region the
//!   moment it lands, and copying starts from the MRU sub-block
//!   (critical-data-first) before wrapping around.
//!
//! The engine is a pure state machine: the controller feeds it candidates
//! and completion events; it emits sub-block transfer requests and applies
//! translation-table updates at exactly the step boundaries the paper
//! prescribes.

use crate::table::{MachinePage, RowState, TranslationTable};
use hmm_sim_base::addr::SubBlockId;
use hmm_telemetry::{PfBit, PfChange};

/// Which migration design is active.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationDesign {
    /// Basic design: all N slots used, execution halts during a swap.
    N,
    /// One sacrificed slot + P bit; no partial-page access.
    NMinusOne,
    /// N-1 plus F bit + sub-block bitmap (critical-data-first).
    LiveMigration,
}

impl MigrationDesign {
    /// Does this design stall demand accesses while a swap is in flight?
    pub fn halts(&self) -> bool {
        matches!(self, MigrationDesign::N)
    }

    /// Does this design use the N-1 empty-slot machinery?
    pub fn sacrifices_slot(&self) -> bool {
        !matches!(self, MigrationDesign::N)
    }
}

/// A sub-block copy request emitted by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transfer {
    /// Opaque token to return via [`MigrationEngine::transfer_done`].
    pub token: u64,
    /// Source macro-page-sized machine location.
    pub src: MachinePage,
    /// Destination machine location.
    pub dst: MachinePage,
    /// Sub-block index within the page.
    pub sub: u32,
}

/// Progress report from [`MigrationEngine::transfer_done`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwapProgress {
    /// More transfers outstanding in the current step.
    InFlight,
    /// A step boundary was crossed (table updated).
    StepDone,
    /// The whole swap finished; the engine is idle again.
    SwapDone,
}

/// Counters for reporting and the power model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SwapStats {
    /// Swaps started.
    pub triggered: u64,
    /// Swaps fully completed.
    pub completed: u64,
    /// Paper Fig. 8 case counts: (a), (b), (c), (d).
    pub case_counts: [u64; 4],
    /// Sub-block copies performed (each is one read + one write of a
    /// sub-block).
    pub sub_blocks_copied: u64,
}

impl SwapStats {
    /// Fold another counter set into this one (the workspace-wide merge
    /// convention, mirroring `RunningMean::merge`). Used when joining
    /// parallel sweep shards.
    pub fn merge(&mut self, other: &SwapStats) {
        self.triggered += other.triggered;
        self.completed += other.completed;
        for (a, b) in self.case_counts.iter_mut().zip(other.case_counts.iter()) {
            *a += b;
        }
        self.sub_blocks_copied += other.sub_blocks_copied;
    }
}

#[derive(Debug, Clone)]
enum TableOp {
    SuppressCam(u32),
    BeginFillEmpty { slot: u32, page: u64, source: MachinePage },
    BeginRestoreOwn { slot: u32, source: MachinePage },
    ClearP(u32),
    SetP(u32),
    RetireToEmpty(u32),
    SetSwapped { slot: u32, page: u64 },
    SetOwn(u32),
}

#[derive(Debug, Clone)]
struct CopyStep {
    src: MachinePage,
    dst: MachinePage,
    begin: Vec<TableOp>,
    end: Vec<TableOp>,
    /// Slot whose fill bitmap tracks this step's arrivals.
    fill_slot: Option<u32>,
}

#[derive(Debug)]
struct ActiveSwap {
    steps: Vec<CopyStep>,
    step: usize,
    issued: u32,
    done: u32,
    /// Critical-data-first rotation offset.
    start_sub: u32,
}

/// The migration state machine.
#[derive(Debug)]
pub struct MigrationEngine {
    design: MigrationDesign,
    sub_blocks_per_page: u32,
    active: Option<ActiveSwap>,
    stats: SwapStats,
    /// When set, P/F-bit transitions are appended to `pf_log`. The engine
    /// is clock-free, so the controller drains the log and stamps cycles.
    log_pf: bool,
    pf_log: Vec<PfChange>,
}

impl MigrationEngine {
    /// Build an engine. `sub_blocks_per_page` is the transfer granularity
    /// (page size / sub-block size; 1 if the page is one sub-block).
    pub fn new(design: MigrationDesign, sub_blocks_per_page: u32) -> Self {
        assert!(sub_blocks_per_page >= 1);
        Self {
            design,
            sub_blocks_per_page,
            active: None,
            stats: SwapStats::default(),
            log_pf: false,
            pf_log: Vec::new(),
        }
    }

    /// Enable or disable P/F-transition logging (off by default; the
    /// controller turns it on when its telemetry sink wants the events).
    pub fn set_pf_logging(&mut self, on: bool) {
        self.log_pf = on;
    }

    /// Take the accumulated P/F transitions, in application order.
    pub fn drain_pf_log(&mut self) -> Vec<PfChange> {
        std::mem::take(&mut self.pf_log)
    }

    /// The active design.
    pub fn design(&self) -> MigrationDesign {
        self.design
    }

    /// Is a swap in flight? ("The existence of P bit and F bit prevents
    /// triggering another swap if the previous swap is not complete yet.")
    pub fn busy(&self) -> bool {
        self.active.is_some()
    }

    /// Must demand traffic stall right now? (N design only.)
    pub fn halting(&self) -> bool {
        self.design.halts() && self.busy()
    }

    /// Statistics so far.
    pub fn stats(&self) -> SwapStats {
        self.stats
    }

    /// Bitmap granularity: per sub-block for live migration, a single
    /// all-or-nothing bit otherwise (the conservative N-1 routing).
    fn bitmap_bits(&self) -> u32 {
        match self.design {
            MigrationDesign::LiveMigration => self.sub_blocks_per_page,
            _ => 1,
        }
    }

    /// Try to start a hottest-coldest swap bringing `hot` on-package and
    /// evicting the occupant of `cold_slot`. `hot_sub_hint` is the
    /// sub-block of the access that made the page MRU (critical-data-first
    /// start position). Returns false if the candidate pair is not
    /// migratable (wrong states) or the engine is busy.
    pub fn start_swap(
        &mut self,
        table: &mut TranslationTable,
        hot: u64,
        cold_slot: u32,
        hot_sub_hint: u32,
    ) -> bool {
        if self.busy() {
            return false;
        }
        let n = table.slots();
        if hot == table.ghost().0 {
            return false; // the reserved page is not a program page
        }

        // Classify the hot page.
        let hot_kind = if hot >= n {
            if table.cam_lookup(hot).is_some() {
                return false; // already on-package
            }
            HotKind::Os
        } else {
            match table.row_state(hot as u32) {
                RowState::Swapped(e) => HotKind::Ms { partner: e },
                _ => return false, // OF (already fast) or Ghost
            }
        };

        // Classify the cold slot.
        if matches!(hot_kind, HotKind::Ms { .. }) && cold_slot as u64 == hot {
            return false; // the hot page's own row cannot be the victim
        }
        let cold_kind = table.row_state(cold_slot);
        if cold_kind == RowState::Empty {
            return false;
        }

        let home = MachinePage;
        let slot = |s: u32| MachinePage(s as u64);
        let ghost = table.ghost();

        let steps: Vec<CopyStep> = if self.design.sacrifices_slot() {
            let s_e = table.empty_slot().expect("N-1 table always has an empty slot");
            if s_e == cold_slot {
                return false;
            }
            match (hot_kind, cold_kind) {
                // Fig. 8(a): OS in, OF out.
                (HotKind::Os, RowState::Own) => {
                    self.stats.case_counts[0] += 1;
                    vec![
                        CopyStep {
                            src: home(hot),
                            dst: slot(s_e),
                            begin: vec![TableOp::BeginFillEmpty {
                                slot: s_e,
                                page: hot,
                                source: home(hot),
                            }],
                            end: vec![],
                            fill_slot: Some(s_e),
                        },
                        CopyStep {
                            src: ghost,
                            dst: home(hot),
                            begin: vec![],
                            end: vec![TableOp::ClearP(s_e)],
                            fill_slot: None,
                        },
                        CopyStep {
                            src: slot(cold_slot),
                            dst: ghost,
                            begin: vec![],
                            end: vec![TableOp::RetireToEmpty(cold_slot)],
                            fill_slot: None,
                        },
                    ]
                }
                // Fig. 8(b): OS in, MF out.
                (HotKind::Os, RowState::Swapped(d)) => {
                    self.stats.case_counts[1] += 1;
                    vec![
                        CopyStep {
                            src: home(hot),
                            dst: slot(s_e),
                            begin: vec![TableOp::BeginFillEmpty {
                                slot: s_e,
                                page: hot,
                                source: home(hot),
                            }],
                            end: vec![],
                            fill_slot: Some(s_e),
                        },
                        CopyStep {
                            src: ghost,
                            dst: home(hot),
                            begin: vec![],
                            end: vec![TableOp::ClearP(s_e)],
                            fill_slot: None,
                        },
                        CopyStep {
                            src: home(d),
                            dst: ghost,
                            begin: vec![],
                            end: vec![TableOp::SetP(cold_slot)],
                            fill_slot: None,
                        },
                        CopyStep {
                            src: slot(cold_slot),
                            dst: home(d),
                            begin: vec![],
                            end: vec![TableOp::RetireToEmpty(cold_slot)],
                            fill_slot: None,
                        },
                    ]
                }
                // Fig. 8(c): MS in, OF out.
                (HotKind::Ms { partner }, RowState::Own) => {
                    self.stats.case_counts[2] += 1;
                    Self::ms_in_steps(hot, partner, cold_slot, s_e, ghost, None)
                }
                // Fig. 8(d): MS in, MF out.
                (HotKind::Ms { partner }, RowState::Swapped(d)) => {
                    self.stats.case_counts[3] += 1;
                    Self::ms_in_steps(hot, partner, cold_slot, s_e, ghost, Some(d))
                }
                (_, RowState::Empty) => unreachable!("checked above"),
            }
        } else {
            // The halting N design: whole-page copies through a buffer,
            // table updated only at the very end.
            self.n_design_steps(hot, &hot_kind, cold_slot, cold_kind)
        };

        // Apply the first step's table updates.
        let swap = ActiveSwap {
            steps,
            step: 0,
            issued: 0,
            done: 0,
            start_sub: hot_sub_hint % self.sub_blocks_per_page,
        };
        let bits = self.bitmap_bits();
        let log = self.log_pf;
        for op in swap.steps[0].begin.clone() {
            Self::apply(table, op, bits, log.then_some(&mut self.pf_log));
        }
        self.active = Some(swap);
        self.stats.triggered += 1;
        true
    }

    /// Shared step list for Fig. 8(c)/(d): bring an MS page home, relocate
    /// its partner into the empty slot, then evict the cold slot.
    /// `cold_mf` is the cold slot's MF occupant for case (d), `None` for
    /// the OF-victim case (c).
    fn ms_in_steps(
        hot: u64,
        partner: u64,
        cold_slot: u32,
        s_e: u32,
        ghost: MachinePage,
        cold_mf: Option<u64>,
    ) -> Vec<CopyStep> {
        let home = MachinePage;
        let slot = |s: u32| MachinePage(s as u64);
        let hot_slot = hot as u32;
        let mut steps = vec![
            // 1: partner's data (in the hot page's row) moves to the empty
            //    slot; its CAM entry migrates there too.
            CopyStep {
                src: slot(hot_slot),
                dst: slot(s_e),
                begin: vec![
                    TableOp::SuppressCam(hot_slot),
                    TableOp::BeginFillEmpty { slot: s_e, page: partner, source: slot(hot_slot) },
                ],
                end: vec![],
                fill_slot: Some(s_e),
            },
            // 2: the hot page returns to its own slot from the partner's
            //    home.
            CopyStep {
                src: home(partner),
                dst: slot(hot_slot),
                begin: vec![TableOp::BeginRestoreOwn { slot: hot_slot, source: home(partner) }],
                end: vec![],
                fill_slot: Some(hot_slot),
            },
            // 3: the ghost data parks at the partner's (now free) home.
            CopyStep {
                src: ghost,
                dst: home(partner),
                begin: vec![],
                end: vec![TableOp::ClearP(s_e)],
                fill_slot: None,
            },
        ];
        if let Some(d) = cold_mf {
            // (d): the cold slot's own page (parked at home(d)) moves to
            // Ω, then the MF occupant d drains to its own home.
            steps.push(CopyStep {
                src: home(d),
                dst: ghost,
                begin: vec![],
                end: vec![TableOp::SetP(cold_slot)],
                fill_slot: None,
            });
            steps.push(CopyStep {
                src: slot(cold_slot),
                dst: home(d),
                begin: vec![],
                end: vec![TableOp::RetireToEmpty(cold_slot)],
                fill_slot: None,
            });
        } else {
            // (c): the cold OF page parks at Ω.
            steps.push(CopyStep {
                src: slot(cold_slot),
                dst: ghost,
                begin: vec![],
                end: vec![TableOp::RetireToEmpty(cold_slot)],
                fill_slot: None,
            });
        }
        steps
    }

    /// Step list for the halting N design.
    fn n_design_steps(
        &mut self,
        hot: u64,
        hot_kind: &HotKind,
        cold_slot: u32,
        cold_kind: RowState,
    ) -> Vec<CopyStep> {
        let home = MachinePage;
        let slot = |s: u32| MachinePage(s as u64);
        let mut copies: Vec<(MachinePage, MachinePage)> = Vec::new();
        let mut end: Vec<TableOp> = Vec::new();
        match (hot_kind.partner(), cold_kind) {
            (None, RowState::Own) => {
                self.stats.case_counts[0] += 1;
                copies.push((slot(cold_slot), home(hot)));
                copies.push((home(hot), slot(cold_slot)));
                end.push(TableOp::SetSwapped { slot: cold_slot, page: hot });
            }
            (None, RowState::Swapped(d)) => {
                self.stats.case_counts[1] += 1;
                copies.push((slot(cold_slot), home(d)));
                copies.push((home(d), home(hot)));
                copies.push((home(hot), slot(cold_slot)));
                end.push(TableOp::SetSwapped { slot: cold_slot, page: hot });
            }
            (Some(e), RowState::Own) => {
                self.stats.case_counts[2] += 1;
                copies.push((slot(hot as u32), slot(cold_slot)));
                copies.push((slot(cold_slot), home(e)));
                copies.push((home(e), slot(hot as u32)));
                end.push(TableOp::SetOwn(hot as u32));
                end.push(TableOp::SetSwapped { slot: cold_slot, page: e });
            }
            (Some(e), RowState::Swapped(d)) => {
                self.stats.case_counts[3] += 1;
                copies.push((slot(cold_slot), home(d)));
                copies.push((home(d), home(e)));
                copies.push((slot(hot as u32), slot(cold_slot)));
                copies.push((home(e), slot(hot as u32)));
                end.push(TableOp::SetOwn(hot as u32));
                end.push(TableOp::SetSwapped { slot: cold_slot, page: e });
            }
            (_, RowState::Empty) => unreachable!("N tables have no empty slot"),
        }
        let last = copies.len() - 1;
        copies
            .into_iter()
            .enumerate()
            .map(|(i, (src, dst))| CopyStep {
                src,
                dst,
                begin: vec![],
                end: if i == last { std::mem::take(&mut end) } else { vec![] },
                fill_slot: None,
            })
            .collect()
    }

    fn apply(
        table: &mut TranslationTable,
        op: TableOp,
        bitmap_bits: u32,
        log: Option<&mut Vec<PfChange>>,
    ) {
        let note = |log: Option<&mut Vec<PfChange>>, slot: u32, bit: PfBit, set: bool| {
            if let Some(log) = log {
                log.push(PfChange { slot, bit, set });
            }
        };
        match op {
            TableOp::SuppressCam(s) => table.suppress_cam(s),
            TableOp::BeginFillEmpty { slot, page, source } => {
                table.begin_fill_into_empty(slot, page, source, bitmap_bits);
                if let Some(log) = log {
                    log.push(PfChange { slot, bit: PfBit::P, set: true });
                    log.push(PfChange { slot, bit: PfBit::F, set: true });
                }
            }
            TableOp::BeginRestoreOwn { slot, source } => {
                table.begin_restore_own(slot, source, bitmap_bits);
                note(log, slot, PfBit::F, true);
            }
            TableOp::ClearP(s) => {
                table.clear_p(s);
                note(log, s, PfBit::P, false);
            }
            TableOp::SetP(s) => {
                table.set_p(s);
                note(log, s, PfBit::P, true);
            }
            TableOp::RetireToEmpty(s) => {
                let was_pending = table.p_bit(s);
                table.retire_to_empty(s);
                if was_pending {
                    note(log, s, PfBit::P, false);
                }
            }
            TableOp::SetSwapped { slot, page } => table.set_swapped(slot, page),
            TableOp::SetOwn(s) => table.set_own(s),
        }
    }

    /// Emit up to `allowance` new sub-block transfers for the current step
    /// (flow control: the controller limits outstanding copies so the
    /// copy engine does not flood the DRAM queues).
    pub fn take_transfers(&mut self, allowance: u32, out: &mut Vec<Transfer>) {
        let Some(swap) = &mut self.active else { return };
        let per_step = self.sub_blocks_per_page;
        let step = &swap.steps[swap.step];
        let mut issued = 0;
        while swap.issued < per_step && issued < allowance {
            let k = swap.issued;
            // Critical-data-first: rotate so the MRU sub-block copies
            // first ("starts to copy the macro page from the position of
            // the MRU sub-block and then wraps the address").
            let sub = (swap.start_sub + k) % per_step;
            out.push(Transfer {
                token: (swap.step as u64) << 32 | sub as u64,
                src: step.src,
                dst: step.dst,
                sub,
            });
            swap.issued += 1;
            issued += 1;
        }
    }

    /// Record completion of a transfer (both its read and write legs).
    pub fn transfer_done(&mut self, token: u64, table: &mut TranslationTable) -> SwapProgress {
        let bits = self.bitmap_bits();
        let log = self.log_pf;
        let live = matches!(self.design, MigrationDesign::LiveMigration);
        let swap = self.active.as_mut().expect("no swap in flight");
        let step_idx = (token >> 32) as usize;
        let sub = (token & 0xFFFF_FFFF) as u32;
        assert_eq!(step_idx, swap.step, "completion for a stale step");
        swap.done += 1;
        self.stats.sub_blocks_copied += 1;

        let step = &swap.steps[swap.step];
        if live {
            if let Some(slot) = step.fill_slot {
                table.mark_sub_block_filled(slot, SubBlockId(sub));
            }
        }
        if swap.done < self.sub_blocks_per_page {
            return SwapProgress::InFlight;
        }

        // Step complete.
        if !live {
            if let Some(slot) = step.fill_slot {
                // Conservative switch-over: the whole page becomes fast at
                // once.
                table.mark_sub_block_filled(slot, SubBlockId(0));
            }
        }
        if log {
            if let Some(slot) = step.fill_slot {
                // The fill finished: the F bit stops gating this slot.
                self.pf_log.push(PfChange { slot, bit: PfBit::F, set: false });
            }
        }
        for op in swap.steps[swap.step].end.clone() {
            Self::apply(table, op, bits, log.then_some(&mut self.pf_log));
        }
        swap.step += 1;
        swap.issued = 0;
        swap.done = 0;
        if swap.step == swap.steps.len() {
            self.active = None;
            self.stats.completed += 1;
            SwapProgress::SwapDone
        } else {
            for op in swap.steps[swap.step].begin.clone() {
                Self::apply(table, op, bits, log.then_some(&mut self.pf_log));
            }
            SwapProgress::StepDone
        }
    }
}

/// Classification of the hot (MRU) page at trigger time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum HotKind {
    /// Original Slow: a high page at its own off-package home.
    Os,
    /// Migrated Slow: a low page displaced to its partner's home.
    Ms {
        /// The high page occupying the hot page's slot.
        partner: u64,
    },
}

impl HotKind {
    fn partner(&self) -> Option<u64> {
        match self {
            HotKind::Os => None,
            HotKind::Ms { partner } => Some(*partner),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TranslationTable;
    use hmm_sim_base::addr::MacroPageId;

    // see below: tests drive full swaps synchronously.
    struct Harness {
        table: TranslationTable,
        engine: MigrationEngine,
    }

    impl Harness {
        fn new(design: MigrationDesign, subs: u32) -> Self {
            Self {
                table: TranslationTable::new(8, 32, design.sacrifices_slot()),
                engine: MigrationEngine::new(design, subs),
            }
        }

        /// Run a whole swap synchronously, returning true if it started.
        fn run_swap(&mut self, hot: u64, cold: u32) -> bool {
            if !self.engine.start_swap(&mut self.table, hot, cold, 0) {
                return false;
            }
            let mut guard = 0;
            while self.engine.busy() {
                let mut ts = Vec::new();
                self.engine.take_transfers(8, &mut ts);
                assert!(!ts.is_empty(), "engine busy but emitted no transfers");
                for t in ts {
                    self.engine.transfer_done(t.token, &mut self.table);
                }
                guard += 1;
                assert!(guard < 10_000, "swap did not converge");
            }
            true
        }

        fn loc(&self, page: u64) -> u64 {
            self.table.translate(MacroPageId(page), hmm_sim_base::addr::SubBlockId(0)).0
        }
    }

    #[test]
    fn case_a_os_in_of_out() {
        let mut h = Harness::new(MigrationDesign::NMinusOne, 4);
        assert!(h.run_swap(20, 3));
        // Hot page 20 is on-package (in the former empty slot 7).
        assert_eq!(h.loc(20), 7);
        // Cold page 3 became the ghost.
        assert_eq!(h.loc(3), 31);
        // The displaced page 7 parks at 20's old home.
        assert_eq!(h.loc(7), 20);
        h.table.check_invariants(true, true).unwrap();
        assert_eq!(h.engine.stats().case_counts, [1, 0, 0, 0]);
        // 3 steps x 4 sub-blocks.
        assert_eq!(h.engine.stats().sub_blocks_copied, 12);
    }

    #[test]
    fn case_b_os_in_mf_out() {
        let mut h = Harness::new(MigrationDesign::NMinusOne, 2);
        assert!(h.run_swap(20, 3)); // slot 7 now holds 20; empty is slot 3
        assert!(h.run_swap(21, 7)); // evict MF page 20 from slot 7
        assert_eq!(h.loc(21), 3, "new hot page lands in the former empty slot");
        assert_eq!(h.loc(20), 20, "evicted MF page drains to its own home");
        assert_eq!(h.loc(7), 31, "slot 7's own page is the new ghost");
        h.table.check_invariants(true, true).unwrap();
        assert_eq!(h.engine.stats().case_counts, [1, 1, 0, 0]);
    }

    #[test]
    fn case_c_ms_in_of_out() {
        let mut h = Harness::new(MigrationDesign::NMinusOne, 2);
        assert!(h.run_swap(20, 3)); // page 3 ghosted; page 7 MS at home(20)
                                    // Page 7 is now MS (its row holds... nothing: retired). Build the
                                    // MS state the natural way: hot page 7 is at the ghost... actually
                                    // after case (a), page 7 parks at home(20): row 7 = Swapped(20).
        assert_eq!(h.loc(7), 20);
        // Bring MS page 7 back; evict OF page 2.
        assert!(h.run_swap(7, 2));
        assert_eq!(h.loc(7), 7, "MS page restored to its own slot");
        assert_eq!(h.loc(20), 3, "partner moved into the old empty slot");
        assert_eq!(h.loc(2), 31, "evicted OF page is the new ghost");
        h.table.check_invariants(true, true).unwrap();
        assert_eq!(h.engine.stats().case_counts, [1, 0, 1, 0]);
    }

    #[test]
    fn case_d_ms_in_mf_out() {
        let mut h = Harness::new(MigrationDesign::NMinusOne, 2);
        assert!(h.run_swap(20, 3)); // case (a): 20 -> slot 7; page 3 ghosted
        assert!(h.run_swap(21, 5)); // case (a): 21 -> slot 3; page 5 ghosted
                                    // State now: slot 7 = 20 (MF), slot 3 = 21 (MF), page 5 ghosted,
                                    // empty = slot 5. Page 3 is MS at home(21), page 7 MS at home(20).
        assert_eq!(h.loc(3), 21);
        // Case (d): bring MS page 3 home, evicting MF page 20 (slot 7).
        assert!(h.run_swap(3, 7));
        assert_eq!(h.loc(3), 3, "MS page restored");
        assert_eq!(h.loc(21), 5, "partner 21 relocated to the empty slot");
        assert_eq!(h.loc(20), 20, "evicted MF page drains home");
        assert_eq!(h.loc(7), 31, "slot 7's page is the new ghost");
        h.table.check_invariants(true, true).unwrap();
        assert_eq!(h.engine.stats().case_counts, [2, 0, 0, 1]);
    }

    #[test]
    fn paper_example_ten_step_walkthrough() {
        // Reproduce the exact scenario of the Fig. 8(d) example: A and B
        // are MS (swapped with D and E), C is the Ghost. MRU = B, LRU = D.
        // In our id space: slots 0..8; A=0, B=1, C=7 (ghost row), D=20,
        // E=21.
        let mut h = Harness::new(MigrationDesign::NMinusOne, 2);
        assert!(h.run_swap(20, 0)); // D into slot 7 -> then A... build state:
                                    // After swap 1: slot 7 = D(20), ghost = page 0 (A at Ω)... The
                                    // paper's exact slot assignments differ, but the reachable states
                                    // are equivalent up to slot renaming. Drive to the (d) shape:
        assert!(h.run_swap(21, 1)); // E in; evict OF page 1 (B) -> B ghost?
                                    // Regardless of intermediate naming, the final swap must satisfy
                                    // the paper's end-state properties:
        let hot = (0..8u64).find(|&p| {
            h.table.row_state(p as u32) == RowState::Swapped(20)
                || h.table.row_state(p as u32) == RowState::Swapped(21)
        });
        let hot = hot.expect("an MS page exists");
        // Find an MF victim slot different from the hot row.
        let victim = (0..8u32)
            .find(|&s| s as u64 != hot && matches!(h.table.row_state(s), RowState::Swapped(_)))
            .expect("an MF slot exists");
        let partner = match h.table.row_state(hot as u32) {
            RowState::Swapped(e) => e,
            _ => unreachable!(),
        };
        let evicted = h.table.occupant(victim).unwrap();
        assert!(h.run_swap(hot, victim));
        // End-state: the MRU page is on-package in its own slot; its
        // partner is on-package in the old empty slot; the LRU page is
        // fully off-package at its own home; the victim slot's own page is
        // the new Ghost.
        assert_eq!(h.loc(hot), hot);
        assert!(h.table.is_on_package(MachinePage(h.loc(partner))));
        assert_eq!(h.loc(evicted), evicted);
        assert_eq!(h.loc(victim as u64), 31);
        h.table.check_invariants(true, true).unwrap();
    }

    #[test]
    fn live_migration_serves_filled_sub_blocks_early() {
        let mut h = Harness::new(MigrationDesign::LiveMigration, 4);
        assert!(h.engine.start_swap(&mut h.table, 20, 3, 2));
        let mut ts = Vec::new();
        h.engine.take_transfers(1, &mut ts);
        assert_eq!(ts.len(), 1);
        // Critical-data-first: the first transfer is the hinted sub-block.
        assert_eq!(ts[0].sub, 2);
        // Before completion, every sub-block of page 20 is off-package.
        assert_eq!(h.loc(20), 20);
        h.engine.transfer_done(ts[0].token, &mut h.table);
        // The hinted sub-block is now served on-package, others not yet.
        let t = &h.table;
        assert_eq!(t.translate(MacroPageId(20), SubBlockId(2)).0, 7);
        assert_eq!(t.translate(MacroPageId(20), SubBlockId(0)).0, 20);
    }

    #[test]
    fn n_minus_one_is_all_or_nothing() {
        let mut h = Harness::new(MigrationDesign::NMinusOne, 4);
        assert!(h.engine.start_swap(&mut h.table, 20, 3, 2));
        let mut ts = Vec::new();
        h.engine.take_transfers(3, &mut ts);
        for t in ts.drain(..) {
            h.engine.transfer_done(t.token, &mut h.table);
        }
        // 3 of 4 sub-blocks copied: the page still routes off-package
        // ("conservatively accessing the MRU macro page with off-package
        // memory speed during the migration").
        assert_eq!(h.loc(20), 20);
        h.engine.take_transfers(8, &mut ts);
        assert_eq!(ts.len(), 1);
        h.engine.transfer_done(ts[0].token, &mut h.table);
        assert_eq!(h.loc(20), 7, "switches over only when the step completes");
    }

    #[test]
    fn n_design_halts_and_updates_table_once() {
        let mut h = Harness::new(MigrationDesign::N, 2);
        assert!(h.engine.start_swap(&mut h.table, 20, 3, 0));
        assert!(h.engine.halting());
        // Mid-swap the table is untouched.
        assert_eq!(h.loc(20), 20);
        assert_eq!(h.loc(3), 3);
        let mut guard = 0;
        while h.engine.busy() {
            let mut ts = Vec::new();
            h.engine.take_transfers(8, &mut ts);
            for t in ts {
                h.engine.transfer_done(t.token, &mut h.table);
            }
            guard += 1;
            assert!(guard < 100);
        }
        assert!(!h.engine.halting());
        assert_eq!(h.loc(20), 3, "hot page lands in the cold slot");
        assert_eq!(h.loc(3), 20, "cold page parks at the hot page's home");
        h.table.check_invariants(true, false).unwrap();
    }

    #[test]
    fn n_design_case_d_four_copies() {
        let mut h = Harness::new(MigrationDesign::N, 1);
        assert!(h.run_swap(20, 3)); // 20 <-> 3
        assert!(h.run_swap(21, 5)); // 21 <-> 5
                                    // MS page 3 in, MF page 21 (slot 5) out.
        assert!(h.run_swap(3, 5));
        assert_eq!(h.loc(3), 3);
        assert_eq!(h.loc(21), 21);
        // 20 stays on-package in slot 5... no: case (d) moves partner 20
        // into the victim slot 5.
        assert_eq!(h.loc(20), 5);
        assert_eq!(h.loc(5), 20, "victim slot's page parks at partner's home");
        h.table.check_invariants(true, false).unwrap();
    }

    #[test]
    fn busy_engine_rejects_new_swaps() {
        let mut h = Harness::new(MigrationDesign::NMinusOne, 4);
        assert!(h.engine.start_swap(&mut h.table, 20, 3, 0));
        assert!(!h.engine.start_swap(&mut h.table, 21, 4, 0));
    }

    #[test]
    fn rejects_unmigratable_candidates() {
        let mut h = Harness::new(MigrationDesign::NMinusOne, 4);
        // Hot page already on-package (OF).
        assert!(!h.engine.start_swap(&mut h.table, 2, 3, 0));
        // Cold slot is the empty slot.
        assert!(!h.engine.start_swap(&mut h.table, 20, 7, 0));
        // The reserved ghost page.
        assert!(!h.engine.start_swap(&mut h.table, 31, 3, 0));
    }

    #[test]
    fn stats_accumulate() {
        let mut h = Harness::new(MigrationDesign::LiveMigration, 8);
        h.run_swap(20, 3);
        h.run_swap(21, 4);
        let s = h.engine.stats();
        assert_eq!(s.triggered, 2);
        assert_eq!(s.completed, 2);
        assert_eq!(s.sub_blocks_copied, 2 * 3 * 8);
    }
}
